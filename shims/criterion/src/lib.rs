//! Minimal `criterion`-compatible benchmark harness for offline builds.
//!
//! Runs each benchmark for `sample_size` timed iterations after a short
//! warmup and prints mean time per iteration (plus throughput when the
//! group declares one). No statistics, plots, or comparisons — enough to
//! keep the figure benches runnable and their numbers meaningful.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Opaque value sink preventing the optimizer from deleting benched code.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declared per-iteration workload, for derived rates.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// A benchmark identifier, optionally parameterized.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Display, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{name}/{parameter}"),
        }
    }

    /// Parameter-only id (the group name supplies the rest).
    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Values accepted wherever criterion takes a benchmark id.
pub trait IntoBenchmarkId {
    /// The rendered id.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// Timing context passed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `iters` calls of `f`.
    pub fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
        // Warmup round so lazy initialization stays out of the measurement.
        black_box(f());
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }

    /// Let the closure time `iters` iterations itself.
    pub fn iter_custom(&mut self, mut f: impl FnMut(u64) -> Duration) {
        self.elapsed = f(self.iters);
    }
}

fn report(label: &str, iters: u64, elapsed: Duration, throughput: Option<Throughput>) {
    let per_iter = if iters > 0 {
        elapsed / iters as u32
    } else {
        Duration::ZERO
    };
    let mut line = format!("{label:<48} {per_iter:>12.2?}/iter ({iters} iters)");
    if let Some(tp) = throughput {
        let secs = per_iter.as_secs_f64();
        if secs > 0.0 {
            match tp {
                Throughput::Bytes(bytes) => {
                    let mbps = bytes as f64 / secs / 1_000_000.0;
                    line.push_str(&format!("  {mbps:.1} MB/s"));
                }
                Throughput::Elements(n) => {
                    let eps = n as f64 / secs;
                    line.push_str(&format!("  {eps:.0} elem/s"));
                }
            }
        }
    }
    println!("{line}");
}

/// The benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Accept (and ignore) CLI arguments, for API parity with the real
    /// harness's `cargo bench -- <filter>` handling.
    pub fn configure_from_args(self) -> Criterion {
        self
    }

    /// Iterations per benchmark.
    pub fn sample_size(mut self, n: usize) -> Criterion {
        self.sample_size = n.max(1);
        self
    }

    /// Accepted for API parity; the shim always runs exactly
    /// `sample_size` iterations.
    pub fn measurement_time(self, _d: Duration) -> Criterion {
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            throughput: None,
            _criterion: self,
        }
    }

    /// Run one stand-alone benchmark.
    pub fn bench_function(
        &mut self,
        id: impl IntoBenchmarkId,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Criterion {
        let mut bencher = Bencher {
            iters: self.sample_size as u64,
            elapsed: Duration::ZERO,
        };
        f(&mut bencher);
        report(&id.into_id(), bencher.iters, bencher.elapsed, None);
        self
    }

    /// Finish the run (no-op in the shim).
    pub fn final_summary(&mut self) {}
}

/// A group of benchmarks sharing a name prefix and throughput.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Iterations per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Accepted for API parity (see [`Criterion::measurement_time`]).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Declare per-iteration throughput for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Run one benchmark in the group.
    pub fn bench_function(
        &mut self,
        id: impl IntoBenchmarkId,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into_id());
        let mut bencher = Bencher {
            iters: self.sample_size as u64,
            elapsed: Duration::ZERO,
        };
        f(&mut bencher);
        report(&label, bencher.iters, bencher.elapsed, self.throughput);
        self
    }

    /// Run one parameterized benchmark in the group.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into_id());
        let mut bencher = Bencher {
            iters: self.sample_size as u64,
            elapsed: Duration::ZERO,
        };
        f(&mut bencher, input);
        report(&label, bencher.iters, bencher.elapsed, self.throughput);
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion::default().configure_from_args().sample_size(3);
        let mut runs = 0u32;
        c.bench_function("smoke", |b| {
            b.iter(|| {
                runs += 1;
            })
        });
        // warmup + 3 timed iterations
        assert_eq!(runs, 4);
    }

    #[test]
    fn group_with_throughput_and_input() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(2);
        group.throughput(Throughput::Bytes(1024));
        group.bench_with_input(BenchmarkId::new("param", 7), &7u32, |b, &v| {
            b.iter(|| black_box(v * 2))
        });
        group.bench_function("custom", |b| b.iter_custom(Duration::from_micros));
        group.finish();
    }
}
