//! Minimal `parking_lot`-compatible synchronization primitives built on
//! `std::sync`, for offline builds.
//!
//! The semantic differences that matter to callers are preserved:
//! `lock()`/`read()`/`write()` never return poison errors (a poisoned
//! std lock is recovered transparently), and `Condvar::wait` takes the
//! guard by `&mut` rather than by value.

use std::sync::{self, PoisonError};
use std::time::Instant;

/// A mutual exclusion primitive (never poisons).
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// RAII guard for [`Mutex`]. The inner `Option` is only ever `None`
/// transiently inside `Condvar::wait*`, which takes the std guard out,
/// parks, and puts it back.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// New mutex holding `value`.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)),
        }
    }

    /// Lock if immediately available; `None` if another thread holds it.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(MutexGuard { inner: Some(guard) }),
            Err(sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: Some(p.into_inner()),
            }),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Mutex<T> {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.inner.try_lock() {
            Ok(guard) => f.debug_struct("Mutex").field("data", &&*guard).finish(),
            Err(_) => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present outside wait")
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present outside wait")
    }
}

/// Result of a timed condition-variable wait.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// Whether the wait hit its deadline before a notification.
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// Condition variable compatible with [`Mutex`].
#[derive(Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    /// New condition variable.
    pub const fn new() -> Condvar {
        Condvar {
            inner: sync::Condvar::new(),
        }
    }

    /// Block until notified, releasing the lock while parked.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let std_guard = guard.inner.take().expect("guard present");
        let std_guard = self
            .inner
            .wait(std_guard)
            .unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(std_guard);
    }

    /// Block until notified or `deadline` passes.
    pub fn wait_until<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        deadline: Instant,
    ) -> WaitTimeoutResult {
        let timeout = deadline.saturating_duration_since(Instant::now());
        let std_guard = guard.inner.take().expect("guard present");
        let (std_guard, result) = self
            .inner
            .wait_timeout(std_guard, timeout)
            .unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(std_guard);
        WaitTimeoutResult {
            timed_out: result.timed_out(),
        }
    }

    /// Wake one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wake all waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

/// Shared guard for [`RwLock`] (the std guard; the shim adds nothing).
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;

/// Exclusive guard for [`RwLock`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

/// Reader-writer lock (never poisons).
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// New lock holding `value`.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Shared read access.
    pub fn read(&self) -> sync::RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Exclusive write access.
    pub fn write(&self) -> sync::RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Shared access if immediately available; `None` if a writer holds
    /// the lock.
    pub fn try_read(&self) -> Option<sync::RwLockReadGuard<'_, T>> {
        match self.inner.try_read() {
            Ok(guard) => Some(guard),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Exclusive access if immediately available; `None` if any holder
    /// exists.
    pub fn try_write(&self) -> Option<sync::RwLockWriteGuard<'_, T>> {
        match self.inner.try_write() {
            Ok(guard) => Some(guard),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> RwLock<T> {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.inner.try_read() {
            Ok(guard) => f.debug_struct("RwLock").field("data", &&*guard).finish(),
            Err(_) => f.debug_struct("RwLock").field("data", &"<locked>").finish(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn condvar_wait_notify() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (m, cv) = &*pair2;
            let mut done = m.lock();
            *done = true;
            drop(done);
            cv.notify_one();
        });
        let (m, cv) = &*pair;
        let mut done = m.lock();
        while !*done {
            cv.wait(&mut done);
        }
        drop(done);
        t.join().unwrap();
    }

    #[test]
    fn condvar_wait_until_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let res = cv.wait_until(&mut g, Instant::now() + Duration::from_millis(5));
        assert!(res.timed_out());
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(7);
        assert_eq!(*l.read(), 7);
        *l.write() = 8;
        assert_eq!(*l.read(), 8);
    }
}
