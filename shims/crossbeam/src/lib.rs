//! Minimal `crossbeam`-compatible MPMC channels and a wait group, built
//! on `std::sync`, for offline builds.

/// Multi-producer multi-consumer FIFO channels.
pub mod channel {
    use std::collections::VecDeque;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex, PoisonError};
    use std::time::{Duration, Instant};

    struct Chan<T> {
        queue: Mutex<VecDeque<T>>,
        not_empty: Condvar,
        not_full: Condvar,
        /// `None` = unbounded; `Some(0)` behaves as capacity 1.
        cap: Option<usize>,
        senders: AtomicUsize,
        receivers: AtomicUsize,
    }

    /// Error returned by [`Sender::send`] when all receivers are gone;
    /// carries the unsent value.
    #[derive(PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> std::fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            // Like real crossbeam: no `T: Debug` bound, payload elided.
            write!(f, "SendError(..)")
        }
    }

    impl<T> std::fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    impl<T> std::error::Error for SendError<T> {}

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// all senders are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl std::fmt::Display for RecvError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "receiving on an empty and disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// The wait hit its deadline.
        Timeout,
        /// All senders disconnected with the channel empty.
        Disconnected,
    }

    impl std::fmt::Display for RecvTimeoutError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                RecvTimeoutError::Timeout => write!(f, "timed out waiting on channel"),
                RecvTimeoutError::Disconnected => write!(f, "channel disconnected"),
            }
        }
    }

    impl std::error::Error for RecvTimeoutError {}

    /// The sending half; cloneable.
    pub struct Sender<T> {
        chan: Arc<Chan<T>>,
    }

    /// The receiving half; cloneable (MPMC).
    pub struct Receiver<T> {
        chan: Arc<Chan<T>>,
    }

    fn new_chan<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let chan = Arc::new(Chan {
            queue: Mutex::new(VecDeque::new()),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            cap,
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
        });
        (
            Sender {
                chan: Arc::clone(&chan),
            },
            Receiver { chan },
        )
    }

    /// Channel with unlimited buffering.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        new_chan(None)
    }

    /// Channel buffering at most `cap` messages (`0` is treated as `1`).
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        new_chan(Some(cap.max(1)))
    }

    impl<T> Sender<T> {
        /// Send `value`, blocking while a bounded channel is full. Fails
        /// only once every receiver is dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut queue = self
                .chan
                .queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            loop {
                if self.chan.receivers.load(Ordering::SeqCst) == 0 {
                    return Err(SendError(value));
                }
                match self.chan.cap {
                    Some(cap) if queue.len() >= cap => {
                        queue = self
                            .chan
                            .not_full
                            .wait(queue)
                            .unwrap_or_else(PoisonError::into_inner);
                    }
                    _ => break,
                }
            }
            queue.push_back(value);
            drop(queue);
            self.chan.not_empty.notify_one();
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        /// Receive, blocking while the channel is empty. Fails only once
        /// the channel is empty and every sender is dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut queue = self
                .chan
                .queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            loop {
                if let Some(value) = queue.pop_front() {
                    drop(queue);
                    self.chan.not_full.notify_one();
                    return Ok(value);
                }
                if self.chan.senders.load(Ordering::SeqCst) == 0 {
                    return Err(RecvError);
                }
                queue = self
                    .chan
                    .not_empty
                    .wait(queue)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        }

        /// Receive with a deadline.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut queue = self
                .chan
                .queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            loop {
                if let Some(value) = queue.pop_front() {
                    drop(queue);
                    self.chan.not_full.notify_one();
                    return Ok(value);
                }
                if self.chan.senders.load(Ordering::SeqCst) == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let left = deadline.saturating_duration_since(Instant::now());
                if left.is_zero() {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (q, _) = self
                    .chan
                    .not_empty
                    .wait_timeout(queue, left)
                    .unwrap_or_else(PoisonError::into_inner);
                queue = q;
            }
        }

        /// Receive without blocking; `None` if empty or disconnected.
        pub fn try_recv(&self) -> Option<T> {
            let mut queue = self
                .chan
                .queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            let value = queue.pop_front();
            drop(queue);
            if value.is_some() {
                self.chan.not_full.notify_one();
            }
            value
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Sender<T> {
            self.chan.senders.fetch_add(1, Ordering::SeqCst);
            Sender {
                chan: Arc::clone(&self.chan),
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Receiver<T> {
            self.chan.receivers.fetch_add(1, Ordering::SeqCst);
            Receiver {
                chan: Arc::clone(&self.chan),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.chan.senders.fetch_sub(1, Ordering::SeqCst) == 1 {
                // Notify under the queue lock so a receiver between its
                // disconnect check and its wait cannot miss the wakeup.
                let guard = self
                    .chan
                    .queue
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner);
                self.chan.not_empty.notify_all();
                drop(guard);
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            if self.chan.receivers.fetch_sub(1, Ordering::SeqCst) == 1 {
                let guard = self
                    .chan
                    .queue
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner);
                self.chan.not_full.notify_all();
                drop(guard);
            }
        }
    }
}

/// Thread coordination helpers.
pub mod sync {
    use std::sync::{Arc, Condvar, Mutex, PoisonError};

    struct WgInner {
        count: Mutex<usize>,
        zero: Condvar,
    }

    /// Waits for a set of cloned handles to drop (crossbeam semantics:
    /// each clone is one unit of outstanding work).
    pub struct WaitGroup {
        inner: Arc<WgInner>,
    }

    impl WaitGroup {
        /// New group with one outstanding handle (this one).
        pub fn new() -> WaitGroup {
            WaitGroup {
                inner: Arc::new(WgInner {
                    count: Mutex::new(1),
                    zero: Condvar::new(),
                }),
            }
        }

        /// Drop this handle and block until every other handle drops.
        pub fn wait(self) {
            let inner = Arc::clone(&self.inner);
            drop(self);
            let mut count = inner.count.lock().unwrap_or_else(PoisonError::into_inner);
            while *count > 0 {
                count = inner
                    .zero
                    .wait(count)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        }
    }

    impl Default for WaitGroup {
        fn default() -> WaitGroup {
            WaitGroup::new()
        }
    }

    impl Clone for WaitGroup {
        fn clone(&self) -> WaitGroup {
            *self
                .inner
                .count
                .lock()
                .unwrap_or_else(PoisonError::into_inner) += 1;
            WaitGroup {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl Drop for WaitGroup {
        fn drop(&mut self) {
            let mut count = self
                .inner
                .count
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            *count -= 1;
            if *count == 0 {
                drop(count);
                self.inner.zero.notify_all();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{bounded, unbounded, RecvTimeoutError};
    use super::sync::WaitGroup;
    use std::time::Duration;

    #[test]
    fn unbounded_fifo() {
        let (tx, rx) = unbounded();
        for i in 0..10 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let got: Vec<i32> = std::iter::from_fn(|| rx.recv().ok()).collect();
        assert_eq!(got, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn recv_fails_after_senders_gone() {
        let (tx, rx) = unbounded::<u8>();
        drop(tx);
        assert!(rx.recv().is_err());
    }

    #[test]
    fn send_fails_after_receivers_gone() {
        let (tx, rx) = unbounded::<u8>();
        drop(rx);
        assert!(tx.send(1).is_err());
    }

    #[test]
    fn bounded_blocks_then_drains() {
        let (tx, rx) = bounded::<u32>(2);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        let t = std::thread::spawn(move || tx.send(3)); // blocks until a recv
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(rx.recv().unwrap(), 1);
        t.join().unwrap().unwrap();
        assert_eq!(rx.recv().unwrap(), 2);
        assert_eq!(rx.recv().unwrap(), 3);
    }

    #[test]
    fn mpmc_clone_receivers() {
        let (tx, rx) = unbounded();
        let rx2 = rx.clone();
        for i in 0..100 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let a = std::thread::spawn(move || std::iter::from_fn(|| rx.recv().ok()).count());
        let b = std::thread::spawn(move || std::iter::from_fn(|| rx2.recv().ok()).count());
        assert_eq!(a.join().unwrap() + b.join().unwrap(), 100);
    }

    #[test]
    fn recv_timeout_times_out() {
        let (_tx, rx) = unbounded::<u8>();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Timeout)
        );
    }

    #[test]
    fn wait_group_waits_for_clones() {
        let wg = WaitGroup::new();
        let done = std::sync::Arc::new(std::sync::atomic::AtomicUsize::new(0));
        for _ in 0..4 {
            let wg = wg.clone();
            let done = std::sync::Arc::clone(&done);
            std::thread::spawn(move || {
                done.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                drop(wg);
            });
        }
        wg.wait();
        assert_eq!(done.load(std::sync::atomic::Ordering::SeqCst), 4);
    }
}
