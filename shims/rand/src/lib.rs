//! Minimal `rand`-compatible deterministic PRNG for offline builds.
//!
//! [`rngs::StdRng`] is a SplitMix64 generator: statistically adequate for
//! workload synthesis and fault planning, and — the property the chaos
//! suite depends on — fully determined by its seed.

use std::ops::{Range, RangeInclusive};

/// A source of random 64-bit words.
pub trait RngCore {
    /// Next raw word.
    fn next_u64(&mut self) -> u64;
}

/// RNGs constructible from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Deterministic construction from `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draw one value from `rng` within the range.
    fn sample_from(self, rng: &mut dyn RngCore) -> T;
}

macro_rules! sample_range_impl {
    ($($ty:ty),* $(,)?) => {
        $(
            impl SampleRange<$ty> for Range<$ty> {
                fn sample_from(self, rng: &mut dyn RngCore) -> $ty {
                    assert!(self.start < self.end, "empty range");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let offset = (rng.next_u64() as u128) % span;
                    (self.start as i128 + offset as i128) as $ty
                }
            }

            impl SampleRange<$ty> for RangeInclusive<$ty> {
                fn sample_from(self, rng: &mut dyn RngCore) -> $ty {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range");
                    let span = (end as i128 - start as i128) as u128 + 1;
                    let offset = (rng.next_u64() as u128) % span;
                    (start as i128 + offset as i128) as $ty
                }
            }
        )*
    };
}

sample_range_impl!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Convenience sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform draw from an integer range.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli draw: `true` with probability `p` (clamped to [0, 1]).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        let p = p.clamp(0.0, 1.0);
        // 53 uniform mantissa bits, exactly representable in f64.
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<R: RngCore> Rng for R {}

/// Named RNG implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic RNG (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            StdRng { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_from_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(-5i32..5);
            assert!((-5..5).contains(&v));
            let w = rng.gen_range(1u8..=12);
            assert!((1..=12).contains(&w));
            let x = rng.gen_range(3usize..4);
            assert_eq!(x, 3);
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..100 {
            assert!(!rng.gen_bool(0.0));
            assert!(rng.gen_bool(1.0));
        }
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "got {hits}");
    }
}
