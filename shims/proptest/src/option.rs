//! Option strategies (`proptest::option::of`).

use rand::Rng;

use crate::{Strategy, TestRng};

/// Strategy for `Option<T>`; mostly `Some`, with enough `None`s to
/// exercise null paths.
pub struct OptionStrategy<S> {
    inner: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
        if rng.gen_bool(0.75) {
            Some(self.inner.generate(rng))
        } else {
            None
        }
    }
}

/// `Option` strategy over `inner`.
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}
