//! String strategies from a regex subset
//! (`proptest::string::string_regex`).
//!
//! Supported syntax — the subset the workspace's patterns use:
//!
//! - literal characters, `\x` escapes
//! - character classes `[a-z0-9_]` with ranges, escapes, and a literal
//!   `-` first or last
//! - quantifiers `{n}`, `{m,n}`, `?`, `*`, `+` (the unbounded forms cap
//!   at 8 repetitions)
//!
//! Anything else returns [`Error`] rather than silently misgenerating.

use rand::Rng;

use crate::{Strategy, TestRng};

/// Pattern rejected by the parser.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "unsupported string pattern: {}", self.0)
    }
}

impl std::error::Error for Error {}

struct Segment {
    /// Candidate characters, pre-expanded (patterns here are ASCII-sized).
    choices: Vec<char>,
    min: usize,
    max: usize,
}

/// Strategy generating strings matching a parsed pattern.
pub struct RegexGeneratorStrategy {
    segments: Vec<Segment>,
}

impl Strategy for RegexGeneratorStrategy {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for segment in &self.segments {
            let count = rng.gen_range(segment.min..=segment.max);
            for _ in 0..count {
                let i = rng.gen_range(0..segment.choices.len());
                out.push(segment.choices[i]);
            }
        }
        out
    }
}

/// Compile `pattern` into a generator strategy.
pub fn string_regex(pattern: &str) -> Result<RegexGeneratorStrategy, Error> {
    let mut chars = pattern.chars().peekable();
    let mut segments = Vec::new();
    while let Some(c) = chars.next() {
        let choices = match c {
            '[' => parse_class(&mut chars)?,
            '\\' => {
                let escaped = chars
                    .next()
                    .ok_or_else(|| Error("trailing backslash".into()))?;
                vec![escaped]
            }
            '(' | ')' | '|' | '^' | '$' | '.' | '{' | '}' | '?' | '*' | '+' => {
                return Err(Error(format!("metacharacter `{c}` not supported here")));
            }
            literal => vec![literal],
        };
        let (min, max) = parse_quantifier(&mut chars)?;
        segments.push(Segment { choices, min, max });
    }
    Ok(RegexGeneratorStrategy { segments })
}

fn parse_class(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> Result<Vec<char>, Error> {
    let mut items: Vec<char> = Vec::new();
    let mut choices = Vec::new();
    loop {
        let c = chars
            .next()
            .ok_or_else(|| Error("unterminated character class".into()))?;
        match c {
            ']' => break,
            '^' if items.is_empty() && choices.is_empty() => {
                return Err(Error("negated classes not supported".into()));
            }
            '\\' => {
                let escaped = chars
                    .next()
                    .ok_or_else(|| Error("trailing backslash in class".into()))?;
                items.push(escaped);
            }
            '-' if !items.is_empty() && chars.peek().is_some_and(|&n| n != ']') => {
                // Range: the previous item is the low end.
                let low = items.pop().expect("non-empty");
                let mut high = chars.next().expect("peeked");
                if high == '\\' {
                    high = chars
                        .next()
                        .ok_or_else(|| Error("trailing backslash in class".into()))?;
                }
                if (low as u32) > (high as u32) {
                    return Err(Error(format!("inverted range {low}-{high}")));
                }
                for code in (low as u32)..=(high as u32) {
                    if let Some(ch) = char::from_u32(code) {
                        choices.push(ch);
                    }
                }
            }
            other => items.push(other),
        }
    }
    choices.extend(items);
    if choices.is_empty() {
        return Err(Error("empty character class".into()));
    }
    Ok(choices)
}

fn parse_quantifier(
    chars: &mut std::iter::Peekable<std::str::Chars<'_>>,
) -> Result<(usize, usize), Error> {
    match chars.peek() {
        Some('{') => {
            chars.next();
            let mut spec = String::new();
            loop {
                match chars.next() {
                    Some('}') => break,
                    Some(c) => spec.push(c),
                    None => return Err(Error("unterminated quantifier".into())),
                }
            }
            let parse_num = |s: &str| {
                s.trim()
                    .parse::<usize>()
                    .map_err(|_| Error(format!("bad quantifier `{{{spec}}}`")))
            };
            match spec.split_once(',') {
                Some((lo, hi)) => {
                    let (lo, hi) = (parse_num(lo)?, parse_num(hi)?);
                    if lo > hi {
                        return Err(Error(format!("inverted quantifier `{{{spec}}}`")));
                    }
                    Ok((lo, hi))
                }
                None => {
                    let n = parse_num(&spec)?;
                    Ok((n, n))
                }
            }
        }
        Some('?') => {
            chars.next();
            Ok((0, 1))
        }
        Some('*') => {
            chars.next();
            Ok((0, 8))
        }
        Some('+') => {
            chars.next();
            Ok((1, 8))
        }
        _ => Ok((1, 1)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TestRng;

    fn gen_one(pattern: &str, case: u32) -> String {
        string_regex(pattern)
            .unwrap()
            .generate(&mut TestRng::for_case(pattern, case))
    }

    #[test]
    fn class_with_ranges_and_quantifier() {
        for case in 0..200 {
            let s = gen_one("[a-z]{1,8}", case);
            assert!((1..=8).contains(&s.len()), "{s:?}");
            assert!(s.bytes().all(|b| b.is_ascii_lowercase()), "{s:?}");
        }
    }

    #[test]
    fn printable_ascii_range() {
        for case in 0..200 {
            let s = gen_one("[ -~]{0,20}", case);
            assert!(s.len() <= 20);
            assert!(s.bytes().all(|b| (0x20..=0x7E).contains(&b)), "{s:?}");
        }
    }

    #[test]
    fn leading_segment_then_class() {
        for case in 0..200 {
            let s = gen_one("[A-Z][A-Z0-9_]{0,8}", case);
            assert!(!s.is_empty() && s.len() <= 9);
            assert!(s.as_bytes()[0].is_ascii_uppercase(), "{s:?}");
        }
    }

    #[test]
    fn escapes_and_trailing_dash() {
        for case in 0..200 {
            let s = gen_one("[a-zA-Z0-9 _|,\\\\\"'-]{0,40}", case);
            assert!(s.len() <= 40);
            for c in s.chars() {
                assert!(
                    c.is_ascii_alphanumeric() || " _|,\\\"'-".contains(c),
                    "unexpected {c:?} in {s:?}"
                );
            }
        }
    }

    #[test]
    fn unsupported_patterns_error() {
        assert!(string_regex("a|b").is_err());
        assert!(string_regex("[^a]").is_err());
        assert!(string_regex("(ab)").is_err());
        assert!(string_regex("[a-").is_err());
    }

    #[test]
    fn plain_literals_and_star() {
        for case in 0..50 {
            let s = gen_one("ab?c*", case);
            assert!(s.starts_with('a'));
        }
    }
}
