//! Collection strategies (`proptest::collection::vec`).

use std::ops::{Range, RangeInclusive};

use rand::Rng;

use crate::{Strategy, TestRng};

/// An inclusive length range for generated collections.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    max: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange { min: n, max: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> SizeRange {
        assert!(r.start() <= r.end(), "empty collection size range");
        SizeRange {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

/// Strategy for `Vec`s whose length falls in a size range and whose
/// elements come from one element strategy.
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = rng.gen_range(self.size.min..=self.size.max);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// `Vec` strategy: length drawn from `size`, elements from `element`.
///
/// `element` may itself be a `Vec` of strategies (fixed-shape rows), a
/// tuple of strategies, or any other [`Strategy`].
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}
