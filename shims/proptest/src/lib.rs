//! Minimal `proptest`-compatible property-testing harness for offline
//! builds.
//!
//! Differences from real proptest, by design:
//!
//! - **No shrinking.** A failing case panics with the generated inputs
//!   visible in the assertion message; the seed is derived from the test
//!   name and case index, so every failure is reproducible by rerunning
//!   the test.
//! - **Deterministic.** Case `i` of test `t` always sees the same inputs,
//!   across runs and machines.
//! - Strategies are generator functions (`&self, &mut TestRng -> Value`);
//!   all combinators box, which keeps the `Strategy` trait tiny while
//!   supporting the same call sites.

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

pub mod collection;
pub mod option;
pub mod string;

/// The deterministic RNG handed to strategies.
pub struct TestRng {
    inner: StdRng,
}

impl RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
}

impl TestRng {
    /// RNG for case `case` of the test named `name` — a pure function of
    /// both, so failures reproduce across runs.
    pub fn for_case(name: &str, case: u32) -> TestRng {
        // FNV-1a over the test name, mixed with the case index.
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in name.bytes() {
            hash ^= byte as u64;
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng {
            inner: StdRng::seed_from_u64(hash ^ ((case as u64) << 1 | 1)),
        }
    }
}

/// Configuration accepted by `proptest! { #![proptest_config(...)] ... }`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 64 }
    }
}

/// A value generator.
pub trait Strategy: 'static {
    /// The generated type.
    type Value;

    /// Produce one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<U: 'static, F>(self, f: F) -> BoxedStrategy<U>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U + 'static,
    {
        let s = self;
        BoxedStrategy::from_fn(move |rng| f(s.generate(rng)))
    }

    /// Discard values failing `keep` (panics after 1000 consecutive
    /// rejections — `reason` names the filter in that message).
    fn prop_filter<F>(self, reason: impl Into<String>, keep: F) -> BoxedStrategy<Self::Value>
    where
        Self: Sized,
        Self::Value: 'static,
        F: Fn(&Self::Value) -> bool + 'static,
    {
        let reason = reason.into();
        let s = self;
        BoxedStrategy::from_fn(move |rng| {
            for _ in 0..1000 {
                let value = s.generate(rng);
                if keep(&value) {
                    return value;
                }
            }
            panic!("prop_filter `{reason}` rejected 1000 consecutive values");
        })
    }

    /// Derive a second strategy from each generated value.
    fn prop_flat_map<S2, F>(self, f: F) -> BoxedStrategy<S2::Value>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2 + 'static,
    {
        let s = self;
        BoxedStrategy::from_fn(move |rng| f(s.generate(rng)).generate(rng))
    }

    /// Recursive structures: `self` is the leaf case, `branch` builds one
    /// level on top of the strategy for the level below. `depth` bounds
    /// nesting; the size-hint parameters are accepted for API parity.
    fn prop_recursive<S2, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        branch: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized,
        Self::Value: 'static,
        S2: Strategy<Value = Self::Value>,
        F: Fn(BoxedStrategy<Self::Value>) -> S2 + 'static,
    {
        let leaf = self.boxed();
        let mut current = leaf.clone();
        for _ in 0..depth {
            let deeper = branch(current).boxed();
            let leaf = leaf.clone();
            // Half the draws stay at the leaf so generated trees stay
            // bounded even at full depth.
            current = BoxedStrategy::from_fn(move |rng| {
                if rng.gen_bool(0.5) {
                    leaf.generate(rng)
                } else {
                    deeper.generate(rng)
                }
            });
        }
        current
    }

    /// Type-erase.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized,
        Self::Value: 'static,
    {
        BoxedStrategy::from_fn(move |rng| self.generate(rng))
    }
}

/// A type-erased, cheaply-cloneable strategy.
pub struct BoxedStrategy<T> {
    gen: Rc<dyn Fn(&mut TestRng) -> T>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> BoxedStrategy<T> {
        BoxedStrategy {
            gen: Rc::clone(&self.gen),
        }
    }
}

impl<T: 'static> BoxedStrategy<T> {
    fn from_fn(f: impl Fn(&mut TestRng) -> T + 'static) -> BoxedStrategy<T> {
        BoxedStrategy { gen: Rc::new(f) }
    }
}

impl<T: 'static> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.gen)(rng)
    }
}

/// Weighted union of boxed strategies (backs `prop_oneof!`).
pub fn union<T: 'static>(arms: Vec<(u32, BoxedStrategy<T>)>) -> BoxedStrategy<T> {
    assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
    let total: u64 = arms.iter().map(|(w, _)| *w as u64).sum();
    assert!(total > 0, "prop_oneof! weights sum to zero");
    BoxedStrategy::from_fn(move |rng| {
        let mut pick = rng.gen_range(0..total);
        for (weight, strat) in &arms {
            let weight = *weight as u64;
            if pick < weight {
                return strat.generate(rng);
            }
            pick -= weight;
        }
        unreachable!("pick < total")
    })
}

/// Strategy producing one constant value.
#[derive(Clone, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone + 'static> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical full-range strategy (see [`any`]).
pub trait Arbitrary: Sized + 'static {
    /// Draw one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($ty:ty),* $(,)?) => {
        $(
            impl Arbitrary for $ty {
                fn arbitrary(rng: &mut TestRng) -> $ty {
                    rng.next_u64() as $ty
                }
            }
        )*
    };
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for u128 {
    fn arbitrary(rng: &mut TestRng) -> u128 {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Arbitrary for i128 {
    fn arbitrary(rng: &mut TestRng) -> i128 {
        u128::arbitrary(rng) as i128
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Raw bit patterns: covers subnormals, infinities, and NaN, which
        // is what codec roundtrip tests want to see (they filter finite
        // when equality matters).
        f64::from_bits(rng.next_u64())
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        f32::from_bits(rng.next_u64() as u32)
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> char {
        // Mostly ASCII, occasionally any scalar value.
        if rng.gen_bool(0.9) {
            (rng.gen_range(0x20u32..0x7F)) as u8 as char
        } else {
            char::from_u32(rng.gen_range(0u32..0xD800)).expect("below surrogates")
        }
    }
}

/// Strategy for an [`Arbitrary`] type.
pub struct Any<T> {
    _marker: PhantomData<fn() -> T>,
}

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: PhantomData,
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! range_strategy {
    ($($ty:ty),* $(,)?) => {
        $(
            impl Strategy for Range<$ty> {
                type Value = $ty;
                fn generate(&self, rng: &mut TestRng) -> $ty {
                    rng.gen_range(self.clone())
                }
            }

            impl Strategy for RangeInclusive<$ty> {
                type Value = $ty;
                fn generate(&self, rng: &mut TestRng) -> $ty {
                    rng.gen_range(self.clone())
                }
            }
        )*
    };
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// String pattern shorthand: a `&str` is a regex-subset strategy (see
/// [`string::string_regex`] for the supported syntax).
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        string::string_regex(self)
            .unwrap_or_else(|e| panic!("bad string strategy pattern `{self}`: {e}"))
            .generate(rng)
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {
        $(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    #[allow(non_snake_case)]
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )*
    };
}

tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

/// Fixed-shape vector: one strategy per element, in order.
impl<S: Strategy> Strategy for Vec<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        self.iter().map(|s| s.generate(rng)).collect()
    }
}

/// The glob-import surface tests use.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy, TestRng,
    };
}

/// Define property tests. Supports an optional leading
/// `#![proptest_config(...)]` and any number of
/// `#[test] fn name(pat in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                for __case in 0..__config.cases {
                    let mut __rng = $crate::TestRng::for_case(
                        concat!(module_path!(), "::", stringify!($name)),
                        __case,
                    );
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)+
                    $body
                }
            }
        )*
    };
}

/// Union of strategies; arms may be plain or `weight => strategy`.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::union(vec![$((($weight) as u32, $crate::Strategy::boxed($strat))),+])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::union(vec![$((1u32, $crate::Strategy::boxed($strat))),+])
    };
}

/// Assertion inside a property (no shrinking: delegates to `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($tokens:tt)*) => { assert!($($tokens)*) };
}

/// Equality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tokens:tt)*) => { assert_eq!($($tokens)*) };
}

/// Inequality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tokens:tt)*) => { assert_ne!($($tokens)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::Strategy;

    #[test]
    fn deterministic_across_rng_rebuilds() {
        let strat = crate::collection::vec(0u64..1000, 1..10);
        let mut a = TestRng::for_case("t", 3);
        let mut b = TestRng::for_case("t", 3);
        assert_eq!(strat.generate(&mut a), strat.generate(&mut b));
    }

    #[test]
    fn ranges_and_tuples() {
        let mut rng = TestRng::for_case("rt", 0);
        for _ in 0..200 {
            let (a, b) = (1u8..=3, -5i64..5).generate(&mut rng);
            assert!((1..=3).contains(&a));
            assert!((-5..5).contains(&b));
        }
    }

    #[test]
    fn oneof_and_filter() {
        let strat = prop_oneof![Just(1u32), (10u32..20).prop_filter("even", |v| v % 2 == 0)];
        let mut rng = TestRng::for_case("of", 0);
        for _ in 0..200 {
            let v = strat.generate(&mut rng);
            assert!(v == 1 || ((10..20).contains(&v) && v % 2 == 0));
        }
    }

    #[test]
    fn recursive_bottoms_out() {
        #[derive(Debug)]
        enum Tree {
            #[allow(dead_code)]
            Leaf(u8),
            Node(Vec<Tree>),
        }
        fn depth(t: &Tree) -> usize {
            match t {
                Tree::Leaf(_) => 1,
                Tree::Node(children) => 1 + children.iter().map(depth).max().unwrap_or(0),
            }
        }
        let strat = (0u8..10)
            .prop_map(Tree::Leaf)
            .prop_recursive(3, 16, 4, |inner| {
                crate::collection::vec(inner, 1..3).prop_map(Tree::Node)
            });
        let mut rng = TestRng::for_case("rec", 1);
        for _ in 0..100 {
            assert!(depth(&strat.generate(&mut rng)) <= 4);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn macro_form_works(x in 0u32..10, s in "[a-z]{1,4}", opt in crate::option::of(any::<bool>())) {
            prop_assert!(x < 10);
            prop_assert!((1..=4).contains(&s.len()));
            prop_assert!(s.bytes().all(|b| b.is_ascii_lowercase()));
            let _ = opt;
        }
    }
}
