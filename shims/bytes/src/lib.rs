//! Minimal `bytes`-compatible byte buffers for offline builds.
//!
//! [`Bytes`] is a cheaply-cloneable view into shared immutable storage;
//! [`BytesMut`] is a growable buffer; [`Buf`]/[`BufMut`] are the cursor
//! traits the protocol codecs are written against. Only little-endian
//! accessors are provided — the legacy wire format is LE throughout.

use std::ops::{Bound, RangeBounds};
use std::sync::Arc;

fn resolve_range(range: impl RangeBounds<usize>, len: usize) -> (usize, usize) {
    let start = match range.start_bound() {
        Bound::Included(&n) => n,
        Bound::Excluded(&n) => n + 1,
        Bound::Unbounded => 0,
    };
    let end = match range.end_bound() {
        Bound::Included(&n) => n + 1,
        Bound::Excluded(&n) => n,
        Bound::Unbounded => len,
    };
    assert!(start <= end && end <= len, "range out of bounds");
    (start, end)
}

/// A cheaply-cloneable immutable byte buffer.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// Empty buffer.
    pub fn new() -> Bytes {
        Bytes::from(Vec::new())
    }

    /// Buffer over a static slice (copied; the shim has no zero-copy path).
    pub fn from_static(data: &'static [u8]) -> Bytes {
        Bytes::copy_from_slice(data)
    }

    /// Buffer copied from `data`.
    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes::from(data.to_vec())
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// A sub-view sharing the same storage.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let (start, end) = resolve_range(range, self.len());
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + start,
            end: self.start + end,
        }
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Bytes {
        let end = data.len();
        Bytes {
            data: data.into(),
            start: 0,
            end,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(data: &[u8]) -> Bytes {
        Bytes::copy_from_slice(data)
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.iter() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self[..] == other[..]
    }
}
impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self[..] == *other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self[..] == **other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self[..] == other[..]
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self[..].hash(state);
    }
}

/// A growable byte buffer.
#[derive(Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    buf: Vec<u8>,
    /// Read offset: everything before it has been consumed via `advance`
    /// or `split_to`. Compacted lazily to keep those operations cheap.
    head: usize,
}

impl BytesMut {
    /// Empty buffer.
    pub fn new() -> BytesMut {
        BytesMut::default()
    }

    /// Empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut {
            buf: Vec::with_capacity(cap),
            head: 0,
        }
    }

    /// Length of the unconsumed portion.
    pub fn len(&self) -> usize {
        self.buf.len() - self.head
    }

    /// Whether the unconsumed portion is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Reserve room for `additional` more bytes.
    pub fn reserve(&mut self, additional: usize) {
        self.compact();
        self.buf.reserve(additional);
    }

    /// Append `data`.
    pub fn extend_from_slice(&mut self, data: &[u8]) {
        self.buf.extend_from_slice(data);
    }

    /// Truncate the unconsumed portion to `len` bytes.
    pub fn truncate(&mut self, len: usize) {
        if len < self.len() {
            self.buf.truncate(self.head + len);
        }
    }

    /// Split off and return the first `at` bytes; `self` keeps the rest.
    pub fn split_to(&mut self, at: usize) -> BytesMut {
        assert!(at <= self.len(), "split_to out of bounds");
        let front = self[..at].to_vec();
        self.head += at;
        self.compact();
        BytesMut {
            buf: front,
            head: 0,
        }
    }

    /// Freeze into an immutable [`Bytes`].
    pub fn freeze(mut self) -> Bytes {
        self.compact();
        Bytes::from(self.buf)
    }

    fn compact(&mut self) {
        if self.head > 0 {
            self.buf.drain(..self.head);
            self.head = 0;
        }
    }
}

impl std::ops::Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.buf[self.head..]
    }
}

impl std::ops::DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        let head = self.head;
        &mut self.buf[head..]
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl std::fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "BytesMut({} bytes)", self.len())
    }
}

impl From<Vec<u8>> for BytesMut {
    fn from(buf: Vec<u8>) -> BytesMut {
        BytesMut { buf, head: 0 }
    }
}

macro_rules! buf_get_impl {
    ($($name:ident => $ty:ty),* $(,)?) => {
        $(
            /// Read one little-endian value, advancing the cursor.
            fn $name(&mut self) -> $ty {
                let mut raw = [0u8; std::mem::size_of::<$ty>()];
                self.copy_to_slice(&mut raw);
                <$ty>::from_le_bytes(raw)
            }
        )*
    };
}

/// Cursor-style reads over a contiguous byte source.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// The unread bytes.
    fn chunk(&self) -> &[u8];
    /// Consume `cnt` bytes.
    fn advance(&mut self, cnt: usize);

    /// Whether any bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Read into `dst`, advancing the cursor.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "buffer underflow");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    /// Read `len` bytes into an owned [`Bytes`], advancing the cursor.
    fn copy_to_bytes(&mut self, len: usize) -> Bytes {
        assert!(self.remaining() >= len, "buffer underflow");
        let out = Bytes::copy_from_slice(&self.chunk()[..len]);
        self.advance(len);
        out
    }

    /// Read one byte.
    fn get_u8(&mut self) -> u8 {
        let b = self.chunk()[0];
        self.advance(1);
        b
    }

    /// Read one signed byte.
    fn get_i8(&mut self) -> i8 {
        self.get_u8() as i8
    }

    buf_get_impl! {
        get_u16_le => u16,
        get_i16_le => i16,
        get_u32_le => u32,
        get_i32_le => i32,
        get_u64_le => u64,
        get_i64_le => i64,
        get_u128_le => u128,
        get_i128_le => i128,
    }

    /// Read one little-endian f64.
    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }

    /// Read one little-endian f32.
    fn get_f32_le(&mut self) -> f32 {
        f32::from_bits(self.get_u32_le())
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self
    }
    fn advance(&mut self, cnt: usize) {
        *self = &self[cnt..];
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self
    }
    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end");
        self.start += cnt;
    }
}

impl Buf for BytesMut {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self
    }
    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end");
        self.head += cnt;
    }
}

impl<T: Buf + ?Sized> Buf for &mut T {
    fn remaining(&self) -> usize {
        (**self).remaining()
    }
    fn chunk(&self) -> &[u8] {
        (**self).chunk()
    }
    fn advance(&mut self, cnt: usize) {
        (**self).advance(cnt)
    }
}

macro_rules! buf_put_impl {
    ($($name:ident => $ty:ty),* $(,)?) => {
        $(
            /// Append one value in little-endian order.
            fn $name(&mut self, v: $ty) {
                self.put_slice(&v.to_le_bytes());
            }
        )*
    };
}

/// Append-style writes into a growable byte sink.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append one signed byte.
    fn put_i8(&mut self, v: i8) {
        self.put_u8(v as u8);
    }

    buf_put_impl! {
        put_u16_le => u16,
        put_i16_le => i16,
        put_u32_le => u32,
        put_i32_le => i32,
        put_u64_le => u64,
        put_i64_le => i64,
        put_u128_le => u128,
        put_i128_le => i128,
    }

    /// Append one little-endian f64.
    fn put_f64_le(&mut self, v: f64) {
        self.put_u64_le(v.to_bits());
    }

    /// Append one little-endian f32.
    fn put_f32_le(&mut self, v: f32) {
        self.put_u32_le(v.to_bits());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

impl<T: BufMut + ?Sized> BufMut for &mut T {
    fn put_slice(&mut self, src: &[u8]) {
        (**self).put_slice(src)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_slice_shares_storage() {
        let b = Bytes::from(vec![1, 2, 3, 4, 5]);
        let s = b.slice(1..4);
        assert_eq!(&s[..], &[2, 3, 4]);
        assert_eq!(b.len(), 5);
    }

    #[test]
    fn bytes_buf_cursor() {
        let mut b = Bytes::from(vec![1, 0, 2, 0, 0, 0]);
        assert_eq!(b.get_u16_le(), 1);
        assert_eq!(b.get_u32_le(), 2);
        assert_eq!(b.remaining(), 0);
    }

    #[test]
    fn slice_ref_buf() {
        let data = [7u8, 0, 42];
        let mut cursor = &data[..];
        assert_eq!(cursor.get_u16_le(), 7);
        assert_eq!(cursor.get_u8(), 42);
        // Rvalue receiver form used by the frame decoder.
        assert_eq!((&data[..2]).get_u16_le(), 7);
    }

    #[test]
    fn bytes_mut_roundtrip() {
        let mut m = BytesMut::with_capacity(16);
        m.put_u32_le(0xDEAD_BEEF);
        m.put_i64_le(-5);
        m.put_f64_le(1.5);
        m.put_i128_le(-12345);
        let mut r = m.freeze();
        assert_eq!(r.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(r.get_i64_le(), -5);
        assert_eq!(r.get_f64_le(), 1.5);
        assert_eq!(r.get_i128_le(), -12345);
    }

    #[test]
    fn bytes_mut_split_advance_truncate() {
        let mut m = BytesMut::new();
        m.extend_from_slice(b"hello world");
        let head = m.split_to(6);
        assert_eq!(&head[..], b"hello ");
        assert_eq!(&m[..], b"world");
        m.advance(1);
        assert_eq!(&m[..], b"orld");
        m.truncate(2);
        assert_eq!(&m[..], b"or");
        assert_eq!(&m.freeze()[..], b"or");
    }

    #[test]
    fn copy_to_bytes_advances() {
        let mut b = Bytes::from(vec![1, 2, 3, 4]);
        let front = b.copy_to_bytes(3);
        assert_eq!(&front[..], &[1, 2, 3]);
        assert_eq!(b.remaining(), 1);
    }
}
