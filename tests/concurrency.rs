//! Multi-session concurrency suite (DESIGN §11): many real TCP clients
//! against one node exercising the shared job-worker runtime, admission
//! control, the session registry, and the drain/shutdown lifecycle.
//!
//! The invariants under test:
//!
//! - **Job isolation**: concurrent imports land exactly their own rows in
//!   their own tables; exports see consistent snapshots.
//! - **Bounded threads**: the worker pool is sized once at node startup —
//!   16 concurrent jobs start zero additional converter/writer threads.
//! - **Fair completion**: every client finishes; no job starves behind a
//!   neighbor on the shared queues.
//! - **Admission control**: past the configured limits the node answers
//!   retryable `SERVER_BUSY`, and the client's backoff rides it out.
//! - **Lifecycle**: `drain()` finishes in-flight jobs while rejecting new
//!   logons; `shutdown()` aborts sessions and joins the accept loop.

use std::sync::Arc;
use std::time::{Duration, Instant};

use etlv_core::{Virtualizer, VirtualizerConfig};
use etlv_legacy_client::{
    ClientError, ClientOptions, LegacyEtlClient, RetryPolicy, Session, TcpConnector,
};
use etlv_protocol::errcode::ErrCode;
use etlv_protocol::message::{BeginLoad, EndLoad, Message, SessionRole};
mod common;

fn options() -> ClientOptions {
    ClientOptions {
        chunk_rows: 50,
        sessions: Some(1),
        read_timeout: Some(Duration::from_secs(20)),
        ..Default::default()
    }
}
use common::{export_job, labeled_kv_rows, mem_connector, simple_import_job, wait_idle};

/// 16 real TCP clients at once — 10 imports into distinct tables, 3
/// exports, 3 SQL sessions — multiplexed over ONE fixed worker pool.
#[test]
fn sixteen_concurrent_tcp_clients_share_one_worker_pool() {
    const IMPORTS: usize = 10;
    const EXPORTS: usize = 3;
    const SQL: usize = 3;
    const ROWS: usize = 200;

    let v = Virtualizer::new(VirtualizerConfig::default());
    for i in 0..IMPORTS {
        v.cdw()
            .execute(&format!("CREATE TABLE T{i} (A VARCHAR(8), B VARCHAR(32))"))
            .unwrap();
    }
    v.cdw()
        .execute("CREATE TABLE SRC (A VARCHAR(8), B VARCHAR(32))")
        .unwrap();
    for i in 0..50 {
        v.cdw()
            .execute(&format!("INSERT INTO SRC VALUES ('s{i:03}', 'src-{i:03}')"))
            .unwrap();
    }

    let server = v.listen_tcp("127.0.0.1:0").expect("bind");
    let addr = server.addr().to_string();

    // The pool is sized once at startup; its threads are spawned during
    // node assembly but may not have been scheduled yet on a loaded box,
    // so wait for them before snapshotting the during-burst delta.
    let workers = v.obs().runtime.workers.value();
    assert!(workers > 0, "shared runtime must be running");
    let deadline = Instant::now() + Duration::from_secs(5);
    while v.obs().runtime.threads_started.value() < workers {
        assert!(
            Instant::now() < deadline,
            "worker threads never came up: {} of {workers}",
            v.obs().runtime.threads_started.value()
        );
        std::thread::yield_now();
    }
    let threads_before = v.obs().runtime.threads_started.value();
    assert_eq!(threads_before, workers, "every worker thread started once");

    let mut handles = Vec::new();
    for i in 0..IMPORTS {
        let addr = addr.clone();
        handles.push(std::thread::spawn(move || {
            let client =
                LegacyEtlClient::with_options(Arc::new(TcpConnector::new(addr)), options());
            let result = client
                .run_import_data(
                    &simple_import_job(&format!("T{i}")),
                    &labeled_kv_rows(ROWS, i),
                )
                .unwrap();
            assert_eq!(result.report.rows_applied, ROWS as u64, "client {i}");
            assert_eq!(result.report.errors_et + result.report.errors_uv, 0);
        }));
    }
    for _ in 0..EXPORTS {
        let addr = addr.clone();
        handles.push(std::thread::spawn(move || {
            let client =
                LegacyEtlClient::with_options(Arc::new(TcpConnector::new(addr)), options());
            let result = client
                .run_export(&export_job("select A, B from SRC order by A"))
                .unwrap();
            assert_eq!(result.rows, 50);
        }));
    }
    for _ in 0..SQL {
        let addr = addr.clone();
        handles.push(std::thread::spawn(move || {
            let connector = TcpConnector::new(addr);
            let mut session =
                Session::logon(&connector, "ops", "pw", SessionRole::Control, 0).unwrap();
            for _ in 0..10 {
                let r = session.sql("SEL COUNT(*) FROM SRC").unwrap();
                assert_eq!(r.rows[0][0].display_text(), "50");
            }
            session.logoff();
        }));
    }

    // Fair completion: every one of the 16 clients finishes.
    for handle in handles {
        handle.join().expect("client thread panicked");
    }

    // Job isolation: each table holds exactly its own client's rows.
    for i in 0..IMPORTS {
        assert_eq!(v.cdw().table_len(&format!("T{i}")).unwrap(), ROWS);
        let r = v
            .cdw()
            .execute(&format!("SELECT B FROM T{i} WHERE A = 'k0007'"))
            .unwrap();
        assert_eq!(r.rows[0][0].display_text(), format!("client-{i}-row-0007"));
    }

    // Bounded threads: 16 concurrent jobs started ZERO new workers.
    assert_eq!(
        v.obs().runtime.threads_started.value(),
        threads_before,
        "the shared pool must not grow with job count"
    );

    // The node is idle and the books balance.
    wait_idle(&v);
    assert_eq!(v.credits().available(), v.credits().capacity());
    assert_eq!(v.memory().in_flight(), 0);
    let m = v.metrics();
    assert_eq!(m.jobs_completed, IMPORTS as u64);
    assert_eq!(m.jobs_failed, 0);
    assert_eq!(m.jobs_aborted, 0);
    assert_eq!(
        v.obs().gateway.sessions_opened.value(),
        v.obs().gateway.sessions_closed.value()
    );
    server.shutdown();
}

/// At `max_concurrent_jobs` the node answers retryable SERVER_BUSY; a
/// zero-budget client surfaces it, a default client backs off and wins
/// once the slot frees.
#[test]
fn job_admission_limit_bounces_then_recovers() {
    let config = VirtualizerConfig {
        max_concurrent_jobs: 1,
        ..Default::default()
    };
    let v = Virtualizer::new(config);
    v.cdw()
        .execute("CREATE TABLE T0 (A VARCHAR(8), B VARCHAR(32))")
        .unwrap();
    v.cdw()
        .execute("CREATE TABLE HOLD (A VARCHAR(8), B VARCHAR(32))")
        .unwrap();
    let connector = mem_connector(&v);

    // Occupy the single job slot by hand.
    let hold = simple_import_job("HOLD");
    let mut control =
        Session::logon(connector.as_ref(), "u", "p", SessionRole::Control, 0).unwrap();
    let reply = control
        .request(Message::BeginLoad(BeginLoad {
            target_table: hold.target.clone(),
            error_table_et: hold.error_table_et.clone(),
            error_table_uv: hold.error_table_uv.clone(),
            layout: hold.layout.clone(),
            format: hold.format,
            sessions: 1,
            error_limit: 0,
            trace: None,
        }))
        .unwrap();
    assert!(matches!(reply, Message::BeginLoadOk { .. }));

    // No retry budget: the rejection surfaces as a busy server error.
    let impatient = LegacyEtlClient::with_options(
        connector.clone(),
        ClientOptions {
            busy_retry: RetryPolicy {
                budget: 0,
                ..Default::default()
            },
            ..options()
        },
    );
    let err = impatient
        .run_import_data(&simple_import_job("T0"), &labeled_kv_rows(20, 0))
        .unwrap_err();
    assert!(err.is_busy(), "expected SERVER_BUSY, got {err:?}");
    match err {
        ClientError::Server { code, .. } => assert_eq!(code, ErrCode::SERVER_BUSY.0),
        other => panic!("expected a server error, got {other:?}"),
    }
    assert!(v.obs().gateway.admission_rejections.value() >= 1);

    // Default budget: the client keeps retrying while a helper thread
    // releases the held slot, and the import completes.
    let patient = LegacyEtlClient::with_options(connector.clone(), options());
    let releaser = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(40));
        let report = control
            .request(Message::EndLoad(EndLoad {
                dml: hold.dml.clone(),
            }))
            .unwrap();
        assert!(matches!(report, Message::LoadReport(_)));
        control.logoff();
    });
    let result = patient
        .run_import_data(&simple_import_job("T0"), &labeled_kv_rows(20, 0))
        .unwrap();
    assert_eq!(result.report.rows_applied, 20);
    releaser.join().unwrap();
    assert_eq!(v.cdw().table_len("T0").unwrap(), 20);
    wait_idle(&v);
}

/// The session registry refuses logons past `max_sessions` with
/// SERVER_BUSY and admits again once a session closes.
#[test]
fn session_limit_rejects_logon_until_a_slot_frees() {
    let config = VirtualizerConfig {
        max_sessions: 2,
        ..Default::default()
    };
    let v = Virtualizer::new(config);
    let connector = mem_connector(&v);

    let s1 = Session::logon(connector.as_ref(), "a", "p", SessionRole::Control, 0).unwrap();
    let s2 = Session::logon(connector.as_ref(), "b", "p", SessionRole::Control, 0).unwrap();
    assert_eq!(v.active_sessions(), 2);

    let err = match Session::logon(connector.as_ref(), "c", "p", SessionRole::Control, 0) {
        Err(e) => e,
        Ok(_) => panic!("third logon must be rejected"),
    };
    match err {
        ClientError::Server { code, .. } => assert_eq!(code, ErrCode::SERVER_BUSY.0),
        other => panic!("expected SERVER_BUSY, got {other:?}"),
    }

    s2.logoff();
    let deadline = Instant::now() + Duration::from_secs(5);
    while v.active_sessions() > 1 {
        assert!(Instant::now() < deadline, "logoff not observed");
        std::thread::sleep(Duration::from_millis(5));
    }
    let s3 = Session::logon(connector.as_ref(), "c", "p", SessionRole::Control, 0).unwrap();
    s3.logoff();
    s1.logoff();
    wait_idle(&v);
    assert_eq!(
        v.obs().gateway.sessions_opened.value(),
        v.obs().gateway.sessions_closed.value()
    );
}

/// Graceful drain: in-flight jobs run to completion, new logons bounce
/// with SHUTTING_DOWN, and `drain()` reports success.
#[test]
fn drain_finishes_inflight_jobs_and_rejects_new_logons() {
    let v = Virtualizer::new(VirtualizerConfig::default());
    v.cdw()
        .execute("CREATE TABLE T0 (A VARCHAR(8), B VARCHAR(32))")
        .unwrap();
    let server = v.listen_tcp("127.0.0.1:0").expect("bind");
    let connector = TcpConnector::new(server.addr().to_string());

    // A job mid-flight: load begun, nothing applied yet.
    let job = simple_import_job("T0");
    let mut control = Session::logon(&connector, "u", "p", SessionRole::Control, 0).unwrap();
    let reply = control
        .request(Message::BeginLoad(BeginLoad {
            target_table: job.target.clone(),
            error_table_et: job.error_table_et.clone(),
            error_table_uv: job.error_table_uv.clone(),
            layout: job.layout.clone(),
            format: job.format,
            sessions: 1,
            error_limit: 0,
            trace: None,
        }))
        .unwrap();
    assert!(matches!(reply, Message::BeginLoadOk { .. }));

    v.begin_drain();

    // New logons are refused while the node drains (the accept loop is
    // still up until `drain()` is called, so the rejection is in-band).
    let err = match Session::logon(&connector, "x", "p", SessionRole::Control, 0) {
        Err(e) => e,
        Ok(_) => panic!("logon during drain must be rejected"),
    };
    match err {
        ClientError::Server { code, .. } => assert_eq!(code, ErrCode::SHUTTING_DOWN.0),
        other => panic!("expected SHUTTING_DOWN, got {other:?}"),
    }
    // ... and so are new jobs on existing sessions.
    assert!(v.draining());

    // The in-flight job still completes normally.
    let finisher = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(30));
        let report = control
            .request(Message::EndLoad(EndLoad {
                dml: job.dml.clone(),
            }))
            .unwrap();
        let Message::LoadReport(report) = report else {
            panic!("expected LoadReport, got {report:?}");
        };
        assert_eq!(report.rows_received, 0);
        control.logoff();
    });
    assert!(
        server.drain(),
        "drain must finish the in-flight job in time"
    );
    finisher.join().unwrap();
    assert_eq!(v.active_jobs(), 0);
    assert_eq!(v.metrics().jobs_aborted, 0, "drained, not aborted");
}

/// Hard shutdown: open sessions are stopped, their jobs aborted, the
/// accept loop joins, and the port stops answering.
#[test]
fn shutdown_aborts_open_sessions_and_joins_accept_loop() {
    let v = Virtualizer::new(VirtualizerConfig::default());
    v.cdw()
        .execute("CREATE TABLE T0 (A VARCHAR(8), B VARCHAR(32))")
        .unwrap();
    let server = v.listen_tcp("127.0.0.1:0").expect("bind");
    let addr = server.addr();
    let connector = TcpConnector::new(addr.to_string());

    let job = simple_import_job("T0");
    let mut control = Session::logon(&connector, "u", "p", SessionRole::Control, 0).unwrap();
    let reply = control
        .request(Message::BeginLoad(BeginLoad {
            target_table: job.target.clone(),
            error_table_et: job.error_table_et.clone(),
            error_table_uv: job.error_table_uv.clone(),
            layout: job.layout.clone(),
            format: job.format,
            sessions: 1,
            error_limit: 0,
            trace: None,
        }))
        .unwrap();
    assert!(matches!(reply, Message::BeginLoadOk { .. }));
    assert_eq!(v.active_jobs(), 1);

    // shutdown() blocks until the accept loop and session threads join.
    server.shutdown();

    assert_eq!(v.active_jobs(), 0, "open job aborted by shutdown");
    assert_eq!(v.active_sessions(), 0);
    assert_eq!(v.metrics().jobs_aborted, 1);
    assert_eq!(v.credits().available(), v.credits().capacity());
    assert_eq!(v.memory().in_flight(), 0);
    assert!(
        std::net::TcpStream::connect(addr).is_err(),
        "listener must be closed after shutdown"
    );
}
