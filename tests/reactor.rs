//! Reactor front-end suite (DESIGN §16): the event-driven TCP path
//! under connection-scale pressure, torn frames, floods, idle reaping,
//! and abrupt disconnects.
//!
//! The invariants under test:
//!
//! - **Fixed threads**: hundreds of concurrent keepalive sessions run
//!   on the same OS-thread count as a handful — connections are state
//!   machines on the loop threads, not threads.
//! - **Byte-boundary robustness**: a frame dribbled one byte at a time
//!   over real TCP parses exactly like one written whole.
//! - **Partial-write resumption**: a reply flood that overruns the
//!   socket buffer drains correctly, in order, without loss.
//! - **Idle reaping**: the timer wheel reaps quiet sessions with the
//!   `IDLE_TIMEOUT` farewell and keeps the gauges truthful.
//! - **Disconnect safety**: a yanked connection aborts the jobs its
//!   session owned, even mid-dispatch.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use etlv_core::{Virtualizer, VirtualizerConfig};
use etlv_legacy_client::{Session, TcpConnector};
use etlv_protocol::errcode::ErrCode;
use etlv_protocol::frame::FrameDecoder;
use etlv_protocol::message::{BeginLoad, Logon, Message, SessionRole};

mod common;
use common::simple_import_job;

/// OS threads of this process right now (`/proc/self/status`).
fn os_threads() -> usize {
    let status = std::fs::read_to_string("/proc/self/status").expect("proc status");
    status
        .lines()
        .find_map(|l| l.strip_prefix("Threads:"))
        .and_then(|v| v.trim().parse().ok())
        .expect("Threads: line")
}

fn encode(msg: Message, session: u32, seq: u32) -> Vec<u8> {
    let mut buf = bytes::BytesMut::new();
    msg.into_frame(session, seq).encode(&mut buf);
    buf.to_vec()
}

/// Read messages off a raw socket until `n` have arrived.
fn read_messages(stream: &mut TcpStream, n: usize) -> Vec<Message> {
    let mut decoder = FrameDecoder::new();
    let mut out = Vec::with_capacity(n);
    let mut buf = [0u8; 4096];
    while out.len() < n {
        let read = stream.read(&mut buf).expect("read");
        assert!(read > 0, "peer closed after {} of {n} messages", out.len());
        decoder.feed(&buf[..read]);
        while let Some(frame) = decoder.next_frame().expect("clean frames") {
            out.push(Message::from_frame(&frame).expect("decodable message"));
        }
    }
    out
}

/// 300 concurrent keepalive sessions must not grow the process thread
/// count the way thread-per-connection did (+1 thread each): the loops
/// and the dispatch pool are sized at startup, so the delta across 300
/// logons stays near zero (small slack for unrelated test binaries'
/// runtime noise is not needed — this binary runs its tests on its own
/// threads, which already exist when the baseline is taken).
#[test]
fn hundreds_of_keepalive_sessions_hold_thread_count_fixed() {
    const SESSIONS: usize = 300;
    let v = Virtualizer::new(VirtualizerConfig {
        max_sessions: SESSIONS + 16,
        ..Default::default()
    });
    let server = v.listen_tcp("127.0.0.1:0").expect("bind");
    let connector = TcpConnector::new(server.addr().to_string());

    // Warm up: first sessions pull every lazily-started thread in.
    let mut held: Vec<Session> = (0..8)
        .map(|i| {
            Session::logon(&connector, &format!("w{i}"), "p", SessionRole::Control, 0).unwrap()
        })
        .collect();
    let baseline = os_threads();

    for i in held.len()..SESSIONS {
        held.push(
            Session::logon(&connector, &format!("u{i}"), "p", SessionRole::Control, 0).unwrap(),
        );
    }
    let grown = os_threads();
    assert!(
        grown <= baseline + 2,
        "thread count must not scale with connections: {baseline} -> {grown}"
    );
    assert_eq!(v.active_sessions(), SESSIONS);
    assert_eq!(v.obs().reactor.conns.value(), SESSIONS as u64);

    // Every session is live: a keepalive sweep answers on all of them.
    for session in &mut held {
        let reply = session.request(Message::Keepalive).unwrap();
        assert!(matches!(reply, Message::Keepalive));
    }

    for session in held {
        session.logoff();
    }
    let deadline = Instant::now() + Duration::from_secs(10);
    while v.active_sessions() > 0 {
        assert!(Instant::now() < deadline, "sessions must close on logoff");
        std::thread::sleep(Duration::from_millis(5));
    }
    server.shutdown();
    assert_eq!(v.obs().server.conn_setup_errors.value(), 0);
}

/// A logon dribbled one byte at a time (with pauses inside the header,
/// payload, and CRC) must behave exactly like one written whole.
#[test]
fn byte_dribbled_frames_parse_over_tcp() {
    let v = Virtualizer::new(VirtualizerConfig::default());
    let server = v.listen_tcp("127.0.0.1:0").expect("bind");
    let mut stream = TcpStream::connect(server.addr()).expect("connect");
    stream.set_nodelay(true).unwrap();

    let logon = encode(
        Message::Logon(Logon {
            username: "dribble".into(),
            password: "p".into(),
            role: SessionRole::Control,
            job_token: 0,
            trace: None,
        }),
        0,
        0,
    );
    for byte in &logon {
        stream.write_all(std::slice::from_ref(byte)).unwrap();
        std::thread::sleep(Duration::from_micros(200));
    }
    let session = match &read_messages(&mut stream, 1)[0] {
        Message::LogonOk(ok) => ok.session,
        other => panic!("expected LogonOk, got {other:?}"),
    };

    // A keepalive split at an awkward boundary (mid-length-field).
    let keepalive = encode(Message::Keepalive, session, 1);
    stream.write_all(&keepalive[..13]).unwrap();
    std::thread::sleep(Duration::from_millis(20));
    stream.write_all(&keepalive[13..]).unwrap();
    assert!(matches!(
        read_messages(&mut stream, 1)[0],
        Message::Keepalive
    ));

    let logoff = encode(Message::Logoff, session, 2);
    stream.write_all(&logoff).unwrap();
    assert!(matches!(
        read_messages(&mut stream, 1)[0],
        Message::LogoffOk
    ));
    server.shutdown();
}

/// Pipeline thousands of keepalives without reading a single reply:
/// the reply backlog overruns the socket send buffer, forcing the
/// writer through its partial-write / `EPOLLOUT` resumption path. All
/// replies must then arrive, in order.
#[test]
fn reply_flood_resumes_partial_writes_in_order() {
    const FLOOD: usize = 20_000;
    let v = Virtualizer::new(VirtualizerConfig::default());
    let server = v.listen_tcp("127.0.0.1:0").expect("bind");
    let mut stream = TcpStream::connect(server.addr()).expect("connect");
    stream.set_nodelay(true).unwrap();

    let logon = encode(
        Message::Logon(Logon {
            username: "flood".into(),
            password: "p".into(),
            role: SessionRole::Control,
            job_token: 0,
            trace: None,
        }),
        0,
        0,
    );
    stream.write_all(&logon).unwrap();
    let session = match &read_messages(&mut stream, 1)[0] {
        Message::LogonOk(ok) => ok.session,
        other => panic!("expected LogonOk, got {other:?}"),
    };

    let mut burst = Vec::new();
    for seq in 0..FLOOD as u32 {
        burst.extend_from_slice(&encode(Message::Keepalive, session, seq + 1));
    }
    // A second thread keeps the pipe full while this one drains
    // replies — a single thread doing both could deadlock on two full
    // socket buffers, which would be a client bug, not a server one.
    let mut write_half = stream.try_clone().expect("clone socket");
    let pusher = std::thread::spawn(move || {
        write_half.write_all(&burst).unwrap();
        write_half.flush().unwrap();
    });

    let replies = read_messages(&mut stream, FLOOD);
    pusher.join().unwrap();
    assert!(replies.iter().all(|m| matches!(m, Message::Keepalive)));
    assert!(
        v.obs().reactor.conns_writing.value() == 0,
        "writer gauge must settle once drained"
    );
    server.shutdown();
}

/// Quiet sessions are reaped by the timer wheel: the client sees the
/// `IDLE_TIMEOUT` farewell, the registry empties, the reap is counted.
#[test]
fn idle_sessions_are_reaped_with_a_farewell() {
    let v = Virtualizer::new(VirtualizerConfig {
        session_idle_timeout: Duration::from_millis(150),
        reactor_tick: Duration::from_millis(10),
        ..Default::default()
    });
    let server = v.listen_tcp("127.0.0.1:0").expect("bind");
    let mut stream = TcpStream::connect(server.addr()).expect("connect");

    let logon = encode(
        Message::Logon(Logon {
            username: "sleepy".into(),
            password: "p".into(),
            role: SessionRole::Control,
            job_token: 0,
            trace: None,
        }),
        0,
        0,
    );
    stream.write_all(&logon).unwrap();
    assert!(matches!(
        read_messages(&mut stream, 1)[0],
        Message::LogonOk(_)
    ));

    // Go quiet and wait for the reaper's farewell.
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    match &read_messages(&mut stream, 1)[0] {
        Message::Error(e) => {
            assert_eq!(e.code, ErrCode::IDLE_TIMEOUT.0);
            assert!(e.fatal);
        }
        other => panic!("expected IDLE_TIMEOUT farewell, got {other:?}"),
    }

    let deadline = Instant::now() + Duration::from_secs(5);
    while v.active_sessions() > 0 {
        assert!(Instant::now() < deadline, "reaped session must deregister");
        std::thread::sleep(Duration::from_millis(5));
    }
    assert!(v.obs().reactor.idle_closes.value() >= 1);
    server.shutdown();
}

/// Yanking the cable mid-job aborts the session's open load and frees
/// every resource, exactly like the blocking path did.
#[test]
fn abrupt_disconnect_aborts_owned_jobs() {
    let v = Virtualizer::new(VirtualizerConfig::default());
    v.cdw()
        .execute("CREATE TABLE T0 (A VARCHAR(8), B VARCHAR(32))")
        .unwrap();
    let server = v.listen_tcp("127.0.0.1:0").expect("bind");
    let connector = TcpConnector::new(server.addr().to_string());

    let job = simple_import_job("T0");
    let mut control = Session::logon(&connector, "u", "p", SessionRole::Control, 0).unwrap();
    let reply = control
        .request(Message::BeginLoad(BeginLoad {
            target_table: job.target.clone(),
            error_table_et: job.error_table_et.clone(),
            error_table_uv: job.error_table_uv.clone(),
            layout: job.layout.clone(),
            format: job.format,
            sessions: 1,
            error_limit: 0,
            trace: None,
        }))
        .unwrap();
    assert!(matches!(reply, Message::BeginLoadOk { .. }));
    assert_eq!(v.active_jobs(), 1);

    // Yank: drop the session object without logoff — the TCP socket
    // closes under the server's feet.
    drop(control);

    let deadline = Instant::now() + Duration::from_secs(10);
    while v.active_jobs() > 0 || v.active_sessions() > 0 {
        assert!(Instant::now() < deadline, "disconnect must abort the job");
        std::thread::sleep(Duration::from_millis(5));
    }
    assert_eq!(v.metrics().jobs_aborted, 1);
    assert_eq!(v.credits().available(), v.credits().capacity());
    assert_eq!(v.memory().in_flight(), 0);
    server.shutdown();
}

/// `drain()` with nothing in flight must come back promptly — the
/// job-drained condvar answers immediately instead of a poll loop
/// sleeping its way to the deadline.
#[test]
fn empty_drain_returns_promptly() {
    let v = Virtualizer::new(VirtualizerConfig {
        drain_timeout: Duration::from_secs(600),
        ..Default::default()
    });
    let server = v.listen_tcp("127.0.0.1:0").expect("bind");
    let t0 = Instant::now();
    assert!(server.drain(), "no jobs: drain must succeed");
    assert!(
        t0.elapsed() < Duration::from_secs(5),
        "drain with no jobs must not wait on the timeout"
    );
}
