//! Additional end-to-end robustness coverage for the virtualizer: SQL
//! pass-through DML, script-level errlimit, wide tables, session-error
//! recovery, and binary-format loads.

use std::io;
use std::sync::Arc;

use etlv_core::workload::wide_workload;
use etlv_core::{Virtualizer, VirtualizerConfig};
use etlv_legacy_client::{ClientOptions, FnConnector, LegacyEtlClient, Session};
use etlv_protocol::data::{LegacyType, Value};
use etlv_protocol::message::SessionRole;
use etlv_protocol::record::RecordEncoder;
use etlv_protocol::transport::{duplex, Transport};
use etlv_script::{compile, parse_script, JobPlan};

fn connector(
    v: &Virtualizer,
) -> Arc<FnConnector<impl Fn() -> io::Result<Box<dyn Transport>> + Send + Sync>> {
    let v = v.clone();
    Arc::new(FnConnector(move || {
        let (client_end, server_end) = duplex();
        let v = v.clone();
        std::thread::spawn(move || {
            let _ = v.serve(server_end);
        });
        Ok(Box::new(client_end) as Box<dyn Transport>)
    }))
}

#[test]
fn sql_passthrough_dml_and_recovery() {
    let v = Virtualizer::new(VirtualizerConfig::default());
    let connector = connector(&v);
    let mut session =
        Session::logon(connector.as_ref(), "ops", "pw", SessionRole::Control, 0).unwrap();

    session
        .sql("CREATE TABLE T (A INTEGER, B VARCHAR(10) CHARACTER SET UNICODE)")
        .unwrap();
    session
        .sql("INSERT INTO T VALUES (1, 'x'), (2, 'y'), (3, 'z')")
        .unwrap();

    // A SQL error must not kill the control session.
    assert!(session.sql("SELECT nope FROM T").is_err());

    // Legacy-only constructs pass through the cross-compiler.
    let r = session
        .sql("LOCKING T FOR ACCESS SEL A, UPPER(B) FROM T WHERE A BETWEEN 2 AND 3 ORDER BY A")
        .unwrap();
    assert_eq!(r.rows.len(), 2);
    assert_eq!(r.rows[0][1], Value::Str("Y".into()));

    let r = session.sql("UPD T SET B = B || '!' WHERE A = 1").unwrap();
    assert_eq!(r.activity_count, 1);
    let r = session.sql("DEL T WHERE A = 3").unwrap();
    assert_eq!(r.activity_count, 1);
    let r = session.sql("SEL COUNT(*) FROM T").unwrap();
    assert_eq!(r.rows[0][0], Value::Int(2));
    // The Unicode column surfaced to the legacy client as a Unicode type.
    let r = session.sql("SEL B FROM T WHERE A = 1").unwrap();
    assert!(matches!(r.columns[0].1, LegacyType::VarCharUnicode(_)));
    session.logoff();
}

#[test]
fn script_errlimit_produces_range_records() {
    // errlimit 1 in the script becomes the adaptive max_errors bound.
    let v = Virtualizer::new(VirtualizerConfig::default());
    let connector = connector(&v);
    let mut session =
        Session::logon(connector.as_ref(), "ops", "pw", SessionRole::Control, 0).unwrap();
    session
        .sql("CREATE TABLE T (ID VARCHAR(5), D DATE)")
        .unwrap();
    session.logoff();

    let script = r#"
.logon h/u,p;
.layout L;
.field ID varchar(5);
.field D varchar(10);
.begin import tables T errortables T_ET T_UV errlimit 1;
.dml label Go;
insert into T values (:ID, cast(:D as DATE format 'YYYY-MM-DD'));
.import infile f format vartext '|' layout L apply Go;
.end load
"#;
    let JobPlan::Import(job) = compile(&parse_script(script).unwrap()).unwrap() else {
        panic!()
    };
    // Rows 2, 4, 5 are bad: with errlimit 1 only the first is recorded
    // individually; later failing ranges become 9057 records.
    let data = b"a|2020-01-01\nb|bad\nc|2020-01-03\nd|bad\ne|bad\n";
    let client = LegacyEtlClient::new(connector.clone());
    client.run_import_data(&job, data).unwrap();

    let et = v
        .cdw()
        .execute("SELECT ERRCODE FROM T_ET ORDER BY ERRCODE")
        .unwrap();
    let codes: Vec<i64> = et
        .rows
        .iter()
        .map(|r| match r[0] {
            Value::Int(v) => v,
            _ => panic!(),
        })
        .collect();
    assert!(codes.contains(&3103), "{codes:?}");
    assert!(codes.contains(&9057), "{codes:?}");
}

#[test]
fn wide_table_50_columns() {
    let v = Virtualizer::new(VirtualizerConfig::default());
    let connector = connector(&v);
    let workload = wide_workload(200, 50, 10, 3);
    let mut session =
        Session::logon(connector.as_ref(), "ops", "pw", SessionRole::Control, 0).unwrap();
    session.sql(&workload.target_ddl).unwrap();
    session.logoff();

    let JobPlan::Import(job) = compile(&parse_script(&workload.script).unwrap()).unwrap() else {
        panic!()
    };
    let client = LegacyEtlClient::with_options(
        connector.clone(),
        ClientOptions {
            chunk_rows: 25,
            sessions: Some(3),
            ..Default::default()
        },
    );
    let result = client.run_import_data(&job, &workload.data).unwrap();
    assert_eq!(result.report.rows_applied, 200);
    assert_eq!(v.cdw().table_len("PROD.WIDE").unwrap(), 200);
}

#[test]
fn binary_format_load_with_typed_fields() {
    let v = Virtualizer::new(VirtualizerConfig::default());
    let connector = connector(&v);
    let mut session =
        Session::logon(connector.as_ref(), "ops", "pw", SessionRole::Control, 0).unwrap();
    session
        .sql("CREATE TABLE M (ID INTEGER, AMT DECIMAL(10,2), D DATE)")
        .unwrap();
    session.logoff();

    let script = r#"
.logon h/u,p;
.layout Bin;
.field ID integer;
.field AMT decimal(10,2);
.field D date;
.begin import tables M errortables M_ET M_UV;
.dml label Go;
insert into M values (:ID, :AMT, :D);
.import infile data.bin format binary layout Bin apply Go;
.end load
"#;
    let JobPlan::Import(job) = compile(&parse_script(script).unwrap()).unwrap() else {
        panic!()
    };
    // Encode typed binary input the way the legacy tooling would.
    let encoder = RecordEncoder::new(job.layout.clone());
    let rows: Vec<Vec<Value>> = (1..=50)
        .map(|i| {
            vec![
                Value::Int(i),
                Value::Decimal(etlv_protocol::data::Decimal::new(i as i128 * 125, 2)),
                Value::Date(etlv_protocol::data::Date::new(2021, 6, (i % 28 + 1) as u8).unwrap()),
            ]
        })
        .collect();
    let data = encoder.encode_batch(&rows).unwrap();

    let client = LegacyEtlClient::with_options(
        connector.clone(),
        ClientOptions {
            chunk_rows: 7,
            sessions: Some(2),
            ..Default::default()
        },
    );
    let result = client.run_import_data(&job, &data).unwrap();
    assert_eq!(result.report.rows_applied, 50);

    // Typed values survived the binary→staged-text→COPY→DML round trip.
    let r = v
        .cdw()
        .execute("SELECT ID, AMT, D FROM M WHERE ID = 10")
        .unwrap();
    assert_eq!(r.rows[0][0], Value::Int(10));
    assert_eq!(r.rows[0][1].display_text(), "12.50");
    assert_eq!(r.rows[0][2].display_text(), "2021-06-11");
}

#[test]
fn throttled_compressed_upload_still_correct() {
    let v = Virtualizer::new(VirtualizerConfig {
        compress_staged: true,
        upload_throttle: etlv_cloudstore::Throttle::shaped(
            std::time::Duration::from_millis(1),
            50_000_000,
        ),
        file_size_threshold: 4096,
        ..Default::default()
    });
    let connector = connector(&v);
    let mut session =
        Session::logon(connector.as_ref(), "ops", "pw", SessionRole::Control, 0).unwrap();
    session
        .sql("CREATE TABLE T (A VARCHAR(8), B VARCHAR(64))")
        .unwrap();
    session.logoff();

    let script = r#"
.logon h/u,p;
.layout L;
.field A varchar(8);
.field B varchar(64);
.begin import tables T errortables T_ET T_UV;
.dml label Go;
insert into T values (:A, :B);
.import infile f format vartext '|' layout L apply Go;
.end load
"#;
    let JobPlan::Import(job) = compile(&parse_script(script).unwrap()).unwrap() else {
        panic!()
    };
    let data: Vec<u8> = (0..500)
        .flat_map(|i| format!("k{i:05}|value value value {i}\n").into_bytes())
        .collect();
    let client = LegacyEtlClient::new(connector.clone());
    let result = client.run_import_data(&job, &data).unwrap();
    assert_eq!(result.report.rows_applied, 500);
}
