//! End-to-end integration: unmodified legacy client + scripts running
//! against the **virtualizer**, which executes on the CDW.
//!
//! This is the paper's core claim, exercised literally: the same script
//! and client that drive the reference legacy server (see the
//! `legacy-client` crate's tests) are repointed at the virtualizer and
//! produce the same logical outcome — loaded rows, ET errors, UV errors.

use std::io;
use std::sync::Arc;

use etlv_core::{Virtualizer, VirtualizerConfig};
use etlv_legacy_client::{ClientOptions, FnConnector, LegacyEtlClient};
use etlv_protocol::data::{Date, Value};
use etlv_protocol::transport::{duplex, Transport};
use etlv_script::{compile, parse_script, JobPlan};

fn connector(
    v: &Virtualizer,
) -> Arc<FnConnector<impl Fn() -> io::Result<Box<dyn Transport>> + Send + Sync>> {
    let v = v.clone();
    Arc::new(FnConnector(move || {
        let (client_end, server_end) = duplex();
        let v = v.clone();
        std::thread::spawn(move || {
            let _ = v.serve(server_end);
        });
        Ok(Box::new(client_end) as Box<dyn Transport>)
    }))
}

const IMPORT_SCRIPT: &str = r#"
.logon host/user,pass;
.layout CustLayout;
.field CUST_ID varchar(5);
.field CUST_NAME varchar(50);
.field JOIN_DATE varchar(10);
.begin import tables PROD.CUSTOMER
errortables PROD.CUSTOMER_ET PROD.CUSTOMER_UV;
.dml label InsApply;
insert into PROD.CUSTOMER values (
    trim(:CUST_ID), trim(:CUST_NAME),
    cast(:JOIN_DATE as DATE format `YYYY-MM-DD') );
.import infile input.txt
    format vartext `|' layout CustLayout
    apply InsApply;
.end load
"#;

const FIGURE5_DATA: &[u8] = b"123|Smith|2012-01-01\n\
456|Brown|xxxx\n\
789|Brown|yyyyy\n\
123|Jones|2012-12-01\n\
157|Jones|2012-12-01\n";

fn import_job() -> etlv_script::ImportJob {
    match compile(&parse_script(IMPORT_SCRIPT).unwrap()).unwrap() {
        JobPlan::Import(job) => job,
        _ => panic!("expected import"),
    }
}

fn new_virtualizer(mut config: VirtualizerConfig) -> Virtualizer {
    config.credits = config.credits.max(4);
    let v = Virtualizer::new(config);
    // The target table is created through the virtualizer itself using
    // *legacy* DDL — exercising the cross-compiler's type mapping.
    let client = LegacyEtlClient::new(connector(&v));
    let mut session = etlv_legacy_client::Session::logon(
        client.connector().as_ref(),
        "admin",
        "pw",
        etlv_protocol::message::SessionRole::Control,
        0,
    )
    .unwrap();
    session
        .sql(
            "CREATE TABLE PROD.CUSTOMER (CUST_ID VARCHAR(5) NOT NULL, CUST_NAME VARCHAR(50), JOIN_DATE DATE) UNIQUE PRIMARY INDEX (CUST_ID)",
        )
        .unwrap();
    session.logoff();
    v
}

#[test]
fn figure5_semantics_through_virtualizer() {
    let v = new_virtualizer(VirtualizerConfig::default());
    let client = LegacyEtlClient::new(connector(&v));
    let result = client.run_import_data(&import_job(), FIGURE5_DATA).unwrap();

    assert_eq!(result.report.rows_received, 5);
    assert_eq!(result.report.rows_applied, 2);
    assert_eq!(result.report.errors_et, 2);
    assert_eq!(result.report.errors_uv, 1);

    // Target contents match Figure 5(d).
    let target = v
        .cdw()
        .execute("SELECT CUST_ID, CUST_NAME, JOIN_DATE FROM PROD.CUSTOMER ORDER BY CUST_ID")
        .unwrap();
    assert_eq!(
        target.rows,
        vec![
            vec![
                Value::Str("123".into()),
                Value::Str("Smith".into()),
                Value::Date(Date::new(2012, 1, 1).unwrap())
            ],
            vec![
                Value::Str("157".into()),
                Value::Str("Jones".into()),
                Value::Date(Date::new(2012, 12, 1).unwrap())
            ],
        ]
    );

    // ET rows: seq 2 and 3, DML conversion code 3103, field JOIN_DATE.
    let et = v
        .cdw()
        .execute("SELECT SEQNO, ERRCODE, ERRFIELD FROM PROD.CUSTOMER_ET ORDER BY SEQNO")
        .unwrap();
    assert_eq!(
        et.rows,
        vec![
            vec![
                Value::Int(2),
                Value::Int(3103),
                Value::Str("JOIN_DATE".into())
            ],
            vec![
                Value::Int(3),
                Value::Int(3103),
                Value::Str("JOIN_DATE".into())
            ],
        ]
    );

    // UV row: the duplicate 123 tuple with code 2794 — note the CDW has
    // NO native uniqueness; this is the emulation at work.
    let uv = v
        .cdw()
        .execute("SELECT CUST_ID, CUST_NAME, SEQNO, ERRCODE FROM PROD.CUSTOMER_UV")
        .unwrap();
    assert_eq!(
        uv.rows,
        vec![vec![
            Value::Str("123".into()),
            Value::Str("Jones".into()),
            Value::Int(4),
            Value::Int(2794)
        ]]
    );

    // Staging table was cleaned up.
    assert!(!v.cdw().table_exists("ETLV_STG_1"));
    let metrics = v.metrics();
    assert_eq!(metrics.jobs_completed, 1);
    assert_eq!(metrics.rows_ingested, 5);
}

#[test]
fn figure6_adaptive_error_table_max_errors_2() {
    let v = new_virtualizer(VirtualizerConfig {
        max_errors: 2,
        ..Default::default()
    });
    let client = LegacyEtlClient::new(connector(&v));
    let result = client.run_import_data(&import_job(), FIGURE5_DATA).unwrap();

    // Figure 6: rows 2 and 3 individually (3103), then the residual range
    // (4, 5) as a single 9057 record.
    let et = v
        .cdw()
        .execute("SELECT SEQNO, ERRCODE, ERRFIELD, ERRMESSAGE FROM PROD.CUSTOMER_ET ORDER BY ERRCODE, SEQNO")
        .unwrap();
    assert_eq!(et.rows.len(), 3);
    assert_eq!(et.rows[0][0], Value::Int(2));
    assert_eq!(et.rows[0][1], Value::Int(3103));
    assert_eq!(et.rows[0][2], Value::Str("JOIN_DATE".into()));
    assert!(et.rows[0][3]
        .display_text()
        .contains("DATE conversion failed during DML on PROD.CUSTOMER, row number: 2"));
    assert_eq!(et.rows[1][0], Value::Int(3));
    assert_eq!(et.rows[2][0], Value::Null); // range record has no SEQNO
    assert_eq!(et.rows[2][1], Value::Int(9057));
    assert!(et.rows[2][3]
        .display_text()
        .contains("Max number of errors reached during DML on PROD.CUSTOMER, row numbers: (4, 5)"));

    // Rows 4 and 5 were lumped into the range: only row 1 loaded.
    assert_eq!(result.report.rows_applied, 1);
    assert_eq!(v.cdw().table_len("PROD.CUSTOMER").unwrap(), 1);
}

#[test]
fn parallel_sessions_small_chunks_same_outcome() {
    let v = new_virtualizer(VirtualizerConfig::default());
    let client = LegacyEtlClient::with_options(
        connector(&v),
        ClientOptions {
            chunk_rows: 1,
            sessions: Some(4),
            ..Default::default()
        },
    );
    let result = client.run_import_data(&import_job(), FIGURE5_DATA).unwrap();
    assert_eq!(result.report.rows_applied, 2);
    assert_eq!(result.report.errors_et, 2);
    assert_eq!(result.report.errors_uv, 1);
}

#[test]
fn clean_bulk_load_with_compression_and_rotation() {
    let v = Virtualizer::new(VirtualizerConfig {
        compress_staged: true,
        file_size_threshold: 2048, // force several staged files
        ..Default::default()
    });
    let client = LegacyEtlClient::with_options(
        connector(&v),
        ClientOptions {
            chunk_rows: 50, // several chunks -> several staged files
            sessions: None,
            ..Default::default()
        },
    );

    let workload = etlv_core::workload::customer_workload(&etlv_core::workload::CustomerSpec {
        rows: 500,
        row_bytes: 120,
        sessions: 3,
        ..Default::default()
    });
    v.cdw()
        .execute(&etlv_core::xcompile::translate_sql(&workload.target_ddl).unwrap())
        .unwrap();
    let JobPlan::Import(job) = compile(&parse_script(&workload.script).unwrap()).unwrap() else {
        panic!()
    };
    let result = client.run_import_data(&job, &workload.data).unwrap();
    assert_eq!(result.report.rows_applied, 500);
    assert_eq!(result.report.errors_et, 0);
    assert_eq!(v.cdw().table_len("PROD.CUSTOMER").unwrap(), 500);
    let report = v.last_job_report().unwrap();
    assert!(report.files_staged > 1, "{}", report.files_staged);
}

#[test]
fn acquisition_data_errors_reach_et_table() {
    let v = new_virtualizer(VirtualizerConfig::default());
    let client = LegacyEtlClient::new(connector(&v));
    // Row 2 has the wrong field count: a pure acquisition-phase error.
    let data = b"123|Smith|2012-01-01\nbroken_row\n157|Jones|2012-12-01\n";
    let result = client.run_import_data(&import_job(), data).unwrap();
    assert_eq!(result.report.rows_applied, 2);
    assert_eq!(result.report.errors_et, 1);
    let et = v
        .cdw()
        .execute("SELECT SEQNO, ERRCODE FROM PROD.CUSTOMER_ET")
        .unwrap();
    assert_eq!(et.rows, vec![vec![Value::Int(2), Value::Int(2673)]]);
}

#[test]
fn oom_cap_fails_job_not_process() {
    let v = new_virtualizer(VirtualizerConfig {
        memory_cap: 64, // absurdly small: the first chunk trips it
        credits: 64,
        ..Default::default()
    });
    let client = LegacyEtlClient::with_options(
        connector(&v),
        ClientOptions {
            chunk_rows: 1000,
            sessions: Some(1),
            ..Default::default()
        },
    );
    let err = client
        .run_import_data(&import_job(), FIGURE5_DATA)
        .unwrap_err();
    match err {
        etlv_legacy_client::ClientError::Server { code, message } => {
            assert_eq!(code, 8998, "{message}");
            assert!(message.contains("out of memory"), "{message}");
        }
        other => panic!("expected OOM server error, got {other}"),
    }
    assert_eq!(v.metrics().jobs_completed, 0);
}

#[test]
fn singleton_baseline_matches_adaptive_results() {
    let v = new_virtualizer(VirtualizerConfig {
        apply_strategy: etlv_core::ApplyStrategy::Singleton,
        ..Default::default()
    });
    let client = LegacyEtlClient::new(connector(&v));
    let result = client.run_import_data(&import_job(), FIGURE5_DATA).unwrap();
    assert_eq!(result.report.rows_applied, 2);
    assert_eq!(result.report.errors_et, 2);
    assert_eq!(result.report.errors_uv, 1);
}

#[test]
fn concurrent_jobs_share_one_credit_pool() {
    let v = Virtualizer::new(VirtualizerConfig {
        credits: 4,
        ..Default::default()
    });
    {
        let client = LegacyEtlClient::new(connector(&v));
        let mut s = etlv_legacy_client::Session::logon(
            client.connector().as_ref(),
            "a",
            "b",
            etlv_protocol::message::SessionRole::Control,
            0,
        )
        .unwrap();
        s.sql("CREATE TABLE PROD.CUSTOMER (CUST_ID VARCHAR(5), CUST_NAME VARCHAR(50), JOIN_DATE DATE)")
            .unwrap();
        s.sql("CREATE TABLE PROD.CUSTOMER2 (CUST_ID VARCHAR(5), CUST_NAME VARCHAR(50), JOIN_DATE DATE)")
            .unwrap();
        s.logoff();
    }
    let script2 = IMPORT_SCRIPT
        .replace("PROD.CUSTOMER_ET", "PROD.C2_ET")
        .replace("PROD.CUSTOMER_UV", "PROD.C2_UV")
        .replace("PROD.CUSTOMER", "PROD.CUSTOMER2");
    let job2 = match compile(&parse_script(&script2).unwrap()).unwrap() {
        JobPlan::Import(j) => j,
        _ => panic!(),
    };
    let data: Vec<u8> = (0..200)
        .flat_map(|i| format!("i{i:03}|name{i}|2012-01-01\n").into_bytes())
        .collect();

    let v1 = v.clone();
    let data1 = data.clone();
    let t1 = std::thread::spawn(move || {
        let client = LegacyEtlClient::with_options(
            connector(&v1),
            ClientOptions {
                chunk_rows: 10,
                sessions: Some(2),
                ..Default::default()
            },
        );
        client.run_import_data(&import_job(), &data1).unwrap()
    });
    let v2 = v.clone();
    let t2 = std::thread::spawn(move || {
        let client = LegacyEtlClient::with_options(
            connector(&v2),
            ClientOptions {
                chunk_rows: 10,
                sessions: Some(2),
                ..Default::default()
            },
        );
        client.run_import_data(&job2, &data).unwrap()
    });
    let r1 = t1.join().unwrap();
    let r2 = t2.join().unwrap();
    assert_eq!(r1.report.rows_applied, 200);
    assert_eq!(r2.report.rows_applied, 200);
    assert_eq!(v.cdw().table_len("PROD.CUSTOMER").unwrap(), 200);
    assert_eq!(v.cdw().table_len("PROD.CUSTOMER2").unwrap(), 200);
    // The shared pool is intact afterwards.
    assert_eq!(v.credits().available(), 4);
    assert_eq!(v.memory().in_flight(), 0);
}

#[test]
fn virtualizer_over_tcp() {
    let v = new_virtualizer(VirtualizerConfig::default());
    let server = v.listen_tcp("127.0.0.1:0").unwrap();
    let client = LegacyEtlClient::new(Arc::new(etlv_legacy_client::TcpConnector::new(
        server.addr().to_string(),
    )));
    let result = client.run_import_data(&import_job(), FIGURE5_DATA).unwrap();
    assert_eq!(result.report.rows_applied, 2);
    assert_eq!(result.report.errors_uv, 1);
    // Explicit shutdown joins the accept loop and every connection thread.
    server.shutdown();
}
