//! PR 6 acceptance: the workload synthesizer and replay harness end to
//! end. Synthesis is seed-deterministic and byte-reproducible from the
//! scenario text alone; arrivals have the shape their scenario promises;
//! and replaying a trace over real TCP against two fresh nodes yields
//! identical outcome counts with error attribution equal to the
//! generator's ground truth.

use std::sync::Arc;
use std::time::Duration;

use etlv_core::{Virtualizer, VirtualizerConfig};
use etlv_legacy_client::{Connect, TcpConnector};
use etlv_workloadgen::{replay, synthesize, JobKind, OutcomeCounts, ReplayOptions, Scenario};

mod common;

/// A scenario small enough for a test, busy enough to be interesting:
/// three tenants, mixed job kinds, both error populations non-empty.
fn small_scenario() -> Scenario {
    Scenario {
        name: "workload_acceptance".into(),
        jobs: 10,
        tenants: 3,
        horizon_ms: 200,
        rows_base: 30,
        rows_hot: 60,
        date_error_ppm: 30_000,
        dup_key_ppm: 20_000,
        ..Scenario::steady(0x00AC_CE97)
    }
}

fn replay_on_fresh_tcp_node(trace: &etlv_workloadgen::WorkloadTrace) -> OutcomeCounts {
    let v = Virtualizer::new(VirtualizerConfig::default());
    let handle = v.listen_tcp("127.0.0.1:0").expect("bind");
    let connector: Arc<dyn Connect> = Arc::new(TcpConnector::new(handle.addr().to_string()));
    let options = ReplayOptions {
        time_scale: 0.5,
        read_timeout: Some(Duration::from_secs(30)),
        ..ReplayOptions::default()
    };
    let report = replay(&connector, trace, &options).expect("replay");
    common::assert_quiescent(&v);
    handle.shutdown();
    report.counts()
}

/// Same seed, same trace — different seed, different trace.
#[test]
fn synthesis_is_a_pure_function_of_the_scenario() {
    for scenario in Scenario::presets(42) {
        let a = synthesize(&scenario);
        let b = synthesize(&scenario);
        assert_eq!(a, b, "'{}' must synthesize identically", scenario.name);
        assert_eq!(a.fingerprint(), b.fingerprint());

        let mut reseeded = scenario.clone();
        reseeded.seed = 43;
        assert_ne!(
            a.fingerprint(),
            synthesize(&reseeded).fingerprint(),
            "'{}' must depend on its seed",
            scenario.name
        );
    }
}

/// The scenario file alone reproduces the trace byte for byte: render to
/// text, parse it back, synthesize — identical fingerprint.
#[test]
fn scenario_file_reproduces_the_trace() {
    for scenario in Scenario::presets(7) {
        let parsed = Scenario::parse(&scenario.render()).expect("rendered scenario parses");
        assert_eq!(parsed, scenario);
        assert_eq!(
            synthesize(&parsed).fingerprint(),
            synthesize(&scenario).fingerprint()
        );
    }
}

/// Strictness: a scenario file either reproduces its run or is rejected.
#[test]
fn scenario_parser_rejects_malformed_files() {
    let good = Scenario::steady(1).render();
    assert!(Scenario::parse(&format!("{good}bogus_key = 1\n")).is_err());
    assert!(
        Scenario::parse(&format!("{good}jobs = 24\n")).is_err(),
        "duplicate key"
    );
    let missing = good.replace("tenants = 4\n", "");
    assert!(Scenario::parse(&missing).is_err(), "missing key");
    assert!(Scenario::parse("not a scenario").is_err());
}

/// Bursty arrivals concentrate: some burst-sized window holds far more
/// than its even share of the jobs; steady arrivals never concentrate
/// that hard.
#[test]
fn bursty_arrivals_concentrate_in_windows() {
    let bursty = Scenario::bursty_zipf(99);
    let mut steady = Scenario::steady(99);
    steady.jobs = bursty.jobs;
    steady.horizon_ms = bursty.horizon_ms;

    let peak_share = |scenario: &Scenario| -> f64 {
        let trace = synthesize(scenario);
        let horizon_us = u64::from(scenario.horizon_ms) * 1000;
        // Slide a window one-tenth of the horizon wide, take the fullest.
        let window = horizon_us / 10;
        let times: Vec<u64> = trace.events.iter().map(|e| e.at_us).collect();
        let mut best = 0usize;
        for &start in &times {
            let in_window = times
                .iter()
                .filter(|&&t| t >= start && t < start + window)
                .count();
            best = best.max(in_window);
        }
        best as f64 / times.len() as f64
    };

    let bursty_peak = peak_share(&bursty);
    let steady_peak = peak_share(&steady);
    assert!(
        bursty_peak > steady_peak,
        "bursty peak window share {bursty_peak:.2} must beat steady {steady_peak:.2}"
    );
    assert!(
        bursty_peak > 0.25,
        "a tenth of the horizon held only {bursty_peak:.2} of a bursty trace"
    );
}

/// The generator plans real work: the acceptance scenario has imports,
/// at least one non-import job, and both error populations.
#[test]
fn small_scenario_exercises_the_full_mix() {
    let trace = synthesize(&small_scenario());
    let truth = trace.ground_truth();
    assert!(truth.imports >= 3, "{} imports", truth.imports);
    assert!(
        trace
            .events
            .iter()
            .any(|e| !matches!(e.kind, JobKind::Import(_))),
        "mix must include a non-import job"
    );
    assert!(truth.bad_dates > 0, "no ET rows planned");
    assert!(truth.dup_keys > 0, "no UV rows planned");
}

/// The tentpole end to end: replay the same trace over real TCP against
/// two fresh nodes. Every job completes, both runs produce identical
/// outcome counts, and the nodes' ET/UV attribution equals the planned
/// error mix row for row.
#[test]
fn tcp_replay_outcomes_are_deterministic() {
    let trace = synthesize(&small_scenario());
    let truth = trace.ground_truth();

    let first = replay_on_fresh_tcp_node(&trace);
    let second = replay_on_fresh_tcp_node(&trace);

    assert_eq!(first, second, "replays of the same trace must agree");
    assert_eq!(first.jobs, u64::from(trace.scenario.jobs));
    assert_eq!(
        first.completed, first.jobs,
        "{} rejected, {} failed",
        first.rejected, first.failed
    );
    assert_eq!(first.errors_et, truth.bad_dates);
    assert_eq!(first.errors_uv, truth.dup_keys);
    assert_eq!(
        first.rows_applied,
        truth.rows - truth.bad_dates - truth.dup_keys
    );
}
