//! The PR 3 observability surface, end to end: concurrent metric
//! aggregation, registry wiring through real import/export jobs, the
//! recent-report ring, and the `Stats` wire round trip.

use std::sync::Arc;

use etlv_core::{Virtualizer, VirtualizerConfig};
use etlv_legacy_client::{ClientOptions, LegacyEtlClient};
use etlv_protocol::message::{SessionRole, StatsFormat};
use etlv_script::{compile, parse_script, JobPlan};
mod common;
use common::{counter, customer_import_job, customer_rows, customer_virtualizer, mem_connector};

/// Counters registered once, hammered from many threads, summed at
/// snapshot: the shard merge must never lose an increment, and histogram
/// bucket totals must equal the number of recorded values.
#[test]
fn concurrent_counter_and_histogram_aggregation() {
    let obs = Arc::new(etlv_core::Obs::default());
    const THREADS: usize = 8;
    const PER_THREAD: u64 = 10_000;
    let mut handles = Vec::new();
    for t in 0..THREADS {
        let obs = Arc::clone(&obs);
        handles.push(std::thread::spawn(move || {
            for i in 0..PER_THREAD {
                obs.pipeline.convert_rows.inc();
                obs.pipeline.convert_bytes.add(3);
                obs.pipeline.convert_us.record(t as u64 * PER_THREAD + i);
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    if !etlv_core::obs::enabled() {
        return;
    }
    let total = THREADS as u64 * PER_THREAD;
    assert_eq!(obs.pipeline.convert_rows.value(), total);
    assert_eq!(obs.pipeline.convert_bytes.value(), 3 * total);
    let snap = obs.snapshot();
    let hist = snap
        .histograms
        .iter()
        .find(|h| h.name == "pipeline.convert_us")
        .unwrap();
    assert_eq!(hist.count, total, "every recorded value landed in a bucket");
    assert_eq!(hist.max, total - 1);
    assert!(hist.p50 >= total / 2, "p50 {} conservative", hist.p50);
    assert!(hist.p95 >= hist.p50 && hist.p99 >= hist.p95);
}

/// A multi-session import drives every subsystem's metrics: gateway
/// intake, pipeline conversion, store puts, CDW statements, credits.
#[test]
fn import_populates_every_subsystem() {
    let v = customer_virtualizer(VirtualizerConfig {
        credits: 4,
        file_size_threshold: 256,
        ..Default::default()
    });
    let client = LegacyEtlClient::with_options(
        mem_connector(&v),
        ClientOptions {
            chunk_rows: 10,
            sessions: Some(4),
            ..Default::default()
        },
    );
    let rows = 200usize;
    let data = customer_rows(rows);
    let result = client
        .run_import_data(&customer_import_job(), &data)
        .unwrap();
    assert_eq!(result.report.rows_applied, rows as u64);

    if !etlv_core::obs::enabled() {
        return;
    }
    let obs = v.obs();
    assert_eq!(obs.pipeline.convert_rows.value(), rows as u64);
    assert_eq!(obs.gateway.chunks_received.value(), 20);
    assert_eq!(obs.gateway.chunk_bytes.value(), data.len() as u64);
    assert_eq!(obs.gateway.jobs_started.value(), 1);
    assert_eq!(obs.gateway.jobs_completed.value(), 1);
    assert!(obs.pipeline.upload_parts.value() >= 1);
    assert!(obs.store.put_ops.value() >= obs.pipeline.upload_parts.value());
    assert!(obs.store.get_ops.value() >= 1, "COPY reads staged files");
    assert!(obs.cdw.statements.value() >= 3, "DDL + COPY + DML at least");
    assert_eq!(obs.credit.acquires.value(), 20, "one credit per chunk");
    // The journal saw the job's lifecycle.
    let kinds: Vec<&str> = obs.journal.tail(4096).iter().map(|e| e.kind).collect();
    for kind in [
        "job.begin",
        "chunk.convert",
        "file.upload",
        "copy",
        "job.end",
    ] {
        assert!(kinds.contains(&kind), "journal missing {kind}: {kinds:?}");
    }
}

/// The snapshot JSON carries all five required subsystems and stays
/// numerically consistent with `NodeMetrics` (credit stalls, peak memory).
#[test]
fn stats_snapshot_consistent_with_node_metrics() {
    let v = customer_virtualizer(VirtualizerConfig {
        credits: 2, // tiny pool: back-pressure stalls are likely
        ..Default::default()
    });
    let client = LegacyEtlClient::with_options(
        mem_connector(&v),
        ClientOptions {
            chunk_rows: 5,
            sessions: Some(2),
            ..Default::default()
        },
    );
    client
        .run_import_data(&customer_import_job(), &customer_rows(100))
        .unwrap();

    let snapshot = v.stats_snapshot();
    let metrics = v.metrics();
    assert_eq!(counter(&snapshot, "credit_stalls"), metrics.credit_stalls);
    assert_eq!(counter(&snapshot, "peak_memory"), metrics.peak_memory);
    assert_eq!(counter(&snapshot, "rows_ingested"), 100);
    if etlv_core::obs::enabled() {
        for subsystem in ["gateway.", "pipeline.", "cloudstore.", "cdw.", "credit."] {
            assert!(snapshot.contains(subsystem), "snapshot missing {subsystem}");
        }
        assert_eq!(
            counter(&snapshot, "memory.peak"),
            metrics.peak_memory,
            "gauge refreshed at snapshot"
        );
        assert_eq!(counter(&snapshot, "credit.stalls"), metrics.credit_stalls);
    }
}

/// The `Stats` request round-trips over the wire in both renderings.
#[test]
fn stats_wire_round_trip() {
    let v = customer_virtualizer(VirtualizerConfig::default());
    let client = LegacyEtlClient::new(mem_connector(&v));
    client
        .run_import_data(&customer_import_job(), &customer_rows(10))
        .unwrap();

    let mut session = etlv_legacy_client::Session::logon(
        client.connector().as_ref(),
        "admin",
        "pw",
        SessionRole::Control,
        0,
    )
    .unwrap();
    let json = session.stats(StatsFormat::Json).unwrap();
    assert_eq!(json.format, StatsFormat::Json);
    assert!(json.body.contains("\"node\""), "{}", json.body);
    assert!(json.body.contains("\"recent_jobs\""), "{}", json.body);
    assert_eq!(counter(&json.body, "jobs_completed"), 1);

    let prom = session.stats(StatsFormat::Prometheus).unwrap();
    assert_eq!(prom.format, StatsFormat::Prometheus);
    assert!(
        prom.body.contains("etlv_node_jobs_completed 1"),
        "{}",
        prom.body
    );
    if etlv_core::obs::enabled() {
        assert!(
            prom.body.contains("etlv_gateway_chunks_received"),
            "{}",
            prom.body
        );
        assert!(prom.body.contains("quantile=\"0.99\""), "{}", prom.body);
    }
    session.logoff();
}

/// The node retains a bounded ring of recent reports, newest last.
#[test]
fn report_ring_is_bounded() {
    let v = customer_virtualizer(VirtualizerConfig {
        report_history: 2,
        ..Default::default()
    });
    for n in [10usize, 20, 30] {
        let client = LegacyEtlClient::new(mem_connector(&v));
        client
            .run_import_data(&customer_import_job(), &customer_rows(n))
            .unwrap();
    }
    let recent = v.recent_job_reports();
    assert_eq!(recent.len(), 2, "oldest report evicted");
    assert_eq!(recent[0].rows_received, 20);
    assert_eq!(recent[1].rows_received, 30);
    assert_eq!(v.last_job_report().unwrap().rows_received, 30);
    let snapshot = v.stats_snapshot();
    assert_eq!(
        snapshot.matches("\"rows_received\"").count(),
        2,
        "ring exposed through the snapshot"
    );
}

/// Export accounting: `NodeMetrics` row/byte totals and the export
/// counters advance with served chunks.
#[test]
fn export_rows_and_bytes_counted() {
    let v = Virtualizer::new(VirtualizerConfig::default());
    v.cdw()
        .execute("CREATE TABLE PROD.CUSTOMER (CUST_ID VARCHAR(8), CUST_NAME VARCHAR(20))")
        .unwrap();
    for i in 0..50 {
        v.cdw()
            .execute(&format!(
                "INSERT INTO PROD.CUSTOMER VALUES ('c{i:03}', 'name{i}')"
            ))
            .unwrap();
    }
    let src = ".logon h/u,p;\n.begin export sessions 2;\n.export outfile out format vartext '|';\nselect CUST_ID, CUST_NAME from PROD.CUSTOMER order by CUST_ID;\n.end export;\n";
    let JobPlan::Export(job) = compile(&parse_script(src).unwrap()).unwrap() else {
        panic!()
    };
    let client = LegacyEtlClient::new(mem_connector(&v));
    let result = client.run_export(&job).unwrap();
    assert_eq!(result.rows, 50);

    let metrics = v.metrics();
    assert_eq!(metrics.rows_exported, 50);
    assert!(
        metrics.bytes_exported >= result.data.len() as u64,
        "encoded bytes counted"
    );
    if etlv_core::obs::enabled() {
        let obs = v.obs();
        assert_eq!(obs.export.rows.value(), 50);
        assert_eq!(obs.export.bytes.value(), metrics.bytes_exported);
        assert!(obs.export.chunks.value() >= 1);
    }
}

/// A fault plan that hits both the uploader and the CDW: the wire report's
/// split retry counts stay consistent with the retained total.
#[test]
fn load_report_retry_split_consistent() {
    use etlv_core::{FaultPlan, FaultSpec};
    let mut plan = FaultPlan::seeded(42);
    plan.store_put = FaultSpec::FirstN(2);
    // Op 1 is the setup CREATE below; op 4 lands inside the job's table
    // DDL, which runs under the node's retry machinery.
    plan.cdw_exec = FaultSpec::AtOps(vec![4]);
    let v = Virtualizer::new(VirtualizerConfig {
        file_size_threshold: 256,
        retry_base_delay: std::time::Duration::from_micros(50),
        retry_max_delay: std::time::Duration::from_micros(500),
        fault_plan: Some(plan),
        ..Default::default()
    });
    v.cdw()
        .execute("CREATE TABLE PROD.CUSTOMER (CUST_ID VARCHAR(5), CUST_NAME VARCHAR(50), JOIN_DATE DATE)")
        .unwrap();
    let client = LegacyEtlClient::with_options(
        mem_connector(&v),
        ClientOptions {
            chunk_rows: 20,
            sessions: Some(1),
            ..Default::default()
        },
    );
    let result = client
        .run_import_data(&customer_import_job(), &customer_rows(100))
        .unwrap();
    let report = &result.report;
    assert_eq!(report.rows_applied, 100, "faults absorbed by retries");
    assert!(report.upload_retries >= 1, "store_put faults retried");
    assert!(report.cdw_retries >= 1, "cdw_exec fault retried");
    assert_eq!(
        report.retries,
        report.upload_retries + report.cdw_retries,
        "total equals the split"
    );
    let node_report = v.last_job_report().unwrap();
    assert_eq!(node_report.upload_retries, report.upload_retries);
    assert_eq!(node_report.cdw_retries, report.cdw_retries);
    if etlv_core::obs::enabled() {
        assert_eq!(
            v.obs().pipeline.upload_retries.value(),
            report.upload_retries
        );
        let snapshot = v.stats_snapshot();
        assert!(counter(&snapshot, "fault.injected_total") >= 3);
    }
}

/// The PR 7 plan counters: an import into a unique-keyed target makes
/// the CDW planner run index seeks (uniqueness-emulation probes, staged
/// range scans) and index maintenance; the counters land in the JSON
/// snapshot and the Prometheus rendering over the wire, each under its
/// own TYPE line.
#[test]
fn plan_counters_reach_the_wire() {
    use etlv_legacy_client::Session;

    let v = Virtualizer::new(VirtualizerConfig::default());
    v.cdw()
        .execute(
            "CREATE TABLE PROD.CUSTOMER (CUST_ID VARCHAR(5), CUST_NAME VARCHAR(50), JOIN_DATE DATE, PRIMARY KEY (CUST_ID))",
        )
        .unwrap();
    let client = LegacyEtlClient::new(mem_connector(&v));
    // 20 clean rows plus one duplicate key: the uniqueness emulation has
    // to probe the target's PK and bisect the staging range by __SEQ.
    let mut data = customer_rows(20);
    data.extend_from_slice(b"i001|dup|2012-01-01\n");
    let result = client
        .run_import_data(&customer_import_job(), &data)
        .unwrap();
    assert_eq!(result.report.rows_applied, 20);

    if !etlv_core::obs::enabled() {
        return;
    }
    let obs = v.obs();
    assert!(
        obs.cdw.plan_index_seek.value() > 0,
        "emulation probes and range scans ran as index seeks"
    );
    assert!(
        obs.cdw.index_maintain.value() > 0,
        "staging/target index maintenance counted"
    );

    let snapshot = v.stats_snapshot();
    assert_eq!(
        counter(&snapshot, "cdw.plan.index_seek"),
        obs.cdw.plan_index_seek.value()
    );
    assert_eq!(
        counter(&snapshot, "cdw.plan.full_scan"),
        obs.cdw.plan_full_scan.value()
    );
    assert_eq!(
        counter(&snapshot, "cdw.index.maintain"),
        obs.cdw.index_maintain.value()
    );

    // And over the wire, in both renderings.
    let mut session = Session::logon(
        client.connector().as_ref(),
        "admin",
        "pw",
        SessionRole::Control,
        0,
    )
    .unwrap();
    let json = session.stats(StatsFormat::Json).unwrap();
    assert!(
        json.body.contains("\"cdw.plan.index_seek\""),
        "{}",
        json.body
    );
    let prom = session.stats(StatsFormat::Prometheus).unwrap();
    for metric in [
        "etlv_cdw_plan_index_seek",
        "etlv_cdw_plan_full_scan",
        "etlv_cdw_index_maintain",
    ] {
        assert!(
            prom.body.contains(&format!("# TYPE {metric} counter")),
            "{metric} TYPE line"
        );
        assert!(
            prom.body.contains(&format!("\n{metric} ")),
            "{metric} sample"
        );
    }
    session.logoff();
}

/// The PR 5 session-lifecycle surface: session open/close counters stay
/// symmetric, the active-session/job gauges return to zero, and an
/// abandoned job shows up as `jobs_aborted` in both snapshot formats —
/// with the Prometheus rendering carrying TYPE metadata for each.
#[test]
fn session_lifecycle_metrics_are_symmetric_and_rendered() {
    use etlv_legacy_client::Session;
    use etlv_protocol::message::{BeginLoad, Message};

    let v = customer_virtualizer(VirtualizerConfig::default());
    v.cdw()
        .execute("CREATE TABLE T (A VARCHAR(5), B VARCHAR(50))")
        .unwrap();
    let connector = mem_connector(&v);

    // One clean import...
    let client = LegacyEtlClient::with_options(
        connector.clone(),
        ClientOptions {
            chunk_rows: 25,
            sessions: Some(2),
            ..Default::default()
        },
    );
    client
        .run_import_data(&customer_import_job(), &customer_rows(100))
        .unwrap();

    // ...and one abandoned one: logon, begin a load, vanish without
    // EndLoad or Logoff. The serve loop notices the dead link and aborts.
    let job = customer_import_job();
    let mut control =
        Session::logon(connector.as_ref(), "u", "p", SessionRole::Control, 0).unwrap();
    let reply = control
        .request(Message::BeginLoad(BeginLoad {
            target_table: job.target.clone(),
            error_table_et: job.error_table_et.clone(),
            error_table_uv: job.error_table_uv.clone(),
            layout: job.layout.clone(),
            format: job.format,
            sessions: 1,
            error_limit: 0,
            trace: None,
        }))
        .unwrap();
    assert!(matches!(reply, Message::BeginLoadOk { .. }));
    drop(control);

    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
    while v.active_jobs() > 0 || v.active_sessions() > 0 {
        assert!(
            std::time::Instant::now() < deadline,
            "abandoned job not reaped"
        );
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
    assert_eq!(v.metrics().jobs_aborted, 1);

    if !etlv_core::obs::enabled() {
        return;
    }
    let obs = v.obs();
    assert_eq!(
        obs.gateway.sessions_opened.value(),
        obs.gateway.sessions_closed.value(),
        "every opened session must be closed"
    );
    assert_eq!(obs.gateway.active_sessions.value(), 0);
    assert_eq!(obs.gateway.active_jobs.value(), 0);
    assert_eq!(obs.gateway.jobs_aborted.value(), 1);
    assert!(obs.runtime.threads_started.value() >= 1, "shared pool ran");

    // JSON snapshot carries the new counters and the node-level total.
    let snapshot = v.stats_snapshot();
    assert!(counter(&snapshot, "gateway.sessions_opened") >= 4);
    assert_eq!(
        counter(&snapshot, "gateway.sessions_opened"),
        counter(&snapshot, "gateway.sessions_closed")
    );
    assert_eq!(counter(&snapshot, "gateway.active_sessions"), 0);
    assert_eq!(counter(&snapshot, "gateway.active_jobs"), 0);
    assert_eq!(counter(&snapshot, "gateway.jobs_aborted"), 1);
    assert_eq!(counter(&snapshot, "jobs_aborted"), 1, "node section");

    // Prometheus: samples present, each under its own TYPE line.
    let prom = v.stats_prometheus();
    assert!(prom.contains("etlv_node_jobs_aborted 1\n"), "{prom}");
    for metric in [
        "etlv_gateway_sessions_closed",
        "etlv_gateway_active_sessions",
        "etlv_gateway_active_jobs",
        "etlv_gateway_jobs_aborted",
        "etlv_gateway_admission_rejections",
        "etlv_server_connections",
        "etlv_runtime_threads_started",
    ] {
        assert!(prom.contains(&format!("# TYPE {metric} ")), "{metric} TYPE");
        assert!(prom.contains(&format!("\n{metric} ")), "{metric} sample");
    }
}

/// The PR 9 buffer-pool surface: a shared-runtime import recycles staged
/// buffers through the observed freelist, and the hit/miss counters and
/// idle gauge land in the Stats JSON and the Prometheus rendering.
#[test]
fn pool_recycling_observed_in_stats() {
    let v = customer_virtualizer(VirtualizerConfig {
        file_size_threshold: 256,
        ..Default::default()
    });
    let client = LegacyEtlClient::with_options(
        mem_connector(&v),
        ClientOptions {
            chunk_rows: 10,
            sessions: Some(2),
            ..Default::default()
        },
    );
    client
        .run_import_data(&customer_import_job(), &customer_rows(200))
        .unwrap();

    if !etlv_core::obs::enabled() {
        return;
    }
    let obs = v.obs();
    let hits = obs.pool.recycle_hits.value();
    let misses = obs.pool.recycle_misses.value();
    assert!(misses >= 1, "first takes allocate fresh buffers");
    assert!(
        hits >= 1,
        "20 chunks through a small freelist must recycle (hits={hits} misses={misses})"
    );
    assert_eq!(
        obs.pool.busy_workers.value(),
        0,
        "all workers idle after the job"
    );

    let snapshot = v.stats_snapshot();
    assert_eq!(counter(&snapshot, "pool.recycle_hits"), hits);
    assert_eq!(counter(&snapshot, "pool.recycle_misses"), misses);
    let prom = v.stats_prometheus();
    for metric in [
        "etlv_pool_recycle_hits",
        "etlv_pool_recycle_misses",
        "etlv_pool_idle_buffers",
        "etlv_pool_busy_workers",
    ] {
        assert!(prom.contains(&format!("# TYPE {metric} ")), "{metric} TYPE");
        assert!(prom.contains(&format!("\n{metric} ")), "{metric} sample");
    }
}

/// The PR 8 attribution fix: a `SERVER_BUSY` logon rejection and an
/// idle-timeout close are the *tenant's* problem, not just the node's —
/// both must land on the offending tenant's counters (and from there
/// feed its availability SLO), under the right labels on the wire.
#[test]
fn rejections_and_idle_timeouts_attributed_to_their_tenant() {
    use etlv_legacy_client::{ClientError, Session};

    let v = customer_virtualizer(VirtualizerConfig {
        max_sessions: 1,
        session_idle_timeout: std::time::Duration::from_millis(40),
        ..Default::default()
    });
    let connector = mem_connector(&v);

    // "holder" fills the one-slot registry; "noisy" is turned away.
    let holder = Session::logon(connector.as_ref(), "holder", "pw", SessionRole::Control, 0)
        .expect("first session fits");
    let refused = Session::logon(connector.as_ref(), "noisy", "pw", SessionRole::Control, 0);
    match refused {
        Err(ClientError::Server { code, .. }) => {
            assert_eq!(code, etlv_protocol::errcode::ErrCode::SERVER_BUSY.0)
        }
        Err(other) => panic!("expected SERVER_BUSY, got {other:?}"),
        Ok(_) => panic!("second logon must be refused"),
    }

    // "holder" now sits idle past the timeout; the serve loop closes it.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
    while v.active_sessions() > 0 {
        assert!(
            std::time::Instant::now() < deadline,
            "idle session not reaped"
        );
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
    drop(holder);

    if !etlv_core::obs::enabled() {
        return;
    }
    let registry = &v.obs().registry;
    assert_eq!(
        registry.tenant("noisy").admission_rejections.value(),
        1,
        "rejection charged to the refused tenant"
    );
    assert_eq!(registry.tenant("holder").admission_rejections.value(), 0);
    assert_eq!(
        registry.tenant("holder").idle_timeouts.value(),
        1,
        "idle close charged to the idling tenant"
    );
    assert_eq!(registry.tenant("noisy").idle_timeouts.value(), 0);
    assert_eq!(
        v.obs().gateway.admission_rejections.value(),
        1,
        "node total"
    );

    let prom = v.stats_prometheus();
    assert!(
        prom.contains("etlv_tenant_admission_rejections{tenant=\"noisy\"} 1\n"),
        "{prom}"
    );
    assert!(
        prom.contains("etlv_tenant_idle_timeouts{tenant=\"holder\"} 1\n"),
        "{prom}"
    );
}
