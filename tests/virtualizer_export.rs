//! Export jobs through the virtualizer: SELECT on the CDW → TDFCursor →
//! legacy wire encoding → client output file. Includes full
//! import-then-export roundtrips.

use std::io;
use std::sync::Arc;

use etlv_core::{Virtualizer, VirtualizerConfig};
use etlv_legacy_client::{ClientOptions, FnConnector, LegacyEtlClient};
use etlv_protocol::data::{Date, Value};
use etlv_protocol::transport::{duplex, Transport};
use etlv_script::{compile, parse_script, JobPlan};

fn connector(
    v: &Virtualizer,
) -> Arc<FnConnector<impl Fn() -> io::Result<Box<dyn Transport>> + Send + Sync>> {
    let v = v.clone();
    Arc::new(FnConnector(move || {
        let (client_end, server_end) = duplex();
        let v = v.clone();
        std::thread::spawn(move || {
            let _ = v.serve(server_end);
        });
        Ok(Box::new(client_end) as Box<dyn Transport>)
    }))
}

fn seeded_virtualizer(rows: usize) -> Virtualizer {
    let v = Virtualizer::new(VirtualizerConfig::default());
    v.cdw()
        .execute("CREATE TABLE PROD.CUSTOMER (CUST_ID VARCHAR(8), CUST_NAME VARCHAR(20), JOIN_DATE DATE)")
        .unwrap();
    for i in 0..rows {
        v.cdw()
            .execute(&format!(
                "INSERT INTO PROD.CUSTOMER VALUES ('c{i:04}', 'name{i}', DATE '2020-01-{:02}')",
                (i % 28) + 1
            ))
            .unwrap();
    }
    v
}

fn export_job(select: &str, sessions: u16, format: &str) -> etlv_script::ExportJob {
    let src = format!(
        ".logon h/u,p;\n.begin export sessions {sessions};\n.export outfile out format {format};\n{select};\n.end export;\n"
    );
    match compile(&parse_script(&src).unwrap()).unwrap() {
        JobPlan::Export(j) => j,
        _ => panic!(),
    }
}

#[test]
fn vartext_export_with_parallel_sessions() {
    let v = seeded_virtualizer(100);
    let client = LegacyEtlClient::with_options(
        connector(&v),
        ClientOptions {
            chunk_rows: 7, // many chunks across 3 sessions
            sessions: None,
            ..Default::default()
        },
    );
    let job = export_job(
        "select CUST_ID, CUST_NAME from PROD.CUSTOMER order by CUST_ID",
        3,
        "vartext '|'",
    );
    let result = client.run_export(&job).unwrap();
    assert_eq!(result.rows, 100);
    let text = String::from_utf8(result.data).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 100);
    assert_eq!(lines[0], "c0000|name0");
    assert_eq!(lines[99], "c0099|name99");
    // Chunks were reassembled in order despite parallel sessions.
    let mut sorted = lines.clone();
    sorted.sort();
    assert_eq!(lines, sorted);
}

#[test]
fn binary_export_decodes_with_derived_layout() {
    let v = seeded_virtualizer(10);
    let client = LegacyEtlClient::new(connector(&v));
    let job = export_job(
        "select CUST_ID, JOIN_DATE from PROD.CUSTOMER order by CUST_ID",
        2,
        "binary",
    );
    let result = client.run_export(&job).unwrap();
    let decoder = etlv_protocol::record::RecordDecoder::new(result.layout.clone());
    let rows = decoder.decode_batch(&result.data).unwrap();
    assert_eq!(rows.len(), 10);
    assert_eq!(rows[0][0], Value::Str("c0000".into()));
    assert_eq!(rows[0][1], Value::Date(Date::new(2020, 1, 1).unwrap()));
}

#[test]
fn export_select_is_cross_compiled() {
    // The export SELECT uses legacy-only syntax (SEL + FORMAT cast); the
    // virtualizer must translate it for the CDW.
    let v = seeded_virtualizer(3);
    let client = LegacyEtlClient::new(connector(&v));
    let job = export_job(
        "sel CUST_ID, cast(JOIN_DATE as VARCHAR(8) format 'MM/DD/YY') from PROD.CUSTOMER order by CUST_ID",
        1,
        "vartext '|'",
    );
    let result = client.run_export(&job).unwrap();
    let text = String::from_utf8(result.data).unwrap();
    assert!(text.starts_with("c0000|01/01/20"), "{text}");
}

#[test]
fn empty_export() {
    let v = seeded_virtualizer(0);
    let client = LegacyEtlClient::new(connector(&v));
    let job = export_job("select CUST_ID from PROD.CUSTOMER", 2, "vartext '|'");
    let result = client.run_export(&job).unwrap();
    assert_eq!(result.rows, 0);
    assert!(result.data.is_empty());
}

#[test]
fn import_then_export_roundtrip() {
    let v = Virtualizer::new(VirtualizerConfig::default());
    v.cdw()
        .execute("CREATE TABLE PROD.CUSTOMER (CUST_ID VARCHAR(5), CUST_NAME VARCHAR(50), JOIN_DATE DATE, PRIMARY KEY (CUST_ID))")
        .unwrap();
    let client = LegacyEtlClient::new(connector(&v));

    let import_src = r#"
.logon host/user,pass;
.layout CustLayout;
.field CUST_ID varchar(5);
.field CUST_NAME varchar(50);
.field JOIN_DATE varchar(10);
.begin import tables PROD.CUSTOMER
errortables PROD.CUSTOMER_ET PROD.CUSTOMER_UV;
.dml label InsApply;
insert into PROD.CUSTOMER values (
    trim(:CUST_ID), trim(:CUST_NAME),
    cast(:JOIN_DATE as DATE format 'YYYY-MM-DD') );
.import infile input.txt format vartext '|' layout CustLayout apply InsApply;
.end load
"#;
    let JobPlan::Import(import) = compile(&parse_script(import_src).unwrap()).unwrap() else {
        panic!()
    };
    let data = b"1|alpha|2020-01-01\n2|beta|2020-06-15\n3|gamma|2021-12-31\n";
    let result = client.run_import_data(&import, data).unwrap();
    assert_eq!(result.report.rows_applied, 3);

    let job = export_job(
        "select CUST_ID, CUST_NAME, JOIN_DATE from PROD.CUSTOMER order by CUST_ID",
        2,
        "vartext '|'",
    );
    let exported = client.run_export(&job).unwrap();
    assert_eq!(
        String::from_utf8(exported.data).unwrap(),
        "1|alpha|2020-01-01\n2|beta|2020-06-15\n3|gamma|2021-12-31\n"
    );
}
