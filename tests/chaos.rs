//! Seeded chaos suite: end-to-end fault-injection scenarios across the
//! acquisition pipeline. Every scenario drives a real client against a
//! virtualizer armed with a deterministic [`FaultPlan`] and asserts one of
//! two outcomes — the job completes with correct table contents, or it
//! fails cleanly with a reportable error — and that either way the node is
//! quiescent afterwards: the credit pool is back to capacity and no
//! in-flight memory is leaked. Nothing here ever hangs: severed links
//! surface through the client's read timeout.

use std::sync::Arc;
use std::time::{Duration, Instant};

use etlv_cdw::{Cdw, CdwConfig};
use etlv_cloudstore::{MemStore, ObjectStore};
use etlv_core::{
    FaultPlan, FaultSpec, StorePutFailure, TransportFailure, Virtualizer, VirtualizerConfig,
};
use etlv_legacy_client::{ClientError, ClientOptions, LegacyEtlClient, Session, TcpConnector};
use etlv_protocol::message::{BeginLoad, DataChunk, Message, SessionRole};
mod common;
use common::{
    assert_quiescent, chaos_mem_connector, create_simple_target, kv_rows, mem_connector,
    simple_import_job,
};

fn config_with(plan: FaultPlan) -> VirtualizerConfig {
    VirtualizerConfig {
        fault_plan: Some(plan),
        ..Default::default()
    }
}

#[test]
fn store_put_flake_is_retried_to_success() {
    let mut plan = FaultPlan::seeded(11);
    plan.store_put = FaultSpec::FirstN(2);
    let v = Virtualizer::new(config_with(plan));
    let connector = mem_connector(&v);
    create_simple_target(connector.as_ref(), "T");

    let client = LegacyEtlClient::new(connector.clone());
    let result = client
        .run_import_data(&simple_import_job("T"), &kv_rows(40))
        .unwrap();

    assert_eq!(result.report.rows_applied, 40);
    assert_eq!(result.report.retries, 2, "both flaky puts were retried");
    assert_eq!(result.report.faults_injected, 2);
    assert_eq!(v.fault_counts().unwrap().store_put, 2);
    assert_eq!(v.cdw().table_len("T").unwrap(), 40);
    assert_quiescent(&v);
}

#[test]
fn store_put_partial_write_is_absorbed_by_retry() {
    let mut plan = FaultPlan::seeded(12);
    plan.store_put = FaultSpec::FirstN(1);
    plan.store_put_failure = StorePutFailure::PartialWrite;
    let v = Virtualizer::new(config_with(plan));
    let connector = mem_connector(&v);
    create_simple_target(connector.as_ref(), "T");

    let client = LegacyEtlClient::new(connector.clone());
    let result = client
        .run_import_data(&simple_import_job("T"), &kv_rows(40))
        .unwrap();

    // The retried put overwrites the torn object whole: every row lands
    // exactly once despite half an object having hit the store.
    assert_eq!(result.report.rows_applied, 40);
    assert!(result.report.retries >= 1);
    assert_eq!(v.cdw().table_len("T").unwrap(), 40);
    let r = v
        .cdw()
        .execute("SELECT B FROM T WHERE A = 'k0039'")
        .unwrap();
    assert_eq!(r.rows[0][0].display_text(), "value-0039");
    assert_quiescent(&v);
}

#[test]
fn persistent_store_failure_fails_job_cleanly() {
    let mut plan = FaultPlan::seeded(13);
    plan.store_put = FaultSpec::FirstN(1000); // never recovers
    let mut config = config_with(plan);
    config.retry_budget = 2; // keep the exhaustion quick
    let v = Virtualizer::new(config);
    let connector = mem_connector(&v);
    create_simple_target(connector.as_ref(), "T");

    let client = LegacyEtlClient::new(connector.clone());
    let err = client
        .run_import_data(&simple_import_job("T"), &kv_rows(40))
        .unwrap_err();
    match err {
        ClientError::Server { message, .. } => {
            assert!(message.contains("injected fault"), "{message}")
        }
        other => panic!("expected a server-reported job failure, got {other:?}"),
    }

    // The failed job released everything and the node still serves.
    assert_quiescent(&v);
    let mut session =
        Session::logon(connector.as_ref(), "ops", "pw", SessionRole::Control, 0).unwrap();
    assert!(session.sql("SEL COUNT(*) FROM T").is_ok());
    session.logoff();
}

#[test]
fn store_get_flake_during_copy_is_retried() {
    let mut plan = FaultPlan::seeded(14);
    plan.store_get = FaultSpec::FirstN(1);
    let v = Virtualizer::new(config_with(plan));
    let connector = mem_connector(&v);
    create_simple_target(connector.as_ref(), "T");

    let client = LegacyEtlClient::new(connector.clone());
    let result = client
        .run_import_data(&simple_import_job("T"), &kv_rows(40))
        .unwrap();

    // COPY validates before it mutates, so the re-issued statement after
    // the failed staged-file read cannot duplicate rows.
    assert_eq!(result.report.rows_applied, 40);
    assert!(result.report.retries >= 1, "COPY was retried");
    assert_eq!(v.fault_counts().unwrap().store_get, 1);
    assert_eq!(v.cdw().table_len("T").unwrap(), 40);
    assert_quiescent(&v);
}

#[test]
fn cdw_transient_faults_are_retried_to_success() {
    // Ops 0..=5 are the staging/error-table DDL at BeginLoad; op 6 is the
    // COPY. Fault the COPY twice: both retries must land in the job report.
    let mut plan = FaultPlan::seeded(15);
    plan.cdw_exec = FaultSpec::AtOps(vec![6, 7]);
    let v = Virtualizer::new(config_with(plan));
    let connector = mem_connector(&v);

    // Setup DDL runs with the hook disarmed so the scenario's op indices
    // start at the load itself.
    v.cdw().set_transient_fault(None);
    create_simple_target(connector.as_ref(), "T");
    v.cdw()
        .set_transient_fault(Some(v.fault_injector().unwrap().cdw_hook()));

    let client = LegacyEtlClient::new(connector.clone());
    let result = client
        .run_import_data(&simple_import_job("T"), &kv_rows(40))
        .unwrap();

    assert_eq!(result.report.rows_applied, 40);
    assert_eq!(result.report.retries, 2);
    assert_eq!(v.fault_counts().unwrap().cdw_exec, 2);
    assert_eq!(v.cdw().table_len("T").unwrap(), 40);
    assert_quiescent(&v);
}

#[test]
fn cdw_transient_budget_exhaustion_fails_cleanly() {
    // The COPY faults on every attempt (ops 6..) — the retry budget runs
    // out and the job must fail with a server error, not hang, and the
    // control session must survive to see the reply.
    let mut plan = FaultPlan::seeded(16);
    plan.cdw_exec = FaultSpec::AtOps((6..36).collect());
    let mut config = config_with(plan);
    config.retry_budget = 3;
    let v = Virtualizer::new(config);
    let connector = mem_connector(&v);

    v.cdw().set_transient_fault(None);
    create_simple_target(connector.as_ref(), "T");
    v.cdw()
        .set_transient_fault(Some(v.fault_injector().unwrap().cdw_hook()));

    let client = LegacyEtlClient::new(connector.clone());
    let err = client
        .run_import_data(&simple_import_job("T"), &kv_rows(40))
        .unwrap_err();
    match err {
        ClientError::Server { message, .. } => assert!(message.contains("COPY"), "{message}"),
        other => panic!("expected a server-reported job failure, got {other:?}"),
    }
    // The initial attempt plus three budget retries faulted, and so did
    // the best-effort staging-table DROP in job cleanup (which is exactly
    // why that DROP is best-effort).
    assert_eq!(v.fault_counts().unwrap().cdw_exec, 5);
    assert_quiescent(&v);
}

#[test]
fn converter_worker_fault_fails_job_cleanly() {
    let mut plan = FaultPlan::seeded(17);
    plan.convert = FaultSpec::AtOps(vec![0]);
    let v = Virtualizer::new(config_with(plan));
    let connector = mem_connector(&v);
    create_simple_target(connector.as_ref(), "T");

    let client = LegacyEtlClient::new(connector.clone());
    let err = client
        .run_import_data(&simple_import_job("T"), &kv_rows(40))
        .unwrap_err();
    match err {
        ClientError::Server { message, .. } => {
            assert!(message.contains("injected fault"), "{message}")
        }
        other => panic!("expected a server-reported job failure, got {other:?}"),
    }

    // The dead worker's chunk released its credit and memory on the way
    // down — the RAII guards, not the happy path, own the release.
    assert_quiescent(&v);
    assert_eq!(v.fault_counts().unwrap().convert, 1);
}

#[test]
fn transport_drop_surfaces_as_timeout_not_hang() {
    // The second data chunk vanishes in flight. Without a read timeout the
    // legacy client would wait for its ack forever; with one, the severed
    // acquisition surfaces as a timeout error.
    let mut plan = FaultPlan::seeded(18);
    plan.transport = FaultSpec::AtOps(vec![1]);
    plan.transport_failure = TransportFailure::Drop;
    let v = Virtualizer::new(config_with(plan));
    let connector = chaos_mem_connector(&v);
    create_simple_target(connector.as_ref(), "T");

    let client = LegacyEtlClient::with_options(
        connector.clone(),
        ClientOptions {
            chunk_rows: 10,
            sessions: Some(1),
            read_timeout: Some(Duration::from_millis(300)),
            ..Default::default()
        },
    );
    let err = client
        .run_import_data(&simple_import_job("T"), &kv_rows(30))
        .unwrap_err();
    assert!(
        matches!(err, ClientError::Timeout(_)),
        "expected a read timeout, got {err:?}"
    );
    assert_eq!(v.fault_counts().unwrap().transport, 1);
    // The server saw EOF when the client gave up; the one delivered chunk
    // drains and every credit comes home.
    assert_quiescent(&v);
}

#[test]
fn transport_truncate_mid_chunk_surfaces_as_error() {
    // Half the second chunk's bytes arrive, then the link is cut: the
    // client's next read fails fast, and the server's decoder discards the
    // torn prefix at EOF instead of applying a partial chunk.
    let mut plan = FaultPlan::seeded(19);
    plan.transport = FaultSpec::AtOps(vec![1]);
    plan.transport_failure = TransportFailure::Truncate;
    let v = Virtualizer::new(config_with(plan));
    let connector = chaos_mem_connector(&v);
    create_simple_target(connector.as_ref(), "T");

    let client = LegacyEtlClient::with_options(
        connector.clone(),
        ClientOptions {
            chunk_rows: 10,
            sessions: Some(1),
            read_timeout: Some(Duration::from_secs(2)),
            ..Default::default()
        },
    );
    let err = client
        .run_import_data(&simple_import_job("T"), &kv_rows(30))
        .unwrap_err();
    assert!(
        matches!(err, ClientError::Io(_) | ClientError::Timeout(_)),
        "expected the cut link to surface, got {err:?}"
    );
    assert_eq!(v.fault_counts().unwrap().transport, 1);
    assert_quiescent(&v);
}

#[test]
fn transport_sever_fails_fast() {
    let mut plan = FaultPlan::seeded(20);
    plan.transport = FaultSpec::AtOps(vec![0]);
    plan.transport_failure = TransportFailure::Sever;
    let v = Virtualizer::new(config_with(plan));
    let connector = chaos_mem_connector(&v);
    create_simple_target(connector.as_ref(), "T");

    let client = LegacyEtlClient::with_options(
        connector.clone(),
        ClientOptions {
            chunk_rows: 10,
            sessions: Some(1),
            read_timeout: Some(Duration::from_secs(2)),
            ..Default::default()
        },
    );
    let err = client
        .run_import_data(&simple_import_job("T"), &kv_rows(30))
        .unwrap_err();
    assert!(
        matches!(err, ClientError::Io(_)),
        "a severed send fails immediately, got {err:?}"
    );
    assert_quiescent(&v);
}

#[test]
fn random_faults_with_same_seed_reproduce_exactly() {
    // The determinism contract: the same seeded plan over the same input
    // yields the same injected-fault sequence and the same report
    // counters, run after run — that is what makes a chaos failure
    // debuggable.
    let run = || {
        let mut plan = FaultPlan::seeded(0xD5);
        plan.store_put = FaultSpec::Random {
            rate_ppm: 300_000,
            limit: 0,
        };
        let mut config = config_with(plan);
        config.file_size_threshold = 256; // several staged files per job
        let v = Virtualizer::new(config);
        let connector = mem_connector(&v);
        create_simple_target(connector.as_ref(), "T");
        let client = LegacyEtlClient::with_options(
            connector.clone(),
            ClientOptions {
                chunk_rows: 10,
                sessions: Some(1),
                read_timeout: None,
                ..Default::default()
            },
        );
        let result = client
            .run_import_data(&simple_import_job("T"), &kv_rows(120))
            .unwrap();
        assert_quiescent(&v);
        assert_eq!(v.cdw().table_len("T").unwrap(), 120);
        (
            result.report.retries,
            result.report.faults_injected,
            v.fault_counts().unwrap(),
        )
    };
    let first = run();
    let second = run();
    assert_eq!(first, second, "same seed, same faults, same counters");
    assert!(first.1 > 0, "the scenario actually injected faults");
    assert_eq!(first.0, first.1, "every injected put fault cost one retry");
}

#[test]
fn fault_free_plan_changes_nothing() {
    // An armed injector whose specs are all Never must be a no-op: no
    // faults, no retries, same outcome as an unfaulted run.
    let v = Virtualizer::new(config_with(FaultPlan::seeded(99)));
    let connector = mem_connector(&v);
    create_simple_target(connector.as_ref(), "T");

    let client = LegacyEtlClient::new(connector.clone());
    let result = client
        .run_import_data(&simple_import_job("T"), &kv_rows(40))
        .unwrap();
    assert_eq!(result.report.rows_applied, 40);
    assert_eq!(result.report.retries, 0);
    assert_eq!(result.report.faults_injected, 0);
    assert_eq!(v.fault_counts().unwrap().total(), 0);
    assert_quiescent(&v);
}

/// The PR-5 orphaned-job regression: a legacy client that dies mid-load
/// (process crash, network partition — here: both TCP links dropped with
/// the job still open) must leave NOTHING behind on the node. The session
/// layer aborts the orphaned job on disconnect: queued chunks are
/// discarded (credits and memory come home), the staging table, error
/// tables, and staged objects are deleted, and the loss is recorded as an
/// aborted job report.
#[test]
fn client_disconnect_mid_load_leaves_no_residue() {
    let store: Arc<dyn ObjectStore> = Arc::new(MemStore::new());
    let cdw = Cdw::with_config(CdwConfig::default(), Some(Arc::clone(&store)));
    let config = VirtualizerConfig::default();
    let bucket = config.staging_bucket.clone();
    let v = Virtualizer::with_backends(config, cdw, Arc::clone(&store));
    let server = v.listen_tcp("127.0.0.1:0").expect("bind");
    let connector = TcpConnector::new(server.addr().to_string());
    create_simple_target(&connector, "T");

    // Open the load by hand (the real client would never stop half-way).
    let job = simple_import_job("T");
    let mut control = Session::logon(&connector, "u", "p", SessionRole::Control, 0).unwrap();
    let load_token = match control
        .request(Message::BeginLoad(BeginLoad {
            target_table: job.target.clone(),
            error_table_et: job.error_table_et.clone(),
            error_table_uv: job.error_table_uv.clone(),
            layout: job.layout.clone(),
            format: job.format,
            sessions: 1,
            error_limit: 0,
            trace: None,
        }))
        .unwrap()
    {
        Message::BeginLoadOk { load_token } => load_token,
        other => panic!("expected BeginLoadOk, got {other:?}"),
    };
    let mut data = Session::logon(&connector, "u", "p", SessionRole::Data, load_token).unwrap();
    let payload = kv_rows(50);
    let reply = data
        .request(Message::DataChunk(DataChunk {
            chunk_seq: 1,
            base_seq: 1,
            record_count: 50,
            data: payload.into(),
        }))
        .unwrap();
    assert!(matches!(reply, Message::Ack { chunk_seq: 1 }));
    assert_eq!(v.active_jobs(), 1);

    // Sever both links without EndLoad or Logoff: the client is gone.
    drop(data);
    drop(control);

    // The server notices the dead control session and aborts its job.
    let deadline = Instant::now() + Duration::from_secs(5);
    while v.active_jobs() > 0 || v.active_sessions() > 0 {
        assert!(
            Instant::now() < deadline,
            "orphaned job not reaped: {} jobs, {} sessions still active",
            v.active_jobs(),
            v.active_sessions()
        );
        std::thread::sleep(Duration::from_millis(10));
    }

    // Zero residue: credits home, no in-flight memory, no staged objects,
    // no staging or error tables; the target table is untouched.
    assert_quiescent(&v);
    assert_eq!(store.list(&bucket, "").unwrap(), Vec::<String>::new());
    assert!(!v.cdw().table_exists(&format!("ETLV_STG_{load_token}")));
    assert!(!v.cdw().table_exists("T_ET"));
    assert!(!v.cdw().table_exists("T_UV"));
    assert_eq!(v.cdw().table_len("T").unwrap(), 0);

    // The loss is visible: an aborted report and the node counter.
    let report = v.last_job_report().expect("abort recorded a report");
    assert!(report.aborted, "report must be marked aborted");
    assert_eq!(report.rows_received, 50);
    assert_eq!(v.metrics().jobs_aborted, 1);
    server.shutdown();
}

/// The chaos matrix meets the workload harness: a bursty multi-tenant
/// trace from `etlv-workloadgen` replays through the real client while
/// the node randomly flakes object-store puts and CDW statements
/// mid-replay. Transient faults must stay invisible to the workload —
/// every job completes, error-table attribution still equals the mix the
/// generator planned row for row, every injected put fault surfaces as a
/// server-side retry in some job's report, and the node drains clean.
#[test]
fn workload_trace_replays_clean_under_fault_matrix() {
    use etlv_workloadgen::{synthesize, ReplayOptions, Scenario};

    let mut scenario = Scenario::bursty_zipf(0x5EED_CA05);
    scenario.name = "chaos_matrix".into();
    scenario.jobs = 14;
    scenario.tenants = 4;
    scenario.horizon_ms = 300;
    scenario.rows_base = 30;
    scenario.rows_hot = 80;
    scenario.date_error_ppm = 20_000;
    scenario.dup_key_ppm = 10_000;
    let trace = synthesize(&scenario);
    let truth = trace.ground_truth();
    assert!(
        truth.bad_dates > 0 && truth.dup_keys > 0,
        "scenario must exercise both error tables (got ET {} / UV {})",
        truth.bad_dates,
        truth.dup_keys
    );

    let mut plan = FaultPlan::seeded(0xCA05);
    plan.store_put = FaultSpec::Random {
        rate_ppm: 150_000,
        limit: 8,
    };
    plan.cdw_exec = FaultSpec::Random {
        rate_ppm: 40_000,
        limit: 4,
    };
    let v = Virtualizer::new(config_with(plan));
    let connector: Arc<dyn etlv_legacy_client::Connect> = mem_connector(&v);

    // Create the trace's tables with the CDW hook disarmed so setup DDL
    // cannot fault, then arm it for the replay proper (the same shape the
    // single-job scenarios above use).
    v.cdw().set_transient_fault(None);
    etlv_workloadgen::replay::prepare_tables(&connector, &trace).expect("prepare tables");
    v.cdw()
        .set_transient_fault(Some(v.fault_injector().unwrap().cdw_hook()));

    let options = ReplayOptions {
        time_scale: 0.5,
        read_timeout: Some(Duration::from_secs(30)),
        prepare_tables: false,
        ..ReplayOptions::default()
    };
    let report = etlv_workloadgen::replay(&connector, &trace, &options).expect("replay");
    let counts = report.counts();

    // Every job reached a terminal state, and the retry machinery absorbed
    // every transient fault: nothing was rejected or failed.
    assert_eq!(counts.jobs, trace.events.len() as u64);
    assert_eq!(
        counts.completed, counts.jobs,
        "transient faults must be absorbed by retries ({} rejected, {} failed)",
        counts.rejected, counts.failed
    );

    // Error attribution is untouched by the chaos: the node's ET/UV totals
    // equal the generator's planned mix exactly.
    assert_eq!(counts.errors_et, truth.bad_dates);
    assert_eq!(counts.errors_uv, truth.dup_keys);
    assert_eq!(
        counts.rows_applied,
        truth.rows - truth.bad_dates - truth.dup_keys
    );

    // The matrix actually fired, and every flaky put was paid for by a
    // server-side retry attributed to some job (CDW faults on best-effort
    // cleanup DROPs are the one place a fault can fire without a retry).
    let faults = v.fault_counts().unwrap();
    assert!(faults.store_put > 0, "store-put chaos never fired");
    let server_retries: u64 = report.outcomes.iter().map(|o| o.server_retries).sum();
    assert!(
        server_retries >= faults.store_put,
        "{} put faults but only {} retries reported",
        faults.store_put,
        server_retries
    );

    assert_quiescent(&v);
}
