//! Semantic-parity tests: the same legacy script and data produce the same
//! logical outcome on the reference legacy server and on the virtualizer.
//!
//! This is the migration guarantee the paper's customers depend on — and
//! the reason "less than 1% of the queries in ETL jobs had to be rewritten
//! manually" (§8).

use std::io;
use std::sync::Arc;

use etlv_core::workload::{customer_workload, CustomerSpec};
use etlv_core::{Virtualizer, VirtualizerConfig};
use etlv_legacy_client::{ClientOptions, FnConnector, LegacyEtlClient};
use etlv_legacy_server::LegacyServer;
use etlv_protocol::transport::{duplex, Transport};
use etlv_script::{compile, parse_script, JobPlan};

type Conn = Arc<FnConnector<Box<dyn Fn() -> io::Result<Box<dyn Transport>> + Send + Sync>>>;

fn server_connector(server: &Arc<LegacyServer>) -> Conn {
    let server = Arc::clone(server);
    Arc::new(FnConnector(Box::new(move || {
        let (client_end, server_end) = duplex();
        let server = Arc::clone(&server);
        std::thread::spawn(move || {
            let _ = server.serve(server_end);
        });
        Ok(Box::new(client_end) as Box<dyn Transport>)
    })))
}

fn virtualizer_connector(v: &Virtualizer) -> Conn {
    let v = v.clone();
    Arc::new(FnConnector(Box::new(move || {
        let (client_end, server_end) = duplex();
        let v = v.clone();
        std::thread::spawn(move || {
            let _ = v.serve(server_end);
        });
        Ok(Box::new(client_end) as Box<dyn Transport>)
    })))
}

/// Run the workload against both systems (creating the target through the
/// legacy protocol in both cases) and compare outcomes.
fn run_both(
    spec: &CustomerSpec,
) -> (
    etlv_legacy_client::ImportResult,
    etlv_legacy_client::ImportResult,
) {
    let workload = customer_workload(spec);
    let JobPlan::Import(job) = compile(&parse_script(&workload.script).unwrap()).unwrap() else {
        panic!()
    };

    let run = |connector: Conn| {
        let mut session = etlv_legacy_client::Session::logon(
            connector.as_ref(),
            "admin",
            "pw",
            etlv_protocol::message::SessionRole::Control,
            0,
        )
        .unwrap();
        session.sql(&workload.target_ddl).unwrap();
        session.logoff();
        let client = LegacyEtlClient::with_options(
            connector,
            ClientOptions {
                chunk_rows: 37,
                sessions: None,
                ..Default::default()
            },
        );
        client.run_import_data(&job, &workload.data).unwrap()
    };

    let server = LegacyServer::new();
    let legacy = run(server_connector(&server));
    let v = Virtualizer::new(VirtualizerConfig::default());
    let virt = run(virtualizer_connector(&v));
    (legacy, virt)
}

#[test]
fn clean_load_parity() {
    let (legacy, virt) = run_both(&CustomerSpec {
        rows: 300,
        row_bytes: 80,
        sessions: 2,
        ..Default::default()
    });
    assert_eq!(legacy.report.rows_received, virt.report.rows_received);
    assert_eq!(legacy.report.rows_applied, virt.report.rows_applied);
    assert_eq!(legacy.report.rows_applied, 300);
    assert_eq!(virt.report.errors_et, 0);
    assert_eq!(virt.report.errors_uv, 0);
}

#[test]
fn dirty_load_parity() {
    let (legacy, virt) = run_both(&CustomerSpec {
        rows: 400,
        row_bytes: 80,
        date_error_rate: 0.05,
        dup_rate: 0.03,
        sessions: 2,
        seed: 99,
        ..Default::default()
    });
    assert_eq!(legacy.report.rows_applied, virt.report.rows_applied);
    assert_eq!(legacy.report.errors_et, virt.report.errors_et);
    assert_eq!(legacy.report.errors_uv, virt.report.errors_uv);
    assert!(virt.report.errors_et > 0);
    assert!(virt.report.errors_uv > 0);
}

#[test]
fn error_rows_match_ground_truth() {
    let spec = CustomerSpec {
        rows: 200,
        date_error_rate: 0.10,
        dup_rate: 0.0,
        sessions: 1,
        seed: 7,
        ..Default::default()
    };
    let workload = customer_workload(&spec);
    let JobPlan::Import(job) = compile(&parse_script(&workload.script).unwrap()).unwrap() else {
        panic!()
    };
    let v = Virtualizer::new(VirtualizerConfig::default());
    let connector = virtualizer_connector(&v);
    let mut session = etlv_legacy_client::Session::logon(
        connector.as_ref(),
        "admin",
        "pw",
        etlv_protocol::message::SessionRole::Control,
        0,
    )
    .unwrap();
    session.sql(&workload.target_ddl).unwrap();
    session.logoff();
    let client = LegacyEtlClient::new(connector);
    let result = client.run_import_data(&job, &workload.data).unwrap();

    assert_eq!(result.report.errors_et, workload.bad_date_rows.len() as u64);
    // The ET table names exactly the seeded bad rows.
    let et = v
        .cdw()
        .execute("SELECT SEQNO FROM PROD.CUSTOMER_ET ORDER BY SEQNO")
        .unwrap();
    let recorded: Vec<u64> = et
        .rows
        .iter()
        .map(|r| match &r[0] {
            etlv_protocol::data::Value::Int(v) => *v as u64,
            _ => panic!(),
        })
        .collect();
    assert_eq!(recorded, workload.bad_date_rows);
}
