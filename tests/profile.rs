//! The PR 9 continuous-profiling surface, end to end: lock-contention
//! attribution on a hammered CDW table, the `Profile` wire round trip in
//! both renderings, folded-flamegraph/trace reconciliation through a real
//! load, and feature symmetry of the stub surface.

use std::sync::Arc;

use etlv_core::{Virtualizer, VirtualizerConfig};
use etlv_legacy_client::{ClientOptions, LegacyEtlClient, Session};
use etlv_protocol::message::{SessionRole, StatsFormat};
mod common;
use common::{customer_import_job, customer_rows, customer_virtualizer, mem_connector};

/// Two tenants hammering one CDW table from concurrent control sessions:
/// the table's lock site must rank in the profile's contended top-K. A
/// cold (single-threaded) run over the same surface must not rank any
/// CDW table site, because uncontended acquisitions are filtered out.
#[test]
fn hot_table_contention_ranks_its_lock_site() {
    let v = Virtualizer::new(VirtualizerConfig::default());
    v.cdw()
        .execute("CREATE TABLE HOT (ID INTEGER, PAYLOAD VARCHAR(64))")
        .unwrap();
    let connector = mem_connector(&v);

    // Hot phase: tenants "alpha" and "beta" tight-loop inserts into the
    // same table, released together by a barrier so the write-lock
    // acquisitions interleave. Scheduling can still serialize a round,
    // so hammer again (bounded) until a collision lands on
    // `cdw.table/HOT` — the registry accumulates across rounds.
    for _round in 0..5 {
        let start = Arc::new(std::sync::Barrier::new(2));
        let mut workers = Vec::new();
        for tenant in ["alpha", "beta"] {
            let connector = Arc::clone(&connector);
            let start = Arc::clone(&start);
            workers.push(std::thread::spawn(move || {
                let mut session =
                    Session::logon(connector.as_ref(), tenant, "pw", SessionRole::Control, 0)
                        .unwrap();
                start.wait();
                for i in 0..400 {
                    session
                        .sql(&format!(
                            "INSERT INTO HOT VALUES ({i}, 'row {i} from {tenant}')"
                        ))
                        .unwrap();
                }
                session.logoff();
            }));
        }
        for w in workers {
            w.join().unwrap();
        }
        let contended = v
            .obs()
            .registry
            .lock_site_snapshots()
            .iter()
            .any(|s| s.site == "cdw.table/HOT" && s.contended > 0);
        if contended || !etlv_core::obs::enabled() {
            break;
        }
    }

    if !etlv_core::obs::enabled() {
        return;
    }
    let report = v.profile();
    assert!(report.enabled);
    assert!(
        report
            .locks
            .iter()
            .any(|l| l.site == "cdw.table/HOT" && l.contended > 0),
        "hammered table must rank in the contended top-K: {:?}",
        report
            .locks
            .iter()
            .map(|l| (&l.site, l.contended))
            .collect::<Vec<_>>()
    );

    // Cold phase: a fresh node, one session, same statements — nobody to
    // collide with, so no CDW table site may appear among the contended.
    let v = Virtualizer::new(VirtualizerConfig::default());
    v.cdw()
        .execute("CREATE TABLE HOT (ID INTEGER, PAYLOAD VARCHAR(64))")
        .unwrap();
    let connector = mem_connector(&v);
    let mut session =
        Session::logon(connector.as_ref(), "solo", "pw", SessionRole::Control, 0).unwrap();
    for i in 0..100 {
        session
            .sql(&format!("INSERT INTO HOT VALUES ({i}, 'cold row {i}')"))
            .unwrap();
    }
    session.logoff();
    let cold = v.profile();
    assert!(
        !cold.locks.iter().any(|l| l.site.starts_with("cdw.table/")),
        "uncontended table locks must not rank: {:?}",
        cold.locks
            .iter()
            .map(|l| (&l.site, l.contended))
            .collect::<Vec<_>>()
    );
    // The acquisitions still happened — they're in the site snapshots,
    // just not in the contended ranking.
    let sites = v.obs().registry.lock_site_snapshots();
    let hot = sites.iter().find(|s| s.site == "cdw.table/HOT").unwrap();
    assert!(hot.acquires >= 100, "cold acquires still counted");
}

/// The `Profile` request round-trips over the wire from a legacy client:
/// JSON carries the full report, `Series` carries the raw folded-stack
/// text, and after a real load the folded totals reconcile with the
/// job's trace attribution.
#[test]
fn profile_wire_round_trip_and_trace_reconciliation() {
    let v = customer_virtualizer(VirtualizerConfig {
        file_size_threshold: 512,
        ..Default::default()
    });
    let client = LegacyEtlClient::with_options(
        mem_connector(&v),
        ClientOptions {
            chunk_rows: 25,
            sessions: Some(2),
            ..Default::default()
        },
    );
    client
        .run_import_data(&customer_import_job(), &customer_rows(100))
        .unwrap();

    let mut session = Session::logon(
        client.connector().as_ref(),
        "admin",
        "pw",
        SessionRole::Control,
        0,
    )
    .unwrap();
    let json = session.profile(StatsFormat::Json).unwrap();
    assert_eq!(json.format, StatsFormat::Json);
    assert!(json.body.contains("\"enabled\""), "{}", json.body);
    assert!(json.body.contains("\"stages\""), "{}", json.body);
    assert!(json.body.contains("\"locks\""), "{}", json.body);
    assert!(json.body.contains("\"folded\""), "{}", json.body);

    let folded = session.profile(StatsFormat::Series).unwrap();
    assert_eq!(folded.format, StatsFormat::Series);
    session.logoff();

    if !etlv_core::obs::enabled() {
        assert!(json.body.contains("\"enabled\": false"), "{}", json.body);
        assert!(folded.body.is_empty(), "{}", folded.body);
        return;
    }
    assert!(folded.body.contains("job;acquisition;"), "{}", folded.body);
    assert!(
        folded.body.contains("job;application;apply "),
        "{}",
        folded.body
    );
    // The folded leaves are the trace's attribution verbatim, so the
    // folded grand total equals the job's attributed wall time exactly.
    let trace = v.trace(1).expect("job 1 still in the journal");
    let folded_total: u64 = folded
        .body
        .lines()
        .filter_map(|l| l.rsplit_once(' '))
        .map(|(_, v)| v.parse::<u64>().unwrap())
        .sum();
    let attributed: u64 = trace.attribution.iter().map(|(_, us)| *us).sum();
    assert_eq!(
        folded_total, attributed,
        "folded stacks and trace attribution must agree"
    );
    // Stage CPU/wall accounting saw the pipeline stages.
    let report = v.profile();
    let convert = report.stages.iter().find(|s| s.stage == "convert").unwrap();
    assert!(convert.samples >= 1, "convert stage sampled");
    // Single-threaded spans can't burn (much) more CPU than wall; the
    // two clocks tick independently, so allow per-sample granularity
    // jitter rather than demanding cpu <= wall exactly.
    let jitter = 200 * convert.samples;
    assert!(
        convert.cpu_us <= convert.wall_us + jitter,
        "thread CPU time implausibly exceeds wall time: cpu={} wall={} samples={}",
        convert.cpu_us,
        convert.wall_us,
        convert.samples
    );
    let apply = report.stages.iter().find(|s| s.stage == "apply").unwrap();
    assert!(apply.samples >= 1, "apply stage sampled");
}

/// Feature symmetry: the profile surface exposes the same types and
/// methods in both builds, the noop stubs record nothing, and the report
/// degrades to `enabled: false` with empty sections rather than a
/// different shape.
#[test]
fn profile_surface_is_feature_symmetric() {
    use etlv_core::obs::{TrackedCondvar, TrackedMutex, TrackedRwLock};

    let v = Virtualizer::new(VirtualizerConfig::default());
    let report = v.profile();
    assert_eq!(report.enabled, etlv_core::obs::enabled());
    let json = v.profile_json();
    assert!(json.contains("\"enabled\""), "{json}");
    assert!(json.contains("\"stages\""), "{json}");
    assert!(json.contains("\"pool\""), "{json}");

    // The tracked primitives construct and operate identically; only the
    // recording differs.
    let registry = &v.obs().registry;
    let m = TrackedMutex::new(registry.lock_site("sym.mutex"), 1u32);
    *m.lock() += 1;
    assert_eq!(*m.lock(), 2);
    let rw = TrackedRwLock::new(registry.lock_site("sym.rwlock"), 7u32);
    assert_eq!(*rw.read(), 7);
    *rw.write() = 8;
    assert_eq!(*rw.read(), 8);
    let _cv = TrackedCondvar::new(registry.lock_site("sym.condvar"));

    let sites = registry.lock_site_snapshots();
    if etlv_core::obs::enabled() {
        let mutex_site = sites.iter().find(|s| s.site == "sym.mutex").unwrap();
        assert_eq!(mutex_site.acquires, 2);
        assert_eq!(mutex_site.contended, 0);
        assert_eq!(mutex_site.hold_us.count, 2, "hold time recorded per drop");
    } else {
        assert!(sites.is_empty(), "noop registry snapshots no sites");
        assert!(report.stages.iter().all(|s| s.samples == 0));
        assert!(report.locks.is_empty());
        assert!(report.folded.is_empty());
        assert_eq!(report.folded_jobs, 0);
    }
}
