//! Shared harness for the integration suites: server spin-up, client
//! connectors, canned jobs, and quiescence checks.
//!
//! Every suite used to carry its own copy of the duplex-pair connector
//! and script boilerplate; they live here once now. Each test binary
//! compiles this module independently and uses a different subset, hence
//! the file-wide `dead_code` allowance.
#![allow(dead_code)]

use std::io;
use std::sync::Arc;
use std::time::{Duration, Instant};

use etlv_core::{Virtualizer, VirtualizerConfig};
use etlv_legacy_client::{Connect, FnConnector, Session};
use etlv_protocol::message::SessionRole;
use etlv_protocol::transport::{duplex, ChaosTransport, Transport};
use etlv_script::{compile, parse_script, ExportJob, ImportJob, JobPlan};

/// In-process duplex connector: each connect is a fresh duplex pair with
/// a server thread on the far end — the node exactly as TCP clients see
/// it, minus the socket.
pub fn mem_connector(
    v: &Virtualizer,
) -> Arc<FnConnector<impl Fn() -> io::Result<Box<dyn Transport>> + Send + Sync>> {
    let v = v.clone();
    Arc::new(FnConnector(move || {
        let (client_end, server_end) = duplex();
        let v = v.clone();
        std::thread::spawn(move || {
            let _ = v.serve(server_end);
        });
        Ok(Box::new(client_end) as Box<dyn Transport>)
    }))
}

/// Like [`mem_connector`], but the client end runs through a
/// [`ChaosTransport`] driven by the virtualizer's own fault injector —
/// the plan's `transport` spec decides which outgoing data-chunk frames
/// are dropped, truncated, or severed. Panics if the node's config
/// carries no fault plan.
pub fn chaos_mem_connector(
    v: &Virtualizer,
) -> Arc<FnConnector<impl Fn() -> io::Result<Box<dyn Transport>> + Send + Sync>> {
    let hook = v
        .fault_injector()
        .expect("config must carry a fault plan")
        .transport_hook();
    let v = v.clone();
    Arc::new(FnConnector(move || {
        let (client_end, server_end) = duplex();
        let v = v.clone();
        std::thread::spawn(move || {
            let _ = v.serve(server_end);
        });
        Ok(Box::new(ChaosTransport::new(client_end, hook.clone())) as Box<dyn Transport>)
    }))
}

/// Two-column import script against `table` (error tables `{table}_ET` /
/// `{table}_UV`).
pub fn simple_import_script(table: &str) -> String {
    format!(
        ".logon h/u,p;\n\
         .layout L;\n\
         .field A varchar(8);\n\
         .field B varchar(32);\n\
         .begin import tables {table} errortables {table}_ET {table}_UV;\n\
         .dml label Go;\n\
         insert into {table} values (:A, :B);\n\
         .import infile f format vartext '|' layout L apply Go;\n\
         .end load\n"
    )
}

/// Compile [`simple_import_script`] into the client's job plan.
pub fn simple_import_job(table: &str) -> ImportJob {
    match compile(&parse_script(&simple_import_script(table)).unwrap()).unwrap() {
        JobPlan::Import(job) => job,
        _ => panic!("script is an import job"),
    }
}

/// Two-session export job around `select`.
pub fn export_job(select: &str) -> ExportJob {
    let src = format!(
        ".logon h/u,p;\n.begin export sessions 2;\n.export outfile out format vartext '|';\n{select};\n.end export;\n"
    );
    match compile(&parse_script(&src).unwrap()).unwrap() {
        JobPlan::Export(job) => job,
        _ => panic!("script is an export job"),
    }
}

/// `n` vartext rows for the simple two-column table.
pub fn kv_rows(n: usize) -> Vec<u8> {
    (0..n)
        .flat_map(|i| format!("k{i:04}|value-{i:04}\n").into_bytes())
        .collect()
}

/// Like [`kv_rows`], tagged per client so concurrent writers' rows are
/// distinguishable.
pub fn labeled_kv_rows(n: usize, tag: usize) -> Vec<u8> {
    (0..n)
        .flat_map(|i| format!("k{i:04}|client-{tag}-row-{i:04}\n").into_bytes())
        .collect()
}

/// Create the simple two-column target table over the wire.
pub fn create_simple_target(connector: &dyn Connect, table: &str) {
    let mut session = Session::logon(connector, "ops", "pw", SessionRole::Control, 0).unwrap();
    session
        .sql(&format!(
            "CREATE TABLE {table} (A VARCHAR(8), B VARCHAR(32))"
        ))
        .unwrap();
    session.logoff();
}

/// The three-column `PROD.CUSTOMER` import the observability and trace
/// suites drive (multi-chunk, date-cast DML).
pub const CUSTOMER_IMPORT_SCRIPT: &str = r#"
.logon host/user,pass;
.layout CustLayout;
.field CUST_ID varchar(5);
.field CUST_NAME varchar(50);
.field JOIN_DATE varchar(10);
.begin import tables PROD.CUSTOMER
errortables PROD.CUSTOMER_ET PROD.CUSTOMER_UV;
.dml label InsApply;
insert into PROD.CUSTOMER values (
    trim(:CUST_ID), trim(:CUST_NAME),
    cast(:JOIN_DATE as DATE format `YYYY-MM-DD') );
.import infile input.txt
    format vartext `|' layout CustLayout
    apply InsApply;
.end load
"#;

/// Compile [`CUSTOMER_IMPORT_SCRIPT`] into the client's job plan.
pub fn customer_import_job() -> ImportJob {
    match compile(&parse_script(CUSTOMER_IMPORT_SCRIPT).unwrap()).unwrap() {
        JobPlan::Import(job) => job,
        _ => panic!("expected import"),
    }
}

/// `n` clean rows for `PROD.CUSTOMER`.
pub fn customer_rows(n: usize) -> Vec<u8> {
    (0..n)
        .flat_map(|i| format!("i{i:03}|name{i}|2012-01-01\n").into_bytes())
        .collect()
}

/// A node with `PROD.CUSTOMER` already created in its CDW.
pub fn customer_virtualizer(config: VirtualizerConfig) -> Virtualizer {
    let v = Virtualizer::new(config);
    v.cdw()
        .execute("CREATE TABLE PROD.CUSTOMER (CUST_ID VARCHAR(5), CUST_NAME VARCHAR(50), JOIN_DATE DATE)")
        .unwrap();
    v
}

/// The node must end every scenario with all credits home and zero bytes
/// in flight; server-side drains finish asynchronously after a client
/// error, so poll briefly before declaring a leak.
pub fn assert_quiescent(v: &Virtualizer) {
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        if v.credits().available() == v.credits().capacity() && v.memory().in_flight() == 0 {
            return;
        }
        if Instant::now() > deadline {
            panic!(
                "node not quiescent: {}/{} credits available, {} bytes in flight",
                v.credits().available(),
                v.credits().capacity(),
                v.memory().in_flight()
            );
        }
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// Wait (bounded) for the node's session registry and job table to empty.
pub fn wait_idle(v: &Virtualizer) {
    let deadline = Instant::now() + Duration::from_secs(5);
    while v.active_jobs() > 0 || v.active_sessions() > 0 {
        assert!(
            Instant::now() < deadline,
            "node did not quiesce: {} jobs, {} sessions",
            v.active_jobs(),
            v.active_sessions()
        );
        std::thread::sleep(Duration::from_millis(5));
    }
}

/// Pull a counter out of a JSON stats snapshot rendered as
/// `"name": value` pairs (the workspace carries no JSON parser).
pub fn counter(snapshot: &str, name: &str) -> u64 {
    let key = format!("\"{name}\": ");
    let at = snapshot
        .find(&key)
        .unwrap_or_else(|| panic!("{name} not in snapshot"));
    snapshot[at + key.len()..]
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect::<String>()
        .parse()
        .unwrap()
}
