//! PR 4 causal tracing, end to end: wire-propagated trace context, span
//! trees assembled over the `Trace` request, critical-path attribution
//! that sums to the measured wall time, the time-series sampler, and
//! backward compatibility with trace-free legacy clients.

use std::time::Duration;

use etlv_core::VirtualizerConfig;
use etlv_legacy_client::{ClientOptions, LegacyEtlClient, Session};
use etlv_protocol::message::{BeginLoad, DataChunk, EndLoad, Message, SessionRole, StatsFormat};
mod common;
use common::{customer_import_job, customer_rows, customer_virtualizer, mem_connector};

/// The acceptance scenario: a seeded multi-chunk import yields a complete
/// span tree via the `Trace` wire request — chunk convert/upload/copy
/// spans parent to the job root, the client-minted trace id survives the
/// wire, and the stage attribution partitions the measured wall time.
#[test]
fn multi_chunk_import_yields_complete_span_tree() {
    let v = customer_virtualizer(VirtualizerConfig {
        file_size_threshold: 256, // several uploads
        ..Default::default()
    });
    let client = LegacyEtlClient::with_options(
        mem_connector(&v),
        ClientOptions {
            chunk_rows: 10, // 20 chunks
            sessions: Some(3),
            ..Default::default()
        },
    );
    let result = client
        .run_import_data(&customer_import_job(), &customer_rows(200))
        .unwrap();
    assert_eq!(result.report.rows_applied, 200);
    if !etlv_core::obs::enabled() {
        return;
    }
    assert_ne!(result.trace_id, 0, "client minted a trace id");

    // Assembled server-side: a complete tree rooted at job.begin.
    let trace = v.trace(1).expect("trace for job 1");
    assert!(trace.complete, "job.end folded into the root");
    assert_eq!(trace.job, 1);
    assert_eq!(
        trace.trace_id, result.trace_id,
        "client trace id propagated over the wire"
    );
    assert_eq!(trace.orphans, 0, "every span's parent was retained");

    // Every pipeline stage appears, and parents to the job root.
    let root_span = trace.nodes[trace.root].span;
    for kind in [
        "chunk.queue",
        "chunk.convert",
        "file.upload",
        "copy",
        "apply",
        "ack.wait",
    ] {
        let spans: Vec<_> = trace.nodes.iter().filter(|n| n.kind == kind).collect();
        assert!(!spans.is_empty(), "no {kind} spans in trace");
        for n in &spans {
            assert_eq!(n.parent, root_span, "{kind} span parents to the job root");
        }
    }
    assert_eq!(
        trace
            .nodes
            .iter()
            .filter(|n| n.kind == "chunk.convert")
            .count(),
        20,
        "one convert span per chunk"
    );

    // Attribution partitions the wall: buckets sum to wall_micros exactly
    // (well within the 5% acceptance bound), and the wall tracks the
    // node's own phase-timed report.
    assert_eq!(trace.attributed_total(), trace.wall_micros);
    let tracks_measured =
        |trace: &etlv_core::trace::JobTrace, v: &etlv_core::Virtualizer| -> bool {
            let report = v.last_job_report().unwrap();
            let measured = (report.acquisition + report.application).as_micros() as u64;
            trace.wall_micros >= measured
                && trace.wall_micros as f64 <= measured as f64 * 1.05 + 2_000.0
        };
    // The 5% bound is a property of the tracing, not of the machine, but
    // scheduler preemption on a loaded box shows up as untracked gaps
    // between spans; give the bound two fresh-import attempts before
    // declaring the attribution wrong. (The exact partition above is
    // load-independent and never retried.)
    let wall_bound = tracks_measured(&trace, &v)
        || (0..2).any(|_| {
            let v = customer_virtualizer(VirtualizerConfig {
                file_size_threshold: 256,
                ..Default::default()
            });
            let client = LegacyEtlClient::with_options(
                mem_connector(&v),
                ClientOptions {
                    chunk_rows: 10,
                    sessions: Some(3),
                    ..Default::default()
                },
            );
            client
                .run_import_data(&customer_import_job(), &customer_rows(200))
                .unwrap();
            let retried = v.trace(1).expect("trace for job 1");
            assert_eq!(retried.attributed_total(), retried.wall_micros);
            tracks_measured(&retried, &v)
        });
    assert!(
        wall_bound,
        "trace wall {} not within 5% of the phase-timed report on three attempts",
        trace.wall_micros
    );

    // The same tree over the wire: Trace request on a control session.
    let mut session = Session::logon(
        client.connector().as_ref(),
        "admin",
        "pw",
        SessionRole::Control,
        0,
    )
    .unwrap();
    let reply = session.trace(1).unwrap();
    assert!(reply.found);
    assert_eq!(reply.job, 1);
    for needle in [
        "\"kind\": \"job.begin\"",
        "\"kind\": \"chunk.convert\"",
        "\"kind\": \"file.upload\"",
        "\"kind\": \"copy\"",
        "\"kind\": \"apply\"",
        "\"critical_stage\"",
        "\"attribution\"",
    ] {
        assert!(
            reply.body.contains(needle),
            "{needle} missing: {}",
            reply.body
        );
    }

    // Unknown jobs answer found=false rather than erroring.
    let missing = session.trace(999).unwrap();
    assert!(!missing.found);
    assert!(missing.body.is_empty());
    session.logoff();
}

/// The background sampler captures a non-empty rows/sec series during a
/// load, renderable as JSON locally and over the wire (`Stats` with the
/// `Series` format).
#[test]
fn sampler_records_rows_per_second_series() {
    let v = customer_virtualizer(VirtualizerConfig {
        sampler_tick: Duration::from_millis(2),
        sampler_capacity: 4096,
        file_size_threshold: 512,
        // Stretch the job over enough ticks to see the series move.
        simulated_convert_cost_per_mb: Duration::from_millis(400),
        ..Default::default()
    });
    let client = LegacyEtlClient::with_options(
        mem_connector(&v),
        ClientOptions {
            chunk_rows: 25,
            sessions: Some(2),
            ..Default::default()
        },
    );
    let result = client
        .run_import_data(&customer_import_job(), &customer_rows(400))
        .unwrap();
    assert_eq!(result.report.rows_applied, 400);
    if !etlv_core::obs::enabled() {
        return;
    }

    let json = v.sampler_json();
    assert!(json.contains("\"enabled\": true"), "{json}");
    assert!(
        json.contains("\"metric\": \"pipeline.convert_rows\", \"kind\": \"counter\""),
        "{json}"
    );
    assert!(json.contains("\"rate_per_s\""), "{json}");
    // At least one sampled point carries a nonzero convert_rows total.
    let at = json.find("pipeline.convert_rows").unwrap();
    let window = &json[at..json[at..].find("]}").map_or(json.len(), |e| at + e)];
    assert!(
        window.contains("\"value\": 4") || window.contains("\"value\": 400"),
        "rows/sec series saw conversion progress: {window}"
    );
    // Gauges sampled alongside counters.
    assert!(
        json.contains("\"metric\": \"credit.in_flight\", \"kind\": \"gauge\""),
        "{json}"
    );

    // Freeze the sampler before comparing: a live sampler keeps
    // appending points between the local snapshot and the wire request,
    // so exact equality would race the tick.
    v.stop_sampler();
    let json = v.sampler_json();

    // The same series over the wire.
    let mut session = Session::logon(
        client.connector().as_ref(),
        "admin",
        "pw",
        SessionRole::Control,
        0,
    )
    .unwrap();
    let reply = session.stats(StatsFormat::Series).unwrap();
    assert_eq!(reply.format, StatsFormat::Series);
    assert_eq!(reply.body, json, "wire body is the sampler document");
    session.logoff();
}

/// A sampler that is configured off (the default) answers the Series
/// stats request with a disabled document instead of failing.
#[test]
fn series_request_with_sampler_disabled() {
    let v = customer_virtualizer(VirtualizerConfig::default());
    let client = LegacyEtlClient::new(mem_connector(&v));
    let mut session = Session::logon(
        client.connector().as_ref(),
        "admin",
        "pw",
        SessionRole::Control,
        0,
    )
    .unwrap();
    let reply = session.stats(StatsFormat::Series).unwrap();
    assert!(reply.body.contains("\"enabled\": false"), "{}", reply.body);
    session.logoff();
}

/// Backward compatibility: an unmodified legacy client — no trace trailer
/// on Logon or BeginLoad — still loads against the instrumented gateway,
/// which mints a root trace server-side.
#[test]
fn trace_free_legacy_client_still_loads() {
    let v = customer_virtualizer(VirtualizerConfig::default());
    let client = LegacyEtlClient::new(mem_connector(&v));
    let job = customer_import_job();

    // Hand-run the wire conversation run_import performs, with trace: None
    // everywhere (Session::logon never attaches one).
    let mut control = Session::logon(
        client.connector().as_ref(),
        "user",
        "pass",
        SessionRole::Control,
        0,
    )
    .unwrap();
    let load_token = match control
        .request(Message::BeginLoad(BeginLoad {
            target_table: job.target.clone(),
            error_table_et: job.error_table_et.clone(),
            error_table_uv: job.error_table_uv.clone(),
            layout: job.layout.clone(),
            format: job.format,
            sessions: 1,
            error_limit: job.errlimit,
            trace: None,
        }))
        .unwrap()
    {
        Message::BeginLoadOk { load_token } => load_token,
        other => panic!("expected BeginLoadOk, got {:?}", other.kind()),
    };

    let mut data_session = Session::logon(
        client.connector().as_ref(),
        "user",
        "pass",
        SessionRole::Data,
        load_token,
    )
    .unwrap();
    let data = customer_rows(30);
    let reply = data_session
        .request(Message::DataChunk(DataChunk {
            chunk_seq: 1,
            base_seq: 1,
            record_count: 30,
            data: data.into(),
        }))
        .unwrap();
    assert!(matches!(reply, Message::Ack { chunk_seq: 1 }));
    data_session.logoff();

    let report = match control
        .request(Message::EndLoad(EndLoad {
            dml: job.dml.clone(),
        }))
        .unwrap()
    {
        Message::LoadReport(r) => r,
        other => panic!("expected LoadReport, got {:?}", other.kind()),
    };
    assert_eq!(report.rows_applied, 30, "trace-free load applied fully");

    if etlv_core::obs::enabled() {
        // The gateway minted a trace of its own: the tree is still
        // complete and queryable.
        let trace = v.trace(load_token).expect("gateway-minted trace");
        assert!(trace.complete);
        assert_ne!(trace.trace_id, 0, "server minted a nonzero trace id");
        assert!(trace.nodes.iter().any(|n| n.kind == "chunk.convert"));
    }
    control.logoff();
}
