//! PR 7 plan-shape pins: EXPLAIN must prove the virtualizer's hot
//! emulation queries execute as index seeks, not scans.
//!
//! Three access patterns are load-bearing for apply latency:
//! 1. the uniqueness-emulation existing-conflict probe (staging ⋈ target
//!    on the target's unique key) — must be an index-lookup join against
//!    the target's PK index;
//! 2. the adaptive handler's bisection COUNT over a `__SEQ` range on the
//!    staging table — must seek the staging PK index;
//! 3. singleton staging-row fetches by `__SEQ` — must be a point seek.

use etlv_cdw::Cdw;
use etlv_core::emulate;
use etlv_core::xcompile::{compile_dml, staging_ddl};
use etlv_protocol::data::LegacyType as T;
use etlv_protocol::layout::Layout;

fn setup() -> (Cdw, etlv_core::xcompile::CompiledDml) {
    let cdw = Cdw::new(); // native_unique off: emulation is planned
    cdw.execute(
        "CREATE TABLE PROD.CUSTOMER (CUST_ID VARCHAR(5), CUST_NAME VARCHAR(50), JOIN_DATE DATE, PRIMARY KEY (CUST_ID))",
    )
    .unwrap();
    let layout = Layout::new("L")
        .field("CUST_ID", T::VarChar(5))
        .field("CUST_NAME", T::VarChar(50))
        .field("JOIN_DATE", T::VarChar(10));
    let compiled = compile_dml(
        "insert into PROD.CUSTOMER values (trim(:CUST_ID), trim(:CUST_NAME), cast(:JOIN_DATE as DATE format 'YYYY-MM-DD'))",
        &layout,
        "STG",
    )
    .unwrap();
    cdw.execute(&staging_ddl("STG", &layout)).unwrap();
    for seq in 0..8 {
        cdw.execute(&format!(
            "INSERT INTO STG VALUES ({seq}, 'i{seq}', 'n{seq}', '2012-01-01')"
        ))
        .unwrap();
    }
    (cdw, compiled)
}

#[test]
fn uv_probe_is_an_index_lookup_join_on_the_target_pk() {
    let (cdw, compiled) = setup();
    let emu = emulate::plan(&cdw, &compiled)
        .unwrap()
        .expect("emulation planned");
    let plan = cdw
        .explain_stmt(&emu.existing_conflicts_stmt(0, 8))
        .unwrap();
    let text = plan.join("\n");
    assert!(
        text.contains("index_lookup_join")
            && text.contains("PROD.CUSTOMER")
            && text.contains("index=PK"),
        "UV existing-conflict probe must index-probe the target PK:\n{text}"
    );
    assert!(
        !text.contains("nested_loop_join"),
        "no nested loop in the probe:\n{text}"
    );
}

#[test]
fn bisection_count_probe_seeks_the_staging_seq_index() {
    let (cdw, _compiled) = setup();
    let plan = cdw
        .explain("SELECT COUNT(*) FROM STG WHERE (__SEQ >= 2) AND (__SEQ < 6)")
        .unwrap();
    let text = plan.join("\n");
    assert!(
        text.contains("index_seek") && text.contains("table=STG") && text.contains("index=PK"),
        "bisection COUNT must seek the staging __SEQ index:\n{text}"
    );
    assert!(!text.contains("full_scan"), "no scan in the probe:\n{text}");
}

#[test]
fn singleton_row_fetch_is_a_point_seek() {
    let (cdw, compiled) = setup();
    let emu = emulate::plan(&cdw, &compiled)
        .unwrap()
        .expect("emulation planned");
    let plan = cdw.explain_stmt(&emu.staging_row_stmt(3)).unwrap();
    let text = plan.join("\n");
    assert!(
        text.contains("index_seek") && text.contains("table=STG"),
        "singleton staging fetch must be a point seek:\n{text}"
    );

    // The row-wise apply statement itself (INSERT..SELECT over a range)
    // also rides the staging index.
    let apply = cdw
        .explain_stmt(&compiled.range_stmt(Some(2), Some(4)))
        .unwrap();
    let apply_text = apply.join("\n");
    assert!(
        apply_text.contains("index_seek") && apply_text.contains("table=STG"),
        "range apply must seek the staging index:\n{apply_text}"
    );
}

#[test]
fn intra_range_dup_probe_rides_the_staging_index() {
    let (cdw, compiled) = setup();
    let emu = emulate::plan(&cdw, &compiled)
        .unwrap()
        .expect("emulation planned");
    let plan = cdw.explain_stmt(&emu.intra_range_dups_stmt(0, 8)).unwrap();
    let text = plan.join("\n");
    assert!(
        text.contains("index_seek") && text.contains("table=STG"),
        "intra-range duplicate probe must seek the staging index:\n{text}"
    );
}
