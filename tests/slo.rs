//! PR 8 acceptance: per-tenant SLO observability end to end. A seeded
//! mixed-tenant workload (one error-heavy tenant, one clean) must fire
//! exactly the heavy tenant's error-rate burn alert; tenant-labeled
//! Prometheus families must survive the same conformance rules as the
//! node surface; and the `Health` wire request must round-trip from an
//! unmodified legacy-client session in both renderings.

use std::time::Duration;

use etlv_core::obs::SloPolicy;
use etlv_core::{Virtualizer, VirtualizerConfig};
use etlv_legacy_client::{ClientOptions, LegacyEtlClient, Session};
use etlv_protocol::message::{SessionRole, StatsFormat};
use etlv_workloadgen::{tenant_user, ImportSpec};

mod common;
use common::mem_connector;

/// Burn-rate windows small enough that a test's worth of traffic spans
/// both; the latency target is generous so only deliberate error budgets
/// are spent.
fn test_policy() -> SloPolicy {
    SloPolicy {
        latency_target: Duration::from_secs(30),
        fast_window: Duration::from_millis(400),
        slow_window: Duration::from_millis(1600),
        ..SloPolicy::default()
    }
}

/// A seeded import for `tenant`: same generator the workload replay
/// uses, so the payload (and its planned error rows) is a pure function
/// of the spec.
fn tenant_import(tenant: u16, rows: u32, date_error_ppm: u32) -> ImportSpec {
    ImportSpec {
        table: format!("WG_T{tenant:02}_TAB01"),
        user: tenant_user(tenant),
        rows,
        row_bytes: 80,
        date_error_ppm,
        dup_key_ppm: 0,
        sessions: 2,
        key_space: u32::from(tenant),
        data_seed: 0x510_0000 + u64::from(tenant),
        planned_bad_dates: 0,
        planned_dup_keys: 0,
    }
}

fn run_spec(v: &Virtualizer, spec: &ImportSpec) -> u64 {
    v.cdw().execute(&spec.target_ddl()).unwrap();
    let client = LegacyEtlClient::with_options(
        mem_connector(v),
        ClientOptions {
            chunk_rows: 50,
            sessions: Some(2),
            ..Default::default()
        },
    );
    let result = client
        .run_import_data(&spec.job(), &spec.payload().data)
        .unwrap();
    result.report.errors_et
}

/// The headline scenario: tenant 0 spends ~15% of its rows on bad dates
/// against a 0.1% error budget (burn ≫ both thresholds); tenant 1 is
/// clean. Exactly the heavy tenant's `error_rate` objective may alert.
#[test]
fn heavy_tenant_burn_alert_fires_light_tenant_stays_green() {
    let v = Virtualizer::new(VirtualizerConfig {
        slo: test_policy(),
        ..Default::default()
    });
    let heavy = tenant_import(0, 400, 150_000);
    let light = tenant_import(1, 400, 0);
    let heavy_errors = run_spec(&v, &heavy);
    let light_errors = run_spec(&v, &light);
    assert!(heavy_errors > 0, "seeded payload must carry bad dates");
    assert_eq!(light_errors, 0, "clean payload must stay clean");

    if !etlv_core::obs::enabled() {
        let report = v.health();
        assert!(!report.enabled);
        assert!(report.tenants.is_empty(), "noop registry has no tenants");
        return;
    }

    let report = v.health();
    assert!(report.enabled);
    let tenant = |name: &str| {
        report
            .tenants
            .iter()
            .find(|t| t.tenant == name)
            .unwrap_or_else(|| panic!("missing tenant {name} in {report:?}"))
    };
    let heavy_health = tenant(&tenant_user(0));
    assert_eq!(
        heavy_health.alerts,
        vec!["error_rate"],
        "exactly the error-rate alert: {heavy_health:?}"
    );
    let error_rate = heavy_health
        .objectives
        .iter()
        .find(|s| s.objective == "error_rate")
        .unwrap();
    assert!(error_rate.alerting);
    assert!(
        error_rate.burn_fast > 100.0,
        "~15% errors against a 0.1% budget: {error_rate:?}"
    );
    assert_eq!(error_rate.bad_fast, heavy_errors);

    let light_health = tenant(&tenant_user(1));
    assert!(
        light_health.alerts.is_empty(),
        "clean tenant must stay green: {light_health:?}"
    );
    assert!(!report.overload.overloaded, "{:?}", report.overload);
}

/// Prometheus conformance for the tenant-labeled surface: every sample
/// line must parse as `name{labels} value`, and every family — tenant
/// families included — must be announced by exactly one `# TYPE` line.
fn assert_prometheus_conforms(text: &str) {
    let mut typed: std::collections::HashSet<String> = std::collections::HashSet::new();
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split_whitespace();
            let name = parts.next().expect("TYPE line has a name");
            let kind = parts.next().expect("TYPE line has a kind");
            assert!(
                matches!(kind, "counter" | "gauge" | "summary" | "histogram"),
                "bad TYPE kind: {line}"
            );
            assert!(typed.insert(name.to_string()), "duplicate TYPE for {name}");
            continue;
        }
        let (series, value) = line.rsplit_once(' ').expect("sample line has a value");
        value
            .parse::<f64>()
            .unwrap_or_else(|_| panic!("bad value in {line}"));
        let name = series.split('{').next().unwrap();
        assert!(
            name.chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'),
            "bad metric name in {line}"
        );
        let family = ["_count", "_sum", "_max"]
            .iter()
            .find_map(|s| name.strip_suffix(s))
            .unwrap_or(name);
        assert!(
            typed.contains(family) || typed.contains(name),
            "sample {name} missing TYPE metadata"
        );
    }
}

/// Two tenants' worth of traffic, rendered over the wire: the tenant
/// families carry both labels, conform, and agree with the JSON
/// snapshot's `tenants` section.
#[test]
fn tenant_labeled_stats_conform_over_the_wire() {
    let v = Virtualizer::new(VirtualizerConfig::default());
    run_spec(&v, &tenant_import(0, 120, 0));
    run_spec(&v, &tenant_import(1, 120, 0));
    if !etlv_core::obs::enabled() {
        return;
    }

    let client = LegacyEtlClient::new(mem_connector(&v));
    let mut session = Session::logon(
        client.connector().as_ref(),
        "admin",
        "pw",
        SessionRole::Control,
        0,
    )
    .unwrap();
    let prom = session.stats(StatsFormat::Prometheus).unwrap().body;
    assert_prometheus_conforms(&prom);
    for user in [tenant_user(0), tenant_user(1)] {
        assert!(
            prom.contains(&format!(
                "etlv_tenant_rows_applied{{tenant=\"{user}\"}} 120\n"
            )),
            "{prom}"
        );
        assert!(
            prom.contains(&format!(
                "etlv_tenant_jobs_completed{{tenant=\"{user}\"}} 1\n"
            )),
            "{prom}"
        );
    }
    assert_eq!(
        prom.matches("# TYPE etlv_tenant_rows_applied counter\n")
            .count(),
        1,
        "tenant families are metric-major: one TYPE line for both tenants"
    );

    let json = session.stats(StatsFormat::Json).unwrap().body;
    for user in [tenant_user(0), tenant_user(1)] {
        assert!(json.contains(&format!("\"tenant\": \"{user}\"")), "{json}");
    }
    session.logoff();
}

/// The `Health` request from an unmodified legacy-client session: JSON
/// and Prometheus bodies round-trip, the Prometheus body conforms, and a
/// `Series` format request degrades to JSON like the stats surface.
#[test]
fn health_wire_round_trip() {
    let v = Virtualizer::new(VirtualizerConfig {
        slo: test_policy(),
        ..Default::default()
    });
    run_spec(&v, &tenant_import(0, 200, 150_000));

    let client = LegacyEtlClient::new(mem_connector(&v));
    let mut session = Session::logon(
        client.connector().as_ref(),
        "ops",
        "pw",
        SessionRole::Control,
        0,
    )
    .unwrap();

    let json = session.health(StatsFormat::Json).unwrap();
    assert_eq!(json.format, StatsFormat::Json);
    assert!(json.body.contains("\"overload\""), "{}", json.body);
    let prom = session.health(StatsFormat::Prometheus).unwrap();
    assert_eq!(prom.format, StatsFormat::Prometheus);
    assert_prometheus_conforms(&prom.body);
    assert!(prom.body.contains("etlv_node_overloaded "), "{}", prom.body);

    let series = session.health(StatsFormat::Series).unwrap();
    assert!(
        series.body.contains("\"obs_enabled\""),
        "series falls back to the JSON document: {}",
        series.body
    );

    if etlv_core::obs::enabled() {
        let user = tenant_user(0);
        assert!(
            json.body.contains(&format!("\"tenant\": \"{user}\"")),
            "{}",
            json.body
        );
        assert!(
            prom.body.contains(&format!(
                "etlv_slo_alert{{tenant=\"{user}\",objective=\"error_rate\"}} 1\n"
            )),
            "{}",
            prom.body
        );
    } else {
        assert!(
            json.body.contains("\"obs_enabled\": false"),
            "{}",
            json.body
        );
    }
    session.logoff();
}
