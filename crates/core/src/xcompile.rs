//! SQL cross-compilation: legacy dialect → CDW dialect.
//!
//! Three jobs (paper §3/§6):
//!
//! 1. **Pass-through translation** of control-session SQL: parse in the
//!    legacy dialect, render in the CDW dialect (FORMAT casts become
//!    `TO_DATE`/`TO_CHAR`, Unicode charsets become `NVARCHAR`, `SEL`
//!    normalizes, …).
//! 2. **Staging DDL**: the staging table mirrors the job layout with
//!    legacy→CDW type mapping, prefixed by a `__SEQ BIGINT` row-number
//!    column that the adaptive error handler ranges over.
//! 3. **DML rewriting**: the job's per-tuple
//!    `INSERT INTO target VALUES (f(:A), g(:B))` becomes the set-oriented
//!    `INSERT INTO target SELECT f(S.A), g(S.B) FROM staging` — the
//!    "bulk processing nature of the DML statements that Hyper-Q
//!    generates" the paper credits for the application phase's
//!    scalability.

use std::fmt;

use etlv_protocol::layout::Layout;
use etlv_sql::ast::{
    BinaryOp, Expr, Insert, InsertSource, Literal, ObjectName, SelectItem, SelectStmt, Stmt,
    TableRef,
};
use etlv_sql::render::render_stmt;
use etlv_sql::transform::map_placeholders;
use etlv_sql::types::SqlType;
use etlv_sql::{parse_statement, Dialect, ParseError};

/// The staging-table sequence column.
pub const SEQ_COL: &str = "__SEQ";

/// Cross-compilation error.
#[derive(Debug, Clone, PartialEq)]
pub enum XcError {
    /// Legacy SQL failed to parse.
    Parse(ParseError),
    /// A placeholder does not match any layout field.
    UnknownPlaceholder(String),
    /// The statement shape is not supported for load DML.
    Unsupported(String),
}

impl fmt::Display for XcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            XcError::Parse(e) => write!(f, "cross-compile parse error: {e}"),
            XcError::UnknownPlaceholder(p) => write!(f, "placeholder :{p} not in layout"),
            XcError::Unsupported(m) => write!(f, "unsupported DML shape: {m}"),
        }
    }
}

impl std::error::Error for XcError {}

impl From<ParseError> for XcError {
    fn from(e: ParseError) -> XcError {
        XcError::Parse(e)
    }
}

/// Translate a control-session SQL statement to CDW text.
pub fn translate_sql(legacy_sql: &str) -> Result<String, XcError> {
    let stmt = parse_statement(legacy_sql, Dialect::Legacy)?;
    if !stmt.placeholders().is_empty() {
        return Err(XcError::Unsupported(
            "placeholders are only valid in load DML".into(),
        ));
    }
    Ok(render_stmt(&stmt, Dialect::Cdw))
}

/// Name of the staging table for a load token.
pub fn staging_table_name(load_token: u64) -> String {
    format!("ETLV_STG_{load_token}")
}

/// Object-store prefix for a load token's staged files.
pub fn staging_prefix(load_token: u64) -> String {
    format!("job{load_token}/")
}

/// CDW DDL creating the staging table for `layout`.
pub fn staging_ddl(table: &str, layout: &Layout) -> String {
    let mut cols = vec![format!("{SEQ_COL} BIGINT")];
    for f in &layout.fields {
        let ty = SqlType::from_legacy(f.ty).legacy_to_cdw();
        cols.push(format!("{} {}", f.name, ty.render(Dialect::Cdw)));
    }
    // Declaring __SEQ as the primary key materializes an ordered index on
    // it in the CDW, turning the adaptive handler's bisection COUNT
    // probes and singleton row fetches into index seeks instead of full
    // staging scans. __SEQ is a generated row number, so the declaration
    // is vacuously satisfiable under native enforcement too.
    cols.push(format!("PRIMARY KEY ({SEQ_COL})"));
    format!("CREATE TABLE {table} ({})", cols.join(", "))
}

/// How the compiled DML applies.
#[derive(Debug, Clone, PartialEq)]
pub enum DmlKind {
    /// A per-tuple INSERT rewritten over the staging table; supports
    /// range-restricted application (adaptive error handling).
    RowWise,
    /// Any other statement; applied once, as-is (already set-oriented in
    /// the source script).
    Passthrough,
}

/// A cross-compiled load DML.
#[derive(Debug, Clone)]
pub struct CompiledDml {
    /// Target table.
    pub target: ObjectName,
    /// Explicit insert column list, if the source DML had one.
    pub insert_columns: Option<Vec<String>>,
    /// CDW projection expressions over staging columns (RowWise only),
    /// in target-column order.
    pub projection: Vec<Expr>,
    /// The original legacy statement (placeholders intact) — used for
    /// per-tuple re-evaluation when attributing errors.
    pub original: Stmt,
    /// Staging table name.
    pub staging_table: String,
    /// Statement kind.
    pub kind: DmlKind,
}

impl CompiledDml {
    /// The rewritten statement restricted to staging rows with
    /// `lo <= __SEQ < hi`. `None` bounds apply to the whole table.
    pub fn range_stmt(&self, lo: Option<u64>, hi: Option<u64>) -> Stmt {
        match self.kind {
            DmlKind::Passthrough => {
                // Translate placeholders were already rejected; render the
                // original as-is (dialect differences resolve at render).
                self.original.clone()
            }
            DmlKind::RowWise => {
                let select = SelectStmt {
                    distinct: false,
                    projection: self
                        .projection
                        .iter()
                        .map(|e| SelectItem::Expr {
                            expr: e.clone(),
                            alias: None,
                        })
                        .collect(),
                    from: Some(TableRef::Named {
                        name: ObjectName::simple(self.staging_table.clone()),
                        alias: None,
                    }),
                    selection: range_filter(lo, hi),
                    group_by: Vec::new(),
                    having: None,
                    order_by: Vec::new(),
                    limit: None,
                };
                Stmt::Insert(Insert {
                    table: self.target.clone(),
                    columns: self.insert_columns.clone(),
                    source: InsertSource::Select(Box::new(select)),
                })
            }
        }
    }

    /// A SELECT over the staging table returning `[__SEQ, fields...]` for
    /// the given range (used by singleton application and error
    /// attribution).
    pub fn staging_scan(&self, lo: Option<u64>, hi: Option<u64>) -> Stmt {
        let mut sel = SelectStmt::new(vec![SelectItem::Wildcard]);
        sel.from = Some(TableRef::Named {
            name: ObjectName::simple(self.staging_table.clone()),
            alias: None,
        });
        sel.selection = range_filter(lo, hi);
        sel.order_by = vec![etlv_sql::ast::OrderItem {
            expr: Expr::col(SEQ_COL),
            desc: false,
        }];
        Stmt::Select(sel)
    }
}

fn range_filter(lo: Option<u64>, hi: Option<u64>) -> Option<Expr> {
    let mut pred: Option<Expr> = None;
    if let Some(lo) = lo {
        pred = Some(Expr::binary(
            Expr::col(SEQ_COL),
            BinaryOp::GtEq,
            Expr::Literal(Literal::Integer(lo as i64)),
        ));
    }
    if let Some(hi) = hi {
        let upper = Expr::binary(
            Expr::col(SEQ_COL),
            BinaryOp::Lt,
            Expr::Literal(Literal::Integer(hi as i64)),
        );
        pred = Some(match pred {
            Some(p) => Expr::binary(p, BinaryOp::And, upper),
            None => upper,
        });
    }
    pred
}

/// Cross-compile the job's DML against `layout` and `staging_table`.
pub fn compile_dml(
    legacy_sql: &str,
    layout: &Layout,
    staging_table: &str,
) -> Result<CompiledDml, XcError> {
    let original = parse_statement(legacy_sql, Dialect::Legacy)?;
    // Validate placeholders against the layout up front.
    for ph in original.placeholders() {
        if layout.field_index(&ph).is_none() {
            return Err(XcError::UnknownPlaceholder(ph));
        }
    }

    if let Stmt::Insert(ins) = &original {
        if let InsertSource::Values(rows) = &ins.source {
            if rows.len() != 1 {
                return Err(XcError::Unsupported("multi-row VALUES in load DML".into()));
            }
            // :FIELD -> staging column reference.
            let mapped = map_placeholders(&original, |name| {
                Some(Expr::Column(ObjectName::simple(name.to_string())))
            });
            let Stmt::Insert(Insert {
                source: InsertSource::Values(mapped_rows),
                ..
            }) = &mapped
            else {
                unreachable!("shape preserved by map_placeholders")
            };
            return Ok(CompiledDml {
                target: ins.table.clone(),
                insert_columns: ins.columns.clone(),
                projection: mapped_rows[0].clone(),
                original,
                staging_table: staging_table.to_string(),
                kind: DmlKind::RowWise,
            });
        }
    }

    // Everything else: must be placeholder-free, applied once.
    if !original.placeholders().is_empty() {
        return Err(XcError::Unsupported(
            "placeholders outside INSERT ... VALUES".into(),
        ));
    }
    let target = match &original {
        Stmt::Insert(i) => i.table.clone(),
        Stmt::Update(u) => u.table.clone(),
        Stmt::Delete(d) => d.table.clone(),
        other => {
            return Err(XcError::Unsupported(format!(
                "load DML must be INSERT/UPDATE/DELETE, got {other:?}"
            )))
        }
    };
    Ok(CompiledDml {
        target,
        insert_columns: None,
        projection: Vec::new(),
        original,
        staging_table: staging_table.to_string(),
        kind: DmlKind::Passthrough,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use etlv_protocol::data::LegacyType;

    fn layout() -> Layout {
        Layout::new("CustLayout")
            .field("CUST_ID", LegacyType::VarChar(5))
            .field("CUST_NAME", LegacyType::VarChar(50))
            .field("JOIN_DATE", LegacyType::VarChar(10))
    }

    const EXAMPLE_DML: &str = "insert into PROD.CUSTOMER values (trim(:CUST_ID), trim(:CUST_NAME), cast(:JOIN_DATE as DATE format 'YYYY-MM-DD'))";

    #[test]
    fn rewrites_example_2_1_to_insert_select() {
        let compiled = compile_dml(EXAMPLE_DML, &layout(), "ETLV_STG_1").unwrap();
        assert_eq!(compiled.kind, DmlKind::RowWise);
        let sql = render_stmt(&compiled.range_stmt(None, None), Dialect::Cdw);
        assert_eq!(
            sql,
            "INSERT INTO PROD.CUSTOMER SELECT TRIM(CUST_ID), TRIM(CUST_NAME), TO_DATE(JOIN_DATE, 'YYYY-MM-DD') FROM ETLV_STG_1"
        );
    }

    #[test]
    fn range_restriction() {
        let compiled = compile_dml(EXAMPLE_DML, &layout(), "S").unwrap();
        let sql = render_stmt(&compiled.range_stmt(Some(10), Some(20)), Dialect::Cdw);
        assert!(
            sql.contains("WHERE (__SEQ >= 10) AND (__SEQ < 20)"),
            "{sql}"
        );
        let sql = render_stmt(&compiled.range_stmt(None, Some(5)), Dialect::Cdw);
        assert!(sql.contains("WHERE __SEQ < 5"), "{sql}");
    }

    #[test]
    fn staging_ddl_maps_types_and_adds_seq() {
        let mut l = layout();
        l.fields.push(etlv_protocol::layout::FieldDef::new(
            "U",
            LegacyType::VarCharUnicode(7),
        ));
        l.fields.push(etlv_protocol::layout::FieldDef::new(
            "B",
            LegacyType::ByteInt,
        ));
        let ddl = staging_ddl("ETLV_STG_9", &l);
        assert!(
            ddl.starts_with("CREATE TABLE ETLV_STG_9 (__SEQ BIGINT, "),
            "{ddl}"
        );
        assert!(ddl.contains("U NVARCHAR(7)"), "{ddl}");
        assert!(ddl.contains("B SMALLINT"), "{ddl}");
        // The DDL parses in the CDW dialect.
        assert!(parse_statement(&ddl, Dialect::Cdw).is_ok());
    }

    #[test]
    fn unknown_placeholder_rejected() {
        let err = compile_dml("insert into T values (:NOPE)", &layout(), "S").unwrap_err();
        assert_eq!(err, XcError::UnknownPlaceholder("NOPE".into()));
    }

    #[test]
    fn passthrough_dml() {
        let compiled = compile_dml(
            "update PROD.CUSTOMER set CUST_NAME = upper(CUST_NAME)",
            &layout(),
            "S",
        )
        .unwrap();
        assert_eq!(compiled.kind, DmlKind::Passthrough);
        let sql = render_stmt(&compiled.range_stmt(None, None), Dialect::Cdw);
        assert!(sql.starts_with("UPDATE PROD.CUSTOMER"), "{sql}");
    }

    #[test]
    fn placeholders_outside_insert_values_rejected() {
        let err = compile_dml("update T set A = :CUST_ID", &layout(), "S").unwrap_err();
        assert!(matches!(err, XcError::Unsupported(_)));
    }

    #[test]
    fn select_as_dml_rejected() {
        let err = compile_dml("select 1", &layout(), "S").unwrap_err();
        assert!(matches!(err, XcError::Unsupported(_)));
    }

    #[test]
    fn translate_passthrough_sql() {
        let out = translate_sql(
            "SEL CAST(D AS VARCHAR(10) FORMAT 'MM/DD/YY') FROM T WHERE A IS NOT NULL",
        )
        .unwrap();
        assert!(out.starts_with("SELECT TO_CHAR(D, 'MM/DD/YY')"), "{out}");
        assert!(translate_sql("select :X").is_err());
    }

    #[test]
    fn staging_scan_orders_by_seq() {
        let compiled = compile_dml(EXAMPLE_DML, &layout(), "S").unwrap();
        let sql = render_stmt(&compiled.staging_scan(Some(3), Some(4)), Dialect::Cdw);
        assert_eq!(
            sql,
            "SELECT * FROM S WHERE (__SEQ >= 3) AND (__SEQ < 4) ORDER BY __SEQ"
        );
    }

    #[test]
    fn names_and_prefixes() {
        assert_eq!(staging_table_name(42), "ETLV_STG_42");
        assert_eq!(staging_prefix(42), "job42/");
    }
}
