//! The session layer: the per-connection protocol state machine, the
//! node-wide session registry, and disconnect-safe teardown.
//!
//! The protocol logic lives in [`SessionCore`], an explicit state
//! machine driven one frame at a time. Each frame either produces an
//! inline reply (logon, keepalive, logoff, protocol errors — nothing
//! that can block) or a [`DispatchCall`]: a self-contained description
//! of blocking-capable gateway work (loads, chunks, exports, stats)
//! that the caller runs wherever it likes — the reactor hands it to a
//! fixed dispatch pool and feeds the completion back through
//! [`SessionCore::complete`]; the blocking driver ([`serve_session`],
//! used for in-memory transports) just runs it in place.
//!
//! A successful logon registers a [`SessionEntry`] in the node's
//! [`SessionRegistry`] (bounded by `max_sessions` — a full table
//! answers with retryable `SERVER_BUSY`). The entry tracks the jobs
//! the session *owns* (its `BeginLoad`s and `BeginExport`s); when the
//! session ends — explicit logoff, peer disconnect, idle timeout, or
//! server shutdown — [`close_session`] aborts whatever those jobs
//! still have in flight, so a yanked cable never leaks credits, memory
//! reservations, staging tables, or staged objects.

use std::collections::HashMap;
use std::io;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

use etlv_protocol::errcode::ErrCode;
use etlv_protocol::frame::Frame;
use etlv_protocol::message::{
    HealthReply, Message, ProfileReply, SessionRole, StatsFormat, StatsReply, TraceReply,
};
use etlv_protocol::transport::{RecvOutcome, Transport};
use parking_lot::Mutex;

use crate::gateway::{error_msg, Virtualizer};
use crate::obs::{LockSiteObs, TenantObs, TrackedMutex};

/// How often a polling serve loop wakes to check the idle clock. Only
/// blocking-driver sessions with a nonzero idle timeout pay this; the
/// reactor uses its timer wheel, and plain `serve()` blocks on the
/// socket.
const POLL_TICK: Duration = Duration::from_millis(20);

/// One logged-on session's registry entry.
pub(crate) struct SessionEntry {
    pub(crate) id: u32,
    pub(crate) role: SessionRole,
    /// Tokens of jobs this session opened and has not yet completed.
    /// Whatever is still here at teardown gets aborted.
    pub(crate) jobs: Mutex<Vec<u64>>,
    /// The tenant metric block interned from the logon username — every
    /// job this session opens charges its counts here.
    pub(crate) tenant: Arc<TenantObs>,
}

/// The node-wide active-session table. The table mutex is tracked (site
/// `gateway.sessions`): every logon, teardown, and gauge refresh crosses
/// it, so contention here shows up directly in the Profile report.
pub(crate) struct SessionRegistry {
    sessions: TrackedMutex<HashMap<u32, Arc<SessionEntry>>>,
    max_sessions: usize,
}

impl SessionRegistry {
    pub(crate) fn new(max_sessions: usize, site: Arc<LockSiteObs>) -> SessionRegistry {
        SessionRegistry {
            sessions: TrackedMutex::new(site, HashMap::new()),
            max_sessions,
        }
    }

    /// Register a freshly logged-on session; `false` when the table is
    /// at `max_sessions` (the caller answers `SERVER_BUSY`).
    pub(crate) fn register(&self, entry: Arc<SessionEntry>) -> bool {
        let mut sessions = self.sessions.lock();
        if sessions.len() >= self.max_sessions {
            return false;
        }
        sessions.insert(entry.id, entry);
        true
    }

    pub(crate) fn unregister(&self, id: u32) -> Option<Arc<SessionEntry>> {
        self.sessions.lock().remove(&id)
    }

    /// Sessions currently registered.
    pub(crate) fn active(&self) -> usize {
        self.sessions.lock().len()
    }
}

/// What [`SessionCore::on_frame`] wants done with a frame.
pub(crate) enum Step {
    /// Reply computed inline — send `frame`; `end` closes the session
    /// after the bytes are queued (fatal error or clean logoff).
    Reply { frame: Frame, end: bool },
    /// Blocking-capable gateway work. Run [`DispatchCall::run`] off
    /// the event loop, then feed the returned reply through
    /// [`SessionCore::complete`].
    Dispatch(DispatchCall),
}

/// A self-contained unit of gateway work lifted out of the session
/// loop: the parsed message plus everything the handlers need, captured
/// at parse time so the call can run on any thread.
pub(crate) struct DispatchCall {
    msg: Message,
    job_token: u64,
    tenant: Arc<TenantObs>,
    /// Session id the reply frame must carry (id at parse time).
    pub(crate) session_id: u32,
    /// Sequence number the reply frame must carry.
    pub(crate) seq: u32,
}

impl DispatchCall {
    /// Execute the gateway handler. May block (credit backpressure,
    /// pipeline drain, CDW apply) — never call on a reactor loop
    /// thread.
    pub(crate) fn run(self, v: &Virtualizer) -> Message {
        match self.msg {
            Message::Sql { text } => v.handle_sql(&text),
            Message::BeginLoad(spec) => v.handle_begin_load(spec, self.tenant),
            Message::DataChunk(chunk) => v.handle_data_chunk(self.job_token, chunk),
            Message::EndLoad(end) => v.handle_end_load(self.job_token, &end.dml),
            Message::BeginExport(spec) => v.handle_begin_export(spec, self.tenant),
            Message::ExportChunkReq { index } => v.handle_export_req(self.job_token, index),
            Message::StatsReq { format } => {
                let body = match format {
                    StatsFormat::Json => v.stats_snapshot(),
                    StatsFormat::Prometheus => v.stats_prometheus(),
                    StatsFormat::Series => v.sampler_json(),
                };
                Message::StatsReply(StatsReply { format, body })
            }
            Message::HealthReq { format } => {
                let body = match format {
                    StatsFormat::Prometheus => v.health_prometheus(),
                    // Series has no health rendering; JSON is the
                    // universal fallback.
                    StatsFormat::Json | StatsFormat::Series => v.health_json(),
                };
                Message::HealthReply(HealthReply { format, body })
            }
            Message::TraceReq { job } => {
                let body = v.trace_json(job);
                Message::TraceReply(TraceReply {
                    job,
                    found: body.is_some(),
                    body: body.unwrap_or_default(),
                })
            }
            Message::ProfileReq { format } => {
                let body = match format {
                    StatsFormat::Json => v.profile_json(),
                    // Series and Prometheus both answer with the raw
                    // folded-stack text — the flamegraph input format.
                    StatsFormat::Series | StatsFormat::Prometheus => v.profile().folded,
                };
                Message::ProfileReply(ProfileReply { format, body })
            }
            other => error_msg(
                ErrCode::PROTOCOL,
                format!("unexpected message {:?}", other.kind()),
                true,
            ),
        }
    }
}

/// The per-connection protocol state machine: sequence counter, logon
/// state, role, and the implicit job binding legacy data sessions carry.
/// Drivers own the I/O (blocking transport or reactor) and push one
/// frame at a time through [`on_frame`](SessionCore::on_frame).
pub(crate) struct SessionCore {
    seq: u32,
    session: Option<Arc<SessionEntry>>,
    role: SessionRole,
    job_token: u64,
    clean: bool,
}

impl SessionCore {
    pub(crate) fn new() -> SessionCore {
        SessionCore {
            seq: 0,
            session: None,
            role: SessionRole::Control,
            job_token: 0,
            clean: false,
        }
    }

    /// The wire session id replies carry (0 before logon completes).
    pub(crate) fn session_id(&self) -> u32 {
        self.session.as_ref().map(|s| s.id).unwrap_or(0)
    }

    /// Advance the state machine by one received frame.
    /// `shutting_down` is the owning server's stop flag — it turns new
    /// logons away; in-flight sessions finish their current exchange.
    pub(crate) fn on_frame(&mut self, v: &Virtualizer, frame: &Frame, shutting_down: bool) -> Step {
        let node = &v.node;
        // Replies echo the session id as of parse time: a LogonOk
        // frame still carries session 0, the id travels in its payload.
        let session_id = self.session_id();
        let msg = match Message::from_frame(frame) {
            Ok(m) => m,
            Err(e) => {
                let reply = error_msg(ErrCode::PROTOCOL, e.to_string(), true);
                return Step::Reply {
                    frame: reply.into_frame(session_id, self.seq),
                    end: true,
                };
            }
        };
        self.seq = self.seq.wrapping_add(1);
        let seq = self.seq;
        let reply = match msg {
            Message::Logon(logon) => {
                if logon.username.is_empty() || logon.password.is_empty() {
                    error_msg(ErrCode::LOGON_FAILED, "missing credentials", true)
                } else if node.draining.load(Ordering::Relaxed) || shutting_down {
                    error_msg(ErrCode::SHUTTING_DOWN, "server is shutting down", true)
                } else {
                    let id = node.next_session.fetch_add(1, Ordering::Relaxed);
                    // The logon username *is* the tenant identity:
                    // one interned metric block per distinct user.
                    let tenant = node.obs.registry.tenant(&logon.username);
                    let entry = Arc::new(SessionEntry {
                        id,
                        role: logon.role,
                        jobs: Mutex::new(Vec::new()),
                        tenant,
                    });
                    if !node.registry.register(Arc::clone(&entry)) {
                        node.obs.gateway.admission_rejections.inc();
                        entry.tenant.admission_rejections.inc();
                        error_msg(
                            ErrCode::SERVER_BUSY,
                            format!(
                                "session limit reached ({} active), retry later",
                                node.config.max_sessions
                            ),
                            true,
                        )
                    } else {
                        node.obs
                            .gateway
                            .active_sessions
                            .set(node.registry.active() as u64);
                        self.role = logon.role;
                        self.job_token = logon.job_token;
                        self.session = Some(entry);
                        node.obs.gateway.sessions_opened.inc();
                        node.obs.journal.emit(
                            "session.logon",
                            self.job_token,
                            id as u64,
                            0,
                            0,
                            Duration::ZERO,
                        );
                        Message::LogonOk(etlv_protocol::message::LogonOk {
                            session: id,
                            banner: "etlv virtualizer 1.0 (legacy protocol)".into(),
                        })
                    }
                }
            }
            Message::DataChunk(_) if self.role != SessionRole::Data => {
                error_msg(ErrCode::PROTOCOL, "data chunk on a control session", true)
            }
            Message::Logoff => {
                self.clean = true;
                return Step::Reply {
                    frame: Message::LogoffOk.into_frame(session_id, seq),
                    end: true,
                };
            }
            Message::Keepalive => Message::Keepalive,
            msg @ (Message::Sql { .. }
            | Message::BeginLoad(_)
            | Message::DataChunk(_)
            | Message::EndLoad(_)
            | Message::BeginExport(_)
            | Message::ExportChunkReq { .. }
            | Message::StatsReq { .. }
            | Message::HealthReq { .. }
            | Message::TraceReq { .. }
            | Message::ProfileReq { .. }) => {
                return Step::Dispatch(DispatchCall {
                    msg,
                    job_token: self.job_token,
                    tenant: self.tenant(v),
                    session_id,
                    seq,
                });
            }
            other => error_msg(
                ErrCode::PROTOCOL,
                format!("unexpected message {:?}", other.kind()),
                true,
            ),
        };
        let (frame, end) = self.complete(reply, session_id, seq);
        Step::Reply { frame, end }
    }

    /// Absorb a reply (inline or dispatched): job-ownership
    /// bookkeeping, then the wire frame. `end` is true when the reply
    /// is a fatal error — the driver sends it and closes.
    pub(crate) fn complete(&mut self, reply: Message, session_id: u32, seq: u32) -> (Frame, bool) {
        match &reply {
            Message::BeginLoadOk { load_token } => {
                self.job_token = *load_token;
                if let Some(s) = &self.session {
                    s.jobs.lock().push(*load_token);
                }
            }
            Message::BeginExportOk(ok) => {
                self.job_token = ok.export_token;
                if let Some(s) = &self.session {
                    s.jobs.lock().push(ok.export_token);
                }
            }
            // A LoadReport means EndLoad retired the job — it is no
            // longer the session's to abort.
            Message::LoadReport(_) => {
                if let Some(s) = &self.session {
                    s.jobs.lock().retain(|t| *t != self.job_token);
                }
            }
            _ => {}
        }
        let end = matches!(&reply, Message::Error(e) if e.fatal);
        (reply.into_frame(session_id, seq), end)
    }

    /// The farewell frame for an idle-timeout close. Charges the
    /// timeout to the session's tenant — an idle reap is the *tenant's*
    /// availability problem, not just the node's.
    pub(crate) fn idle_timeout_frame(&self) -> Frame {
        if let Some(s) = &self.session {
            s.tenant.idle_timeouts.inc();
        }
        error_msg(ErrCode::IDLE_TIMEOUT, "session idle timeout", true)
            .into_frame(self.session_id(), self.seq)
    }

    /// The farewell frame for a server-shutdown close.
    pub(crate) fn shutdown_frame(&self) -> Frame {
        error_msg(ErrCode::SHUTTING_DOWN, "server is shutting down", true)
            .into_frame(self.session_id(), self.seq)
    }

    /// The tenant a request charges to: the logged-on session's
    /// interned block, or the shared `~anonymous` block for pre-logon
    /// requests (directly-served test transports mostly).
    fn tenant(&self, v: &Virtualizer) -> Arc<TenantObs> {
        match &self.session {
            Some(s) => Arc::clone(&s.tenant),
            None => v.node.obs.registry.tenant("~anonymous"),
        }
    }

    /// Tear down the session if one is registered. Idempotent — safe
    /// to call from both the happy path and error unwinding.
    pub(crate) fn finish(&mut self, v: &Virtualizer) {
        if let Some(entry) = self.session.take() {
            close_session(v, &entry, self.clean);
        }
    }
}

/// Serve one connection on the calling thread until logoff, disconnect,
/// or idle timeout. This is the blocking driver for transports that are
/// not OS sockets (the in-memory duplex used by tests and embedded
/// callers); TCP connections are served by the reactor instead.
pub(crate) fn serve_session(v: &Virtualizer, mut transport: impl Transport) -> io::Result<()> {
    let idle_timeout = v.node.config.session_idle_timeout;
    // A blocking recv cannot observe the idle clock; poll only when a
    // timeout is configured so the common path stays wake-free.
    let poll = !idle_timeout.is_zero();
    let mut core = SessionCore::new();
    let mut last_activity = Instant::now();

    let result = (|| -> io::Result<()> {
        loop {
            let frame: Frame = if poll {
                match transport.recv_wait(POLL_TICK)? {
                    RecvOutcome::Frame(f) => {
                        last_activity = Instant::now();
                        f
                    }
                    RecvOutcome::TimedOut => {
                        if last_activity.elapsed() >= idle_timeout {
                            let _ = transport.send(&core.idle_timeout_frame());
                            return Ok(());
                        }
                        continue;
                    }
                    RecvOutcome::Closed => return Ok(()),
                }
            } else {
                match transport.recv()? {
                    Some(f) => f,
                    None => return Ok(()),
                }
            };
            match core.on_frame(v, &frame, false) {
                Step::Reply { frame, end } => {
                    transport.send(&frame)?;
                    if end {
                        return Ok(());
                    }
                }
                Step::Dispatch(call) => {
                    let (session_id, seq) = (call.session_id, call.seq);
                    let reply = call.run(v);
                    let (frame, end) = core.complete(reply, session_id, seq);
                    transport.send(&frame)?;
                    if end {
                        return Ok(());
                    }
                }
            }
        }
    })();
    core.finish(v);
    result
}

/// Tear a session down: abort every job it still owns (releasing the
/// jobs' credits, memory, and staging residue), deregister it, and keep
/// the session gauges truthful. `clean` distinguishes an explicit logoff
/// — which retires exports silently — from a disconnect/timeout.
pub(crate) fn close_session(v: &Virtualizer, entry: &SessionEntry, clean: bool) {
    let node = &v.node;
    let owned: Vec<u64> = std::mem::take(&mut *entry.jobs.lock());
    for token in owned {
        v.abort_job(token, clean);
    }
    node.registry.unregister(entry.id);
    node.obs.gateway.sessions_closed.inc();
    node.obs
        .gateway
        .active_sessions
        .set(node.registry.active() as u64);
    node.obs.journal.emit(
        "session.close",
        0,
        entry.id as u64,
        u64::from(clean),
        u64::from(entry.role == SessionRole::Data),
        Duration::ZERO,
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(id: u32) -> Arc<SessionEntry> {
        Arc::new(SessionEntry {
            id,
            role: SessionRole::Control,
            jobs: Mutex::new(Vec::new()),
            tenant: crate::obs::Obs::default().registry.tenant("t"),
        })
    }

    #[test]
    fn registry_enforces_max_sessions() {
        let site = crate::obs::Obs::default()
            .registry
            .lock_site("gateway.sessions");
        let reg = SessionRegistry::new(2, site);
        assert!(reg.register(entry(1)));
        assert!(reg.register(entry(2)));
        assert!(!reg.register(entry(3)), "third session refused");
        assert_eq!(reg.active(), 2);
        assert!(reg.unregister(1).is_some());
        assert!(reg.register(entry(3)), "slot freed by unregister");
        assert_eq!(reg.active(), 2);
        assert!(reg.unregister(99).is_none());
    }
}
