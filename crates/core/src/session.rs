//! The session layer: per-connection serve loop, the node-wide session
//! registry, and disconnect-safe teardown.
//!
//! Every connection runs [`serve_session`]. A successful logon registers
//! a [`SessionEntry`] in the node's [`SessionRegistry`] (bounded by
//! `max_sessions` — a full table answers with retryable `SERVER_BUSY`).
//! The entry tracks the jobs the session *owns* (its `BeginLoad`s and
//! `BeginExport`s); when the session ends — explicit logoff, peer
//! disconnect, idle timeout, or server shutdown — [`close_session`]
//! aborts whatever those jobs still have in flight, so a yanked cable
//! never leaks credits, memory reservations, staging tables, or staged
//! objects.

use std::collections::HashMap;
use std::io;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use etlv_protocol::errcode::ErrCode;
use etlv_protocol::frame::Frame;
use etlv_protocol::message::{
    HealthReply, Message, ProfileReply, SessionRole, StatsFormat, StatsReply, TraceReply,
};
use etlv_protocol::transport::{RecvOutcome, Transport};
use parking_lot::Mutex;

use crate::gateway::{error_msg, Virtualizer};
use crate::obs::{LockSiteObs, TenantObs, TrackedMutex};

/// How often a polling serve loop wakes to check the stop flag and the
/// idle clock. Only sessions that need polling (a server stop flag or a
/// nonzero idle timeout) pay this; plain `serve()` blocks on the socket.
const POLL_TICK: Duration = Duration::from_millis(20);

/// One logged-on session's registry entry.
pub(crate) struct SessionEntry {
    pub(crate) id: u32,
    pub(crate) role: SessionRole,
    /// Tokens of jobs this session opened and has not yet completed.
    /// Whatever is still here at teardown gets aborted.
    pub(crate) jobs: Mutex<Vec<u64>>,
    /// The tenant metric block interned from the logon username — every
    /// job this session opens charges its counts here.
    pub(crate) tenant: Arc<TenantObs>,
}

/// The node-wide active-session table. The table mutex is tracked (site
/// `gateway.sessions`): every logon, teardown, and gauge refresh crosses
/// it, so contention here shows up directly in the Profile report.
pub(crate) struct SessionRegistry {
    sessions: TrackedMutex<HashMap<u32, Arc<SessionEntry>>>,
    max_sessions: usize,
}

impl SessionRegistry {
    pub(crate) fn new(max_sessions: usize, site: Arc<LockSiteObs>) -> SessionRegistry {
        SessionRegistry {
            sessions: TrackedMutex::new(site, HashMap::new()),
            max_sessions,
        }
    }

    /// Register a freshly logged-on session; `false` when the table is
    /// at `max_sessions` (the caller answers `SERVER_BUSY`).
    pub(crate) fn register(&self, entry: Arc<SessionEntry>) -> bool {
        let mut sessions = self.sessions.lock();
        if sessions.len() >= self.max_sessions {
            return false;
        }
        sessions.insert(entry.id, entry);
        true
    }

    pub(crate) fn unregister(&self, id: u32) -> Option<Arc<SessionEntry>> {
        self.sessions.lock().remove(&id)
    }

    /// Sessions currently registered.
    pub(crate) fn active(&self) -> usize {
        self.sessions.lock().len()
    }
}

/// Serve one connection until logoff, disconnect, idle timeout, or server
/// stop. `stop` is the server's shutdown flag (TCP connections); `None`
/// for directly-served transports (tests, in-memory duplex).
pub(crate) fn serve_session(
    v: &Virtualizer,
    mut transport: impl Transport,
    stop: Option<&AtomicBool>,
) -> io::Result<()> {
    let node = &v.node;
    let idle_timeout = node.config.session_idle_timeout;
    // Blocking recv cannot observe a stop flag or an idle clock; poll
    // only when one of them exists so the common path stays wake-free.
    let poll = stop.is_some() || !idle_timeout.is_zero();

    let mut seq = 0u32;
    let mut session: Option<Arc<SessionEntry>> = None;
    let mut role = SessionRole::Control;
    let mut job_token = 0u64;
    let mut last_activity = Instant::now();
    let mut clean = false;

    let result = (|| -> io::Result<()> {
        loop {
            let session_id = session.as_ref().map(|s| s.id).unwrap_or(0);
            let frame: Frame = if poll {
                match transport.recv_wait(POLL_TICK)? {
                    RecvOutcome::Frame(f) => {
                        last_activity = Instant::now();
                        f
                    }
                    RecvOutcome::TimedOut => {
                        if stop.is_some_and(|s| s.load(Ordering::Relaxed)) {
                            let reply =
                                error_msg(ErrCode::SHUTTING_DOWN, "server is shutting down", true);
                            let _ = transport.send(&reply.into_frame(session_id, seq));
                            return Ok(());
                        }
                        if !idle_timeout.is_zero() && last_activity.elapsed() >= idle_timeout {
                            // An idle-timeout close is the *tenant's*
                            // availability problem, not just the node's.
                            if let Some(s) = &session {
                                s.tenant.idle_timeouts.inc();
                            }
                            let reply =
                                error_msg(ErrCode::IDLE_TIMEOUT, "session idle timeout", true);
                            let _ = transport.send(&reply.into_frame(session_id, seq));
                            return Ok(());
                        }
                        continue;
                    }
                    RecvOutcome::Closed => return Ok(()),
                }
            } else {
                match transport.recv()? {
                    Some(f) => f,
                    None => return Ok(()),
                }
            };
            let msg = match Message::from_frame(&frame) {
                Ok(m) => m,
                Err(e) => {
                    let reply = error_msg(ErrCode::PROTOCOL, e.to_string(), true);
                    transport.send(&reply.into_frame(session_id, seq))?;
                    return Ok(());
                }
            };
            seq = seq.wrapping_add(1);
            let reply = match msg {
                Message::Logon(logon) => {
                    if logon.username.is_empty() || logon.password.is_empty() {
                        error_msg(ErrCode::LOGON_FAILED, "missing credentials", true)
                    } else if node.draining.load(Ordering::Relaxed)
                        || stop.is_some_and(|s| s.load(Ordering::Relaxed))
                    {
                        error_msg(ErrCode::SHUTTING_DOWN, "server is shutting down", true)
                    } else {
                        let id = node.next_session.fetch_add(1, Ordering::Relaxed);
                        // The logon username *is* the tenant identity:
                        // one interned metric block per distinct user.
                        let tenant = node.obs.registry.tenant(&logon.username);
                        let entry = Arc::new(SessionEntry {
                            id,
                            role: logon.role,
                            jobs: Mutex::new(Vec::new()),
                            tenant,
                        });
                        if !node.registry.register(Arc::clone(&entry)) {
                            node.obs.gateway.admission_rejections.inc();
                            entry.tenant.admission_rejections.inc();
                            error_msg(
                                ErrCode::SERVER_BUSY,
                                format!(
                                    "session limit reached ({} active), retry later",
                                    node.config.max_sessions
                                ),
                                true,
                            )
                        } else {
                            node.obs
                                .gateway
                                .active_sessions
                                .set(node.registry.active() as u64);
                            role = logon.role;
                            job_token = logon.job_token;
                            session = Some(entry);
                            node.obs.gateway.sessions_opened.inc();
                            node.obs.journal.emit(
                                "session.logon",
                                job_token,
                                id as u64,
                                0,
                                0,
                                Duration::ZERO,
                            );
                            Message::LogonOk(etlv_protocol::message::LogonOk {
                                session: id,
                                banner: "etlv virtualizer 1.0 (legacy protocol)".into(),
                            })
                        }
                    }
                }
                Message::Sql { text } => v.handle_sql(&text),
                Message::BeginLoad(spec) => v.handle_begin_load(spec, session_tenant(v, &session)),
                Message::DataChunk(chunk) => {
                    if role != SessionRole::Data {
                        error_msg(ErrCode::PROTOCOL, "data chunk on a control session", true)
                    } else {
                        v.handle_data_chunk(job_token, chunk)
                    }
                }
                Message::EndLoad(end) => v.handle_end_load(job_token, &end.dml),
                Message::BeginExport(spec) => {
                    v.handle_begin_export(spec, session_tenant(v, &session))
                }
                Message::ExportChunkReq { index } => v.handle_export_req(job_token, index),
                Message::StatsReq { format } => {
                    let body = match format {
                        StatsFormat::Json => v.stats_snapshot(),
                        StatsFormat::Prometheus => v.stats_prometheus(),
                        StatsFormat::Series => v.sampler_json(),
                    };
                    Message::StatsReply(StatsReply { format, body })
                }
                Message::HealthReq { format } => {
                    let body = match format {
                        StatsFormat::Prometheus => v.health_prometheus(),
                        // Series has no health rendering; JSON is the
                        // universal fallback.
                        StatsFormat::Json | StatsFormat::Series => v.health_json(),
                    };
                    Message::HealthReply(HealthReply { format, body })
                }
                Message::TraceReq { job } => {
                    let body = v.trace_json(job);
                    Message::TraceReply(TraceReply {
                        job,
                        found: body.is_some(),
                        body: body.unwrap_or_default(),
                    })
                }
                Message::ProfileReq { format } => {
                    let body = match format {
                        StatsFormat::Json => v.profile_json(),
                        // Series and Prometheus both answer with the raw
                        // folded-stack text — the flamegraph input format.
                        StatsFormat::Series | StatsFormat::Prometheus => v.profile().folded,
                    };
                    Message::ProfileReply(ProfileReply { format, body })
                }
                Message::Logoff => {
                    clean = true;
                    transport.send(&Message::LogoffOk.into_frame(session_id, seq))?;
                    return Ok(());
                }
                Message::Keepalive => Message::Keepalive,
                other => error_msg(
                    ErrCode::PROTOCOL,
                    format!("unexpected message {:?}", other.kind()),
                    true,
                ),
            };
            match &reply {
                Message::BeginLoadOk { load_token } => {
                    job_token = *load_token;
                    if let Some(s) = &session {
                        s.jobs.lock().push(*load_token);
                    }
                }
                Message::BeginExportOk(ok) => {
                    job_token = ok.export_token;
                    if let Some(s) = &session {
                        s.jobs.lock().push(ok.export_token);
                    }
                }
                // A LoadReport means EndLoad retired the job — it is no
                // longer the session's to abort.
                Message::LoadReport(_) => {
                    if let Some(s) = &session {
                        s.jobs.lock().retain(|t| *t != job_token);
                    }
                }
                _ => {}
            }
            let fatal = matches!(&reply, Message::Error(e) if e.fatal);
            transport.send(&reply.into_frame(session_id, seq))?;
            if fatal {
                return Ok(());
            }
        }
    })();
    if let Some(entry) = session {
        close_session(v, &entry, clean);
    }
    result
}

/// The tenant a request charges to: the logged-on session's interned
/// block, or the shared `~anonymous` block for pre-logon requests
/// (directly-served test transports mostly).
fn session_tenant(v: &Virtualizer, session: &Option<Arc<SessionEntry>>) -> Arc<TenantObs> {
    match session {
        Some(s) => Arc::clone(&s.tenant),
        None => v.node.obs.registry.tenant("~anonymous"),
    }
}

/// Tear a session down: abort every job it still owns (releasing the
/// jobs' credits, memory, and staging residue), deregister it, and keep
/// the session gauges truthful. `clean` distinguishes an explicit logoff
/// — which retires exports silently — from a disconnect/timeout.
pub(crate) fn close_session(v: &Virtualizer, entry: &SessionEntry, clean: bool) {
    let node = &v.node;
    let owned: Vec<u64> = std::mem::take(&mut *entry.jobs.lock());
    for token in owned {
        v.abort_job(token, clean);
    }
    node.registry.unregister(entry.id);
    node.obs.gateway.sessions_closed.inc();
    node.obs
        .gateway
        .active_sessions
        .set(node.registry.active() as u64);
    node.obs.journal.emit(
        "session.close",
        0,
        entry.id as u64,
        u64::from(clean),
        u64::from(entry.role == SessionRole::Data),
        Duration::ZERO,
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(id: u32) -> Arc<SessionEntry> {
        Arc::new(SessionEntry {
            id,
            role: SessionRole::Control,
            jobs: Mutex::new(Vec::new()),
            tenant: crate::obs::Obs::default().registry.tenant("t"),
        })
    }

    #[test]
    fn registry_enforces_max_sessions() {
        let site = crate::obs::Obs::default()
            .registry
            .lock_site("gateway.sessions");
        let reg = SessionRegistry::new(2, site);
        assert!(reg.register(entry(1)));
        assert!(reg.register(entry(2)));
        assert!(!reg.register(entry(3)), "third session refused");
        assert_eq!(reg.active(), 2);
        assert!(reg.unregister(1).is_some());
        assert!(reg.register(entry(3)), "slot freed by unregister");
        assert_eq!(reg.active(), 2);
        assert!(reg.unregister(99).is_none());
    }
}
