//! A lazy hashed timer wheel for connection deadlines.
//!
//! The reactor needs thousands of coarse timers (idle timeouts,
//! accept-error backoff) with O(1) insert and cheap advance — a
//! `BinaryHeap` re-keyed on every keepalive would churn. The wheel
//! hashes each deadline's tick into a fixed ring of slots; entries
//! whose tick hasn't arrived when their slot is visited are simply
//! retained for a later lap.
//!
//! Timers here are *hints*, not truth: the reactor keeps at most one
//! wheel entry per connection and revalidates the connection's actual
//! deadline when the entry fires, rescheduling if activity pushed the
//! deadline out. That laziness is what makes a keepalive cost one
//! field write instead of a wheel operation.

use std::time::{Duration, Instant};

/// Fixed slot count. With the default 25 ms tick this spans 6.4 s per
/// lap; longer deadlines just survive extra laps.
const SLOTS: usize = 256;

pub(crate) struct TimerWheel {
    /// `(due_tick, token)` entries hashed by `due_tick % SLOTS`.
    slots: Vec<Vec<(u64, u64)>>,
    tick: Duration,
    base: Instant,
    /// Last tick `advance` fully processed.
    cursor: u64,
    len: usize,
}

impl TimerWheel {
    pub(crate) fn new(tick: Duration, now: Instant) -> TimerWheel {
        assert!(!tick.is_zero(), "wheel tick must be nonzero");
        TimerWheel {
            slots: (0..SLOTS).map(|_| Vec::new()).collect(),
            tick,
            base: now,
            cursor: 0,
            len: 0,
        }
    }

    fn tick_of(&self, at: Instant) -> u64 {
        (at.saturating_duration_since(self.base).as_nanos() / self.tick.as_nanos().max(1)) as u64
    }

    /// Entries currently scheduled.
    pub(crate) fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Schedule `token` to fire at (or just after) `deadline`. A
    /// deadline already in the past fires on the next `advance`.
    pub(crate) fn schedule(&mut self, token: u64, deadline: Instant) {
        // Never schedule behind the cursor — a past slot wouldn't be
        // visited again for a full lap.
        let due = self.tick_of(deadline).max(self.cursor + 1);
        self.slots[(due % SLOTS as u64) as usize].push((due, token));
        self.len += 1;
    }

    /// Advance to `now`, appending every due token to `due`. Visits at
    /// most one full lap of slots regardless of how far time jumped.
    pub(crate) fn advance(&mut self, now: Instant, due: &mut Vec<u64>) {
        let now_tick = self.tick_of(now);
        if now_tick <= self.cursor {
            return;
        }
        let first = self.cursor + 1;
        // A jump longer than one lap still only needs each slot once.
        let last = now_tick.min(first + SLOTS as u64 - 1);
        for t in first..=last {
            let slot = &mut self.slots[(t % SLOTS as u64) as usize];
            let mut i = 0;
            while i < slot.len() {
                if slot[i].0 <= now_tick {
                    due.push(slot.swap_remove(i).1);
                    self.len -= 1;
                } else {
                    i += 1;
                }
            }
        }
        self.cursor = now_tick;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fires_in_order_of_advance() {
        let t0 = Instant::now();
        let tick = Duration::from_millis(10);
        let mut w = TimerWheel::new(tick, t0);
        w.schedule(1, t0 + Duration::from_millis(30));
        w.schedule(2, t0 + Duration::from_millis(500));
        let mut due = Vec::new();
        w.advance(t0 + Duration::from_millis(20), &mut due);
        assert!(due.is_empty());
        w.advance(t0 + Duration::from_millis(45), &mut due);
        assert_eq!(due, vec![1]);
        due.clear();
        w.advance(t0 + Duration::from_millis(600), &mut due);
        assert_eq!(due, vec![2]);
        assert!(w.is_empty());
    }

    #[test]
    fn long_deadlines_survive_laps() {
        let t0 = Instant::now();
        let tick = Duration::from_millis(1);
        let mut w = TimerWheel::new(tick, t0);
        // Far beyond one lap (256 ticks): hashes onto a slot the
        // cursor passes many times first.
        w.schedule(9, t0 + Duration::from_millis(700));
        let mut due = Vec::new();
        w.advance(t0 + Duration::from_millis(300), &mut due);
        assert!(due.is_empty(), "must not fire a lap early");
        w.advance(t0 + Duration::from_millis(699), &mut due);
        assert!(due.is_empty());
        w.advance(t0 + Duration::from_millis(702), &mut due);
        assert_eq!(due, vec![9]);
    }

    #[test]
    fn past_deadline_fires_next_advance() {
        let t0 = Instant::now();
        let mut w = TimerWheel::new(Duration::from_millis(10), t0);
        let mut due = Vec::new();
        w.advance(t0 + Duration::from_millis(100), &mut due);
        w.schedule(3, t0); // already past
        w.advance(t0 + Duration::from_millis(120), &mut due);
        assert_eq!(due, vec![3]);
    }

    #[test]
    fn huge_time_jump_only_walks_one_lap() {
        let t0 = Instant::now();
        let mut w = TimerWheel::new(Duration::from_millis(1), t0);
        for i in 0..100 {
            w.schedule(i, t0 + Duration::from_millis(5 + i));
        }
        let mut due = Vec::new();
        // Jump hours ahead: every entry must still fire exactly once.
        w.advance(t0 + Duration::from_secs(7200), &mut due);
        due.sort_unstable();
        assert_eq!(due, (0..100).collect::<Vec<u64>>());
        assert!(w.is_empty());
    }
}
