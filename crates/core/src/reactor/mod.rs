//! The reactor front end: a fixed pool of event-loop threads
//! multiplexing every TCP session (PR 10, DESIGN §16).
//!
//! The old front end spent one OS thread per connection — fine at 16
//! legacy job slots, hopeless at 10k keepalive sessions. Here a small
//! number of loops ([`crate::config::VirtualizerConfig::reactor_threads`])
//! own all the sockets through one epoll instance each; every
//! connection is a [`SessionCore`] state machine fed whole frames by
//! the nonblocking decoder and drained through a resumable
//! [`FrameWriter`]. Nothing on a loop thread may block:
//!
//! - inline steps (logon, keepalive, logoff, protocol errors) are
//!   answered on the loop;
//! - blocking-capable gateway work travels as a [`DispatchCall`] to a
//!   fixed dispatch pool and comes back as a [`LoopMsg::Complete`]
//!   through the owning loop's mailbox + waker pipe.
//!
//! One dispatch may be in flight per connection; while it runs the
//! connection's read interest is dropped, so the kernel socket buffer
//! is the backpressure and frame order is preserved without queues.
//! Idle timeouts ride the lazy [`TimerWheel`] — a keepalive costs one
//! field write, not a timer reschedule.
//!
//! Shutdown keeps the old per-thread semantics: a connection with a
//! dispatch in flight is always waited for (the reply is delivered,
//! then the `SHUTTING_DOWN` farewell, then the close); idle
//! connections get the farewell immediately and a bounded grace period
//! to drain it.

mod poll;
mod wheel;

use std::collections::{HashMap, VecDeque};
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::io::AsRawFd;
use std::os::unix::net::UnixStream;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use etlv_protocol::frame::{Frame, FrameDecoder};
use etlv_protocol::message::Message;
use etlv_protocol::nio::{pump_frames, FrameWriter, ReadStatus};
use parking_lot::Mutex;

use crate::gateway::Virtualizer;
use crate::obs::ReactorObs;
use crate::session::{DispatchCall, SessionCore, Step};
use poll::{Event, Interest, Poller};
use wheel::TimerWheel;

/// Token of each loop's waker pipe.
const TOKEN_WAKER: u64 = 0;
/// Token of the listener registration (loop 0 only) — also its timer
/// token while parked in accept backoff.
const TOKEN_LISTENER: u64 = 1;
/// First connection token; everything below is reserved.
const TOKEN_CONN_BASE: u64 = 16;

/// How long a closing connection gets to drain its farewell bytes
/// before the loop force-closes it.
const SHUTDOWN_FLUSH_GRACE: Duration = Duration::from_secs(2);

/// Accept-error backoff bounds (EMFILE and friends). The listener is
/// parked — deregistered from epoll — between retries, so a starved fd
/// table costs a timer, not a spin.
const ACCEPT_BACKOFF_BASE: Duration = Duration::from_millis(10);
const ACCEPT_BACKOFF_CAP: Duration = Duration::from_secs(1);

/// Max accepts drained per listener readiness event. Level-triggered
/// epoll re-reports a still-pending backlog, so capping a burst only
/// bounds one iteration's work — it never loses connections.
const ACCEPT_BURST: usize = 256;

/// Scratch read-buffer size per loop.
const SCRATCH_BYTES: usize = 64 * 1024;

/// Cross-thread mail for one event loop.
enum LoopMsg {
    /// A freshly accepted socket handed over by loop 0.
    Conn(TcpStream),
    /// A dispatch finished; feed the reply through
    /// [`SessionCore::complete`] for the connection under `token`.
    Complete {
        token: u64,
        session_id: u32,
        seq: u32,
        reply: Message,
    },
}

/// Wakes a loop blocked in `epoll_wait` by making its pipe readable.
struct Waker {
    tx: UnixStream,
}

impl Waker {
    fn wake(&self) {
        // A full pipe already guarantees a pending wakeup; errors on a
        // torn-down loop are equally ignorable.
        let _ = (&self.tx).write(&[1]);
    }
}

/// The cross-thread face of one event loop: its mailbox and waker.
struct LoopShared {
    queue: Mutex<Vec<LoopMsg>>,
    waker: Waker,
}

/// State shared by the handle, the loops, and the dispatch pool.
struct Shared {
    /// Raised once: every loop tears its connections down and exits.
    stop: AtomicBool,
    /// Lowered to stop accepting (drain) while existing sessions run.
    accept_open: AtomicBool,
    /// Registered connections across all loops (drives `reactor.conns`).
    conns: AtomicUsize,
    loops: Vec<LoopShared>,
}

/// One unit of blocking-capable work in the dispatch channel.
struct DispatchJob {
    loop_id: usize,
    token: u64,
    call: DispatchCall,
}

/// A running reactor: the event-loop threads plus the dispatch pool.
/// [`Reactor::shutdown`] (or drop) stops everything and joins.
pub(crate) struct Reactor {
    shared: Arc<Shared>,
    loops: Vec<JoinHandle<()>>,
    dispatchers: Vec<JoinHandle<()>>,
    dispatch_tx: Option<Sender<DispatchJob>>,
}

impl Reactor {
    /// Spawn the loops and the dispatch pool. `listener` must already
    /// be nonblocking; loop 0 owns it.
    pub(crate) fn start(v: Virtualizer, listener: TcpListener) -> io::Result<Reactor> {
        let config = v.config();
        let n_loops = config.reactor_threads.max(1);
        let n_dispatch = config.dispatch_threads.max(1);
        let tick = config.reactor_tick;
        let idle_timeout = config.session_idle_timeout;

        let mut loop_shareds = Vec::with_capacity(n_loops);
        let mut waker_rxs = Vec::with_capacity(n_loops);
        for _ in 0..n_loops {
            let (tx, rx) = UnixStream::pair()?;
            tx.set_nonblocking(true)?;
            rx.set_nonblocking(true)?;
            loop_shareds.push(LoopShared {
                queue: Mutex::new(Vec::new()),
                waker: Waker { tx },
            });
            waker_rxs.push(rx);
        }
        let shared = Arc::new(Shared {
            stop: AtomicBool::new(false),
            accept_open: AtomicBool::new(true),
            conns: AtomicUsize::new(0),
            loops: loop_shareds,
        });
        v.obs().reactor.loops.set(n_loops as u64);

        let (dispatch_tx, dispatch_rx) = std::sync::mpsc::channel::<DispatchJob>();
        let dispatch_rx = Arc::new(Mutex::new(dispatch_rx));
        let mut dispatchers = Vec::with_capacity(n_dispatch);
        for i in 0..n_dispatch {
            let v = v.clone();
            let rx = Arc::clone(&dispatch_rx);
            let shared = Arc::clone(&shared);
            dispatchers.push(
                std::thread::Builder::new()
                    .name(format!("etlv-dispatch-{i}"))
                    .spawn(move || dispatch_worker(v, rx, shared))?,
            );
        }

        let mut listener = Some(listener);
        let mut loops = Vec::with_capacity(n_loops);
        for (id, waker_rx) in waker_rxs.into_iter().enumerate() {
            let poller = Poller::new()?;
            poller.add(
                waker_rx.as_raw_fd(),
                TOKEN_WAKER,
                Interest {
                    read: true,
                    write: false,
                },
            )?;
            let loop_listener = if id == 0 { listener.take() } else { None };
            if let Some(l) = &loop_listener {
                poller.add(
                    l.as_raw_fd(),
                    TOKEN_LISTENER,
                    Interest {
                        read: true,
                        write: false,
                    },
                )?;
            }
            let mut el = EventLoop {
                id,
                n_loops,
                v: v.clone(),
                shared: Arc::clone(&shared),
                poller,
                waker_rx,
                listener: loop_listener,
                listener_parked: false,
                accept_backoff: ACCEPT_BACKOFF_BASE,
                rr: id,
                dispatch_tx: dispatch_tx.clone(),
                conns: HashMap::new(),
                wheel: TimerWheel::new(tick, Instant::now()),
                next_token: TOKEN_CONN_BASE,
                idle_timeout,
                scratch: vec![0; SCRATCH_BYTES],
                pump_buf: Vec::new(),
                shutting_down: false,
                shutdown_at: None,
                obs: v.obs().reactor.clone(),
            };
            loops.push(
                std::thread::Builder::new()
                    .name(format!("etlv-loop-{id}"))
                    .spawn(move || el.run())?,
            );
        }

        Ok(Reactor {
            shared,
            loops,
            dispatchers,
            dispatch_tx: Some(dispatch_tx),
        })
    }

    /// Close the front door: the listener is dropped (new connects are
    /// refused) while existing sessions keep running. Used by drain.
    pub(crate) fn stop_accepting(&self) {
        self.shared.accept_open.store(false, Ordering::SeqCst);
        self.shared.loops[0].waker.wake();
    }

    /// Stop everything and join: farewell + close every connection
    /// (in-flight dispatches are waited for), then tear down the pool.
    pub(crate) fn shutdown(mut self) {
        self.stop_inner();
    }

    fn stop_inner(&mut self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        for ls in &self.shared.loops {
            ls.waker.wake();
        }
        for handle in self.loops.drain(..) {
            let _ = handle.join();
        }
        // Loops are gone; dropping the sender ends the workers' recv
        // loop. Order matters — workers must outlive the loops that
        // wait on their completions.
        drop(self.dispatch_tx.take());
        for handle in self.dispatchers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for Reactor {
    fn drop(&mut self) {
        self.stop_inner();
    }
}

/// Dispatch-pool worker: run blocking-capable gateway calls, post the
/// reply back to the owning loop's mailbox.
fn dispatch_worker(v: Virtualizer, rx: Arc<Mutex<Receiver<DispatchJob>>>, shared: Arc<Shared>) {
    loop {
        // Release the receiver lock before running the (possibly slow)
        // handler so the pool drains the channel concurrently.
        let job = {
            let guard = rx.lock();
            guard.recv()
        };
        let Ok(job) = job else { return };
        let (session_id, seq) = (job.call.session_id, job.call.seq);
        let reply = job.call.run(&v);
        let ls = &shared.loops[job.loop_id];
        ls.queue.lock().push(LoopMsg::Complete {
            token: job.token,
            session_id,
            seq,
            reply,
        });
        ls.waker.wake();
    }
}

/// One multiplexed connection.
struct Conn {
    stream: TcpStream,
    core: SessionCore,
    decoder: FrameDecoder,
    /// Decoded frames not yet fed to the state machine (only grows
    /// while a dispatch is in flight with bytes already pumped).
    inbox: VecDeque<Frame>,
    writer: FrameWriter,
    /// Interest set currently registered with epoll.
    interest: Interest,
    /// A dispatch is in flight; read interest is off (backpressure).
    dispatching: bool,
    /// Socket died while a dispatch was in flight: the fd is
    /// deregistered but the entry stays until the completion lands, so
    /// job-ownership bookkeeping (`SessionCore::complete`) still runs
    /// and teardown aborts exactly the jobs the session still owns.
    dead: bool,
    /// Farewell queued; close once the writer drains (or grace expires).
    closing: bool,
    /// Peer half-closed its side; serve what's buffered, then close.
    read_closed: bool,
    /// Mirror of `!writer.is_empty()` for the `conns_writing` gauge.
    was_writing: bool,
    idle_deadline: Instant,
    /// At most one wheel entry per connection (lazy reschedule).
    wheel_armed: bool,
}

/// What to do with a connection after processing.
enum Disposition {
    Keep,
    Close,
}

/// One event-loop thread's state.
struct EventLoop {
    id: usize,
    n_loops: usize,
    v: Virtualizer,
    shared: Arc<Shared>,
    poller: Poller,
    waker_rx: UnixStream,
    /// Loop 0 owns the listener until drain/shutdown closes it.
    listener: Option<TcpListener>,
    /// Listener deregistered for accept-error backoff.
    listener_parked: bool,
    accept_backoff: Duration,
    /// Round-robin cursor for placing accepted connections.
    rr: usize,
    dispatch_tx: Sender<DispatchJob>,
    conns: HashMap<u64, Conn>,
    wheel: TimerWheel,
    next_token: u64,
    idle_timeout: Duration,
    scratch: Vec<u8>,
    pump_buf: Vec<Frame>,
    shutting_down: bool,
    shutdown_at: Option<Instant>,
    obs: ReactorObs,
}

impl EventLoop {
    fn run(&mut self) {
        let mut events: Vec<Event> = Vec::with_capacity(256);
        let mut due: Vec<u64> = Vec::new();
        loop {
            let timeout = if self.shutting_down {
                // Bounded ticks while draining farewells so the grace
                // deadline is observed even with no socket activity.
                Some(Duration::from_millis(50))
            } else if !self.wheel.is_empty() {
                Some(self.v.config().reactor_tick)
            } else {
                None
            };
            if self.poller.wait(&mut events, timeout).is_err() {
                // A broken epoll fd is unrecoverable; tear down rather
                // than spin.
                break;
            }
            let t0 = Instant::now();
            self.obs.ready_batch.record(events.len() as u64);
            for &ev in &events {
                match ev.token {
                    TOKEN_WAKER => {
                        self.obs.wakeups.inc();
                        self.drain_waker();
                    }
                    TOKEN_LISTENER => self.accept_burst(),
                    token => self.conn_event(token, ev),
                }
            }
            self.drain_queue();
            due.clear();
            self.wheel.advance(Instant::now(), &mut due);
            for token in due.drain(..) {
                self.timer_fired(token);
            }
            self.check_stop();
            if self.shutting_down {
                self.shutdown_tick();
                if self.conns.is_empty() {
                    break;
                }
            }
            self.obs.loop_iter_us.record_duration(t0.elapsed());
        }
        for (_, conn) in std::mem::take(&mut self.conns) {
            self.retire(conn);
        }
    }

    /// Drain the waker pipe so level-triggered epoll quiets down.
    fn drain_waker(&mut self) {
        let mut buf = [0u8; 64];
        loop {
            match (&self.waker_rx).read(&mut buf) {
                Ok(0) => break,
                Ok(_) => continue,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => break,
            }
        }
    }

    /// Process the cross-thread mailbox: handed-over sockets and
    /// dispatch completions.
    fn drain_queue(&mut self) {
        let msgs = std::mem::take(&mut *self.shared.loops[self.id].queue.lock());
        for msg in msgs {
            match msg {
                LoopMsg::Conn(stream) => {
                    if self.shutting_down {
                        drop(stream);
                    } else {
                        self.install(stream);
                    }
                }
                LoopMsg::Complete {
                    token,
                    session_id,
                    seq,
                    reply,
                } => self.on_complete(token, session_id, seq, reply),
            }
        }
    }

    /// Accept a burst of connections (loop 0 only).
    fn accept_burst(&mut self) {
        if self.listener_parked || self.shutting_down {
            return;
        }
        for _ in 0..ACCEPT_BURST {
            let Some(listener) = &self.listener else {
                return;
            };
            match listener.accept() {
                Ok((stream, _)) => {
                    self.accept_backoff = ACCEPT_BACKOFF_BASE;
                    if stream.set_nonblocking(true).is_err() || stream.set_nodelay(true).is_err() {
                        // Accepted but unusable: not a connection —
                        // count the setup failure and move on.
                        self.v.obs().server.conn_setup_errors.inc();
                        continue;
                    }
                    let target = self.rr % self.n_loops;
                    self.rr = self.rr.wrapping_add(1);
                    if target == self.id {
                        self.install(stream);
                    } else {
                        let ls = &self.shared.loops[target];
                        ls.queue.lock().push(LoopMsg::Conn(stream));
                        ls.waker.wake();
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    // Persistent accept errors (EMFILE when the fd
                    // table is full) would otherwise re-report every
                    // poll: park the listener and back off
                    // exponentially.
                    self.v.obs().server.accept_errors.inc();
                    self.obs.accept_backoffs.inc();
                    self.park_listener();
                    return;
                }
            }
        }
    }

    fn park_listener(&mut self) {
        if let Some(listener) = &self.listener {
            let _ = self.poller.remove(listener.as_raw_fd());
            self.listener_parked = true;
            self.wheel
                .schedule(TOKEN_LISTENER, Instant::now() + self.accept_backoff);
            self.accept_backoff = (self.accept_backoff * 2).min(ACCEPT_BACKOFF_CAP);
        }
    }

    fn unpark_listener(&mut self) {
        if !self.listener_parked || self.shutting_down {
            return;
        }
        if !self.shared.accept_open.load(Ordering::Relaxed) {
            return; // check_stop will close it
        }
        let Some(listener) = &self.listener else {
            return;
        };
        let fd = listener.as_raw_fd();
        if self
            .poller
            .add(
                fd,
                TOKEN_LISTENER,
                Interest {
                    read: true,
                    write: false,
                },
            )
            .is_ok()
        {
            self.listener_parked = false;
            self.accept_burst();
        } else {
            // Still starved; keep backing off.
            self.wheel
                .schedule(TOKEN_LISTENER, Instant::now() + self.accept_backoff);
            self.accept_backoff = (self.accept_backoff * 2).min(ACCEPT_BACKOFF_CAP);
        }
    }

    /// Register a fresh socket. A connection only counts once it is
    /// fully established — registered and ready to serve.
    fn install(&mut self, stream: TcpStream) {
        let token = self.next_token;
        self.next_token += 1;
        if self
            .poller
            .add(
                stream.as_raw_fd(),
                token,
                Interest {
                    read: true,
                    write: false,
                },
            )
            .is_err()
        {
            self.v.obs().server.conn_setup_errors.inc();
            return;
        }
        self.v.obs().server.connections.inc();
        let n = self.shared.conns.fetch_add(1, Ordering::Relaxed) + 1;
        self.obs.conns.set(n as u64);
        let now = Instant::now();
        let mut conn = Conn {
            stream,
            core: SessionCore::new(),
            decoder: FrameDecoder::new(),
            inbox: VecDeque::new(),
            writer: FrameWriter::new(),
            interest: Interest {
                read: true,
                write: false,
            },
            dispatching: false,
            dead: false,
            closing: false,
            read_closed: false,
            was_writing: false,
            idle_deadline: now + self.idle_timeout,
            wheel_armed: false,
        };
        if !self.idle_timeout.is_zero() {
            self.wheel.schedule(token, conn.idle_deadline);
            conn.wheel_armed = true;
        }
        self.conns.insert(token, conn);
    }

    /// Readiness on a connection socket: pump bytes, advance the state
    /// machine, flush, re-arm.
    fn conn_event(&mut self, token: u64, ev: Event) {
        let Some(mut conn) = self.conns.remove(&token) else {
            return;
        };
        if conn.dead {
            self.conns.insert(token, conn);
            return;
        }
        if (ev.readable || ev.closed) && !conn.read_closed && !conn.closing {
            match pump_frames(
                &mut (&conn.stream),
                &mut self.scratch,
                &mut conn.decoder,
                &mut self.pump_buf,
            ) {
                Ok(ReadStatus::Open) => {}
                Ok(ReadStatus::Closed) => conn.read_closed = true,
                Err(_) => {
                    // Torn stream or corrupt framing: same as the
                    // blocking path — drop the connection, no farewell.
                    self.pump_buf.clear();
                    self.finalize(token, conn);
                    return;
                }
            }
            if !self.pump_buf.is_empty() {
                if !self.idle_timeout.is_zero() {
                    conn.idle_deadline = Instant::now() + self.idle_timeout;
                    if !conn.wheel_armed {
                        self.wheel.schedule(token, conn.idle_deadline);
                        conn.wheel_armed = true;
                    }
                }
                conn.inbox.extend(self.pump_buf.drain(..));
            }
        }
        self.advance_session(&mut conn, token);
        match self.flush_and_rearm(&mut conn, token) {
            Disposition::Keep => {
                self.conns.insert(token, conn);
            }
            Disposition::Close => self.finalize(token, conn),
        }
    }

    /// Feed buffered frames to the state machine until it blocks on a
    /// dispatch, closes, or runs dry.
    fn advance_session(&mut self, conn: &mut Conn, token: u64) {
        while !conn.dispatching && !conn.closing {
            let Some(frame) = conn.inbox.pop_front() else {
                return;
            };
            match conn.core.on_frame(&self.v, &frame, self.shutting_down) {
                Step::Reply { frame, end } => {
                    self.obs.inline_replies.inc();
                    conn.writer.queue(&frame);
                    if end {
                        conn.closing = true;
                    }
                }
                Step::Dispatch(call) => {
                    self.obs.dispatches.inc();
                    conn.dispatching = true;
                    self.obs.conns_dispatching.add(1);
                    let job = DispatchJob {
                        loop_id: self.id,
                        token,
                        call,
                    };
                    if let Err(send_err) = self.dispatch_tx.send(job) {
                        // Pool gone (tear-down race): run inline so the
                        // client still gets an answer.
                        let call = send_err.0.call;
                        let (session_id, seq) = (call.session_id, call.seq);
                        let reply = call.run(&self.v);
                        conn.dispatching = false;
                        self.obs.conns_dispatching.sub(1);
                        let (frame, end) = conn.core.complete(reply, session_id, seq);
                        conn.writer.queue(&frame);
                        if end {
                            conn.closing = true;
                        }
                    }
                }
            }
        }
    }

    /// A dispatched reply came back from the pool.
    fn on_complete(&mut self, token: u64, session_id: u32, seq: u32, reply: Message) {
        let Some(mut conn) = self.conns.remove(&token) else {
            return;
        };
        conn.dispatching = false;
        self.obs.conns_dispatching.sub(1);
        // Bookkeeping must run even for a dead socket: a BeginLoadOk
        // that misses its session would leak the job at teardown.
        let (frame, end) = conn.core.complete(reply, session_id, seq);
        if conn.dead {
            self.retire(conn);
            return;
        }
        conn.writer.queue(&frame);
        if end {
            conn.closing = true;
        }
        if self.shutting_down && !conn.closing {
            let farewell = conn.core.shutdown_frame();
            conn.writer.queue(&farewell);
            conn.closing = true;
        }
        self.advance_session(&mut conn, token);
        match self.flush_and_rearm(&mut conn, token) {
            Disposition::Keep => {
                self.conns.insert(token, conn);
            }
            Disposition::Close => self.finalize(token, conn),
        }
    }

    /// Drain queued reply bytes, decide close-vs-keep, and update the
    /// epoll interest set to match what the connection now waits on.
    fn flush_and_rearm(&mut self, conn: &mut Conn, token: u64) -> Disposition {
        let mut broken = false;
        if !conn.writer.is_empty() {
            match conn.writer.flush(&mut (&conn.stream)) {
                Ok(_) => {}
                Err(_) => broken = true,
            }
        }
        let writing = !conn.writer.is_empty();
        if writing != conn.was_writing {
            if writing {
                self.obs.conns_writing.add(1);
            } else {
                self.obs.conns_writing.sub(1);
            }
            conn.was_writing = writing;
        }
        if broken {
            return Disposition::Close;
        }
        if conn.closing && !writing {
            return Disposition::Close;
        }
        if conn.read_closed && conn.inbox.is_empty() && !conn.dispatching && !writing {
            return Disposition::Close;
        }
        let desired = Interest {
            read: !conn.dispatching && !conn.closing && !conn.read_closed,
            write: writing,
        };
        if desired != conn.interest {
            if self
                .poller
                .modify(conn.stream.as_raw_fd(), token, desired)
                .is_err()
            {
                return Disposition::Close;
            }
            conn.interest = desired;
        }
        if conn.closing && !conn.wheel_armed {
            // Bound the farewell drain: force-close via the wheel if
            // the peer never reads it.
            self.wheel
                .schedule(token, Instant::now() + SHUTDOWN_FLUSH_GRACE);
            conn.wheel_armed = true;
            conn.idle_deadline = Instant::now() + SHUTDOWN_FLUSH_GRACE;
        }
        Disposition::Keep
    }

    /// A wheel entry fired. Timers are hints: revalidate against the
    /// connection's real deadline and reschedule if activity moved it.
    fn timer_fired(&mut self, token: u64) {
        if token == TOKEN_LISTENER {
            self.unpark_listener();
            return;
        }
        let Some(mut conn) = self.conns.remove(&token) else {
            return;
        };
        conn.wheel_armed = false;
        if conn.dead {
            self.conns.insert(token, conn);
            return;
        }
        let now = Instant::now();
        if conn.closing {
            if now < conn.idle_deadline {
                self.wheel.schedule(token, conn.idle_deadline);
                conn.wheel_armed = true;
                self.conns.insert(token, conn);
            } else {
                // Farewell never drained; close anyway.
                self.finalize(token, conn);
            }
            return;
        }
        if self.idle_timeout.is_zero() {
            self.conns.insert(token, conn);
            return;
        }
        if conn.dispatching {
            // Busy is not idle: push the deadline a full period out.
            conn.idle_deadline = now + self.idle_timeout;
            self.wheel.schedule(token, conn.idle_deadline);
            conn.wheel_armed = true;
            self.conns.insert(token, conn);
            return;
        }
        if now < conn.idle_deadline {
            self.wheel.schedule(token, conn.idle_deadline);
            conn.wheel_armed = true;
            self.conns.insert(token, conn);
            return;
        }
        // Genuinely idle: farewell + close.
        self.obs.idle_closes.inc();
        let farewell = conn.core.idle_timeout_frame();
        conn.writer.queue(&farewell);
        conn.closing = true;
        match self.flush_and_rearm(&mut conn, token) {
            Disposition::Keep => {
                self.conns.insert(token, conn);
            }
            Disposition::Close => self.finalize(token, conn),
        }
    }

    /// Deregister and retire a connection — unless a dispatch is in
    /// flight, in which case it is marked dead and kept until the
    /// completion lands (see [`Conn::dead`]).
    fn finalize(&mut self, token: u64, mut conn: Conn) {
        let _ = self.poller.remove(conn.stream.as_raw_fd());
        if conn.dispatching {
            conn.dead = true;
            self.conns.insert(token, conn);
            return;
        }
        self.retire(conn);
    }

    /// Final teardown: session close (aborting owned jobs), counters.
    fn retire(&mut self, mut conn: Conn) {
        conn.core.finish(&self.v);
        if conn.was_writing {
            self.obs.conns_writing.sub(1);
        }
        let n = self.shared.conns.fetch_sub(1, Ordering::Relaxed) - 1;
        self.obs.conns.set(n as u64);
    }

    /// React to the shared flags: close the listener when accepting
    /// stops, start the farewell sweep when the stop flag rises.
    fn check_stop(&mut self) {
        if !self.shared.accept_open.load(Ordering::Relaxed) {
            self.close_listener();
        }
        if self.shared.stop.load(Ordering::Relaxed) {
            self.begin_shutdown();
        }
    }

    fn close_listener(&mut self) {
        if let Some(listener) = self.listener.take() {
            if !self.listener_parked {
                let _ = self.poller.remove(listener.as_raw_fd());
            }
            // Dropping the listener closes the port: new connects are
            // refused from here on (drain semantics).
        }
    }

    /// Send every quiet connection its farewell. Dispatching
    /// connections are left alone — their completion path appends the
    /// farewell after the reply, preserving the old "handler finishes,
    /// reply delivered, then close" semantics.
    fn begin_shutdown(&mut self) {
        if self.shutting_down {
            return;
        }
        self.shutting_down = true;
        self.shutdown_at = Some(Instant::now());
        self.close_listener();
        let tokens: Vec<u64> = self.conns.keys().copied().collect();
        for token in tokens {
            let Some(mut conn) = self.conns.remove(&token) else {
                continue;
            };
            if conn.dead {
                self.conns.insert(token, conn);
                continue;
            }
            if !conn.dispatching && !conn.closing {
                let farewell = conn.core.shutdown_frame();
                conn.writer.queue(&farewell);
                conn.closing = true;
            }
            match self.flush_and_rearm(&mut conn, token) {
                Disposition::Keep => {
                    self.conns.insert(token, conn);
                }
                Disposition::Close => self.finalize(token, conn),
            }
        }
    }

    /// Force-close farewell stragglers once the grace period expires.
    /// Connections with a dispatch in flight are always waited for.
    fn shutdown_tick(&mut self) {
        let Some(at) = self.shutdown_at else { return };
        if Instant::now() < at + SHUTDOWN_FLUSH_GRACE {
            return;
        }
        let tokens: Vec<u64> = self.conns.keys().copied().collect();
        for token in tokens {
            let Some(conn) = self.conns.remove(&token) else {
                continue;
            };
            if conn.dispatching || conn.dead {
                self.conns.insert(token, conn);
                continue;
            }
            self.finalize(token, conn);
        }
    }
}
