//! A minimal epoll wrapper — the only readiness API the reactor needs.
//!
//! The workspace deliberately carries no async runtime and no `libc`
//! crate, so the four syscalls are declared directly; the symbols
//! resolve from the C library `std` already links. Level-triggered
//! mode throughout: a socket with unread bytes or undrained write
//! space keeps reporting ready, which lets the event loops cap
//! per-wakeup work (fairness) without losing edges.

use std::io;
use std::os::unix::io::RawFd;
use std::time::Duration;

const EPOLL_CLOEXEC: i32 = 0o2000000;
const EPOLL_CTL_ADD: i32 = 1;
const EPOLL_CTL_DEL: i32 = 2;
const EPOLL_CTL_MOD: i32 = 3;

const EPOLLIN: u32 = 0x1;
const EPOLLOUT: u32 = 0x4;
const EPOLLERR: u32 = 0x8;
const EPOLLHUP: u32 = 0x10;
const EPOLLRDHUP: u32 = 0x2000;

/// `struct epoll_event`. The kernel ABI packs it on x86-64 (12 bytes);
/// other architectures use natural alignment.
#[cfg_attr(target_arch = "x86_64", repr(C, packed))]
#[cfg_attr(not(target_arch = "x86_64"), repr(C))]
#[derive(Clone, Copy)]
struct EpollEvent {
    events: u32,
    data: u64,
}

extern "C" {
    fn epoll_create1(flags: i32) -> i32;
    fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
    fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
    fn close(fd: i32) -> i32;
}

fn cvt(ret: i32) -> io::Result<i32> {
    if ret < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(ret)
    }
}

/// Which readiness kinds a registration asks for. Peer-hangup
/// (`EPOLLRDHUP`) is always requested so half-closed connections
/// surface without a read interest.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Interest {
    pub(crate) read: bool,
    pub(crate) write: bool,
}

impl Interest {
    fn mask(self) -> u32 {
        let mut m = EPOLLRDHUP;
        if self.read {
            m |= EPOLLIN;
        }
        if self.write {
            m |= EPOLLOUT;
        }
        m
    }
}

/// One delivered readiness event.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Event {
    /// The token the fd was registered with.
    pub(crate) token: u64,
    /// Bytes are readable.
    pub(crate) readable: bool,
    /// Write space is available. The event loop flushes pending bytes
    /// after every processing pass regardless (level-triggered epoll
    /// keeps reporting until drained), so this is observability for
    /// tests rather than a control input.
    #[allow(dead_code)]
    pub(crate) writable: bool,
    /// Error or hangup — the fd should be pumped (a read will observe
    /// the EOF/error) and retired.
    pub(crate) closed: bool,
}

/// An epoll instance owning its fd.
pub(crate) struct Poller {
    epfd: RawFd,
}

impl Poller {
    pub(crate) fn new() -> io::Result<Poller> {
        let epfd = cvt(unsafe { epoll_create1(EPOLL_CLOEXEC) })?;
        Ok(Poller { epfd })
    }

    /// Register `fd` under `token`.
    pub(crate) fn add(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        let mut ev = EpollEvent {
            events: interest.mask(),
            data: token,
        };
        cvt(unsafe { epoll_ctl(self.epfd, EPOLL_CTL_ADD, fd, &mut ev) })?;
        Ok(())
    }

    /// Change an existing registration's interest set.
    pub(crate) fn modify(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        let mut ev = EpollEvent {
            events: interest.mask(),
            data: token,
        };
        cvt(unsafe { epoll_ctl(self.epfd, EPOLL_CTL_MOD, fd, &mut ev) })?;
        Ok(())
    }

    /// Drop a registration. The fd must still be open (epoll removes
    /// closed fds itself, but explicit removal keeps bookkeeping sane).
    pub(crate) fn remove(&self, fd: RawFd) -> io::Result<()> {
        let mut ev = EpollEvent { events: 0, data: 0 };
        cvt(unsafe { epoll_ctl(self.epfd, EPOLL_CTL_DEL, fd, &mut ev) })?;
        Ok(())
    }

    /// Wait for readiness, filling `out` (cleared first). `None` blocks
    /// indefinitely. A signal interruption returns an empty batch.
    pub(crate) fn wait(&self, out: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<()> {
        out.clear();
        let timeout_ms = match timeout {
            // Round up so a 0.4 ms residue doesn't busy-spin at 0.
            Some(t) => i32::try_from(t.as_millis().max(1)).unwrap_or(i32::MAX),
            None => -1,
        };
        const CAP: usize = 256;
        let mut raw = [EpollEvent { events: 0, data: 0 }; CAP];
        let n =
            match cvt(unsafe { epoll_wait(self.epfd, raw.as_mut_ptr(), CAP as i32, timeout_ms) }) {
                Ok(n) => n as usize,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => 0,
                Err(e) => return Err(e),
            };
        for ev in &raw[..n] {
            let bits = ev.events;
            out.push(Event {
                token: ev.data,
                readable: bits & EPOLLIN != 0,
                writable: bits & EPOLLOUT != 0,
                closed: bits & (EPOLLERR | EPOLLHUP | EPOLLRDHUP) != 0,
            });
        }
        Ok(())
    }
}

impl Drop for Poller {
    fn drop(&mut self) {
        unsafe {
            close(self.epfd);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;
    use std::os::unix::io::AsRawFd;
    use std::os::unix::net::UnixStream;

    #[test]
    fn readiness_roundtrip() {
        let poller = Poller::new().unwrap();
        let (a, mut b) = UnixStream::pair().unwrap();
        a.set_nonblocking(true).unwrap();
        poller
            .add(
                a.as_raw_fd(),
                7,
                Interest {
                    read: true,
                    write: false,
                },
            )
            .unwrap();

        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert!(events.is_empty(), "no data yet");

        b.write_all(&[42]).unwrap();
        poller
            .wait(&mut events, Some(Duration::from_secs(2)))
            .unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].token, 7);
        assert!(events[0].readable);

        // Level-triggered: unread data keeps reporting.
        poller
            .wait(&mut events, Some(Duration::from_millis(50)))
            .unwrap();
        assert_eq!(events.len(), 1);

        // Peer hangup surfaces as closed.
        drop(b);
        poller
            .wait(&mut events, Some(Duration::from_secs(2)))
            .unwrap();
        assert_eq!(events.len(), 1);
        assert!(events[0].closed);

        poller.remove(a.as_raw_fd()).unwrap();
        poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert!(events.is_empty(), "deregistered fd is silent");
    }

    #[test]
    fn write_interest_reported() {
        let poller = Poller::new().unwrap();
        let (a, _b) = UnixStream::pair().unwrap();
        a.set_nonblocking(true).unwrap();
        poller
            .add(
                a.as_raw_fd(),
                1,
                Interest {
                    read: false,
                    write: true,
                },
            )
            .unwrap();
        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_secs(2)))
            .unwrap();
        assert!(events.iter().any(|e| e.token == 1 && e.writable));
    }
}
