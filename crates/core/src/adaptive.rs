//! Adaptive error handling (paper §7, Figure 6).
//!
//! The CDW aborts a whole set-oriented statement on the first bad tuple
//! without identifying it. To recover legacy tuple-level error reporting,
//! the virtualizer recursively bisects the failing staging range:
//!
//! 1. apply the DML to `[lo, hi)`;
//! 2. on failure of a singleton range, record the tuple in the ET or UV
//!    table (with its row number) and continue;
//! 3. on failure of a wider range — if `max_errors` individual errors have
//!    already been recorded, record the *range* with code 9057 instead of
//!    splitting further; if the split depth exceeds `max_retries`, record
//!    the range with code 9058; otherwise split in half and recurse.

use std::collections::HashMap;

use etlv_cdw::error::{BulkAbortKind, CdwError};
use etlv_cdw::Cdw;
use etlv_protocol::data::Value;
use etlv_protocol::errcode::ErrCode;
use etlv_protocol::layout::Layout;
use etlv_sql::ast::{Expr, Insert, InsertSource, Literal, Stmt};
use etlv_sql::transform::map_expr;

use crate::emulate::UniqueEmulation;
use crate::fault::{retry_cdw, RetryPolicy};
use crate::obs::JobObs;
use crate::xcompile::CompiledDml;

/// Which input rows an error record covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorRows {
    /// One row.
    Single(u64),
    /// An inclusive row range `(first, last)` that was not split further.
    Range(u64, u64),
}

/// One recorded application error.
#[derive(Debug, Clone, PartialEq)]
pub struct RecordedError {
    /// Legacy error code (3103 conversion, 2794 uniqueness, 9057/9058
    /// range records).
    pub code: ErrCode,
    /// Offending field, when attributable.
    pub field: Option<String>,
    /// Human-readable message (the Figure 6 `ErrorMessage` column).
    pub message: String,
    /// Covered rows.
    pub rows: ErrorRows,
    /// The staging tuple (layout fields, without `__SEQ`) for UV records.
    pub uv_tuple: Option<Vec<Value>>,
}

/// Adaptive-application parameters (the paper's user controls).
#[derive(Debug, Clone, Copy)]
pub struct AdaptiveParams {
    /// Maximum individual errors to record before switching to range
    /// records (0 = unlimited).
    pub max_errors: u64,
    /// Maximum split depth before giving up on a range.
    pub max_retries: u32,
    /// Retry policy for transient CDW failures. Only
    /// [`CdwError::is_retryable`] errors are retried; bulk aborts still
    /// flow straight to the adaptive splitter.
    pub retry: RetryPolicy,
    /// Seed for retry backoff jitter.
    pub retry_seed: u64,
}

impl Default for AdaptiveParams {
    fn default() -> Self {
        AdaptiveParams {
            max_errors: 0,
            max_retries: 64,
            retry: RetryPolicy::default(),
            retry_seed: 0,
        }
    }
}

/// Outcome of adaptive application.
#[derive(Debug, Clone, Default)]
pub struct AdaptiveOutcome {
    /// Rows successfully applied.
    pub applied: u64,
    /// Errors recorded, in discovery order.
    pub errors: Vec<RecordedError>,
    /// Number of range splits performed.
    pub splits: u64,
    /// CDW statements issued (DML attempts + emulation checks + row
    /// fetches) — the cost the paper's Figure 11 measures. Transient
    /// retries of the same statement are not counted again.
    pub statements: u64,
    /// Transient CDW failures absorbed by retry during application.
    pub transient_retries: u64,
}

impl AdaptiveOutcome {
    /// Individual (non-range) errors recorded so far.
    fn individual_errors(&self) -> u64 {
        self.errors
            .iter()
            .filter(|e| matches!(e.rows, ErrorRows::Single(_)))
            .count() as u64
    }
}

/// Lazily-fetched snapshot of the staging rows, keyed by `__SEQ`.
///
/// Singleton error recording needs the failing tuple (for UV rows and
/// field attribution); fetching the whole staging range once costs one
/// statement instead of one per error — the difference matters at high
/// error rates (Figure 11).
struct StagingCache {
    rows: Option<HashMap<u64, Vec<Value>>>,
}

impl StagingCache {
    #[allow(clippy::too_many_arguments)]
    fn tuple(
        &mut self,
        cdw: &Cdw,
        compiled: &CompiledDml,
        lo: u64,
        hi: u64,
        seq: u64,
        params: AdaptiveParams,
        outcome: &mut AdaptiveOutcome,
    ) -> Result<Vec<Value>, CdwError> {
        if self.rows.is_none() {
            outcome.statements += 1;
            let scan = compiled.staging_scan(Some(lo), Some(hi));
            let result = retry_cdw(
                params.retry,
                params.retry_seed ^ 0x5ca9,
                &mut outcome.transient_retries,
                || cdw.execute_stmt(&scan),
            )?;
            let mut map = HashMap::with_capacity(result.rows.len());
            for row in result.rows {
                if let Some(Value::Int(s)) = row.first() {
                    map.insert(*s as u64, row[1..].to_vec());
                }
            }
            self.rows = Some(map);
        }
        Ok(self
            .rows
            .as_ref()
            .expect("populated above")
            .get(&seq)
            .cloned()
            .unwrap_or_default())
    }
}

/// Apply `compiled` to staging rows `[lo, hi)` with adaptive error
/// handling. `obs` (when supplied) journals every bisection decision and
/// range failure under the owning job's token.
#[allow(clippy::too_many_arguments)]
pub fn apply_adaptive(
    cdw: &Cdw,
    compiled: &CompiledDml,
    emulation: Option<&UniqueEmulation>,
    layout: &Layout,
    lo: u64,
    hi: u64,
    params: AdaptiveParams,
    obs: Option<&JobObs>,
) -> Result<AdaptiveOutcome, CdwError> {
    let mut outcome = AdaptiveOutcome::default();
    let mut cache = StagingCache { rows: None };
    recurse(
        cdw,
        compiled,
        emulation,
        layout,
        lo,
        hi,
        0,
        params,
        &mut outcome,
        lo,
        hi,
        &mut cache,
        obs,
    )?;
    Ok(outcome)
}

#[allow(clippy::too_many_arguments)]
fn recurse(
    cdw: &Cdw,
    compiled: &CompiledDml,
    emulation: Option<&UniqueEmulation>,
    layout: &Layout,
    lo: u64,
    hi: u64,
    depth: u32,
    params: AdaptiveParams,
    outcome: &mut AdaptiveOutcome,
    job_lo: u64,
    job_hi: u64,
    cache: &mut StagingCache,
    obs: Option<&JobObs>,
) -> Result<(), CdwError> {
    if lo >= hi {
        return Ok(());
    }
    match try_apply_range(cdw, compiled, emulation, lo, hi, params, outcome) {
        Ok(applied) => {
            outcome.applied += applied;
            Ok(())
        }
        Err(err) if err.is_bulk_abort() => {
            if let Some(obs) = obs {
                obs.range_error(lo, hi - 1);
            }
            if hi - lo == 1 {
                let tuple = cache.tuple(cdw, compiled, job_lo, job_hi, lo, params, outcome)?;
                record_singleton(compiled, layout, lo, tuple, &err, outcome);
                return Ok(());
            }
            if params.max_errors > 0 && outcome.individual_errors() >= params.max_errors {
                outcome.errors.push(RecordedError {
                    code: ErrCode::MAX_ERRORS,
                    field: None,
                    message: format!(
                        "Max number of errors reached during DML on {}, row numbers: ({}, {})",
                        compiled.target.dotted(),
                        lo,
                        hi - 1
                    ),
                    rows: ErrorRows::Range(lo, hi - 1),
                    uv_tuple: None,
                });
                return Ok(());
            }
            if depth >= params.max_retries {
                outcome.errors.push(RecordedError {
                    code: ErrCode::MAX_RETRIES,
                    field: None,
                    message: format!(
                        "Max number of retries reached during DML on {}, row numbers: ({}, {})",
                        compiled.target.dotted(),
                        lo,
                        hi - 1
                    ),
                    rows: ErrorRows::Range(lo, hi - 1),
                    uv_tuple: None,
                });
                return Ok(());
            }
            outcome.splits += 1;
            if let Some(obs) = obs {
                obs.split(lo, hi - 1);
            }
            let mid = lo + (hi - lo) / 2;
            recurse(
                cdw,
                compiled,
                emulation,
                layout,
                lo,
                mid,
                depth + 1,
                params,
                outcome,
                job_lo,
                job_hi,
                cache,
                obs,
            )?;
            recurse(
                cdw,
                compiled,
                emulation,
                layout,
                mid,
                hi,
                depth + 1,
                params,
                outcome,
                job_lo,
                job_hi,
                cache,
                obs,
            )
        }
        // Structural failures (missing tables, SQL errors) abort the job.
        Err(err) => Err(err),
    }
}

/// One application attempt: emulated uniqueness pre-check, then the
/// range-restricted DML. Transient CDW failures are retried in place —
/// both statements are safe to re-issue (the pre-check is a read, the
/// DML validates every tuple before mutating) — so infrastructure blips
/// never masquerade as data errors and trigger a pointless bisection.
fn try_apply_range(
    cdw: &Cdw,
    compiled: &CompiledDml,
    emulation: Option<&UniqueEmulation>,
    lo: u64,
    hi: u64,
    params: AdaptiveParams,
    outcome: &mut AdaptiveOutcome,
) -> Result<u64, CdwError> {
    let seed = params.retry_seed ^ lo ^ (hi << 20);
    if let Some(emu) = emulation {
        outcome.statements += 1;
        let violations = retry_cdw(params.retry, seed, &mut outcome.transient_retries, || {
            emu.violations_in_range(cdw, lo, hi)
        })?;
        if violations > 0 {
            return Err(emu.violation_error());
        }
    }
    outcome.statements += 1;
    let stmt = compiled.range_stmt(Some(lo), Some(hi));
    retry_cdw(
        params.retry,
        seed ^ 1,
        &mut outcome.transient_retries,
        || cdw.execute_stmt(&stmt),
    )
    .map(|r| r.affected)
}

/// Record the error for a single failing row given its staging tuple.
fn record_singleton(
    compiled: &CompiledDml,
    layout: &Layout,
    seq: u64,
    tuple: Vec<Value>,
    err: &CdwError,
    outcome: &mut AdaptiveOutcome,
) {
    let is_unique = match err {
        CdwError::BulkAbort { kind, .. } => *kind == BulkAbortKind::Uniqueness,
        _ => false,
    };
    if is_unique {
        outcome.errors.push(RecordedError {
            code: ErrCode::UNIQUENESS,
            field: None,
            message: format!(
                "Duplicate row violates unique constraint during DML on {}, row number: {seq}",
                compiled.target.dotted()
            ),
            rows: ErrorRows::Single(seq),
            uv_tuple: Some(tuple),
        });
        return;
    }

    let cause = match err {
        CdwError::BulkAbort { message, .. } => message.clone(),
        other => other.to_string(),
    };
    let field = attribute_field(compiled, layout, &tuple);
    let kind_text = if cause.to_ascii_lowercase().contains("date") {
        "DATE conversion"
    } else {
        "Conversion"
    };
    outcome.errors.push(RecordedError {
        code: ErrCode::DML_CONVERSION,
        field,
        message: format!(
            "{kind_text} failed during DML on {}, row number: {seq}",
            compiled.target.dotted()
        ),
        rows: ErrorRows::Single(seq),
        uv_tuple: None,
    });
}

/// Find which layout field a failing tuple's conversion error comes from
/// by evaluating each projection expression with the tuple's values bound.
pub fn attribute_field(compiled: &CompiledDml, layout: &Layout, tuple: &[Value]) -> Option<String> {
    let Stmt::Insert(Insert {
        source: InsertSource::Values(rows),
        ..
    }) = &compiled.original
    else {
        return None;
    };
    let exprs = rows.first()?;
    for expr in exprs {
        let placeholders = expr.placeholders();
        let bound = map_expr(expr, &mut |e| match &e {
            Expr::Placeholder(name) => match layout.field_index(name) {
                Some(i) if i < tuple.len() => Expr::Literal(Literal::from_value(&tuple[i])),
                _ => e,
            },
            _ => e,
        });
        if etlv_cdw::eval::eval(&bound, &etlv_cdw::eval::EmptyEnv).is_err() {
            return placeholders.into_iter().next();
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::emulate;
    use crate::xcompile::{compile_dml, staging_ddl};
    use etlv_protocol::data::LegacyType as T;

    fn setup() -> (Cdw, CompiledDml, Layout) {
        let cdw = Cdw::new();
        cdw.execute(
            "CREATE TABLE PROD.CUSTOMER (CUST_ID VARCHAR(5), CUST_NAME VARCHAR(50), JOIN_DATE DATE, PRIMARY KEY (CUST_ID))",
        )
        .unwrap();
        let layout = Layout::new("L")
            .field("CUST_ID", T::VarChar(5))
            .field("CUST_NAME", T::VarChar(50))
            .field("JOIN_DATE", T::VarChar(10));
        let compiled = compile_dml(
            "insert into PROD.CUSTOMER values (trim(:CUST_ID), trim(:CUST_NAME), cast(:JOIN_DATE as DATE format 'YYYY-MM-DD'))",
            &layout,
            "STG",
        )
        .unwrap();
        cdw.execute(&staging_ddl("STG", &layout)).unwrap();
        (cdw, compiled, layout)
    }

    /// The Figure 5(a) data file.
    fn stage_figure5(cdw: &Cdw) {
        for (seq, id, name, date) in [
            (1, "123", "Smith", "2012-01-01"),
            (2, "456", "Brown", "xxxx"),
            (3, "789", "Brown", "yyyyy"),
            (4, "123", "Jones", "2012-12-01"),
            (5, "157", "Jones", "2012-12-01"),
        ] {
            cdw.execute(&format!(
                "INSERT INTO STG VALUES ({seq}, '{id}', '{name}', '{date}')"
            ))
            .unwrap();
        }
    }

    #[test]
    fn clean_data_applies_in_one_statement() {
        let (cdw, compiled, layout) = setup();
        for seq in 1..=4u64 {
            cdw.execute(&format!(
                "INSERT INTO STG VALUES ({seq}, 'id{seq}', 'n', '2012-01-0{seq}')"
            ))
            .unwrap();
        }
        let emu = emulate::plan(&cdw, &compiled).unwrap();
        let outcome = apply_adaptive(
            &cdw,
            &compiled,
            emu.as_ref(),
            &layout,
            1,
            5,
            AdaptiveParams::default(),
            None,
        )
        .unwrap();
        assert_eq!(outcome.applied, 4);
        assert!(outcome.errors.is_empty());
        assert_eq!(outcome.splits, 0);
        // One emulation check + one insert; the staging cache is never
        // materialized on the clean path.
        assert_eq!(outcome.statements, 2);
    }

    #[test]
    fn transient_faults_are_retried_not_bisected() {
        use std::sync::atomic::{AtomicU32, Ordering};
        use std::sync::Arc;
        use std::time::Duration;

        let (cdw, compiled, layout) = setup();
        for seq in 1..=4u64 {
            cdw.execute(&format!(
                "INSERT INTO STG VALUES ({seq}, 'id{seq}', 'n', '2012-01-0{seq}')"
            ))
            .unwrap();
        }
        let emu = emulate::plan(&cdw, &compiled).unwrap();
        let remaining = Arc::new(AtomicU32::new(2));
        let hook = {
            let remaining = Arc::clone(&remaining);
            Arc::new(move || {
                remaining
                    .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| v.checked_sub(1))
                    .is_ok()
            })
        };
        cdw.set_transient_fault(Some(hook));
        let params = AdaptiveParams {
            retry: RetryPolicy {
                budget: 4,
                base: Duration::from_micros(10),
                cap: Duration::from_micros(100),
            },
            ..AdaptiveParams::default()
        };
        let outcome =
            apply_adaptive(&cdw, &compiled, emu.as_ref(), &layout, 1, 5, params, None).unwrap();
        // The two injected blips are absorbed in place: same statement
        // count as the clean path, no bisection, no recorded errors.
        assert_eq!(outcome.applied, 4);
        assert!(outcome.errors.is_empty());
        assert_eq!(outcome.splits, 0);
        assert_eq!(outcome.statements, 2);
        assert_eq!(outcome.transient_retries, 2);
    }

    #[test]
    fn transient_faults_beyond_budget_surface() {
        use std::time::Duration;

        let (cdw, compiled, layout) = setup();
        stage_figure5(&cdw);
        cdw.set_transient_fault(Some(std::sync::Arc::new(|| true)));
        let params = AdaptiveParams {
            retry: RetryPolicy {
                budget: 2,
                base: Duration::from_micros(10),
                cap: Duration::from_micros(100),
            },
            ..AdaptiveParams::default()
        };
        let result = apply_adaptive(&cdw, &compiled, None, &layout, 1, 6, params, None);
        assert!(matches!(result, Err(CdwError::Transient(_))));
    }

    #[test]
    fn figure5_unlimited_errors() {
        let (cdw, compiled, layout) = setup();
        stage_figure5(&cdw);
        let emu = emulate::plan(&cdw, &compiled).unwrap();
        let outcome = apply_adaptive(
            &cdw,
            &compiled,
            emu.as_ref(),
            &layout,
            1,
            6,
            AdaptiveParams::default(),
            None,
        )
        .unwrap();
        // Rows 1 and 5 load; 2,3 conversion errors; 4 uniqueness.
        assert_eq!(outcome.applied, 2);
        assert_eq!(outcome.errors.len(), 3);
        let singles: Vec<(u64, ErrCode)> = outcome
            .errors
            .iter()
            .map(|e| match e.rows {
                ErrorRows::Single(s) => (s, e.code),
                ErrorRows::Range(a, _) => (a, e.code),
            })
            .collect();
        assert!(singles.contains(&(2, ErrCode::DML_CONVERSION)));
        assert!(singles.contains(&(3, ErrCode::DML_CONVERSION)));
        assert!(singles.contains(&(4, ErrCode::UNIQUENESS)));
        let uv: Vec<_> = outcome
            .errors
            .iter()
            .filter(|e| e.uv_tuple.is_some())
            .collect();
        assert_eq!(uv.len(), 1);
        assert_eq!(
            uv[0].uv_tuple.as_ref().unwrap()[1],
            Value::Str("Jones".into())
        );
        assert_eq!(cdw.table_len("PROD.CUSTOMER").unwrap(), 2);
    }

    #[test]
    fn figure6_max_errors_2() {
        let (cdw, compiled, layout) = setup();
        stage_figure5(&cdw);
        let emu = emulate::plan(&cdw, &compiled).unwrap();
        let outcome = apply_adaptive(
            &cdw,
            &compiled,
            emu.as_ref(),
            &layout,
            1,
            6,
            AdaptiveParams {
                max_errors: 2,
                ..AdaptiveParams::default()
            },
            None,
        )
        .unwrap();
        // Figure 6: rows 2 and 3 recorded individually as 3103, then the
        // remaining range (4, 5) recorded once as 9057.
        assert_eq!(outcome.errors.len(), 3);
        assert_eq!(outcome.errors[0].code, ErrCode::DML_CONVERSION);
        assert_eq!(outcome.errors[0].rows, ErrorRows::Single(2));
        assert_eq!(outcome.errors[0].field.as_deref(), Some("JOIN_DATE"));
        assert!(
            outcome.errors[0]
                .message
                .contains("DATE conversion failed during DML on PROD.CUSTOMER, row number: 2"),
            "{}",
            outcome.errors[0].message
        );
        assert_eq!(outcome.errors[1].rows, ErrorRows::Single(3));
        assert_eq!(outcome.errors[2].code, ErrCode::MAX_ERRORS);
        assert_eq!(outcome.errors[2].rows, ErrorRows::Range(4, 5));
        assert!(
            outcome.errors[2].message.contains("row numbers: (4, 5)"),
            "{}",
            outcome.errors[2].message
        );
        // Only row 1 applied (rows 4/5 were lumped into the range record).
        assert_eq!(outcome.applied, 1);
    }

    #[test]
    fn max_retries_limits_depth() {
        let (cdw, compiled, layout) = setup();
        stage_figure5(&cdw);
        let emu = emulate::plan(&cdw, &compiled).unwrap();
        let outcome = apply_adaptive(
            &cdw,
            &compiled,
            emu.as_ref(),
            &layout,
            1,
            6,
            AdaptiveParams {
                max_retries: 1,
                ..AdaptiveParams::default()
            },
            None,
        )
        .unwrap();
        // Depth 1 means at most one split: sub-ranges still failing get
        // 9058 range records instead of reaching singletons.
        assert!(outcome
            .errors
            .iter()
            .any(|e| e.code == ErrCode::MAX_RETRIES));
        // Every range record is a depth-limit record (never a 9057
        // max-errors record — the error budget here is unlimited).
        assert!(outcome
            .errors
            .iter()
            .all(|e| matches!(e.rows, ErrorRows::Single(_)) || e.code == ErrCode::MAX_RETRIES));
    }

    #[test]
    fn empty_range_is_noop() {
        let (cdw, compiled, layout) = setup();
        let emu = emulate::plan(&cdw, &compiled).unwrap();
        let outcome = apply_adaptive(
            &cdw,
            &compiled,
            emu.as_ref(),
            &layout,
            5,
            5,
            AdaptiveParams::default(),
            None,
        )
        .unwrap();
        assert_eq!(outcome.applied, 0);
        assert_eq!(outcome.statements, 0);
    }

    #[test]
    fn structural_error_propagates() {
        let (cdw, _, layout) = setup();
        let broken = compile_dml(
            "insert into NO_SUCH_TABLE values (:CUST_ID, :CUST_NAME, :JOIN_DATE)",
            &layout,
            "STG",
        )
        .unwrap();
        stage_figure5(&cdw);
        let result = apply_adaptive(
            &cdw,
            &broken,
            None,
            &layout,
            1,
            6,
            AdaptiveParams::default(),
            None,
        );
        assert!(matches!(result, Err(CdwError::TableNotFound(_))));
    }
}
