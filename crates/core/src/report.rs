//! Job reports and node metrics — the measurement surface for the paper's
//! §9 experiments.

use std::time::Duration;

use etlv_protocol::message::LoadReport;

/// Phase-timed accounting for one completed load job.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct JobReport {
    /// Records received from the client.
    pub rows_received: u64,
    /// Rows applied to the target table.
    pub rows_applied: u64,
    /// Rows recorded in the ET table.
    pub errors_et: u64,
    /// Rows recorded in the UV table.
    pub errors_uv: u64,
    /// Acquisition phase: first chunk → staging table loaded (includes
    /// conversion, serialization, upload, and COPY).
    pub acquisition: Duration,
    /// Application phase: DML execution including adaptive retries.
    pub application: Duration,
    /// Startup/teardown and everything else.
    pub other: Duration,
    /// Staged files uploaded.
    pub files_staged: u64,
    /// Bytes written to staging files.
    pub bytes_staged: u64,
    /// Upload attempts retried after transient store failures.
    pub upload_retries: u64,
    /// CDW statements retried after transient engine/store failures
    /// (COPY trigger, application DML, error-table writes).
    pub cdw_retries: u64,
    /// Faults injected by the node's fault plan over the job's lifetime
    /// (0 when no plan is configured).
    pub faults_injected: u64,
    /// The job was aborted mid-flight (client disconnect, idle timeout,
    /// or shutdown) rather than running to completion or a clean failure.
    pub aborted: bool,
}

impl JobReport {
    /// Convert into the wire-level report sent back to the client.
    pub fn to_wire(&self) -> LoadReport {
        LoadReport {
            rows_received: self.rows_received,
            rows_applied: self.rows_applied,
            errors_et: self.errors_et,
            errors_uv: self.errors_uv,
            acquisition_micros: self.acquisition.as_micros() as u64,
            application_micros: self.application.as_micros() as u64,
            other_micros: self.other.as_micros() as u64,
            retries: self.upload_retries + self.cdw_retries,
            faults_injected: self.faults_injected,
            upload_retries: self.upload_retries,
            cdw_retries: self.cdw_retries,
        }
    }

    /// Total job wall time.
    pub fn total(&self) -> Duration {
        self.acquisition + self.application + self.other
    }
}

/// Node-level counters, aggregated across jobs.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NodeMetrics {
    /// Load jobs completed.
    pub jobs_completed: u64,
    /// Load jobs failed.
    pub jobs_failed: u64,
    /// Export jobs served.
    pub exports_completed: u64,
    /// Jobs aborted mid-flight (disconnect, idle timeout, shutdown).
    pub jobs_aborted: u64,
    /// Total records ingested.
    pub rows_ingested: u64,
    /// Total records served to export sessions.
    pub rows_exported: u64,
    /// Total encoded bytes served to export sessions.
    pub bytes_exported: u64,
    /// Credit-pool stalls (back-pressure engagements).
    pub credit_stalls: u64,
    /// Total time sessions spent blocked on credits.
    pub credit_stall_time: Duration,
    /// Peak in-flight memory observed.
    pub peak_memory: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_conversion() {
        let report = JobReport {
            rows_received: 10,
            rows_applied: 8,
            errors_et: 1,
            errors_uv: 1,
            acquisition: Duration::from_millis(5),
            application: Duration::from_millis(7),
            other: Duration::from_micros(250),
            files_staged: 2,
            bytes_staged: 1024,
            upload_retries: 3,
            cdw_retries: 2,
            faults_injected: 5,
            aborted: false,
        };
        let wire = report.to_wire();
        assert_eq!(wire.rows_received, 10);
        assert_eq!(wire.acquisition_micros, 5000);
        assert_eq!(wire.application_micros, 7000);
        assert_eq!(wire.other_micros, 250);
        assert_eq!(wire.retries, 5, "upload + cdw retries combined");
        assert_eq!(wire.upload_retries, 3);
        assert_eq!(wire.cdw_retries, 2);
        assert_eq!(
            wire.retries,
            wire.upload_retries + wire.cdw_retries,
            "total stays consistent with the split"
        );
        assert_eq!(wire.faults_injected, 5);
        assert_eq!(report.total(), Duration::from_micros(12_250));
    }
}
