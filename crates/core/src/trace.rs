//! Per-job causal traces: assembling journal events into a span tree and
//! attributing the job's wall time to pipeline stages.
//!
//! The journal (see [`crate::obs`]) records flat [`SpanEvent`]s; each
//! carries [`SpanIds`] naming its trace, its own span, and the span that
//! caused it. [`JobTrace::assemble`] rebuilds the tree for one job and
//! runs **critical-path attribution**: the interval `[job.begin,
//! job.begin + wall]` is decomposed segment by segment, each segment
//! charged to the highest-priority stage active during it (`copy` >
//! `apply` > `upload` > `convert` > `queue_wait` > `ack_wait`), with
//! uncovered segments charged to `other`. Because the decomposition is a
//! partition of the wall interval, the per-stage totals sum *exactly* to
//! the measured wall time — no double counting under parallelism, which a
//! naive sum of span durations would suffer from the moment two converter
//! workers overlap.
//!
//! This module is compiled regardless of the `obs` feature: with
//! instrumentation off the journal yields no events and `assemble`
//! returns `None`, so callers stay unconditional.

use crate::obs::{SpanEvent, SpanIds};

/// Pipeline stages wall time is attributed to, in *ascending* charge
/// priority (later variants win overlapping segments).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Stage {
    /// Client ack turnaround (aggregate, lowest priority).
    AckWait,
    /// Chunk time spent queued between gateway intake and a converter.
    QueueWait,
    /// Record conversion (vartext/binary → staged columnar text).
    Convert,
    /// Staged-part upload to the object store.
    Upload,
    /// Whole-application phase (COPY + DML + bisection).
    Apply,
    /// CDW COPY INTO specifically (highest priority).
    Copy,
}

impl Stage {
    /// Stage label used in JSON and rendered output.
    pub fn name(self) -> &'static str {
        match self {
            Stage::QueueWait => "queue_wait",
            Stage::Convert => "convert",
            Stage::Upload => "upload",
            Stage::Copy => "copy",
            Stage::Apply => "apply",
            Stage::AckWait => "ack_wait",
        }
    }

    /// Map a journal event kind to the stage it represents, if any.
    pub fn classify(kind: &str) -> Option<Stage> {
        Some(match kind {
            "chunk.queue" => Stage::QueueWait,
            "chunk.convert" => Stage::Convert,
            "file.upload" => Stage::Upload,
            "copy" => Stage::Copy,
            "apply" => Stage::Apply,
            "ack.wait" => Stage::AckWait,
            _ => return None,
        })
    }

    /// All stages, priority ascending.
    pub const ALL: [Stage; 6] = [
        Stage::AckWait,
        Stage::QueueWait,
        Stage::Convert,
        Stage::Upload,
        Stage::Apply,
        Stage::Copy,
    ];
}

/// One node of the assembled span tree.
#[derive(Debug, Clone)]
pub struct SpanNode {
    /// This node's span id (0 for synthesized orphan anchors).
    pub span: u64,
    /// Parent span id (0 = root).
    pub parent: u64,
    /// Journal event kind.
    pub kind: &'static str,
    /// Event timestamp (journal epoch µs; timed events stamp completion).
    pub at_micros: u64,
    /// Span duration, µs (0 for instantaneous events).
    pub dur_micros: u64,
    /// Originating session (0 = internal worker).
    pub session: u64,
    /// Kind-specific: chunk seq / part number / range start.
    pub chunk: u64,
    /// Kind-specific: rows / bytes / range end.
    pub value: u64,
    /// Child node indices into [`JobTrace::nodes`].
    pub children: Vec<usize>,
}

/// A job's assembled trace: the span tree plus wall-time attribution.
#[derive(Debug, Clone)]
pub struct JobTrace {
    /// The job's load token.
    pub job: u64,
    /// Trace id every span shares.
    pub trace_id: u64,
    /// Index of the root (`job.begin`) node in [`Self::nodes`].
    pub root: usize,
    /// All nodes, journal order.
    pub nodes: Vec<SpanNode>,
    /// Journal timestamp of `job.begin`, µs.
    pub begin_micros: u64,
    /// Measured job wall time, µs.
    pub wall_micros: u64,
    /// Whether `job.end` was observed (false = job still running or the
    /// ring evicted it).
    pub complete: bool,
    /// Events whose parent span was not retained (evicted or untraced);
    /// they are re-anchored under the root.
    pub orphans: u64,
    /// Wall-time decomposition: `(stage_name, micros)` for every stage
    /// plus `"other"`, summing exactly to `wall_micros`.
    pub attribution: Vec<(&'static str, u64)>,
    /// The stage with the largest attributed share (the critical stage).
    pub critical_stage: &'static str,
}

impl JobTrace {
    /// Assemble one job's events (as returned by
    /// `Journal::events_for_job`, oldest first) into a trace. Returns
    /// `None` when no `job.begin` event survives — without the root there
    /// is no tree to hang anything on.
    pub fn assemble(events: &[SpanEvent]) -> Option<JobTrace> {
        let begin = events.iter().find(|e| e.kind == "job.begin")?;
        let root_ids: SpanIds = begin.ids;
        let job = begin.job;

        // Wall time: job.end carries the measured duration; fall back to
        // the latest event timestamp for in-flight jobs.
        let end = events
            .iter()
            .find(|e| e.kind == "job.end" && e.ids.span == root_ids.span);
        let last_at = events
            .iter()
            .map(|e| e.at_micros)
            .max()
            .unwrap_or(begin.at_micros);
        let wall_micros = match end {
            Some(e) if e.dur_micros > 0 => e.dur_micros,
            Some(e) => e.at_micros.saturating_sub(begin.at_micros),
            None => last_at.saturating_sub(begin.at_micros),
        };

        // First pass: one node per event (job.end folds into the root).
        let mut nodes: Vec<SpanNode> = Vec::with_capacity(events.len());
        let mut root = 0usize;
        for e in events {
            if e.kind == "job.end" && e.ids.span == root_ids.span {
                continue;
            }
            if e.kind == "job.begin" {
                root = nodes.len();
            }
            nodes.push(SpanNode {
                span: e.ids.span,
                parent: if e.kind == "job.begin" {
                    0
                } else {
                    e.ids.parent
                },
                kind: e.kind,
                at_micros: e.at_micros,
                dur_micros: e.dur_micros,
                session: e.session,
                chunk: e.chunk,
                value: e.value,
                children: Vec::new(),
            });
        }

        // Second pass: link children. Untraced events (parent 0, e.g.
        // session.logon) anchor under the root directly; a *nonzero*
        // parent that is no longer retained re-anchors too but counts as
        // an orphan — evidence the ring evicted part of the tree.
        let index_of_span: std::collections::HashMap<u64, usize> = nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.span != 0)
            .map(|(i, n)| (n.span, i))
            .collect();
        let mut orphans = 0u64;
        let mut links: Vec<(usize, usize)> = Vec::with_capacity(nodes.len());
        for (i, node) in nodes.iter().enumerate() {
            if i == root {
                continue;
            }
            let parent_idx = if node.parent == 0 {
                root
            } else {
                match index_of_span.get(&node.parent) {
                    Some(&p) if p != i => p,
                    _ => {
                        orphans += 1;
                        root
                    }
                }
            };
            links.push((parent_idx, i));
        }
        for (p, c) in links {
            nodes[p].children.push(c);
        }

        // Attribution: partition [t0, t0+wall] by charge priority.
        let t0 = begin.at_micros;
        let t1 = t0 + wall_micros;
        let mut intervals: Vec<(u64, u64, Stage)> = Vec::new();
        for (i, node) in nodes.iter().enumerate() {
            if i == root || node.dur_micros == 0 {
                continue;
            }
            let Some(stage) = Stage::classify(node.kind) else {
                continue;
            };
            // Timed events stamp completion; the aggregate ack.wait span
            // has no single placement, so anchor it at job begin where
            // every higher-priority stage can shadow it.
            let (lo, hi) = if stage == Stage::AckWait {
                (t0, t0.saturating_add(node.dur_micros))
            } else {
                (
                    node.at_micros.saturating_sub(node.dur_micros),
                    node.at_micros,
                )
            };
            let lo = lo.clamp(t0, t1);
            let hi = hi.clamp(t0, t1);
            if hi > lo {
                intervals.push((lo, hi, stage));
            }
        }
        let mut cuts: Vec<u64> = vec![t0, t1];
        for &(lo, hi, _) in &intervals {
            cuts.push(lo);
            cuts.push(hi);
        }
        cuts.sort_unstable();
        cuts.dedup();
        let mut totals = [0u64; 6];
        let mut other = 0u64;
        for w in cuts.windows(2) {
            let (lo, hi) = (w[0], w[1]);
            if hi <= lo {
                continue;
            }
            let winner = intervals
                .iter()
                .filter(|&&(ilo, ihi, _)| ilo <= lo && hi <= ihi)
                .map(|&(_, _, s)| s)
                .max();
            match winner {
                Some(stage) => {
                    totals[Stage::ALL.iter().position(|&s| s == stage).unwrap()] += hi - lo;
                }
                None => other += hi - lo,
            }
        }
        let mut attribution: Vec<(&'static str, u64)> = Stage::ALL
            .iter()
            .enumerate()
            .map(|(i, s)| (s.name(), totals[i]))
            .collect();
        attribution.push(("other", other));
        let critical_stage = attribution
            .iter()
            .max_by_key(|(_, micros)| *micros)
            .map(|(name, _)| *name)
            .unwrap_or("other");

        Some(JobTrace {
            job,
            trace_id: root_ids.trace,
            root,
            nodes,
            begin_micros: t0,
            wall_micros,
            complete: end.is_some(),
            orphans,
            attribution,
            critical_stage,
        })
    }

    /// Sum of all attributed buckets — equals `wall_micros` by
    /// construction.
    pub fn attributed_total(&self) -> u64 {
        self.attribution.iter().map(|(_, m)| m).sum()
    }

    /// Render the trace as a JSON document (the `TraceReply` body).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(1024 + self.nodes.len() * 128);
        out.push_str(&format!(
            "{{\n  \"job\": {}, \"trace_id\": {}, \"complete\": {}, \
             \"wall_micros\": {}, \"orphans\": {},\n",
            self.job, self.trace_id, self.complete, self.wall_micros, self.orphans
        ));
        out.push_str("  \"attribution\": {");
        for (i, (name, micros)) in self.attribution.iter().enumerate() {
            out.push_str(if i == 0 { "" } else { ", " });
            out.push_str(&format!("\"{name}\": {micros}"));
        }
        out.push_str("},\n");
        out.push_str(&format!(
            "  \"critical_stage\": \"{}\",\n  \"spans\": [",
            self.critical_stage
        ));
        for (i, n) in self.nodes.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            out.push_str(&format!(
                "    {{\"span\": {}, \"parent\": {}, \"kind\": \"{}\", \
                 \"at_micros\": {}, \"dur_micros\": {}, \"session\": {}, \
                 \"chunk\": {}, \"value\": {}}}",
                n.span, n.parent, n.kind, n.at_micros, n.dur_micros, n.session, n.chunk, n.value
            ));
        }
        out.push_str("\n  ]\n}\n");
        out
    }

    /// Render the span tree as indented ASCII, critical-path stages
    /// marked with `*` (used by `examples/obs_dump.rs --trace`).
    pub fn render_ascii(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "job {} trace {:#x} wall {}us{}\n",
            self.job,
            self.trace_id,
            self.wall_micros,
            if self.complete { "" } else { " (incomplete)" }
        ));
        out.push_str("attribution:\n");
        for (name, micros) in &self.attribution {
            let pct = if self.wall_micros > 0 {
                *micros as f64 * 100.0 / self.wall_micros as f64
            } else {
                0.0
            };
            let mark = if *name == self.critical_stage {
                " *"
            } else {
                ""
            };
            out.push_str(&format!("  {name:<10} {micros:>10}us {pct:5.1}%{mark}\n"));
        }
        out.push_str("spans:\n");
        self.render_node(&mut out, self.root, 1);
        out
    }

    fn render_node(&self, out: &mut String, idx: usize, depth: usize) {
        let n = &self.nodes[idx];
        let critical = Stage::classify(n.kind)
            .map(|s| s.name() == self.critical_stage)
            .unwrap_or(false);
        out.push_str(&format!(
            "{}{} {}{} [span {}]",
            "  ".repeat(depth),
            if critical { "*" } else { "-" },
            n.kind,
            if n.chunk != 0 || n.kind.starts_with("chunk") {
                format!(" #{}", n.chunk)
            } else {
                String::new()
            },
            n.span,
        ));
        if n.dur_micros > 0 {
            out.push_str(&format!(" {}us", n.dur_micros));
        }
        if n.value > 0 {
            out.push_str(&format!(" ({})", n.value));
        }
        out.push('\n');
        // Children in journal (time) order.
        for &c in &n.children {
            self.render_node(out, c, depth + 1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(
        kind: &'static str,
        ids: SpanIds,
        at: u64,
        dur: u64,
        chunk: u64,
        value: u64,
    ) -> SpanEvent {
        SpanEvent {
            seq: at,
            at_micros: at,
            kind,
            ids,
            job: 7,
            session: 0,
            chunk,
            value,
            dur_micros: dur,
        }
    }

    fn root_ids() -> SpanIds {
        SpanIds {
            trace: 0xABC,
            span: 1,
            parent: 0,
        }
    }

    #[test]
    fn assembles_tree_and_partitions_wall_time() {
        let r = root_ids();
        let events = vec![
            ev("job.begin", r, 1000, 0, 0, 2),
            // Two overlapping converts: 1000..1400 and 1200..1600.
            ev("chunk.convert", r.child(2), 1400, 400, 1, 100),
            ev("chunk.convert", r.child(3), 1600, 400, 2, 100),
            // Upload 1600..1900.
            ev("file.upload", r.child(4), 1900, 300, 1, 4096),
            // COPY 1900..2100, apply phase 1900..2500.
            ev("copy", r.child(5), 2100, 200, 0, 0),
            ev("apply", r.child(6), 2500, 600, 0, 0),
            // Aggregate ack wait, anchored at begin.
            ev("ack.wait", r.child(7), 2500, 350, 0, 0),
            ev("job.end", r, 2500, 1500, 0, 200),
        ];
        let t = JobTrace::assemble(&events).expect("trace assembles");
        assert_eq!(t.job, 7);
        assert_eq!(t.trace_id, 0xABC);
        assert!(t.complete);
        assert_eq!(t.wall_micros, 1500);
        assert_eq!(t.orphans, 0);
        assert_eq!(t.nodes[t.root].children.len(), 6);

        // Exact partition: buckets sum to the wall time.
        assert_eq!(t.attributed_total(), t.wall_micros);
        let get = |name: &str| {
            t.attribution
                .iter()
                .find(|(n, _)| *n == name)
                .map(|(_, m)| *m)
                .unwrap()
        };
        // Converts cover 1000..1600 = 600, but ack.wait (1000..1350) is
        // lower priority so convert keeps it all.
        assert_eq!(get("convert"), 600);
        // Upload 1600..1900 = 300.
        assert_eq!(get("upload"), 300);
        // Apply covers 1900..2500 but copy (1900..2100) outranks it.
        assert_eq!(get("copy"), 200);
        assert_eq!(get("apply"), 400);
        assert_eq!(get("ack_wait"), 0, "fully shadowed by convert");
        assert_eq!(get("other"), 0);
        assert_eq!(t.critical_stage, "convert");
    }

    #[test]
    fn orphan_events_anchor_to_root() {
        let r = root_ids();
        let lost_parent = SpanIds {
            trace: 0xABC,
            span: 9,
            parent: 999, // evicted from the ring
        };
        let events = vec![
            ev("job.begin", r, 0, 0, 0, 1),
            ev("chunk.convert", lost_parent, 500, 100, 1, 10),
        ];
        let t = JobTrace::assemble(&events).unwrap();
        assert_eq!(t.orphans, 1);
        assert_eq!(t.nodes[t.root].children.len(), 1);
        assert!(!t.complete);
        assert_eq!(t.wall_micros, 500, "falls back to last event");
    }

    #[test]
    fn no_begin_means_no_trace() {
        let r = root_ids();
        let events = vec![ev("chunk.convert", r.child(2), 10, 5, 1, 1)];
        assert!(JobTrace::assemble(&events).is_none());
        assert!(JobTrace::assemble(&[]).is_none());
    }

    #[test]
    fn json_and_ascii_render() {
        let r = root_ids();
        let events = vec![
            ev("job.begin", r, 0, 0, 0, 1),
            ev("chunk.convert", r.child(2), 300, 300, 1, 50),
            ev("job.end", r, 400, 400, 0, 50),
        ];
        let t = JobTrace::assemble(&events).unwrap();
        let json = t.to_json();
        assert!(json.contains("\"job\": 7"), "{json}");
        assert!(json.contains("\"critical_stage\": \"convert\""), "{json}");
        assert!(json.contains("\"attribution\""), "{json}");
        assert!(json.contains("\"kind\": \"chunk.convert\""), "{json}");

        let ascii = t.render_ascii();
        assert!(ascii.contains("job 7"), "{ascii}");
        assert!(ascii.contains("convert"), "{ascii}");
        assert!(ascii.contains('*'), "critical path marked: {ascii}");
    }
}
