//! The live span/event journal: a bounded in-memory ring of fixed-shape
//! [`SpanEvent`]s with an optional JSONL sink. Compiled only with the
//! `obs` feature.

use std::collections::VecDeque;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use super::{SpanEvent, SpanIds};

struct JournalInner {
    epoch: Instant,
    capacity: usize,
    seq: AtomicU64,
    next_span: AtomicU64,
    dropped: AtomicU64,
    ring: Mutex<VecDeque<SpanEvent>>,
    sink: Option<Mutex<BufWriter<File>>>,
}

/// Bounded event journal shared by every instrumented subsystem. Emitting
/// copies one fixed-size struct under a short mutex; the optional sink
/// (JSONL, one event per line) is the only path that allocates.
#[derive(Clone)]
pub struct Journal {
    inner: Arc<JournalInner>,
}

impl Journal {
    /// New journal retaining the most recent `capacity` events. When
    /// `jsonl` is set, every event is also appended to that file; a file
    /// that cannot be created downgrades to in-memory only (the journal
    /// must never take down the data path).
    pub fn new(capacity: usize, jsonl: Option<&Path>) -> Journal {
        let sink = jsonl.and_then(|path| match File::create(path) {
            Ok(f) => Some(Mutex::new(BufWriter::new(f))),
            Err(e) => {
                eprintln!("journal: cannot create {}: {e}", path.display());
                None
            }
        });
        Journal {
            inner: Arc::new(JournalInner {
                epoch: Instant::now(),
                capacity: capacity.max(1),
                seq: AtomicU64::new(0),
                next_span: AtomicU64::new(1),
                dropped: AtomicU64::new(0),
                ring: Mutex::new(VecDeque::with_capacity(capacity.clamp(1, 4096))),
                sink,
            }),
        }
    }

    /// Emit one untraced event (zero span ids). `chunk` and `value` are
    /// kind-specific payloads (see [`SpanEvent`]).
    pub fn emit(
        &self,
        kind: &'static str,
        job: u64,
        session: u64,
        chunk: u64,
        value: u64,
        dur: Duration,
    ) {
        self.emit_span(kind, SpanIds::default(), job, session, chunk, value, dur);
    }

    /// Emit one event carrying a causal identity.
    #[allow(clippy::too_many_arguments)]
    pub fn emit_span(
        &self,
        kind: &'static str,
        ids: SpanIds,
        job: u64,
        session: u64,
        chunk: u64,
        value: u64,
        dur: Duration,
    ) {
        let event = SpanEvent {
            seq: self.inner.seq.fetch_add(1, Ordering::Relaxed),
            at_micros: self.inner.epoch.elapsed().as_micros() as u64,
            kind,
            ids,
            job,
            session,
            chunk,
            value,
            dur_micros: dur.as_micros() as u64,
        };
        {
            let mut ring = self.inner.ring.lock();
            if ring.len() == self.inner.capacity {
                ring.pop_front();
                self.inner.dropped.fetch_add(1, Ordering::Relaxed);
            }
            ring.push_back(event);
        }
        if let Some(sink) = &self.inner.sink {
            let mut w = sink.lock();
            let _ = writeln!(w, "{}", event.to_json());
        }
    }

    /// Mint a node-unique span id (nonzero, monotonic).
    pub fn next_span_id(&self) -> u64 {
        self.inner.next_span.fetch_add(1, Ordering::Relaxed)
    }

    /// Events evicted from the ring because it was full.
    pub fn dropped(&self) -> u64 {
        self.inner.dropped.load(Ordering::Relaxed)
    }

    /// All retained events for one job, oldest first.
    pub fn events_for_job(&self, job: u64) -> Vec<SpanEvent> {
        let ring = self.inner.ring.lock();
        ring.iter().filter(|e| e.job == job).copied().collect()
    }

    /// Microseconds since the journal epoch (the `at_micros` clock).
    pub fn now_micros(&self) -> u64 {
        self.inner.epoch.elapsed().as_micros() as u64
    }

    /// The most recent `n` events, oldest first.
    pub fn tail(&self, n: usize) -> Vec<SpanEvent> {
        let ring = self.inner.ring.lock();
        ring.iter()
            .skip(ring.len().saturating_sub(n))
            .copied()
            .collect()
    }

    /// Events emitted over the journal's lifetime (including evicted ones).
    pub fn emitted(&self) -> u64 {
        self.inner.seq.load(Ordering::Relaxed)
    }

    /// Events currently retained in the ring.
    pub fn retained(&self) -> usize {
        self.inner.ring.lock().len()
    }

    /// Flush the JSONL sink, if any.
    pub fn flush(&self) {
        if let Some(sink) = &self.inner.sink {
            let _ = sink.lock().flush();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_bounds_and_ordering() {
        let j = Journal::new(3, None);
        for i in 0..5u64 {
            j.emit("t", i, 0, 0, 0, Duration::ZERO);
        }
        assert_eq!(j.emitted(), 5);
        assert_eq!(j.retained(), 3);
        let tail = j.tail(10);
        assert_eq!(tail.len(), 3);
        assert_eq!(
            tail.iter().map(|e| e.job).collect::<Vec<_>>(),
            vec![2, 3, 4],
            "oldest evicted, order preserved"
        );
        assert!(tail.windows(2).all(|w| w[0].seq < w[1].seq));
        assert_eq!(j.tail(2).len(), 2);
        assert_eq!(j.tail(2)[1].job, 4);
    }

    #[test]
    fn overflow_counts_dropped_events() {
        let j = Journal::new(3, None);
        assert_eq!(j.dropped(), 0);
        for i in 0..5u64 {
            j.emit("t", i, 0, 0, 0, Duration::ZERO);
        }
        assert_eq!(j.dropped(), 2);
    }

    #[test]
    fn events_for_job_filters_and_keeps_ids() {
        let j = Journal::new(16, None);
        let root = SpanIds {
            trace: 9,
            span: j.next_span_id(),
            parent: 0,
        };
        j.emit_span("job.begin", root, 7, 1, 0, 0, Duration::ZERO);
        j.emit("noise", 8, 0, 0, 0, Duration::ZERO);
        j.emit_span(
            "chunk.convert",
            root.child(j.next_span_id()),
            7,
            0,
            3,
            100,
            Duration::from_micros(40),
        );
        let events = j.events_for_job(7);
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].kind, "job.begin");
        assert_eq!(events[1].ids.trace, 9);
        assert_eq!(events[1].ids.parent, root.span);
        assert_ne!(events[1].ids.span, root.span);
    }

    #[test]
    fn jsonl_sink_writes_lines() {
        let dir = std::env::temp_dir().join("etlv-obs-journal-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("sink-{}.jsonl", std::process::id()));
        let j = Journal::new(8, Some(&path));
        j.emit("upload.part", 1, 0, 2, 1024, Duration::from_micros(55));
        j.emit("copy", 1, 0, 0, 0, Duration::from_micros(900));
        j.flush();
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(
            lines[0].contains("\"kind\": \"upload.part\""),
            "{}",
            lines[0]
        );
        assert!(lines[1].contains("\"dur_micros\": 900"), "{}", lines[1]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn unwritable_sink_degrades_to_memory_only() {
        let j = Journal::new(4, Some(Path::new("/no/such/dir/x.jsonl")));
        j.emit("t", 0, 0, 0, 0, Duration::ZERO);
        assert_eq!(j.retained(), 1);
    }
}
