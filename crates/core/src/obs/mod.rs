//! Observability: sharded metrics registry, structured span journal, and
//! the snapshot renderers behind `Virtualizer::stats_snapshot()`.
//!
//! The paper's §9 experiments (phase breakdowns in Fig. 8, credit and
//! adaptive behaviour in Fig. 10) presume the operator can see *inside* a
//! running virtualizer. This module provides that view without touching
//! the zero-allocation guarantees of the conversion hot path:
//!
//! - **Counters** are sharded across cache-line-padded atomic cells, so
//!   concurrent converter workers never contend on one line; shards are
//!   summed only at snapshot time.
//! - **Histograms** are log-linear (HDR-style): 4 linear sub-buckets per
//!   power of two, giving ≤ 12.5% relative error on p50/p95/p99 with a
//!   fixed 252-slot atomic array and no allocation on record.
//! - **Spans/events** carry stable IDs (`job`/`session`/`chunk_seq`) in a
//!   fixed-shape [`SpanEvent`] — no per-event allocation — collected into
//!   a bounded in-memory ring with an optional JSONL sink.
//!
//! Everything is pre-registered: subsystems hold [`Counter`]/[`Gauge`]/
//! [`Histogram`] handles resolved once at node assembly, so the record
//! path is a single relaxed atomic op. Compiling with
//! `--no-default-features` (dropping the `obs` feature) swaps in zero-size
//! no-op handles with the same API, so call sites stay unconditional and
//! the instrumentation cost can be *measured* against a compiled-out
//! build (see `bench_pr3`).

use std::time::Duration;

mod render;
pub use render::{prom_escape_label, stats_json, stats_prometheus};

mod slo;
pub use slo::{
    HealthReport, OverloadInput, OverloadState, SloEngine, SloPolicy, SloStatus, TenantHealth,
};

mod profile;
pub use profile::{
    folded_flamegraph, render_flame_ascii, thread_cpu_time, CpuTimer, LockSiteObs,
    LockSiteSnapshot, PoolProfile, ProfileReport, StageCpuProfile, TrackedCondvar, TrackedMutex,
    TrackedMutexGuard, TrackedReadGuard, TrackedRwLock, TrackedWriteGuard, PROFILE_TOP_K,
};

#[cfg(feature = "obs")]
mod journal;
#[cfg(feature = "obs")]
mod metrics;
#[cfg(feature = "obs")]
mod sampler;
#[cfg(feature = "obs")]
pub use journal::Journal;
#[cfg(feature = "obs")]
pub use metrics::{Counter, Gauge, Histogram, MetricsRegistry};
#[cfg(feature = "obs")]
pub use sampler::Sampler;

#[cfg(not(feature = "obs"))]
mod noop;
#[cfg(not(feature = "obs"))]
pub use noop::{Counter, Gauge, Histogram, Journal, MetricsRegistry, Sampler};

/// Whether instrumentation is compiled in (the `obs` feature).
pub const fn enabled() -> bool {
    cfg!(feature = "obs")
}

/// Point-in-time view of one histogram.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Registered metric name.
    pub name: String,
    /// Number of recorded values.
    pub count: u64,
    /// Sum of recorded values.
    pub sum: u64,
    /// Largest recorded value.
    pub max: u64,
    /// Median (upper bound of the bucket holding the quantile).
    pub p50: u64,
    /// 95th percentile.
    pub p95: u64,
    /// 99th percentile.
    pub p99: u64,
}

/// Point-in-time view of the whole registry, name-sorted.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RegistrySnapshot {
    /// Counter names and merged shard sums.
    pub counters: Vec<(String, u64)>,
    /// Gauge names and current values.
    pub gauges: Vec<(String, u64)>,
    /// Histogram summaries.
    pub histograms: Vec<HistogramSnapshot>,
    /// Per-tenant metric blocks, sorted by tenant name.
    pub tenants: Vec<TenantSnapshot>,
    /// Interned lock-site blocks, sorted by site name.
    pub lock_sites: Vec<LockSiteSnapshot>,
}

/// Interned tenant identity: a small dense index into the registry's
/// tenant table, derived from the Logon username. Cheap to copy and to
/// stamp on jobs; the registry bounds how many distinct ids ever exist.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub struct TenantId(pub u16);

/// The catch-all tenant name used once the registry's tenant cardinality
/// bound is reached — further usernames share this block instead of
/// growing the label space.
pub const TENANT_OVERFLOW: &str = "~overflow";

/// Pre-registered per-tenant handles: one block per interned Logon
/// username, covering the whole job lifecycle (admission → queue →
/// convert → upload → apply) plus error/retry attribution and resources
/// currently held. All field types are the feature-aliased handles, so a
/// `--no-default-features` build collapses every field to a ZST.
pub struct TenantObs {
    /// Interned dense id.
    pub id: TenantId,
    /// Tenant (logon username) this block belongs to.
    pub name: String,
    /// Import jobs begun.
    pub jobs_started: Counter,
    /// Import jobs completed successfully.
    pub jobs_completed: Counter,
    /// Import jobs failed.
    pub jobs_failed: Counter,
    /// Import jobs aborted by session teardown.
    pub jobs_aborted: Counter,
    /// Logons or job admissions bounced with `SERVER_BUSY`.
    pub admission_rejections: Counter,
    /// Sessions closed by the idle-timeout reaper.
    pub idle_timeouts: Counter,
    /// Data chunks accepted.
    pub chunks: Counter,
    /// Raw bytes accepted in data chunks.
    pub chunk_bytes: Counter,
    /// Rows applied to target tables.
    pub rows_applied: Counter,
    /// Rows landed in ET (acquisition-error) tables.
    pub errors_et: Counter,
    /// Rows landed in UV (uniqueness-violation) tables.
    pub errors_uv: Counter,
    /// Upload + CDW retries spent on this tenant's jobs.
    pub retries: Counter,
    /// Jobs whose end-to-end latency exceeded the SLO latency target.
    pub slow_jobs: Counter,
    /// Import jobs currently active.
    pub active_jobs: Gauge,
    /// Back-pressure credits currently held by in-flight chunks.
    pub credit_held: Gauge,
    /// Staging memory bytes currently reserved by in-flight chunks.
    pub memory_held: Gauge,
    /// End-to-end job latency (BeginLoad → report), µs.
    pub job_us: Histogram,
    /// Chunk queue wait before a converter picks it up, µs.
    pub queue_wait_us: Histogram,
    /// Per-chunk conversion time, µs.
    pub convert_us: Histogram,
    /// Per-part upload time, µs.
    pub upload_us: Histogram,
    /// Whole-application (apply) time per job, µs.
    pub apply_us: Histogram,
}

impl TenantObs {
    /// Snapshot this tenant's block. Works identically for live and noop
    /// handle types (noop values are all zero).
    pub fn snapshot(&self) -> TenantSnapshot {
        let counters = vec![
            ("admission_rejections", self.admission_rejections.value()),
            ("chunk_bytes", self.chunk_bytes.value()),
            ("chunks", self.chunks.value()),
            ("errors_et", self.errors_et.value()),
            ("errors_uv", self.errors_uv.value()),
            ("idle_timeouts", self.idle_timeouts.value()),
            ("jobs_aborted", self.jobs_aborted.value()),
            ("jobs_completed", self.jobs_completed.value()),
            ("jobs_failed", self.jobs_failed.value()),
            ("jobs_started", self.jobs_started.value()),
            ("retries", self.retries.value()),
            ("rows_applied", self.rows_applied.value()),
            ("slow_jobs", self.slow_jobs.value()),
        ];
        let gauges = vec![
            ("active_jobs", self.active_jobs.value()),
            ("credit_held", self.credit_held.value()),
            ("memory_held", self.memory_held.value()),
        ];
        TenantSnapshot {
            tenant: self.name.clone(),
            counters: counters
                .into_iter()
                .map(|(n, v)| (n.to_string(), v))
                .collect(),
            gauges: gauges
                .into_iter()
                .map(|(n, v)| (n.to_string(), v))
                .collect(),
            histograms: vec![
                self.apply_us.snapshot("apply_us"),
                self.convert_us.snapshot("convert_us"),
                self.job_us.snapshot("job_us"),
                self.queue_wait_us.snapshot("queue_wait_us"),
                self.upload_us.snapshot("upload_us"),
            ],
        }
    }
}

/// Point-in-time view of one tenant's metric block, name-sorted like the
/// node-level lists.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TenantSnapshot {
    /// Tenant (logon username).
    pub tenant: String,
    /// Counter names and values.
    pub counters: Vec<(String, u64)>,
    /// Gauge names and values.
    pub gauges: Vec<(String, u64)>,
    /// Histogram summaries.
    pub histograms: Vec<HistogramSnapshot>,
}

/// Causal identity of a journal event: which trace it belongs to, which
/// span it *is*, and which span caused it. All-zero means "untraced" —
/// events emitted through the legacy [`Journal::emit`] path and events in
/// a `--no-default-features` build carry zero ids.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpanIds {
    /// Trace identifier shared by every span of one job (0 = untraced).
    pub trace: u64,
    /// This event's own span id (unique within the node).
    pub span: u64,
    /// Span id of the causing span (0 = root of the trace).
    pub parent: u64,
}

impl SpanIds {
    /// A child identity under this span: same trace, fresh span id,
    /// parented here.
    pub fn child(&self, span: u64) -> SpanIds {
        SpanIds {
            trace: self.trace,
            span,
            parent: self.span,
        }
    }
}

/// One structured journal event. Fixed shape — identity fields plus two
/// generic numeric payloads — so emitting never allocates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanEvent {
    /// Monotonic event number (never wraps in practice).
    pub seq: u64,
    /// Microseconds since the journal was created.
    pub at_micros: u64,
    /// Event kind, e.g. `"chunk.convert"` or `"apply.split"`.
    pub kind: &'static str,
    /// Causal identity (zero ids = untraced event).
    pub ids: SpanIds,
    /// Load/export token of the owning job (0 = node-level event).
    pub job: u64,
    /// Session id the event originated from (0 = internal worker).
    pub session: u64,
    /// Chunk sequence / part number / range start — kind-specific.
    pub chunk: u64,
    /// Generic magnitude: rows, bytes, range end — kind-specific.
    pub value: u64,
    /// Duration payload for timed events, microseconds.
    pub dur_micros: u64,
}

impl SpanEvent {
    /// One-line JSON rendering (the JSONL sink format).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"seq\": {}, \"at_micros\": {}, \"kind\": \"{}\", \
             \"trace\": {}, \"span\": {}, \"parent\": {}, \"job\": {}, \
             \"session\": {}, \"chunk\": {}, \"value\": {}, \"dur_micros\": {}}}",
            self.seq,
            self.at_micros,
            self.kind,
            self.ids.trace,
            self.ids.span,
            self.ids.parent,
            self.job,
            self.session,
            self.chunk,
            self.value,
            self.dur_micros
        )
    }
}

/// Gateway-side handles: session and chunk intake.
#[derive(Clone)]
pub struct GatewayObs {
    /// Sessions that completed logon.
    pub sessions_opened: Counter,
    /// Sessions closed (logoff, disconnect, or idle timeout).
    pub sessions_closed: Counter,
    /// Sessions currently registered (eagerly maintained gauge).
    pub active_sessions: Gauge,
    /// Jobs currently in the node's job table (eagerly maintained gauge).
    pub active_jobs: Gauge,
    /// Data chunks accepted.
    pub chunks_received: Counter,
    /// Raw bytes accepted in data chunks.
    pub chunk_bytes: Counter,
    /// Load jobs begun.
    pub jobs_started: Counter,
    /// Load jobs completed successfully.
    pub jobs_completed: Counter,
    /// Load jobs failed.
    pub jobs_failed: Counter,
    /// Jobs aborted by session teardown (disconnect, idle timeout, or
    /// server shutdown) rather than a client-visible failure.
    pub jobs_aborted: Counter,
    /// Logons or job admissions rejected with `SERVER_BUSY`.
    pub admission_rejections: Counter,
    /// Chunk intake handling time (credit acquire + enqueue), µs.
    pub chunk_handle_us: Histogram,
}

/// TCP server lifecycle handles (`listen_tcp` accept loop).
#[derive(Clone)]
pub struct ServerObs {
    /// Connections fully established (accepted *and* set up — a failed
    /// setup is a `conn_setup_errors`, not a connection).
    pub connections: Counter,
    /// Accept-loop errors (previously `.flatten()`ed away silently).
    pub accept_errors: Counter,
    /// Accepted sockets that failed post-accept setup (nonblocking
    /// mode, nodelay, reactor registration) before serving a byte.
    pub conn_setup_errors: Counter,
}

/// Reactor front-end handles: the event-loop threads multiplexing all
/// TCP sessions (PR 10).
#[derive(Clone)]
pub struct ReactorObs {
    /// Connection fds currently registered across all event loops.
    pub conns: Gauge,
    /// Event-loop threads the reactor is sized to.
    pub loops: Gauge,
    /// Ready events delivered per poll wakeup (batch size).
    pub ready_batch: Histogram,
    /// One loop iteration's processing latency (events + timers), µs.
    pub loop_iter_us: Histogram,
    /// Cross-thread wakeups delivered to loop threads.
    pub wakeups: Counter,
    /// Frames handed to the dispatch pool (blocking-capable work).
    pub dispatches: Counter,
    /// Frames answered inline on the loop (logon/keepalive/logoff).
    pub inline_replies: Counter,
    /// Sessions with a dispatched request in flight right now.
    pub conns_dispatching: Gauge,
    /// Sessions with undrained reply bytes right now.
    pub conns_writing: Gauge,
    /// Sessions reaped by the idle-timeout timer wheel.
    pub idle_closes: Counter,
    /// Accept-error backoff rounds (EMFILE and friends back off
    /// exponentially instead of spinning).
    pub accept_backoffs: Counter,
}

/// Shared job-worker runtime handles.
#[derive(Clone)]
pub struct RuntimeObs {
    /// Worker threads (converters + writers) the runtime is sized to.
    pub workers: Gauge,
    /// Worker threads actually started over the runtime's lifetime.
    pub threads_started: Counter,
    /// Per-job chunk-queue depth observed at each enqueue.
    pub queue_depth: Histogram,
}

/// Acquisition-pipeline handles: converter workers, writers, uploader.
#[derive(Clone)]
pub struct PipelineObs {
    /// Chunks converted.
    pub convert_chunks: Counter,
    /// Rows converted.
    pub convert_rows: Counter,
    /// Staged bytes produced by conversion.
    pub convert_bytes: Counter,
    /// Chunks that failed conversion.
    pub convert_errors: Counter,
    /// Staged files rotated (finalized).
    pub files_rotated: Counter,
    /// Staged file parts uploaded.
    pub upload_parts: Counter,
    /// Bytes handed to the uploader.
    pub upload_bytes: Counter,
    /// Upload attempts retried after transient store failures.
    pub upload_retries: Counter,
    /// Per-chunk conversion time, µs.
    pub convert_us: Histogram,
    /// Per-part upload time (including retries), µs.
    pub upload_us: Histogram,
}

/// Object-store handles, fed by the `ObservedStore` decorator.
#[derive(Clone)]
pub struct StoreObs {
    /// Put operations (including failed ones).
    pub put_ops: Counter,
    /// Bytes written by successful puts.
    pub put_bytes: Counter,
    /// Failed puts.
    pub put_errors: Counter,
    /// Get operations (including failed ones).
    pub get_ops: Counter,
    /// Bytes returned by successful gets.
    pub get_bytes: Counter,
    /// Failed gets.
    pub get_errors: Counter,
    /// Put wall time, µs.
    pub put_us: Histogram,
    /// Get wall time, µs.
    pub get_us: Histogram,
}

/// CDW execution handles, fed by the engine's exec observer.
#[derive(Clone)]
pub struct CdwObs {
    /// SQL statements executed.
    pub statements: Counter,
    /// Batched ingests (`copy_batch`) executed.
    pub batches: Counter,
    /// Statements/batches that failed (including injected transients).
    pub errors: Counter,
    /// Per-statement/batch wall time, µs.
    pub exec_us: Histogram,
    /// Access paths planned as index seeks (point/range seeks and
    /// index-lookup joins), fed by the engine's plan observer.
    pub plan_index_seek: Counter,
    /// Access paths that fell back to full table scans.
    pub plan_full_scan: Counter,
    /// Index maintenance operations (entries inserted or re-keyed).
    pub index_maintain: Counter,
}

/// Credit-pool handles (the back-pressure mechanism).
#[derive(Clone)]
pub struct CreditObs {
    /// Credits acquired.
    pub acquires: Counter,
    /// Acquisitions that had to block.
    pub stalls: Counter,
    /// Per-stall blocked time, µs.
    pub stall_us: Histogram,
    /// Credits currently in flight (refreshed at snapshot).
    pub in_flight: Gauge,
}

/// Memory-gauge handles (refreshed at snapshot).
#[derive(Clone)]
pub struct MemoryObs {
    /// In-flight staging memory, bytes.
    pub in_flight: Gauge,
    /// Peak in-flight memory observed, bytes.
    pub peak: Gauge,
}

/// Adaptive-application handles (COPY + DML + bisection).
#[derive(Clone)]
pub struct AdaptiveObs {
    /// Range bisections performed while isolating erroring rows.
    pub splits: Counter,
    /// CDW statements issued by application.
    pub statements: Counter,
    /// Application statements retried after transient failures.
    pub transient_retries: Counter,
    /// COPY INTO wall time, µs.
    pub copy_us: Histogram,
    /// Whole-application wall time per job, µs.
    pub apply_us: Histogram,
}

/// Export-path handles.
#[derive(Clone)]
pub struct ExportObs {
    /// Export chunks served.
    pub chunks: Counter,
    /// Rows exported.
    pub rows: Counter,
    /// Encoded bytes exported.
    pub bytes: Counter,
}

/// One pipeline stage's CPU/wall accounting (PR 9). `record` adds the
/// wall time unconditionally; CPU time and the sample count accrue only
/// when the thread CPU clock produced a pair, so `cpu_us / samples` stays
/// meaningful on platforms without the clock.
#[derive(Clone)]
pub struct StageProf {
    /// Wall time across sampled executions, µs.
    pub wall_us: Counter,
    /// Thread CPU time across sampled executions, µs.
    pub cpu_us: Counter,
    /// Executions where a CPU sample pair succeeded.
    pub samples: Counter,
}

impl StageProf {
    /// Record one execution: wall always, CPU when sampled.
    #[inline]
    pub fn record(&self, wall: Duration, cpu: Option<Duration>) {
        self.wall_us.add(wall.as_micros() as u64);
        if let Some(cpu) = cpu {
            self.cpu_us.add(cpu.as_micros() as u64);
            self.samples.inc();
        }
    }
}

/// Per-stage CPU/wall profiles (PR 9): the four attributable stages the
/// Profile report breaks down.
#[derive(Clone)]
pub struct ProfileObs {
    /// Chunk conversion (converter workers).
    pub convert: StageProf,
    /// Part upload (writer workers).
    pub upload: StageProf,
    /// COPY INTO (gateway finish path).
    pub copy: StageProf,
    /// Adaptive application (gateway finish path).
    pub apply: StageProf,
}

/// Worker-pool utilization handles (PR 9): saturation timelines for the
/// shared runtime and recycle stats for the buffer freelist.
#[derive(Clone)]
pub struct PoolObs {
    /// Workers executing a chunk right now.
    pub busy_workers: Gauge,
    /// Idle buffers currently in the freelist.
    pub idle_buffers: Gauge,
    /// Buffer takes served from the freelist.
    pub recycle_hits: Counter,
    /// Buffer takes that allocated fresh.
    pub recycle_misses: Counter,
    /// Worker wakeups that scanned every job slot and found no work.
    pub idle_wakeups: Counter,
    /// Round-robin job slots scanned past while finding work.
    pub rr_skips: Counter,
}

/// Fault-injector gauges, copied from the injector at snapshot time.
#[derive(Clone)]
pub struct FaultObs {
    /// All faults fired.
    pub injected_total: Gauge,
    /// Store-put faults fired.
    pub injected_store_put: Gauge,
    /// Store-get faults fired.
    pub injected_store_get: Gauge,
    /// CDW transient faults fired.
    pub injected_cdw_exec: Gauge,
    /// Converter faults fired.
    pub injected_convert: Gauge,
    /// Transport faults fired.
    pub injected_transport: Gauge,
}

/// The node's observability hub: one registry, one journal, and
/// pre-registered handles for every instrumented subsystem.
pub struct Obs {
    /// The metrics registry all handles below are registered in.
    pub registry: MetricsRegistry,
    /// The bounded span/event journal.
    pub journal: Journal,
    /// Gateway handles.
    pub gateway: GatewayObs,
    /// TCP server lifecycle handles.
    pub server: ServerObs,
    /// Reactor front-end handles.
    pub reactor: ReactorObs,
    /// Shared worker-runtime handles.
    pub runtime: RuntimeObs,
    /// Pipeline handles.
    pub pipeline: PipelineObs,
    /// Object-store handles.
    pub store: StoreObs,
    /// CDW handles.
    pub cdw: CdwObs,
    /// Credit-pool handles.
    pub credit: CreditObs,
    /// Memory gauges.
    pub memory: MemoryObs,
    /// Adaptive-application handles.
    pub adaptive: AdaptiveObs,
    /// Export handles.
    pub export: ExportObs,
    /// Fault-injector gauges.
    pub fault: FaultObs,
    /// Per-stage CPU/wall profiles.
    pub profile: ProfileObs,
    /// Worker-pool utilization handles.
    pub pool: PoolObs,
}

impl Obs {
    /// Build a hub: a fresh registry, a journal retaining up to
    /// `journal_capacity` events, and optionally a JSONL sink every event
    /// is appended to.
    pub fn new(journal_capacity: usize, jsonl: Option<&std::path::Path>) -> Obs {
        let registry = MetricsRegistry::new();
        let r = &registry;
        // Pre-register the lock.* aggregates so the sampler and the
        // Prometheus exposition see the families even before any tracked
        // lock is interned.
        r.counter("lock.acquires");
        r.counter("lock.contended");
        r.counter("lock.wait_us");
        let stage = |name: &str| StageProf {
            wall_us: r.counter(&format!("profile.{name}.wall_us")),
            cpu_us: r.counter(&format!("profile.{name}.cpu_us")),
            samples: r.counter(&format!("profile.{name}.samples")),
        };
        Obs {
            gateway: GatewayObs {
                sessions_opened: r.counter("gateway.sessions_opened"),
                sessions_closed: r.counter("gateway.sessions_closed"),
                active_sessions: r.gauge("gateway.active_sessions"),
                active_jobs: r.gauge("gateway.active_jobs"),
                chunks_received: r.counter("gateway.chunks_received"),
                chunk_bytes: r.counter("gateway.chunk_bytes"),
                jobs_started: r.counter("gateway.jobs_started"),
                jobs_completed: r.counter("gateway.jobs_completed"),
                jobs_failed: r.counter("gateway.jobs_failed"),
                jobs_aborted: r.counter("gateway.jobs_aborted"),
                admission_rejections: r.counter("gateway.admission_rejections"),
                chunk_handle_us: r.histogram("gateway.chunk_handle_us"),
            },
            server: ServerObs {
                connections: r.counter("server.connections"),
                accept_errors: r.counter("server.accept_errors"),
                conn_setup_errors: r.counter("server.conn_setup_errors"),
            },
            reactor: ReactorObs {
                conns: r.gauge("reactor.conns"),
                loops: r.gauge("reactor.loops"),
                ready_batch: r.histogram("reactor.ready_batch"),
                loop_iter_us: r.histogram("reactor.loop_iter_us"),
                wakeups: r.counter("reactor.wakeups"),
                dispatches: r.counter("reactor.dispatches"),
                inline_replies: r.counter("reactor.inline_replies"),
                conns_dispatching: r.gauge("reactor.conns_dispatching"),
                conns_writing: r.gauge("reactor.conns_writing"),
                idle_closes: r.counter("reactor.idle_closes"),
                accept_backoffs: r.counter("reactor.accept_backoffs"),
            },
            runtime: RuntimeObs {
                workers: r.gauge("runtime.workers"),
                threads_started: r.counter("runtime.threads_started"),
                queue_depth: r.histogram("runtime.queue_depth"),
            },
            pipeline: PipelineObs {
                convert_chunks: r.counter("pipeline.convert_chunks"),
                convert_rows: r.counter("pipeline.convert_rows"),
                convert_bytes: r.counter("pipeline.convert_bytes"),
                convert_errors: r.counter("pipeline.convert_errors"),
                files_rotated: r.counter("pipeline.files_rotated"),
                upload_parts: r.counter("pipeline.upload_parts"),
                upload_bytes: r.counter("pipeline.upload_bytes"),
                upload_retries: r.counter("pipeline.upload_retries"),
                convert_us: r.histogram("pipeline.convert_us"),
                upload_us: r.histogram("pipeline.upload_us"),
            },
            store: StoreObs {
                put_ops: r.counter("cloudstore.put_ops"),
                put_bytes: r.counter("cloudstore.put_bytes"),
                put_errors: r.counter("cloudstore.put_errors"),
                get_ops: r.counter("cloudstore.get_ops"),
                get_bytes: r.counter("cloudstore.get_bytes"),
                get_errors: r.counter("cloudstore.get_errors"),
                put_us: r.histogram("cloudstore.put_us"),
                get_us: r.histogram("cloudstore.get_us"),
            },
            cdw: CdwObs {
                statements: r.counter("cdw.statements"),
                batches: r.counter("cdw.batches"),
                errors: r.counter("cdw.errors"),
                exec_us: r.histogram("cdw.exec_us"),
                plan_index_seek: r.counter("cdw.plan.index_seek"),
                plan_full_scan: r.counter("cdw.plan.full_scan"),
                index_maintain: r.counter("cdw.index.maintain"),
            },
            credit: CreditObs {
                acquires: r.counter("credit.acquires"),
                stalls: r.counter("credit.stalls"),
                stall_us: r.histogram("credit.stall_us"),
                in_flight: r.gauge("credit.in_flight"),
            },
            memory: MemoryObs {
                in_flight: r.gauge("memory.in_flight"),
                peak: r.gauge("memory.peak"),
            },
            adaptive: AdaptiveObs {
                splits: r.counter("adaptive.splits"),
                statements: r.counter("adaptive.statements"),
                transient_retries: r.counter("adaptive.transient_retries"),
                copy_us: r.histogram("adaptive.copy_us"),
                apply_us: r.histogram("adaptive.apply_us"),
            },
            export: ExportObs {
                chunks: r.counter("export.chunks"),
                rows: r.counter("export.rows"),
                bytes: r.counter("export.bytes"),
            },
            fault: FaultObs {
                injected_total: r.gauge("fault.injected_total"),
                injected_store_put: r.gauge("fault.injected_store_put"),
                injected_store_get: r.gauge("fault.injected_store_get"),
                injected_cdw_exec: r.gauge("fault.injected_cdw_exec"),
                injected_convert: r.gauge("fault.injected_convert"),
                injected_transport: r.gauge("fault.injected_transport"),
            },
            profile: ProfileObs {
                convert: stage("convert"),
                upload: stage("upload"),
                copy: stage("copy"),
                apply: stage("apply"),
            },
            pool: PoolObs {
                busy_workers: r.gauge("pool.busy_workers"),
                idle_buffers: r.gauge("pool.idle_buffers"),
                recycle_hits: r.counter("pool.recycle_hits"),
                recycle_misses: r.counter("pool.recycle_misses"),
                idle_wakeups: r.counter("pool.idle_wakeups"),
                rr_skips: r.counter("pool.rr_skips"),
            },
            journal: Journal::new(journal_capacity, jsonl),
            registry,
        }
    }

    /// Snapshot every registered metric.
    pub fn snapshot(&self) -> RegistrySnapshot {
        self.registry.snapshot()
    }

    /// Intern (or fetch) the per-tenant handle block for `name`.
    pub fn tenant(&self, name: &str) -> std::sync::Arc<TenantObs> {
        self.registry.tenant(name)
    }
}

impl Default for Obs {
    fn default() -> Self {
        Obs::new(4096, None)
    }
}

/// Per-job observation context threaded into the application path
/// ([`crate::apply::apply`]), so adaptive-retry decisions land in the
/// journal with the owning job's token.
pub struct JobObs<'a> {
    /// The node's hub.
    pub obs: &'a Obs,
    /// The owning job's load token.
    pub job: u64,
    /// Causal identity of the application span these events parent to.
    pub ids: SpanIds,
}

impl JobObs<'_> {
    fn emit(&self, kind: &'static str, lo: u64, hi: u64) {
        let ids = self.ids.child(self.obs.journal.next_span_id());
        self.obs
            .journal
            .emit_span(kind, ids, self.job, 0, lo, hi, Duration::ZERO);
    }

    /// Record one bisection decision over rows `[lo, hi)`.
    pub fn split(&self, lo: u64, hi: u64) {
        self.obs.adaptive.splits.inc();
        self.emit("apply.split", lo, hi);
    }

    /// Record a range application attempt that failed with a row error
    /// (the trigger for bisection or singleton isolation).
    pub fn range_error(&self, lo: u64, hi: u64) {
        self.emit("apply.range_error", lo, hi);
    }

    /// Record a transient failure retried during application.
    pub fn transient_retry(&self, lo: u64, hi: u64) {
        self.emit("apply.retry", lo, hi);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_event_json_shape() {
        let e = SpanEvent {
            seq: 3,
            at_micros: 1000,
            kind: "chunk.convert",
            ids: SpanIds {
                trace: 11,
                span: 5,
                parent: 1,
            },
            job: 7,
            session: 2,
            chunk: 41,
            value: 500,
            dur_micros: 120,
        };
        let json = e.to_json();
        assert!(json.contains("\"kind\": \"chunk.convert\""), "{json}");
        assert!(json.contains("\"job\": 7"), "{json}");
        assert!(json.contains("\"trace\": 11"), "{json}");
        assert!(json.contains("\"span\": 5"), "{json}");
        assert!(json.contains("\"parent\": 1"), "{json}");
        assert!(json.contains("\"dur_micros\": 120"), "{json}");
    }

    #[test]
    fn hub_registers_all_subsystems() {
        let obs = Obs::default();
        obs.gateway.chunks_received.add(2);
        obs.pipeline.convert_rows.add(10);
        obs.store.put_ops.inc();
        obs.cdw.statements.inc();
        obs.credit.acquires.inc();
        let snap = obs.snapshot();
        if enabled() {
            let find = |name: &str| {
                snap.counters
                    .iter()
                    .find(|(n, _)| n == name)
                    .unwrap_or_else(|| panic!("missing counter {name}"))
                    .1
            };
            assert_eq!(find("gateway.chunks_received"), 2);
            assert_eq!(find("pipeline.convert_rows"), 10);
            assert_eq!(find("cloudstore.put_ops"), 1);
            assert_eq!(find("cdw.statements"), 1);
            assert_eq!(find("credit.acquires"), 1);
            assert!(snap.histograms.iter().any(|h| h.name == "cdw.exec_us"));
        } else {
            assert!(snap.counters.is_empty());
        }
    }
}
