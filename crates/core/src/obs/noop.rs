//! Zero-size no-op stand-ins for the metrics and journal types, compiled
//! when the `obs` feature is off. Same API as the live versions in
//! `metrics.rs`/`journal.rs`, so instrumentation call sites stay
//! unconditional and the compiler deletes them entirely — this is the
//! "compiled out" baseline `bench_pr3` measures overhead against.

use std::path::Path;
use std::time::Duration;

use super::{HistogramSnapshot, RegistrySnapshot, SpanEvent, SpanIds};

/// No-op counter.
#[derive(Clone, Copy, Default)]
pub struct Counter;

impl Counter {
    /// No-op.
    #[inline(always)]
    pub fn add(&self, _n: u64) {}

    /// No-op.
    #[inline(always)]
    pub fn inc(&self) {}

    /// Always 0.
    pub fn value(&self) -> u64 {
        0
    }
}

/// No-op gauge.
#[derive(Clone, Copy, Default)]
pub struct Gauge;

impl Gauge {
    /// No-op.
    #[inline(always)]
    pub fn set(&self, _v: u64) {}

    /// No-op.
    #[inline(always)]
    pub fn fetch_max(&self, _v: u64) {}

    /// No-op.
    #[inline(always)]
    pub fn add(&self, _n: u64) {}

    /// No-op.
    #[inline(always)]
    pub fn sub(&self, _n: u64) {}

    /// Always 0.
    pub fn value(&self) -> u64 {
        0
    }
}

/// No-op histogram.
#[derive(Clone, Copy, Default)]
pub struct Histogram;

impl Histogram {
    /// No-op.
    #[inline(always)]
    pub fn record(&self, _v: u64) {}

    /// No-op.
    #[inline(always)]
    pub fn record_duration(&self, _d: Duration) {}

    /// Empty snapshot.
    pub fn snapshot(&self, name: &str) -> HistogramSnapshot {
        HistogramSnapshot {
            name: name.to_string(),
            ..Default::default()
        }
    }
}

/// No-op registry: hands out stub handles, snapshots empty.
#[derive(Clone, Copy, Default)]
pub struct MetricsRegistry;

impl MetricsRegistry {
    /// New stub registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry
    }

    /// Stub counter.
    pub fn counter(&self, _name: &str) -> Counter {
        Counter
    }

    /// Stub gauge.
    pub fn gauge(&self, _name: &str) -> Gauge {
        Gauge
    }

    /// Stub histogram.
    pub fn histogram(&self, _name: &str) -> Histogram {
        Histogram
    }

    /// Stub tenant block: fresh ZST handles under the requested name, so
    /// call sites hold and use the block unconditionally. Nothing is
    /// retained — the compiled-out build tracks no tenant state.
    pub fn tenant(&self, name: &str) -> std::sync::Arc<super::TenantObs> {
        std::sync::Arc::new(super::TenantObs {
            id: super::TenantId(0),
            name: name.to_string(),
            jobs_started: Counter,
            jobs_completed: Counter,
            jobs_failed: Counter,
            jobs_aborted: Counter,
            admission_rejections: Counter,
            idle_timeouts: Counter,
            chunks: Counter,
            chunk_bytes: Counter,
            rows_applied: Counter,
            errors_et: Counter,
            errors_uv: Counter,
            retries: Counter,
            slow_jobs: Counter,
            active_jobs: Gauge,
            credit_held: Gauge,
            memory_held: Gauge,
            job_us: Histogram,
            queue_wait_us: Histogram,
            convert_us: Histogram,
            upload_us: Histogram,
            apply_us: Histogram,
        })
    }

    /// No-op.
    pub fn set_tenant_limit(&self, _limit: usize) {}

    /// Always empty.
    pub fn tenant_handles(&self) -> Vec<std::sync::Arc<super::TenantObs>> {
        Vec::new()
    }

    /// Stub lock-site block: ZST handles under the requested name, so the
    /// tracked-lock wrappers construct unconditionally. Nothing is
    /// retained or counted.
    pub fn lock_site(&self, name: &str) -> std::sync::Arc<super::LockSiteObs> {
        std::sync::Arc::new(super::LockSiteObs {
            site: name.to_string(),
            acquires: Counter,
            contended: Counter,
            wait_us: Histogram,
            hold_us: Histogram,
            agg_acquires: Counter,
            agg_contended: Counter,
            agg_wait_us: Counter,
        })
    }

    /// Always empty.
    pub fn lock_site_snapshots(&self) -> Vec<super::LockSiteSnapshot> {
        Vec::new()
    }

    /// Always empty.
    pub fn snapshot(&self) -> RegistrySnapshot {
        RegistrySnapshot::default()
    }
}

/// No-op journal: drops every event.
#[derive(Clone, Copy, Default)]
pub struct Journal;

impl Journal {
    /// Stub journal; `jsonl` is ignored.
    pub fn new(_capacity: usize, _jsonl: Option<&Path>) -> Journal {
        Journal
    }

    /// No-op.
    #[inline(always)]
    pub fn emit(
        &self,
        _kind: &'static str,
        _job: u64,
        _session: u64,
        _chunk: u64,
        _value: u64,
        _dur: Duration,
    ) {
    }

    /// No-op.
    #[inline(always)]
    #[allow(clippy::too_many_arguments)]
    pub fn emit_span(
        &self,
        _kind: &'static str,
        _ids: SpanIds,
        _job: u64,
        _session: u64,
        _chunk: u64,
        _value: u64,
        _dur: Duration,
    ) {
    }

    /// Always 0 — with tracing compiled out there are no span identities.
    #[inline(always)]
    pub fn next_span_id(&self) -> u64 {
        0
    }

    /// Always 0.
    pub fn dropped(&self) -> u64 {
        0
    }

    /// Always empty.
    pub fn events_for_job(&self, _job: u64) -> Vec<SpanEvent> {
        Vec::new()
    }

    /// Always 0.
    pub fn now_micros(&self) -> u64 {
        0
    }

    /// Always empty.
    pub fn tail(&self, _n: usize) -> Vec<SpanEvent> {
        Vec::new()
    }

    /// Always 0.
    pub fn emitted(&self) -> u64 {
        0
    }

    /// Always 0.
    pub fn retained(&self) -> usize {
        0
    }

    /// No-op.
    pub fn flush(&self) {}
}

/// No-op time-series sampler: never spawns a thread, yields an empty
/// (disabled) series document.
#[derive(Clone, Copy, Default)]
pub struct Sampler;

impl Sampler {
    /// Stub sampler; every argument is dropped.
    pub fn start(
        _obs: std::sync::Arc<super::Obs>,
        _refresh: Box<dyn Fn() + Send + Sync>,
        _tick: Duration,
        _capacity: usize,
        _metrics: Vec<String>,
        _tenant_metrics: Vec<String>,
    ) -> Sampler {
        Sampler
    }

    /// A valid-but-disabled series document.
    pub fn series_json(&self) -> String {
        "{\"enabled\": false, \"tick_micros\": 0, \"series\": []}".to_string()
    }

    /// Always 0.
    pub fn points_for(&self, _metric: &str) -> usize {
        0
    }

    /// Always 0.
    pub fn tenant_points_for(&self, _metric: &str, _tenant: &str) -> usize {
        0
    }

    /// No-op.
    pub fn stop(&self) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_handles_are_zero_sized() {
        assert_eq!(std::mem::size_of::<Counter>(), 0);
        assert_eq!(std::mem::size_of::<Gauge>(), 0);
        assert_eq!(std::mem::size_of::<Histogram>(), 0);
        assert_eq!(std::mem::size_of::<MetricsRegistry>(), 0);
        assert_eq!(std::mem::size_of::<Journal>(), 0);
        assert_eq!(std::mem::size_of::<Sampler>(), 0);
    }

    #[test]
    fn noop_lock_sites_record_nothing() {
        let reg = MetricsRegistry::new();
        let site = reg.lock_site("runtime.state");
        site.acquired_uncontended();
        site.acquired_after(Duration::from_micros(50));
        site.held(Duration::from_micros(10));
        let snap = site.snapshot();
        assert_eq!(snap.site, "runtime.state");
        assert_eq!(snap.acquires, 0);
        assert_eq!(snap.contended, 0);
        assert!(reg.lock_site_snapshots().is_empty());
    }

    #[test]
    fn noop_journal_reports_nothing() {
        let j = Journal::new(64, None);
        j.emit("t", 1, 0, 0, 0, Duration::ZERO);
        j.emit_span("t", SpanIds::default(), 1, 0, 0, 0, Duration::ZERO);
        assert_eq!(j.emitted(), 0);
        assert_eq!(j.dropped(), 0);
        assert_eq!(j.next_span_id(), 0);
        assert!(j.events_for_job(1).is_empty());
    }
}
