//! Always-on continuous profiling (PR 9): per-stage CPU vs wall
//! accounting, instrumented lock primitives, and the collapsed-stack
//! ("folded") flamegraph behind the `Profile` wire request.
//!
//! Three data sources feed one report:
//!
//! 1. **Thread CPU clocks** — [`CpuTimer`] samples the calling thread's
//!    CPU clock (`CLOCK_THREAD_CPUTIME_ID` on Linux) at span boundaries,
//!    so each pipeline stage accumulates wall *and* CPU microseconds. A
//!    stage whose CPU ≪ wall is blocked (lock, I/O, sleep); CPU ≈ wall
//!    means compute-bound. Platforms without the clock degrade to
//!    wall-only (samples stay 0, nothing breaks).
//! 2. **Tracked locks** — [`TrackedMutex`]/[`TrackedRwLock`]/
//!    [`TrackedCondvar`] wrap the parking_lot primitives with a static
//!    site name, counting acquisitions, contended acquisitions (the fast
//!    `try_lock` missed), wait-time and hold-time histograms. With `obs`
//!    compiled out every probe folds to nothing at compile time — the
//!    wrappers still lock, they just never look at the clock.
//! 3. **The span journal** — completed jobs' critical-path attribution
//!    (PR 4, [`crate::trace::JobTrace`]) is re-aggregated into folded
//!    flamegraph lines (`job;acquisition;convert 1234`), the input format
//!    of every flamegraph renderer, plus the ASCII flame tree
//!    `obs_dump --profile` prints.
//!
//! This module is compiled regardless of the `obs` feature: the handle
//! types it stores are the feature-aliased ones from [`crate::obs`], so a
//! `--no-default-features` build collapses the instrumentation to ZSTs
//! while the lock wrappers keep locking.

use std::ops::{Deref, DerefMut};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard};

use super::{Counter, Histogram, HistogramSnapshot, Obs, SpanEvent};
use crate::trace::JobTrace;

// --------------------------------------------------------------- CPU clock

/// Current thread's consumed CPU time, if the platform exposes a
/// per-thread CPU clock. Linux: `clock_gettime(CLOCK_THREAD_CPUTIME_ID)`
/// via a direct libc call (the workspace carries no libc crate; the
/// symbol is in every glibc/musl the toolchain links anyway). Elsewhere:
/// `None`, and stage profiles stay wall-only.
#[cfg(target_os = "linux")]
pub fn thread_cpu_time() -> Option<Duration> {
    #[repr(C)]
    struct Timespec {
        tv_sec: i64,
        tv_nsec: i64,
    }
    extern "C" {
        fn clock_gettime(clockid: i32, tp: *mut Timespec) -> i32;
    }
    const CLOCK_THREAD_CPUTIME_ID: i32 = 3;
    let mut ts = Timespec {
        tv_sec: 0,
        tv_nsec: 0,
    };
    let rc = unsafe { clock_gettime(CLOCK_THREAD_CPUTIME_ID, &mut ts) };
    if rc == 0 {
        Some(Duration::new(ts.tv_sec.max(0) as u64, ts.tv_nsec as u32))
    } else {
        None
    }
}

/// Non-Linux fallback: no per-thread CPU clock, stage profiles stay
/// wall-only.
#[cfg(not(target_os = "linux"))]
pub fn thread_cpu_time() -> Option<Duration> {
    None
}

/// A started CPU-time measurement on the current thread. `start` samples
/// the thread CPU clock (or nothing with `obs` compiled out / clock
/// unavailable); `elapsed` yields the CPU consumed since, `None` when
/// either sample failed. Must be read on the thread that started it.
pub struct CpuTimer(Option<Duration>);

impl CpuTimer {
    /// Sample the thread CPU clock now. With `obs` compiled out this is a
    /// constant `None` and the optimizer deletes the whole measurement.
    #[inline]
    pub fn start() -> CpuTimer {
        if super::enabled() {
            CpuTimer(thread_cpu_time())
        } else {
            CpuTimer(None)
        }
    }

    /// CPU time consumed by this thread since `start`.
    #[inline]
    pub fn elapsed(&self) -> Option<Duration> {
        let started = self.0?;
        thread_cpu_time().map(|now| now.saturating_sub(started))
    }
}

// ----------------------------------------------------------- lock sites

/// Per-site lock statistics: one block per static site name, interned in
/// the registry like tenants (bounded cardinality). Wait time is how long
/// a contended acquire blocked; hold time is how long the guard lived.
/// Every record also bumps the registry-level `lock.*` aggregates so the
/// sampler can follow total contention as one rate series.
pub struct LockSiteObs {
    /// The static site name, e.g. `"runtime.state"` or `"cdw.table/T1"`.
    pub site: String,
    /// Total acquisitions (contended + uncontended).
    pub acquires: Counter,
    /// Acquisitions that missed the fast path and had to block.
    pub contended: Counter,
    /// Blocked time per contended acquire, µs.
    pub wait_us: Histogram,
    /// Guard lifetime per acquisition, µs.
    pub hold_us: Histogram,
    /// Registry-wide aggregate clones (`lock.acquires`, `lock.contended`,
    /// `lock.wait_us`) bumped alongside the per-site handles.
    pub(crate) agg_acquires: Counter,
    pub(crate) agg_contended: Counter,
    pub(crate) agg_wait_us: Counter,
}

impl LockSiteObs {
    /// Record an acquisition that took the fast path.
    #[inline]
    pub fn acquired_uncontended(&self) {
        self.acquires.inc();
        self.agg_acquires.inc();
    }

    /// Record an acquisition that blocked for `wait`.
    #[inline]
    pub fn acquired_after(&self, wait: Duration) {
        let us = wait.as_micros() as u64;
        self.acquires.inc();
        self.agg_acquires.inc();
        self.contended.inc();
        self.agg_contended.inc();
        self.wait_us.record(us);
        self.agg_wait_us.add(us);
    }

    /// Record how long a guard was held.
    #[inline]
    pub fn held(&self, dur: Duration) {
        self.hold_us.record_duration(dur);
    }

    /// Point-in-time view of this site.
    pub fn snapshot(&self) -> LockSiteSnapshot {
        LockSiteSnapshot {
            site: self.site.clone(),
            acquires: self.acquires.value(),
            contended: self.contended.value(),
            wait_us: self.wait_us.snapshot("wait_us"),
            hold_us: self.hold_us.snapshot("hold_us"),
        }
    }
}

/// Point-in-time view of one lock site.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LockSiteSnapshot {
    /// Site name.
    pub site: String,
    /// Total acquisitions.
    pub acquires: u64,
    /// Contended acquisitions.
    pub contended: u64,
    /// Blocked-time histogram, µs.
    pub wait_us: HistogramSnapshot,
    /// Hold-time histogram, µs.
    pub hold_us: HistogramSnapshot,
}

impl LockSiteSnapshot {
    /// One JSON object (embedded in Stats and Profile documents).
    pub fn to_json(&self) -> String {
        let h = |h: &HistogramSnapshot| {
            format!(
                "{{\"count\": {}, \"sum\": {}, \"max\": {}, \"p50\": {}, \"p95\": {}, \"p99\": {}}}",
                h.count, h.sum, h.max, h.p50, h.p95, h.p99
            )
        };
        format!(
            "{{\"site\": \"{}\", \"acquires\": {}, \"contended\": {}, \
             \"wait_us\": {}, \"hold_us\": {}}}",
            super::render::json_escape(&self.site),
            self.acquires,
            self.contended,
            h(&self.wait_us),
            h(&self.hold_us),
        )
    }
}

// --------------------------------------------------------- tracked locks

/// A `parking_lot::Mutex` that reports to a [`LockSiteObs`]. The fast
/// path is one `try_lock`; only a miss looks at the clock. With `obs`
/// compiled out the wrapper locks without ever reading time.
pub struct TrackedMutex<T> {
    inner: Mutex<T>,
    site: Arc<LockSiteObs>,
}

impl<T> TrackedMutex<T> {
    /// Wrap `value` under the given site.
    pub fn new(site: Arc<LockSiteObs>, value: T) -> TrackedMutex<T> {
        TrackedMutex {
            inner: Mutex::new(value),
            site,
        }
    }

    /// Acquire, recording contention and (on drop) hold time.
    pub fn lock(&self) -> TrackedMutexGuard<'_, T> {
        if !super::enabled() {
            return TrackedMutexGuard {
                guard: self.inner.lock(),
                site: &self.site,
                held_from: None,
            };
        }
        let guard = match self.inner.try_lock() {
            Some(guard) => {
                self.site.acquired_uncontended();
                guard
            }
            None => {
                let blocked = Instant::now();
                let guard = self.inner.lock();
                self.site.acquired_after(blocked.elapsed());
                guard
            }
        };
        TrackedMutexGuard {
            guard,
            site: &self.site,
            held_from: Some(Instant::now()),
        }
    }

    /// The site this lock reports to.
    pub fn site(&self) -> &Arc<LockSiteObs> {
        &self.site
    }
}

/// Guard for [`TrackedMutex`]; records hold time on drop.
pub struct TrackedMutexGuard<'a, T> {
    guard: MutexGuard<'a, T>,
    site: &'a Arc<LockSiteObs>,
    held_from: Option<Instant>,
}

impl<T> Deref for TrackedMutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T> DerefMut for TrackedMutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.guard
    }
}

impl<T> Drop for TrackedMutexGuard<'_, T> {
    fn drop(&mut self) {
        if let Some(held) = self.held_from {
            self.site.held(held.elapsed());
        }
    }
}

/// A `parking_lot::Condvar` that reports wait time to a [`LockSiteObs`].
/// The guard's hold timer pauses across the wait, so `hold_us` measures
/// time actually holding the lock, not time asleep on the condvar.
pub struct TrackedCondvar {
    inner: Condvar,
    site: Arc<LockSiteObs>,
}

impl TrackedCondvar {
    /// New condvar reporting under `site`.
    pub fn new(site: Arc<LockSiteObs>) -> TrackedCondvar {
        TrackedCondvar {
            inner: Condvar::new(),
            site,
        }
    }

    /// Block until notified. Records the sleep as a contended acquire of
    /// the site (wait histogram + contended counter).
    pub fn wait<T>(&self, guard: &mut TrackedMutexGuard<'_, T>) {
        if !super::enabled() {
            self.inner.wait(&mut guard.guard);
            return;
        }
        if let Some(held) = guard.held_from.take() {
            guard.site.held(held.elapsed());
        }
        let slept = Instant::now();
        self.inner.wait(&mut guard.guard);
        self.site.acquired_after(slept.elapsed());
        guard.held_from = Some(Instant::now());
    }

    /// Wake one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wake every waiter.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }

    /// The site this condvar reports to.
    pub fn site(&self) -> &Arc<LockSiteObs> {
        &self.site
    }
}

/// A `parking_lot::RwLock` that reports to a [`LockSiteObs`]. Reader and
/// writer acquisitions share the site's counters and histograms — the
/// contended counter fires whenever the fast `try_` path misses.
pub struct TrackedRwLock<T> {
    inner: RwLock<T>,
    site: Arc<LockSiteObs>,
}

impl<T> TrackedRwLock<T> {
    /// Wrap `value` under the given site.
    pub fn new(site: Arc<LockSiteObs>, value: T) -> TrackedRwLock<T> {
        TrackedRwLock {
            inner: RwLock::new(value),
            site,
        }
    }

    /// Shared acquire.
    pub fn read(&self) -> TrackedReadGuard<'_, T> {
        if !super::enabled() {
            return TrackedReadGuard {
                guard: self.inner.read(),
                site: &self.site,
                held_from: None,
            };
        }
        let guard = match self.inner.try_read() {
            Some(guard) => {
                self.site.acquired_uncontended();
                guard
            }
            None => {
                let blocked = Instant::now();
                let guard = self.inner.read();
                self.site.acquired_after(blocked.elapsed());
                guard
            }
        };
        TrackedReadGuard {
            guard,
            site: &self.site,
            held_from: Some(Instant::now()),
        }
    }

    /// Exclusive acquire.
    pub fn write(&self) -> TrackedWriteGuard<'_, T> {
        if !super::enabled() {
            return TrackedWriteGuard {
                guard: self.inner.write(),
                site: &self.site,
                held_from: None,
            };
        }
        let guard = match self.inner.try_write() {
            Some(guard) => {
                self.site.acquired_uncontended();
                guard
            }
            None => {
                let blocked = Instant::now();
                let guard = self.inner.write();
                self.site.acquired_after(blocked.elapsed());
                guard
            }
        };
        TrackedWriteGuard {
            guard,
            site: &self.site,
            held_from: Some(Instant::now()),
        }
    }

    /// The site this lock reports to.
    pub fn site(&self) -> &Arc<LockSiteObs> {
        &self.site
    }
}

/// Shared guard for [`TrackedRwLock`]; records hold time on drop.
pub struct TrackedReadGuard<'a, T> {
    guard: RwLockReadGuard<'a, T>,
    site: &'a Arc<LockSiteObs>,
    held_from: Option<Instant>,
}

impl<T> Deref for TrackedReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T> Drop for TrackedReadGuard<'_, T> {
    fn drop(&mut self) {
        if let Some(held) = self.held_from {
            self.site.held(held.elapsed());
        }
    }
}

/// Exclusive guard for [`TrackedRwLock`]; records hold time on drop.
pub struct TrackedWriteGuard<'a, T> {
    guard: RwLockWriteGuard<'a, T>,
    site: &'a Arc<LockSiteObs>,
    held_from: Option<Instant>,
}

impl<T> Deref for TrackedWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T> DerefMut for TrackedWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.guard
    }
}

impl<T> Drop for TrackedWriteGuard<'_, T> {
    fn drop(&mut self) {
        if let Some(held) = self.held_from {
            self.site.held(held.elapsed());
        }
    }
}

// ------------------------------------------------------- folded flamegraph

/// Map a PR 4 attribution stage to its folded-stack path. The hierarchy
/// mirrors the job phases: acquisition (ack wait, queue, convert, upload,
/// COPY) and application (apply), with unattributed time under
/// `job;other`. Leaf values are the attribution values verbatim, so
/// folded per-stage totals reconcile exactly with `JobTrace`.
fn folded_path(stage: &str) -> &'static str {
    match stage {
        "ack_wait" => "job;acquisition;ack_wait",
        "queue_wait" => "job;acquisition;queue_wait",
        "convert" => "job;acquisition;convert",
        "upload" => "job;acquisition;upload",
        "copy" => "job;acquisition;copy",
        "apply" => "job;application;apply",
        _ => "job;other",
    }
}

/// Aggregate the journal's retained events into collapsed-stack
/// ("folded") flamegraph text: one `path value` line per stack, the
/// input format of standard flamegraph tooling. Returns the text plus
/// how many jobs contributed (jobs whose `job.begin` survives in the
/// ring). Values are microseconds of attributed wall time.
pub fn folded_flamegraph(events: &[SpanEvent]) -> (String, u64) {
    use std::collections::BTreeMap;
    let mut by_job: BTreeMap<u64, Vec<SpanEvent>> = BTreeMap::new();
    for ev in events {
        if ev.job != 0 {
            by_job.entry(ev.job).or_default().push(*ev);
        }
    }
    let mut totals: BTreeMap<&'static str, u64> = BTreeMap::new();
    let mut jobs = 0u64;
    for evs in by_job.values() {
        let Some(trace) = JobTrace::assemble(evs) else {
            continue;
        };
        jobs += 1;
        for (stage, micros) in &trace.attribution {
            if *micros > 0 {
                *totals.entry(folded_path(stage)).or_default() += micros;
            }
        }
    }
    let mut out = String::new();
    for (path, micros) in &totals {
        out.push_str(&format!("{path} {micros}\n"));
    }
    (out, jobs)
}

/// Render folded-stack text as an ASCII flame tree: one row per frame,
/// indented by depth, with each frame's inclusive share of the root and
/// a proportional bar. Input lines that fail to parse are skipped.
pub fn render_flame_ascii(folded: &str) -> String {
    use std::collections::BTreeMap;

    #[derive(Default)]
    struct Node {
        own: u64,
        children: BTreeMap<String, Node>,
    }
    impl Node {
        fn total(&self) -> u64 {
            self.own + self.children.values().map(Node::total).sum::<u64>()
        }
    }

    let mut root = Node::default();
    for line in folded.lines() {
        let Some((path, value)) = line.rsplit_once(' ') else {
            continue;
        };
        let Ok(value) = value.parse::<u64>() else {
            continue;
        };
        let mut node = &mut root;
        for frame in path.split(';') {
            node = node.children.entry(frame.to_string()).or_default();
        }
        node.own += value;
    }

    let grand = root.total();
    if grand == 0 {
        return "flame: (empty — no completed jobs in the journal)\n".to_string();
    }
    fn push(out: &mut String, name: &str, node: &Node, depth: usize, grand: u64) {
        let total = node.total();
        let pct = total as f64 * 100.0 / grand as f64;
        let bar_len = ((total as f64 / grand as f64) * 32.0).round() as usize;
        out.push_str(&format!(
            "{:indent$}{name:<width$} {total:>10}us {pct:>5.1}% |{bar}\n",
            "",
            indent = depth * 2,
            width = 24usize.saturating_sub(depth * 2),
            bar = "#".repeat(bar_len.max(if total > 0 { 1 } else { 0 })),
        ));
        for (child_name, child) in &node.children {
            push(out, child_name, child, depth + 1, grand);
        }
    }
    let mut out = format!("flame: {grand}us total\n");
    for (name, node) in &root.children {
        push(&mut out, name, node, 0, grand);
    }
    out
}

// ----------------------------------------------------------- the report

/// One stage's CPU/wall accounting in a [`ProfileReport`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StageCpuProfile {
    /// Stage name (`convert`/`upload`/`copy`/`apply`).
    pub stage: &'static str,
    /// Wall time accumulated across all sampled executions, µs.
    pub wall_us: u64,
    /// Thread CPU time accumulated across all sampled executions, µs.
    pub cpu_us: u64,
    /// Executions where a CPU sample pair succeeded.
    pub samples: u64,
}

/// Worker-pool utilization in a [`ProfileReport`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PoolProfile {
    /// Worker threads the runtime is sized to.
    pub workers: u64,
    /// Workers executing a chunk right now.
    pub busy_workers: u64,
    /// Idle buffers in the freelist.
    pub idle_buffers: u64,
    /// Buffer takes served from the freelist.
    pub recycle_hits: u64,
    /// Buffer takes that allocated fresh.
    pub recycle_misses: u64,
    /// Worker wakeups that found no work.
    pub idle_wakeups: u64,
    /// Round-robin job slots scanned past while finding work.
    pub rr_skips: u64,
}

/// How many contended lock sites the Profile reply ranks.
pub const PROFILE_TOP_K: usize = 16;

/// The full profiling view behind `Virtualizer::profile()` and the
/// `Profile` wire request: per-stage CPU/wall, top-K contended lock
/// sites (ranked by total wait, contended-only), pool utilization, and
/// the folded flamegraph.
#[derive(Debug, Clone, Default)]
pub struct ProfileReport {
    /// Whether the `obs` feature is compiled in.
    pub enabled: bool,
    /// Per-stage CPU/wall accounting.
    pub stages: Vec<StageCpuProfile>,
    /// Top-K lock sites with at least one contended acquire, ranked by
    /// total blocked time descending. Uncontended sites never rank — a
    /// cold system reports an empty list.
    pub locks: Vec<LockSiteSnapshot>,
    /// Worker-pool utilization counters.
    pub pool: PoolProfile,
    /// Jobs whose traces contributed to the folded flamegraph.
    pub folded_jobs: u64,
    /// Collapsed-stack flamegraph text (`path value` lines, µs).
    pub folded: String,
}

impl ProfileReport {
    /// Collect the report from a node's hub: stage counters, the
    /// registry's interned lock sites, pool gauges, and the journal.
    pub fn collect(obs: &Obs) -> ProfileReport {
        let stage = |name: &'static str, p: &super::StageProf| StageCpuProfile {
            stage: name,
            wall_us: p.wall_us.value(),
            cpu_us: p.cpu_us.value(),
            samples: p.samples.value(),
        };
        let stages = vec![
            stage("convert", &obs.profile.convert),
            stage("upload", &obs.profile.upload),
            stage("copy", &obs.profile.copy),
            stage("apply", &obs.profile.apply),
        ];
        let mut locks: Vec<LockSiteSnapshot> = obs
            .registry
            .lock_site_snapshots()
            .into_iter()
            .filter(|s| s.contended > 0)
            .collect();
        locks.sort_by(|a, b| {
            b.wait_us
                .sum
                .cmp(&a.wait_us.sum)
                .then_with(|| a.site.cmp(&b.site))
        });
        locks.truncate(PROFILE_TOP_K);
        let pool = PoolProfile {
            workers: obs.runtime.workers.value(),
            busy_workers: obs.pool.busy_workers.value(),
            idle_buffers: obs.pool.idle_buffers.value(),
            recycle_hits: obs.pool.recycle_hits.value(),
            recycle_misses: obs.pool.recycle_misses.value(),
            idle_wakeups: obs.pool.idle_wakeups.value(),
            rr_skips: obs.pool.rr_skips.value(),
        };
        let (folded, folded_jobs) = folded_flamegraph(&obs.journal.tail(obs.journal.retained()));
        ProfileReport {
            enabled: super::enabled(),
            stages,
            locks,
            pool,
            folded_jobs,
            folded,
        }
    }

    /// The report as one JSON document (the `Profile` wire reply body in
    /// JSON format).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(2048);
        out.push_str("{\n");
        out.push_str(&format!("  \"enabled\": {},\n", self.enabled));
        out.push_str("  \"stages\": [");
        for (i, s) in self.stages.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            out.push_str(&format!(
                "    {{\"stage\": \"{}\", \"wall_us\": {}, \"cpu_us\": {}, \"samples\": {}}}",
                s.stage, s.wall_us, s.cpu_us, s.samples
            ));
        }
        out.push_str("\n  ],\n");
        out.push_str("  \"locks\": [");
        for (i, l) in self.locks.iter().enumerate() {
            out.push_str(if i == 0 { "\n    " } else { ",\n    " });
            out.push_str(&l.to_json());
        }
        out.push_str("\n  ],\n");
        out.push_str(&format!(
            "  \"pool\": {{\"workers\": {}, \"busy_workers\": {}, \"idle_buffers\": {}, \
             \"recycle_hits\": {}, \"recycle_misses\": {}, \"idle_wakeups\": {}, \
             \"rr_skips\": {}}},\n",
            self.pool.workers,
            self.pool.busy_workers,
            self.pool.idle_buffers,
            self.pool.recycle_hits,
            self.pool.recycle_misses,
            self.pool.idle_wakeups,
            self.pool.rr_skips,
        ));
        out.push_str(&format!("  \"folded_jobs\": {},\n", self.folded_jobs));
        out.push_str(&format!(
            "  \"folded\": \"{}\"\n",
            super::render::json_escape(&self.folded)
        ));
        out.push_str("}\n");
        out
    }

    /// Human-readable rendering: stage table, contended-site table, pool
    /// line, and the ASCII flame tree.
    pub fn render_ascii(&self) -> String {
        let mut out = String::with_capacity(2048);
        out.push_str(&format!("profile (enabled: {})\n\n", self.enabled));
        out.push_str("stage      wall_us      cpu_us  samples  cpu/wall\n");
        for s in &self.stages {
            let ratio = if s.wall_us > 0 {
                s.cpu_us as f64 / s.wall_us as f64
            } else {
                0.0
            };
            out.push_str(&format!(
                "{:<9} {:>9} {:>11} {:>8}  {ratio:>7.2}\n",
                s.stage, s.wall_us, s.cpu_us, s.samples
            ));
        }
        out.push('\n');
        if self.locks.is_empty() {
            out.push_str("lock contention: none observed\n");
        } else {
            out.push_str("contended lock sites (by total wait):\n");
            out.push_str("site                          acquires  contended   wait_us(sum/p99)   hold_us(p99)\n");
            for l in &self.locks {
                out.push_str(&format!(
                    "{:<29} {:>8} {:>10}  {:>9}/{:<9} {:>8}\n",
                    l.site, l.acquires, l.contended, l.wait_us.sum, l.wait_us.p99, l.hold_us.p99
                ));
            }
        }
        out.push_str(&format!(
            "\npool: {}/{} busy, {} idle buffers, recycle {}/{} hit/miss, \
             {} idle wakeups, {} rr skips\n\n",
            self.pool.busy_workers,
            self.pool.workers,
            self.pool.idle_buffers,
            self.pool.recycle_hits,
            self.pool.recycle_misses,
            self.pool.idle_wakeups,
            self.pool.rr_skips,
        ));
        out.push_str(&format!(
            "folded stacks from {} job(s):\n",
            self.folded_jobs
        ));
        out.push_str(&render_flame_ascii(&self.folded));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::super::SpanIds;
    use super::*;

    fn site(registry: &super::super::MetricsRegistry, name: &str) -> Arc<LockSiteObs> {
        registry.lock_site(name)
    }

    #[test]
    fn tracked_mutex_counts_uncontended_acquires() {
        let reg = super::super::MetricsRegistry::new();
        let m = TrackedMutex::new(site(&reg, "test.m"), 7u64);
        {
            let mut guard = m.lock();
            *guard += 1;
        }
        assert_eq!(*m.lock(), 8);
        if super::super::enabled() {
            let snap = m.site().snapshot();
            assert_eq!(snap.acquires, 2);
            assert_eq!(snap.contended, 0);
            assert_eq!(snap.hold_us.count, 2, "hold recorded on both drops");
        }
    }

    #[test]
    fn tracked_mutex_detects_contention() {
        if !super::super::enabled() {
            return;
        }
        let reg = super::super::MetricsRegistry::new();
        let m = Arc::new(TrackedMutex::new(site(&reg, "test.contended"), 0u64));
        let m2 = Arc::clone(&m);
        let guard = m.lock();
        let t = std::thread::spawn(move || {
            let mut g = m2.lock();
            *g += 1;
        });
        std::thread::sleep(Duration::from_millis(20));
        drop(guard);
        t.join().unwrap();
        let snap = m.site().snapshot();
        assert_eq!(snap.acquires, 2);
        assert_eq!(snap.contended, 1, "second acquire blocked");
        assert!(
            snap.wait_us.sum >= 10_000,
            "blocked ≥ 10ms, saw {}us",
            snap.wait_us.sum
        );
    }

    #[test]
    fn tracked_rwlock_reads_and_writes() {
        let reg = super::super::MetricsRegistry::new();
        let l = TrackedRwLock::new(site(&reg, "test.rw"), vec![1, 2, 3]);
        assert_eq!(l.read().len(), 3);
        l.write().push(4);
        assert_eq!(l.read().len(), 4);
        if super::super::enabled() {
            assert_eq!(l.site().snapshot().acquires, 3);
        }
    }

    #[test]
    fn tracked_condvar_records_wait_and_pauses_hold() {
        if !super::super::enabled() {
            return;
        }
        let reg = super::super::MetricsRegistry::new();
        let m = Arc::new(TrackedMutex::new(site(&reg, "test.cv.lock"), false));
        let cv = Arc::new(TrackedCondvar::new(site(&reg, "test.cv")));
        let (m2, cv2) = (Arc::clone(&m), Arc::clone(&cv));
        let waiter = std::thread::spawn(move || {
            let mut guard = m2.lock();
            while !*guard {
                cv2.wait(&mut guard);
            }
        });
        std::thread::sleep(Duration::from_millis(20));
        *m.lock() = true;
        cv.notify_all();
        waiter.join().unwrap();
        let cv_snap = cv.site().snapshot();
        assert!(cv_snap.contended >= 1, "condvar wait recorded");
        assert!(cv_snap.wait_us.sum >= 5_000, "slept ≥ 5ms");
        // The waiter held the lock across a 20ms sleep, but hold time
        // pauses during the wait — p99 hold must be far below the sleep.
        let lock_snap = m.site().snapshot();
        assert!(
            lock_snap.hold_us.max < 15_000,
            "hold timer paused during wait, saw {}us",
            lock_snap.hold_us.max
        );
    }

    fn ev(kind: &'static str, span: u64, parent: u64, at: u64, dur: u64, job: u64) -> SpanEvent {
        SpanEvent {
            seq: span,
            at_micros: at,
            kind,
            ids: SpanIds {
                trace: 1,
                span,
                parent,
            },
            job,
            session: 0,
            chunk: 0,
            value: 0,
            dur_micros: dur,
        }
    }

    #[test]
    fn folded_flamegraph_reconciles_with_trace_attribution() {
        // job.begin at 0; convert completes at 400 (dur 300); apply
        // completes at 1000 (dur 500); job.end wall 1000.
        let events = vec![
            ev("job.begin", 1, 0, 0, 0, 9),
            ev("chunk.convert", 2, 1, 400, 300, 9),
            ev("apply", 3, 1, 1000, 500, 9),
            ev("job.end", 1, 0, 1000, 1000, 9),
        ];
        let (folded, jobs) = folded_flamegraph(&events);
        assert_eq!(jobs, 1);
        assert!(folded.contains("job;acquisition;convert 300"), "{folded}");
        assert!(folded.contains("job;application;apply 500"), "{folded}");
        assert!(folded.contains("job;other 200"), "{folded}");
        // Folded totals partition the wall exactly, like the trace.
        let trace = JobTrace::assemble(&events).unwrap();
        let folded_total: u64 = folded
            .lines()
            .filter_map(|l| l.rsplit_once(' '))
            .filter_map(|(_, v)| v.parse::<u64>().ok())
            .sum();
        assert_eq!(folded_total, trace.wall_micros);
    }

    #[test]
    fn folded_flamegraph_skips_jobs_without_begin() {
        let events = vec![ev("chunk.convert", 2, 1, 400, 300, 9)];
        let (folded, jobs) = folded_flamegraph(&events);
        assert_eq!(jobs, 0);
        assert!(folded.is_empty());
    }

    #[test]
    fn flame_ascii_renders_tree() {
        let folded = "job;acquisition;convert 300\njob;application;apply 500\njob;other 200\n";
        let art = render_flame_ascii(folded);
        assert!(art.contains("flame: 1000us total"), "{art}");
        assert!(art.contains("job"), "{art}");
        assert!(art.contains("acquisition"), "{art}");
        assert!(art.contains("convert"), "{art}");
        assert!(art.contains("100.0%"), "{art}");
        let empty = render_flame_ascii("");
        assert!(empty.contains("empty"), "{empty}");
    }

    #[test]
    fn cpu_timer_is_monotone_or_absent() {
        let timer = CpuTimer::start();
        // Burn a little CPU so a working clock shows progress.
        let mut acc = 0u64;
        for i in 0..200_000u64 {
            acc = acc.wrapping_add(i * i);
        }
        std::hint::black_box(acc);
        match timer.elapsed() {
            Some(cpu) => assert!(cpu >= Duration::ZERO),
            None => assert!(
                !super::super::enabled() || !cfg!(target_os = "linux"),
                "linux obs build must expose the thread CPU clock"
            ),
        }
    }

    #[test]
    fn profile_report_json_shape() {
        let report = ProfileReport {
            enabled: true,
            stages: vec![StageCpuProfile {
                stage: "convert",
                wall_us: 100,
                cpu_us: 80,
                samples: 4,
            }],
            locks: vec![LockSiteSnapshot {
                site: "cdw.table/\"T\"".into(),
                acquires: 10,
                contended: 3,
                ..Default::default()
            }],
            pool: PoolProfile {
                workers: 4,
                busy_workers: 2,
                ..Default::default()
            },
            folded_jobs: 1,
            folded: "job;other 5\n".into(),
        };
        let json = report.to_json();
        for needle in [
            "\"enabled\": true",
            "\"stage\": \"convert\"",
            "\"wall_us\": 100",
            "\"cpu_us\": 80",
            "\"site\": \"cdw.table/\\\"T\\\"\"",
            "\"contended\": 3",
            "\"pool\": {\"workers\": 4, \"busy_workers\": 2",
            "\"folded_jobs\": 1",
            "\"folded\": \"job;other 5\\n\"",
        ] {
            assert!(json.contains(needle), "missing {needle} in:\n{json}");
        }
        let ascii = report.render_ascii();
        assert!(ascii.contains("convert"), "{ascii}");
        assert!(ascii.contains("cdw.table/\"T\""), "{ascii}");
        assert!(ascii.contains("flame:"), "{ascii}");
    }
}
