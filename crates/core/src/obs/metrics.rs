//! The live metrics registry: sharded counters, gauges, and log-linear
//! histograms. Compiled only with the `obs` feature; `noop.rs` supplies
//! the same API as zero-size stubs otherwise.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;

use super::{
    HistogramSnapshot, LockSiteObs, LockSiteSnapshot, RegistrySnapshot, TenantId, TenantObs,
    TenantSnapshot,
};

/// Default cap on distinct tenant label values (see
/// [`MetricsRegistry::set_tenant_limit`]).
const DEFAULT_TENANT_LIMIT: usize = 64;

/// Cap on distinct lock-site labels. Sites are static names plus a
/// bounded per-table family (`cdw.table/<name>`), so the bound exists
/// only to stop a hostile DDL stream from growing the registry; overflow
/// sites share the `~overflow` block like tenants do.
const LOCK_SITE_LIMIT: usize = 256;

/// The catch-all lock-site name once [`LOCK_SITE_LIMIT`] is reached.
const LOCK_SITE_OVERFLOW: &str = "~overflow";

/// Shards per counter. Converter pools top out well below this on the
/// testbed; more shards only pad the (cheap) snapshot merge.
const SHARDS: usize = 16;

/// One cache line per shard so two workers bumping the same counter never
/// write the same line.
#[repr(align(64))]
#[derive(Default)]
struct PaddedCell(AtomicU64);

static NEXT_THREAD_SHARD: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// Each thread gets a sticky shard index assigned round-robin on
    /// first use, spreading steady-state workers evenly.
    static THREAD_SHARD: usize =
        NEXT_THREAD_SHARD.fetch_add(1, Ordering::Relaxed) % SHARDS;
}

fn thread_shard() -> usize {
    THREAD_SHARD.with(|s| *s)
}

/// A monotonically increasing counter, sharded per thread. `add` is one
/// relaxed `fetch_add` on a thread-private cache line; `value` merges the
/// shards.
#[derive(Clone)]
pub struct Counter {
    shards: Arc<[PaddedCell; SHARDS]>,
}

impl Counter {
    fn new() -> Counter {
        Counter {
            shards: Arc::new(std::array::from_fn(|_| PaddedCell::default())),
        }
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.shards[thread_shard()]
            .0
            .fetch_add(n, Ordering::Relaxed);
    }

    /// Add 1.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Merged value across shards.
    pub fn value(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.0.load(Ordering::Relaxed))
            .sum()
    }
}

/// A last-writer-wins gauge.
#[derive(Clone)]
pub struct Gauge {
    cell: Arc<AtomicU64>,
}

impl Gauge {
    fn new() -> Gauge {
        Gauge {
            cell: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Set the current value.
    #[inline]
    pub fn set(&self, v: u64) {
        self.cell.store(v, Ordering::Relaxed);
    }

    /// Raise the value to at least `v`.
    #[inline]
    pub fn fetch_max(&self, v: u64) {
        self.cell.fetch_max(v, Ordering::Relaxed);
    }

    /// Add `n` — for up/down gauges (resources currently held).
    #[inline]
    pub fn add(&self, n: u64) {
        self.cell.fetch_add(n, Ordering::Relaxed);
    }

    /// Subtract `n`, saturating at zero so a release racing a snapshot
    /// can never wrap the gauge to u64::MAX.
    #[inline]
    pub fn sub(&self, n: u64) {
        let _ = self
            .cell
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                Some(v.saturating_sub(n))
            });
    }

    /// Current value.
    pub fn value(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// Log-linear bucket layout: values 0–3 get exact buckets; above that,
/// each power of two is split into 4 linear sub-buckets (≤ 12.5% relative
/// width). The full u64 range needs `(63 - 1) * 4 + 4 = 252` buckets.
const BUCKETS: usize = 252;

fn bucket_index(v: u64) -> usize {
    if v < 4 {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros() as usize; // ≥ 2
    let sub = ((v >> (msb - 2)) & 3) as usize;
    (msb - 1) * 4 + sub
}

/// Inclusive upper bound of bucket `idx` — the value quantiles report, so
/// estimates never undershoot the true quantile by more than the bucket
/// width.
fn bucket_upper_bound(idx: usize) -> u64 {
    if idx < 4 {
        return idx as u64;
    }
    let msb = idx / 4 + 1;
    let sub = (idx % 4) as u128;
    // The topmost bucket's bound exceeds u64::MAX; widen then saturate.
    let bound = ((4 + sub + 1) << (msb - 2)) - 1;
    bound.min(u64::MAX as u128) as u64
}

struct HistInner {
    buckets: [AtomicU64; BUCKETS],
    sum: AtomicU64,
    max: AtomicU64,
}

/// A fixed-footprint latency histogram. `record` is three relaxed atomic
/// ops and never allocates.
#[derive(Clone)]
pub struct Histogram {
    inner: Arc<HistInner>,
}

impl Histogram {
    fn new() -> Histogram {
        Histogram {
            inner: Arc::new(HistInner {
                buckets: std::array::from_fn(|_| AtomicU64::new(0)),
                sum: AtomicU64::new(0),
                max: AtomicU64::new(0),
            }),
        }
    }

    /// Record one value.
    #[inline]
    pub fn record(&self, v: u64) {
        self.inner.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.inner.sum.fetch_add(v, Ordering::Relaxed);
        self.inner.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Record a duration in microseconds.
    #[inline]
    pub fn record_duration(&self, d: Duration) {
        self.record(d.as_micros() as u64);
    }

    /// Summarize as count/sum/max plus p50/p95/p99.
    pub fn snapshot(&self, name: &str) -> HistogramSnapshot {
        let buckets: Vec<u64> = self
            .inner
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let count: u64 = buckets.iter().sum();
        let quantile = |q: f64| -> u64 {
            if count == 0 {
                return 0;
            }
            let rank = ((q * count as f64).ceil() as u64).clamp(1, count);
            let mut seen = 0u64;
            for (idx, n) in buckets.iter().enumerate() {
                seen += n;
                if seen >= rank {
                    return bucket_upper_bound(idx);
                }
            }
            bucket_upper_bound(BUCKETS - 1)
        };
        HistogramSnapshot {
            name: name.to_string(),
            count,
            sum: self.inner.sum.load(Ordering::Relaxed),
            max: self.inner.max.load(Ordering::Relaxed),
            p50: quantile(0.50),
            p95: quantile(0.95),
            p99: quantile(0.99),
        }
    }
}

struct RegistryInner {
    counters: Mutex<Vec<(String, Counter)>>,
    gauges: Mutex<Vec<(String, Gauge)>>,
    histograms: Mutex<Vec<(String, Histogram)>>,
    /// Interned per-tenant handle blocks, indexed by [`TenantId`].
    tenants: Mutex<Vec<Arc<TenantObs>>>,
    /// Cardinality bound on distinct tenant labels; tenants interned past
    /// the limit share the `~overflow` block.
    tenant_limit: AtomicUsize,
    /// Interned per-site lock statistics (PR 9), bounded like tenants.
    lock_sites: Mutex<Vec<Arc<LockSiteObs>>>,
    /// The registry's own lock site (`metrics.registry`), lazily interned
    /// so registries that never serve a tenant pay nothing.
    self_site: std::sync::OnceLock<Arc<LockSiteObs>>,
}

impl Default for RegistryInner {
    fn default() -> RegistryInner {
        RegistryInner {
            counters: Mutex::default(),
            gauges: Mutex::default(),
            histograms: Mutex::default(),
            tenants: Mutex::default(),
            tenant_limit: AtomicUsize::new(DEFAULT_TENANT_LIMIT),
            lock_sites: Mutex::default(),
            self_site: std::sync::OnceLock::new(),
        }
    }
}

/// Build one tenant's pre-registered handle block. Tenant metrics live in
/// their own table (not the flat name-keyed lists), so the per-node
/// metric namespace stays label-free and rendering attaches the tenant
/// label exactly once.
fn new_tenant(id: TenantId, name: &str) -> TenantObs {
    TenantObs {
        id,
        name: name.to_string(),
        jobs_started: Counter::new(),
        jobs_completed: Counter::new(),
        jobs_failed: Counter::new(),
        jobs_aborted: Counter::new(),
        admission_rejections: Counter::new(),
        idle_timeouts: Counter::new(),
        chunks: Counter::new(),
        chunk_bytes: Counter::new(),
        rows_applied: Counter::new(),
        errors_et: Counter::new(),
        errors_uv: Counter::new(),
        retries: Counter::new(),
        slow_jobs: Counter::new(),
        active_jobs: Gauge::new(),
        credit_held: Gauge::new(),
        memory_held: Gauge::new(),
        job_us: Histogram::new(),
        queue_wait_us: Histogram::new(),
        convert_us: Histogram::new(),
        upload_us: Histogram::new(),
        apply_us: Histogram::new(),
    }
}

/// Owns every registered metric; handles stay valid for the registry's
/// lifetime. Registration is idempotent by name, so subsystems can share
/// a metric without coordinating.
#[derive(Clone, Default)]
pub struct MetricsRegistry {
    inner: Arc<RegistryInner>,
}

impl MetricsRegistry {
    /// New empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Register (or fetch) the counter `name`.
    pub fn counter(&self, name: &str) -> Counter {
        let mut counters = self.inner.counters.lock();
        if let Some((_, c)) = counters.iter().find(|(n, _)| n == name) {
            return c.clone();
        }
        let c = Counter::new();
        counters.push((name.to_string(), c.clone()));
        c
    }

    /// Register (or fetch) the gauge `name`.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut gauges = self.inner.gauges.lock();
        if let Some((_, g)) = gauges.iter().find(|(n, _)| n == name) {
            return g.clone();
        }
        let g = Gauge::new();
        gauges.push((name.to_string(), g.clone()));
        g
    }

    /// Register (or fetch) the histogram `name`.
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut histograms = self.inner.histograms.lock();
        if let Some((_, h)) = histograms.iter().find(|(n, _)| n == name) {
            return h.clone();
        }
        let h = Histogram::new();
        histograms.push((name.to_string(), h.clone()));
        h
    }

    /// Intern (or fetch) the per-tenant handle block for `name`. The
    /// distinct-label cardinality is bounded: once `tenant_limit` blocks
    /// exist, further names all share the [`super::TENANT_OVERFLOW`]
    /// block, so a hostile stream of logon usernames cannot grow the
    /// registry without bound.
    pub fn tenant(&self, name: &str) -> Arc<TenantObs> {
        let mut tenants = self.lock_tenants();
        if let Some(t) = tenants.iter().find(|t| t.name == name) {
            return Arc::clone(t);
        }
        let limit = self.inner.tenant_limit.load(Ordering::Relaxed).max(1);
        let effective = if tenants.len() < limit {
            name
        } else {
            super::TENANT_OVERFLOW
        };
        if let Some(t) = tenants.iter().find(|t| t.name == effective) {
            return Arc::clone(t);
        }
        let t = Arc::new(new_tenant(TenantId(tenants.len() as u16), effective));
        tenants.push(Arc::clone(&t));
        t
    }

    /// Adjust the tenant cardinality bound (node assembly applies the
    /// configured `max_tenants`). Already-interned blocks are kept.
    pub fn set_tenant_limit(&self, limit: usize) {
        self.inner
            .tenant_limit
            .store(limit.max(1), Ordering::Relaxed);
    }

    /// Live handles of every interned tenant (SLO engine + sampler walk
    /// these directly rather than going through a full snapshot).
    pub fn tenant_handles(&self) -> Vec<Arc<TenantObs>> {
        self.inner.tenants.lock().clone()
    }

    /// Intern (or fetch) the lock-site block for `name`. Bounded like
    /// tenants: past [`LOCK_SITE_LIMIT`] distinct sites, further names
    /// share one `~overflow` block. The block's aggregate handles are the
    /// registry-level `lock.*` counters, registered idempotently here.
    pub fn lock_site(&self, name: &str) -> Arc<LockSiteObs> {
        let mut sites = self.inner.lock_sites.lock();
        if let Some(s) = sites.iter().find(|s| s.site == name) {
            return Arc::clone(s);
        }
        let effective = if sites.len() < LOCK_SITE_LIMIT {
            name
        } else {
            LOCK_SITE_OVERFLOW
        };
        if let Some(s) = sites.iter().find(|s| s.site == effective) {
            return Arc::clone(s);
        }
        let s = Arc::new(LockSiteObs {
            site: effective.to_string(),
            acquires: Counter::new(),
            contended: Counter::new(),
            wait_us: Histogram::new(),
            hold_us: Histogram::new(),
            agg_acquires: self.counter("lock.acquires"),
            agg_contended: self.counter("lock.contended"),
            agg_wait_us: self.counter("lock.wait_us"),
        });
        sites.push(Arc::clone(&s));
        s
    }

    /// Snapshot every interned lock site, site-sorted.
    pub fn lock_site_snapshots(&self) -> Vec<LockSiteSnapshot> {
        let mut sites: Vec<LockSiteSnapshot> = self
            .inner
            .lock_sites
            .lock()
            .iter()
            .map(|s| s.snapshot())
            .collect();
        sites.sort_by(|a, b| a.site.cmp(&b.site));
        sites
    }

    /// The registry's own lock site — the tenant table is the one
    /// registry structure on a request path (chunk intake resolves tenant
    /// blocks), so its mutex is tracked like any other hot lock.
    fn self_site(&self) -> &Arc<LockSiteObs> {
        self.inner
            .self_site
            .get_or_init(|| self.lock_site("metrics.registry"))
    }

    /// Acquire the tenant table, reporting contention to the
    /// `metrics.registry` site. Hand-rolled (rather than a
    /// [`super::TrackedMutex`]) because the site lives *inside* the
    /// registry being locked.
    fn lock_tenants(&self) -> parking_lot::MutexGuard<'_, Vec<Arc<TenantObs>>> {
        let site = Arc::clone(self.self_site());
        match self.inner.tenants.try_lock() {
            Some(guard) => {
                site.acquired_uncontended();
                guard
            }
            None => {
                let blocked = std::time::Instant::now();
                let guard = self.inner.tenants.lock();
                site.acquired_after(blocked.elapsed());
                guard
            }
        }
    }

    /// Snapshot every metric, name-sorted.
    pub fn snapshot(&self) -> RegistrySnapshot {
        let mut counters: Vec<(String, u64)> = self
            .inner
            .counters
            .lock()
            .iter()
            .map(|(n, c)| (n.clone(), c.value()))
            .collect();
        counters.sort_by(|a, b| a.0.cmp(&b.0));
        let mut gauges: Vec<(String, u64)> = self
            .inner
            .gauges
            .lock()
            .iter()
            .map(|(n, g)| (n.clone(), g.value()))
            .collect();
        gauges.sort_by(|a, b| a.0.cmp(&b.0));
        let mut histograms: Vec<HistogramSnapshot> = self
            .inner
            .histograms
            .lock()
            .iter()
            .map(|(n, h)| h.snapshot(n))
            .collect();
        histograms.sort_by(|a, b| a.name.cmp(&b.name));
        let mut tenants: Vec<TenantSnapshot> =
            self.lock_tenants().iter().map(|t| t.snapshot()).collect();
        tenants.sort_by(|a, b| a.tenant.cmp(&b.tenant));
        RegistrySnapshot {
            counters,
            gauges,
            histograms,
            tenants,
            lock_sites: self.lock_site_snapshots(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_monotone_and_bounded() {
        let mut last = 0usize;
        for shift in 0..64 {
            let v = 1u64 << shift;
            for probe in [v, v + v / 4, v + v / 2, v.wrapping_mul(2).wrapping_sub(1)] {
                let idx = bucket_index(probe);
                assert!(idx < BUCKETS, "v={probe} idx={idx}");
                assert!(idx >= last || probe < v, "non-monotone at {probe}");
                last = last.max(idx);
                // The bucket's upper bound must not undershoot the value.
                assert!(
                    bucket_upper_bound(idx) >= probe,
                    "upper bound {} < value {probe}",
                    bucket_upper_bound(idx)
                );
            }
        }
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn small_values_exact() {
        for v in 0..4u64 {
            assert_eq!(bucket_index(v), v as usize);
            assert_eq!(bucket_upper_bound(v as usize), v);
        }
        // 4..8 land in distinct exact buckets too (sub-bucket width 1).
        for v in 4..8u64 {
            assert_eq!(bucket_upper_bound(bucket_index(v)), v);
        }
    }

    #[test]
    fn histogram_quantiles_with_known_distribution() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("t");
        // 100 values: 1..=100.
        for v in 1..=100u64 {
            h.record(v);
        }
        let snap = h.snapshot("t");
        assert_eq!(snap.count, 100);
        assert_eq!(snap.sum, 5050);
        assert_eq!(snap.max, 100);
        // Log-linear error ≤ 12.5%: p50 ∈ [50, 57], p99 ∈ [99, 112].
        assert!((50..=57).contains(&snap.p50), "p50={}", snap.p50);
        assert!((95..=108).contains(&snap.p95), "p95={}", snap.p95);
        assert!((99..=112).contains(&snap.p99), "p99={}", snap.p99);
    }

    #[test]
    fn counter_merges_shards_across_threads() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("n");
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let c = c.clone();
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        c.inc();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(c.value(), 8000);
    }

    #[test]
    fn registration_is_idempotent() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("same");
        let b = reg.counter("same");
        a.add(2);
        b.add(3);
        assert_eq!(reg.counter("same").value(), 5);
        let snap = reg.snapshot();
        assert_eq!(snap.counters.len(), 1);
        assert_eq!(snap.counters[0], ("same".to_string(), 5));
    }

    #[test]
    fn gauge_set_and_max() {
        let reg = MetricsRegistry::new();
        let g = reg.gauge("g");
        g.set(10);
        g.fetch_max(7);
        assert_eq!(g.value(), 10);
        g.fetch_max(12);
        assert_eq!(g.value(), 12);
    }

    #[test]
    fn gauge_add_sub_saturates_at_zero() {
        let reg = MetricsRegistry::new();
        let g = reg.gauge("held");
        g.add(5);
        g.add(3);
        assert_eq!(g.value(), 8);
        g.sub(6);
        assert_eq!(g.value(), 2);
        g.sub(10); // over-release must clamp, not wrap
        assert_eq!(g.value(), 0);
    }

    #[test]
    fn tenant_interning_is_idempotent_and_bounded() {
        let reg = MetricsRegistry::new();
        reg.set_tenant_limit(2);
        let a = reg.tenant("alice");
        let a2 = reg.tenant("alice");
        assert!(Arc::ptr_eq(&a, &a2), "same name, same block");
        assert_eq!(a.id, a2.id);
        let b = reg.tenant("bob");
        assert_ne!(a.id, b.id);
        // Limit reached: every further name shares the overflow block.
        let c = reg.tenant("carol");
        let d = reg.tenant("dave");
        assert_eq!(c.name, crate::obs::TENANT_OVERFLOW);
        assert!(Arc::ptr_eq(&c, &d));
        c.jobs_started.inc();
        d.jobs_started.inc();
        assert_eq!(c.jobs_started.value(), 2);
        let snap = reg.snapshot();
        assert_eq!(snap.tenants.len(), 3, "alice, bob, ~overflow");
        let names: Vec<&str> = snap.tenants.iter().map(|t| t.tenant.as_str()).collect();
        // `~` sorts after ASCII lowercase, so overflow renders last.
        assert_eq!(names, vec!["alice", "bob", crate::obs::TENANT_OVERFLOW]);
    }

    #[test]
    fn tenant_snapshot_carries_counters_gauges_histograms() {
        let reg = MetricsRegistry::new();
        let t = reg.tenant("wg_t00");
        t.rows_applied.add(100);
        t.errors_et.add(3);
        t.active_jobs.add(2);
        t.active_jobs.sub(1);
        t.job_us.record(5000);
        let snap = t.snapshot();
        let counter = |name: &str| {
            snap.counters
                .iter()
                .find(|(n, _)| n == name)
                .unwrap_or_else(|| panic!("missing {name}"))
                .1
        };
        assert_eq!(counter("rows_applied"), 100);
        assert_eq!(counter("errors_et"), 3);
        assert_eq!(
            snap.gauges
                .iter()
                .find(|(n, _)| n == "active_jobs")
                .unwrap()
                .1,
            1
        );
        let h = snap.histograms.iter().find(|h| h.name == "job_us").unwrap();
        assert_eq!(h.count, 1);
        assert_eq!(h.max, 5000);
    }

    #[test]
    fn quantile_estimates_stay_within_log_linear_error_bound() {
        // The SLO engine reads p99 straight from these bins: pin the
        // quantile error bound across magnitudes. A value v lands in a
        // bucket [lo, hi] with hi/lo ≤ 5/4, and quantiles report hi, so
        // the estimate never undershoots and overshoots by < 25%.
        for scale in [1u64, 10, 1_000, 1_000_000, 50_000_000] {
            let reg = MetricsRegistry::new();
            let h = reg.histogram("q");
            for v in 1..=1000u64 {
                h.record(v * scale);
            }
            let snap = h.snapshot("q");
            for (q, exact) in [
                (snap.p50, 500 * scale),
                (snap.p95, 950 * scale),
                (snap.p99, 990 * scale),
            ] {
                assert!(
                    q >= exact,
                    "quantile {q} undershoots exact {exact} at scale {scale}"
                );
                let rel = (q - exact) as f64 / exact as f64;
                assert!(rel < 0.25, "relative error {rel} ≥ 25% at scale {scale}");
            }
        }
    }

    #[test]
    fn lock_site_interning_bounded_and_snapshotted() {
        let reg = MetricsRegistry::new();
        let a = reg.lock_site("runtime.state");
        let a2 = reg.lock_site("runtime.state");
        assert!(Arc::ptr_eq(&a, &a2), "same site, same block");
        a.acquired_uncontended();
        a.acquired_after(Duration::from_micros(150));
        a.held(Duration::from_micros(40));
        let snap = reg.snapshot();
        let site = snap
            .lock_sites
            .iter()
            .find(|s| s.site == "runtime.state")
            .expect("site in snapshot");
        assert_eq!(site.acquires, 2);
        assert_eq!(site.contended, 1);
        assert!(site.wait_us.sum >= 150);
        assert_eq!(site.hold_us.count, 1);
        // Aggregates follow every per-site record.
        let agg = |name: &str| {
            snap.counters
                .iter()
                .find(|(n, _)| n == name)
                .unwrap_or_else(|| panic!("missing {name}"))
                .1
        };
        assert_eq!(agg("lock.acquires"), 2);
        assert_eq!(agg("lock.contended"), 1);
        assert!(agg("lock.wait_us") >= 150);
        // Cardinality bound: past the limit, sites share the overflow
        // block.
        for i in 0..LOCK_SITE_LIMIT + 4 {
            reg.lock_site(&format!("flood.{i}"));
        }
        let x = reg.lock_site("one.more");
        let y = reg.lock_site("another");
        assert_eq!(x.site, LOCK_SITE_OVERFLOW);
        assert!(Arc::ptr_eq(&x, &y));
    }

    #[test]
    fn tenant_lock_self_instrumented() {
        let reg = MetricsRegistry::new();
        reg.tenant("alice");
        let snap = reg.snapshot();
        let site = snap
            .lock_sites
            .iter()
            .find(|s| s.site == "metrics.registry")
            .expect("registry self-site interned on first tenant access");
        assert!(site.acquires >= 1);
    }

    #[test]
    fn snapshot_sorted_by_name() {
        let reg = MetricsRegistry::new();
        reg.counter("z");
        reg.counter("a");
        reg.histogram("m");
        reg.histogram("b");
        let snap = reg.snapshot();
        assert_eq!(snap.counters[0].0, "a");
        assert_eq!(snap.counters[1].0, "z");
        assert_eq!(snap.histograms[0].name, "b");
        assert_eq!(snap.histograms[1].name, "m");
    }
}
