//! Snapshot renderers: the JSON document behind
//! `Virtualizer::stats_snapshot()` and the Prometheus text exposition.
//! Hand-rolled (the workspace carries no serialization dependency) and
//! compiled regardless of the `obs` feature — with instrumentation off
//! the registry snapshot is simply empty.

use crate::report::{JobReport, NodeMetrics};

use super::RegistrySnapshot;

/// Escape a string for embedding in a JSON string literal.
pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn push_node_fields(out: &mut String, node: &NodeMetrics, indent: &str) {
    out.push_str(&format!(
        "{indent}\"jobs_completed\": {},\n\
         {indent}\"jobs_failed\": {},\n\
         {indent}\"jobs_aborted\": {},\n\
         {indent}\"exports_completed\": {},\n\
         {indent}\"rows_ingested\": {},\n\
         {indent}\"rows_exported\": {},\n\
         {indent}\"bytes_exported\": {},\n\
         {indent}\"credit_stalls\": {},\n\
         {indent}\"credit_stall_micros\": {},\n\
         {indent}\"peak_memory\": {}\n",
        node.jobs_completed,
        node.jobs_failed,
        node.jobs_aborted,
        node.exports_completed,
        node.rows_ingested,
        node.rows_exported,
        node.bytes_exported,
        node.credit_stalls,
        node.credit_stall_time.as_micros(),
        node.peak_memory,
    ));
}

fn push_job(out: &mut String, job: &JobReport) {
    out.push_str(&format!(
        "{{\"rows_received\": {}, \"rows_applied\": {}, \"errors_et\": {}, \
         \"errors_uv\": {}, \"acquisition_micros\": {}, \"application_micros\": {}, \
         \"other_micros\": {}, \"files_staged\": {}, \"bytes_staged\": {}, \
         \"upload_retries\": {}, \"cdw_retries\": {}, \"faults_injected\": {}, \
         \"aborted\": {}}}",
        job.rows_received,
        job.rows_applied,
        job.errors_et,
        job.errors_uv,
        job.acquisition.as_micros(),
        job.application.as_micros(),
        job.other.as_micros(),
        job.files_staged,
        job.bytes_staged,
        job.upload_retries,
        job.cdw_retries,
        job.faults_injected,
        job.aborted,
    ));
}

/// Render the full stats snapshot as a JSON document.
pub fn stats_json(
    node: &NodeMetrics,
    snap: &RegistrySnapshot,
    recent_jobs: &[JobReport],
    journal_emitted: u64,
    journal_retained: usize,
    journal_dropped: u64,
) -> String {
    let mut out = String::with_capacity(4096);
    out.push_str("{\n");
    out.push_str(&format!("  \"obs_enabled\": {},\n", super::enabled()));
    out.push_str("  \"node\": {\n");
    push_node_fields(&mut out, node, "    ");
    out.push_str("  },\n");

    out.push_str("  \"counters\": {");
    for (i, (name, value)) in snap.counters.iter().enumerate() {
        out.push_str(if i == 0 { "\n" } else { ",\n" });
        out.push_str(&format!("    \"{name}\": {value}"));
    }
    out.push_str("\n  },\n");

    out.push_str("  \"gauges\": {");
    for (i, (name, value)) in snap.gauges.iter().enumerate() {
        out.push_str(if i == 0 { "\n" } else { ",\n" });
        out.push_str(&format!("    \"{name}\": {value}"));
    }
    out.push_str("\n  },\n");

    out.push_str("  \"histograms\": {");
    for (i, h) in snap.histograms.iter().enumerate() {
        out.push_str(if i == 0 { "\n" } else { ",\n" });
        out.push_str(&format!(
            "    \"{}\": {{\"count\": {}, \"sum\": {}, \"max\": {}, \
             \"p50\": {}, \"p95\": {}, \"p99\": {}}}",
            h.name, h.count, h.sum, h.max, h.p50, h.p95, h.p99
        ));
    }
    out.push_str("\n  },\n");

    out.push_str("  \"tenants\": [");
    for (i, t) in snap.tenants.iter().enumerate() {
        out.push_str(if i == 0 { "\n" } else { ",\n" });
        out.push_str(&format!(
            "    {{\"tenant\": \"{}\", \"counters\": {{",
            json_escape(&t.tenant)
        ));
        for (j, (name, value)) in t.counters.iter().enumerate() {
            if j > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!("\"{name}\": {value}"));
        }
        out.push_str("}, \"gauges\": {");
        for (j, (name, value)) in t.gauges.iter().enumerate() {
            if j > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!("\"{name}\": {value}"));
        }
        out.push_str("}, \"histograms\": {");
        for (j, h) in t.histograms.iter().enumerate() {
            if j > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!(
                "\"{}\": {{\"count\": {}, \"sum\": {}, \"max\": {}, \
                 \"p50\": {}, \"p95\": {}, \"p99\": {}}}",
                h.name, h.count, h.sum, h.max, h.p50, h.p95, h.p99
            ));
        }
        out.push_str("}}");
    }
    out.push_str("\n  ],\n");

    out.push_str("  \"lock_sites\": [");
    for (i, s) in snap.lock_sites.iter().enumerate() {
        out.push_str(if i == 0 { "\n    " } else { ",\n    " });
        out.push_str(&s.to_json());
    }
    out.push_str("\n  ],\n");

    out.push_str("  \"recent_jobs\": [");
    for (i, job) in recent_jobs.iter().enumerate() {
        out.push_str(if i == 0 { "\n    " } else { ",\n    " });
        push_job(&mut out, job);
    }
    out.push_str("\n  ],\n");

    out.push_str(&format!(
        "  \"journal\": {{\"emitted\": {journal_emitted}, \"retained\": {journal_retained}, \
         \"dropped\": {journal_dropped}}}\n"
    ));
    out.push_str("}\n");
    out
}

fn prom_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 5);
    out.push_str("etlv_");
    for c in name.chars() {
        out.push(if c.is_ascii_alphanumeric() { c } else { '_' });
    }
    out
}

/// Escape a label value per the Prometheus text exposition format:
/// backslash, double quote, and newline must be escaped inside the
/// quoted value.
pub fn prom_escape_label(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

/// Render the stats snapshot as Prometheus text exposition: counters and
/// gauges as single samples (with `# TYPE` metadata), histograms as
/// `summary` families with `_count`/`_sum`/`_max` plus
/// `quantile`-labelled samples.
pub fn stats_prometheus(
    node: &NodeMetrics,
    snap: &RegistrySnapshot,
    journal_emitted: u64,
    journal_dropped: u64,
) -> String {
    let mut out = String::with_capacity(4096);
    let node_samples: [(&str, u64); 10] = [
        ("node.jobs_completed", node.jobs_completed),
        ("node.jobs_failed", node.jobs_failed),
        ("node.jobs_aborted", node.jobs_aborted),
        ("node.exports_completed", node.exports_completed),
        ("node.rows_ingested", node.rows_ingested),
        ("node.rows_exported", node.rows_exported),
        ("node.bytes_exported", node.bytes_exported),
        ("node.credit_stalls", node.credit_stalls),
        (
            "node.credit_stall_micros",
            node.credit_stall_time.as_micros() as u64,
        ),
        ("node.peak_memory", node.peak_memory),
    ];
    for (name, value) in node_samples {
        let base = prom_name(name);
        out.push_str(&format!("# TYPE {base} gauge\n{base} {value}\n"));
    }
    for (name, value) in &snap.counters {
        let base = prom_name(name);
        out.push_str(&format!("# TYPE {base} counter\n{base} {value}\n"));
    }
    for (name, value) in &snap.gauges {
        let base = prom_name(name);
        out.push_str(&format!("# TYPE {base} gauge\n{base} {value}\n"));
    }
    for (name, value) in [
        ("journal.events_emitted", journal_emitted),
        ("journal.events_dropped", journal_dropped),
    ] {
        let base = prom_name(name);
        out.push_str(&format!("# TYPE {base} counter\n{base} {value}\n"));
    }
    for h in &snap.histograms {
        let base = prom_name(&h.name);
        out.push_str(&format!("# TYPE {base} summary\n"));
        out.push_str(&format!("{base}_count {}\n", h.count));
        out.push_str(&format!("{base}_sum {}\n", h.sum));
        out.push_str(&format!("{base}_max {}\n", h.max));
        for (q, v) in [("0.5", h.p50), ("0.95", h.p95), ("0.99", h.p99)] {
            out.push_str(&format!(
                "{base}{{quantile=\"{}\"}} {v}\n",
                prom_escape_label(q)
            ));
        }
    }
    // Tenant-labelled families, metric-major: one `# TYPE` per family,
    // then one `tenant`-labelled sample per tenant, so the conformance
    // contract (exactly one TYPE line per family) holds no matter how
    // many tenants are interned.
    use std::collections::BTreeSet;
    let counter_names: BTreeSet<&str> = snap
        .tenants
        .iter()
        .flat_map(|t| t.counters.iter().map(|(n, _)| n.as_str()))
        .collect();
    for name in counter_names {
        let base = prom_name(&format!("tenant.{name}"));
        out.push_str(&format!("# TYPE {base} counter\n"));
        for t in &snap.tenants {
            if let Some((_, v)) = t.counters.iter().find(|(n, _)| n == name) {
                out.push_str(&format!(
                    "{base}{{tenant=\"{}\"}} {v}\n",
                    prom_escape_label(&t.tenant)
                ));
            }
        }
    }
    let gauge_names: BTreeSet<&str> = snap
        .tenants
        .iter()
        .flat_map(|t| t.gauges.iter().map(|(n, _)| n.as_str()))
        .collect();
    for name in gauge_names {
        let base = prom_name(&format!("tenant.{name}"));
        out.push_str(&format!("# TYPE {base} gauge\n"));
        for t in &snap.tenants {
            if let Some((_, v)) = t.gauges.iter().find(|(n, _)| n == name) {
                out.push_str(&format!(
                    "{base}{{tenant=\"{}\"}} {v}\n",
                    prom_escape_label(&t.tenant)
                ));
            }
        }
    }
    let hist_names: BTreeSet<&str> = snap
        .tenants
        .iter()
        .flat_map(|t| t.histograms.iter().map(|h| h.name.as_str()))
        .collect();
    for name in hist_names {
        let base = prom_name(&format!("tenant.{name}"));
        out.push_str(&format!("# TYPE {base} summary\n"));
        for t in &snap.tenants {
            let Some(h) = t.histograms.iter().find(|h| h.name == name) else {
                continue;
            };
            let tenant = prom_escape_label(&t.tenant);
            out.push_str(&format!(
                "{base}_count{{tenant=\"{tenant}\"}} {}\n",
                h.count
            ));
            out.push_str(&format!("{base}_sum{{tenant=\"{tenant}\"}} {}\n", h.sum));
            out.push_str(&format!("{base}_max{{tenant=\"{tenant}\"}} {}\n", h.max));
            for (q, v) in [("0.5", h.p50), ("0.95", h.p95), ("0.99", h.p99)] {
                out.push_str(&format!(
                    "{base}{{tenant=\"{tenant}\",quantile=\"{q}\"}} {v}\n"
                ));
            }
        }
    }
    // Lock-site families (PR 9), metric-major like tenants: one TYPE per
    // family, one `site`-labelled sample per interned site.
    if !snap.lock_sites.is_empty() {
        for (name, pick) in [("lock.site.acquires", 0usize), ("lock.site.contended", 1)] {
            let base = prom_name(name);
            out.push_str(&format!("# TYPE {base} counter\n"));
            for s in &snap.lock_sites {
                let v = if pick == 0 { s.acquires } else { s.contended };
                out.push_str(&format!(
                    "{base}{{site=\"{}\"}} {v}\n",
                    prom_escape_label(&s.site)
                ));
            }
        }
        for (name, wait) in [("lock.site.wait_us", true), ("lock.site.hold_us", false)] {
            let base = prom_name(name);
            out.push_str(&format!("# TYPE {base} summary\n"));
            for s in &snap.lock_sites {
                let h = if wait { &s.wait_us } else { &s.hold_us };
                let site = prom_escape_label(&s.site);
                out.push_str(&format!("{base}_count{{site=\"{site}\"}} {}\n", h.count));
                out.push_str(&format!("{base}_sum{{site=\"{site}\"}} {}\n", h.sum));
                out.push_str(&format!("{base}_max{{site=\"{site}\"}} {}\n", h.max));
                for (q, v) in [("0.5", h.p50), ("0.95", h.p95), ("0.99", h.p99)] {
                    out.push_str(&format!("{base}{{site=\"{site}\",quantile=\"{q}\"}} {v}\n"));
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::obs::HistogramSnapshot;
    use std::time::Duration;

    fn sample_snapshot() -> RegistrySnapshot {
        let tenant = |name: &str, rows: u64| super::super::TenantSnapshot {
            tenant: name.into(),
            counters: vec![("jobs_started".into(), 3), ("rows_applied".into(), rows)],
            gauges: vec![("active_jobs".into(), 1)],
            histograms: vec![HistogramSnapshot {
                name: "job_us".into(),
                count: 3,
                sum: 9000,
                max: 4000,
                p50: 3000,
                p95: 4000,
                p99: 4000,
            }],
        };
        RegistrySnapshot {
            counters: vec![
                ("gateway.chunks_received".into(), 12),
                ("pipeline.convert_rows".into(), 480),
            ],
            gauges: vec![("credit.in_flight".into(), 3)],
            histograms: vec![HistogramSnapshot {
                name: "pipeline.convert_us".into(),
                count: 12,
                sum: 600,
                max: 90,
                p50: 47,
                p95: 85,
                p99: 90,
            }],
            tenants: vec![tenant("alice", 400), tenant("bo\"b", 80)],
            lock_sites: vec![
                super::super::LockSiteSnapshot {
                    site: "cdw.table/or\"ders".into(),
                    acquires: 20,
                    contended: 5,
                    wait_us: HistogramSnapshot {
                        name: "wait_us".into(),
                        count: 5,
                        sum: 750,
                        max: 300,
                        p50: 100,
                        p95: 280,
                        p99: 300,
                    },
                    hold_us: HistogramSnapshot {
                        name: "hold_us".into(),
                        count: 20,
                        sum: 400,
                        max: 60,
                        p50: 15,
                        p95: 50,
                        p99: 60,
                    },
                },
                super::super::LockSiteSnapshot {
                    site: "runtime.state".into(),
                    acquires: 100,
                    contended: 2,
                    ..Default::default()
                },
            ],
        }
    }

    fn sample_node() -> NodeMetrics {
        NodeMetrics {
            jobs_completed: 2,
            jobs_aborted: 1,
            rows_ingested: 480,
            credit_stalls: 5,
            credit_stall_time: Duration::from_micros(1500),
            peak_memory: 65536,
            ..Default::default()
        }
    }

    #[test]
    fn json_document_contains_all_sections() {
        let job = JobReport {
            rows_received: 240,
            upload_retries: 1,
            cdw_retries: 2,
            aborted: true,
            ..Default::default()
        };
        let doc = stats_json(&sample_node(), &sample_snapshot(), &[job], 40, 30, 10);
        for needle in [
            "\"obs_enabled\"",
            "\"jobs_completed\": 2",
            "\"jobs_aborted\": 1",
            "\"aborted\": true",
            "\"credit_stalls\": 5",
            "\"credit_stall_micros\": 1500",
            "\"gateway.chunks_received\": 12",
            "\"credit.in_flight\": 3",
            "\"pipeline.convert_us\": {\"count\": 12",
            "\"p95\": 85",
            "\"upload_retries\": 1",
            "\"cdw_retries\": 2",
            "\"journal\": {\"emitted\": 40, \"retained\": 30, \"dropped\": 10}",
            "\"tenant\": \"alice\"",
            "\"tenant\": \"bo\\\"b\"",
            "\"rows_applied\": 400",
            "\"job_us\": {\"count\": 3",
            "\"lock_sites\": [",
            "\"site\": \"cdw.table/or\\\"ders\"",
            "\"contended\": 5",
            "\"wait_us\": {\"count\": 5, \"sum\": 750",
            "\"site\": \"runtime.state\"",
        ] {
            assert!(doc.contains(needle), "missing {needle} in:\n{doc}");
        }
    }

    #[test]
    fn prometheus_exposition_shape() {
        let text = stats_prometheus(&sample_node(), &sample_snapshot(), 40, 10);
        for needle in [
            "etlv_node_jobs_completed 2\n",
            "etlv_node_jobs_aborted 1\n",
            "etlv_node_peak_memory 65536\n",
            "etlv_gateway_chunks_received 12\n",
            "etlv_credit_in_flight 3\n",
            "etlv_journal_events_emitted 40\n",
            "etlv_journal_events_dropped 10\n",
            "etlv_pipeline_convert_us_count 12\n",
            "etlv_pipeline_convert_us{quantile=\"0.95\"} 85\n",
            "etlv_tenant_rows_applied{tenant=\"alice\"} 400\n",
            "etlv_tenant_rows_applied{tenant=\"bo\\\"b\"} 80\n",
            "etlv_tenant_active_jobs{tenant=\"alice\"} 1\n",
            "etlv_tenant_job_us_count{tenant=\"alice\"} 3\n",
            "etlv_tenant_job_us{tenant=\"alice\",quantile=\"0.95\"} 4000\n",
            "etlv_lock_site_acquires{site=\"cdw.table/or\\\"ders\"} 20\n",
            "etlv_lock_site_contended{site=\"cdw.table/or\\\"ders\"} 5\n",
            "etlv_lock_site_acquires{site=\"runtime.state\"} 100\n",
            "etlv_lock_site_wait_us_sum{site=\"cdw.table/or\\\"ders\"} 750\n",
            "etlv_lock_site_wait_us{site=\"cdw.table/or\\\"ders\",quantile=\"0.99\"} 300\n",
            "etlv_lock_site_hold_us_count{site=\"cdw.table/or\\\"ders\"} 20\n",
        ] {
            assert!(text.contains(needle), "missing {needle} in:\n{text}");
        }
        // Tenant families are metric-major: one TYPE line even with two
        // tenants present.
        assert_eq!(
            text.matches("# TYPE etlv_tenant_rows_applied counter\n")
                .count(),
            1
        );
        assert_eq!(
            text.matches("# TYPE etlv_tenant_job_us summary\n").count(),
            1
        );
        // Lock-site families likewise: one TYPE line across two sites.
        assert_eq!(
            text.matches("# TYPE etlv_lock_site_acquires counter\n")
                .count(),
            1
        );
        assert_eq!(
            text.matches("# TYPE etlv_lock_site_wait_us summary\n")
                .count(),
            1
        );
    }

    #[test]
    fn prometheus_conformance() {
        // Every sample line must parse as `name{labels} value` or
        // `name value` with a sane metric name, and every metric family
        // must be preceded by exactly one `# TYPE` line naming it.
        let text = stats_prometheus(&sample_node(), &sample_snapshot(), 1, 0);
        let mut typed: std::collections::HashSet<String> = std::collections::HashSet::new();
        for line in text.lines() {
            if let Some(rest) = line.strip_prefix("# TYPE ") {
                let mut parts = rest.split_whitespace();
                let name = parts.next().expect("TYPE line has a name");
                let kind = parts.next().expect("TYPE line has a kind");
                assert!(
                    matches!(kind, "counter" | "gauge" | "summary" | "histogram"),
                    "bad TYPE kind: {line}"
                );
                assert!(typed.insert(name.to_string()), "duplicate TYPE for {name}");
                continue;
            }
            let (series, value) = line.rsplit_once(' ').expect("sample line has a value");
            value
                .parse::<f64>()
                .unwrap_or_else(|_| panic!("bad value in {line}"));
            let name = series.split('{').next().unwrap();
            assert!(
                name.chars()
                    .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'),
                "bad metric name in {line}"
            );
            // The family (name minus _count/_sum/_max suffix) must have
            // been announced by a TYPE line.
            let family = ["_count", "_sum", "_max"]
                .iter()
                .find_map(|s| name.strip_suffix(s))
                .unwrap_or(name);
            assert!(
                typed.contains(family) || typed.contains(name),
                "sample {name} missing TYPE metadata"
            );
        }
        // Histograms are announced as summaries.
        assert!(text.contains("# TYPE etlv_pipeline_convert_us summary\n"));
    }

    #[test]
    fn label_escaping() {
        assert_eq!(prom_escape_label("plain"), "plain");
        assert_eq!(prom_escape_label("a\\b"), "a\\\\b");
        assert_eq!(prom_escape_label("say \"hi\""), "say \\\"hi\\\"");
        assert_eq!(prom_escape_label("line1\nline2"), "line1\\nline2");
        assert_eq!(
            prom_escape_label("\\\"\n"),
            "\\\\\\\"\\n",
            "all three escapes compose"
        );
    }
}
