//! Per-tenant SLO evaluation: declarative objectives, multi-window
//! burn-rate alerting, and node overload signals.
//!
//! The engine is deliberately passive: it never spawns a thread. Cheap
//! cumulative-counter samples are pushed into bounded per-tenant rings by
//! [`SloEngine::observe`] — called from the background sampler's refresh
//! hook and from every `Health` evaluation — and burn rates are derived
//! on demand from the ring. A burn rate is the SRE-style ratio
//! `bad_fraction_over_window / error_budget` where the budget is
//! `1 - objective`: burn 1.0 consumes the budget exactly at the rate the
//! objective allows, burn 14.4 exhausts a 30-day budget in 2 days. An
//! alert fires only when **both** the fast and the slow window burn
//! exceed their thresholds — the fast window gives detection latency,
//! the slow window keeps a short blip from paging.
//!
//! The engine reads only the public registry surface
//! ([`MetricsRegistry::tenant_handles`] + counter values), so the same
//! implementation compiles against the live and the noop registry; with
//! obs compiled out every sample is zero and [`HealthReport::enabled`]
//! says so.
//!
//! [`MetricsRegistry::tenant_handles`]: super::MetricsRegistry::tenant_handles

use std::collections::VecDeque;
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use super::render::{json_escape, prom_escape_label};
use super::Obs;

/// Burn values are clamped here so JSON/Prometheus renderings never see
/// `inf` (an objective of ~1.0 makes the error budget ~0).
const MAX_BURN: f64 = 1e6;

/// Hard cap on ring points per tenant, a backstop over time-based
/// pruning.
const MAX_POINTS: usize = 8192;

/// Declarative per-tenant service-level objectives plus the burn-rate
/// alerting windows evaluated over them. One policy applies to every
/// tenant (per-tenant overrides would layer on top of this).
#[derive(Debug, Clone, PartialEq)]
pub struct SloPolicy {
    /// End-to-end import-job latency target; a job slower than this is a
    /// "slow job" against `latency_objective`.
    pub latency_target: Duration,
    /// Fraction of finished jobs that must meet `latency_target`
    /// (e.g. 0.99 — the p99 latency objective).
    pub latency_objective: f64,
    /// Fraction of ingested rows that must apply cleanly (not land in
    /// ET/UV error tables).
    pub error_rate_objective: f64,
    /// Fraction of job attempts that must be admitted and complete
    /// (rejections, failures, and aborts all spend this budget).
    pub availability_objective: f64,
    /// Fast detection window (classic 5m, scaled down for benches).
    pub fast_window: Duration,
    /// Slow confirmation window (classic 1h).
    pub slow_window: Duration,
    /// Burn-rate threshold on the fast window.
    pub fast_burn: f64,
    /// Burn-rate threshold on the slow window.
    pub slow_burn: f64,
    /// Resource saturation (jobs/sessions/credits/memory, 0..1) at or
    /// above which the node reports overload.
    pub overload_ratio: f64,
}

impl Default for SloPolicy {
    fn default() -> SloPolicy {
        SloPolicy {
            latency_target: Duration::from_secs(2),
            latency_objective: 0.99,
            error_rate_objective: 0.999,
            availability_objective: 0.999,
            fast_window: Duration::from_secs(300),
            slow_window: Duration::from_secs(3600),
            fast_burn: 14.4,
            slow_burn: 6.0,
            overload_ratio: 0.9,
        }
    }
}

/// One objective's burn-rate evaluation for one tenant.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SloStatus {
    /// Objective name: `latency`, `error_rate`, or `availability`.
    pub objective: &'static str,
    /// Burn rate over the fast window.
    pub burn_fast: f64,
    /// Burn rate over the slow window.
    pub burn_slow: f64,
    /// Budget-spending events in the fast window (numerator).
    pub bad_fast: u64,
    /// Total events in the fast window (denominator).
    pub total_fast: u64,
    /// Budget-spending events in the slow window.
    pub bad_slow: u64,
    /// Total events in the slow window.
    pub total_slow: u64,
    /// Both windows exceed their burn thresholds.
    pub alerting: bool,
}

/// One tenant's SLO standing.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TenantHealth {
    /// Tenant (logon username).
    pub tenant: String,
    /// Per-objective evaluations, fixed order (latency, error_rate,
    /// availability).
    pub objectives: Vec<SloStatus>,
    /// Names of objectives currently alerting.
    pub alerts: Vec<&'static str>,
}

/// Node-level resource pressure, evaluated from the same snapshot.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct OverloadState {
    /// active jobs / max_concurrent_jobs.
    pub job_saturation: f64,
    /// active sessions / max_sessions.
    pub session_saturation: f64,
    /// credits in flight / credit pool size.
    pub credit_saturation: f64,
    /// staging memory in flight / memory cap (0 when uncapped).
    pub memory_saturation: f64,
    /// Admission rejections within the fast window.
    pub recent_rejections: u64,
    /// Any saturation at/above the policy's overload ratio, or any
    /// recent rejection.
    pub overloaded: bool,
}

/// Raw node occupancy the gateway feeds into [`SloEngine::evaluate`].
#[derive(Debug, Clone, Copy, Default)]
pub struct OverloadInput {
    /// Import/export jobs currently registered.
    pub active_jobs: u64,
    /// Configured `max_concurrent_jobs`.
    pub max_jobs: u64,
    /// Sessions currently registered.
    pub active_sessions: u64,
    /// Configured `max_sessions`.
    pub max_sessions: u64,
    /// Back-pressure credits currently held.
    pub credit_in_flight: u64,
    /// Credit pool size.
    pub credit_capacity: u64,
    /// Staging memory currently reserved, bytes.
    pub memory_in_flight: u64,
    /// Staging memory cap, bytes (0 = uncapped).
    pub memory_cap: u64,
}

/// The full health document behind the `Health` wire request.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct HealthReport {
    /// Whether the obs feature (and thus real data) is compiled in.
    pub enabled: bool,
    /// Node overload standing.
    pub overload: OverloadState,
    /// Per-tenant SLO standings, sorted by tenant name.
    pub tenants: Vec<TenantHealth>,
}

/// Render a finite f64 as a JSON/Prometheus-safe number.
fn num(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.6}")
    } else {
        format!("{MAX_BURN:.6}")
    }
}

impl HealthReport {
    /// JSON rendering (the `Health` wire body in JSON format).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(1024);
        out.push_str(&format!(
            "{{\n  \"obs_enabled\": {},\n  \"overload\": {{\"overloaded\": {}, \
             \"job_saturation\": {}, \"session_saturation\": {}, \
             \"credit_saturation\": {}, \"memory_saturation\": {}, \
             \"recent_rejections\": {}}},\n  \"tenants\": [",
            self.enabled,
            self.overload.overloaded,
            num(self.overload.job_saturation),
            num(self.overload.session_saturation),
            num(self.overload.credit_saturation),
            num(self.overload.memory_saturation),
            self.overload.recent_rejections,
        ));
        for (i, t) in self.tenants.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"tenant\": \"{}\", \"alerts\": [{}], \"objectives\": [",
                json_escape(&t.tenant),
                t.alerts
                    .iter()
                    .map(|a| format!("\"{a}\""))
                    .collect::<Vec<_>>()
                    .join(", ")
            ));
            for (j, s) in t.objectives.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&format!(
                    "\n      {{\"objective\": \"{}\", \"alerting\": {}, \
                     \"burn_fast\": {}, \"burn_slow\": {}, \
                     \"bad_fast\": {}, \"total_fast\": {}, \
                     \"bad_slow\": {}, \"total_slow\": {}}}",
                    s.objective,
                    s.alerting,
                    num(s.burn_fast),
                    num(s.burn_slow),
                    s.bad_fast,
                    s.total_fast,
                    s.bad_slow,
                    s.total_slow,
                ));
            }
            out.push_str("\n    ]}");
        }
        out.push_str("\n  ]\n}\n");
        out
    }

    /// Prometheus text-exposition rendering (same conformance rules as
    /// the stats surface: one `# TYPE` per family, labels escaped).
    pub fn to_prometheus(&self) -> String {
        let mut out = String::with_capacity(1024);
        out.push_str("# TYPE etlv_slo_burn gauge\n");
        for t in &self.tenants {
            let tenant = prom_escape_label(&t.tenant);
            for s in &t.objectives {
                out.push_str(&format!(
                    "etlv_slo_burn{{tenant=\"{tenant}\",objective=\"{}\",window=\"fast\"}} {}\n",
                    s.objective,
                    num(s.burn_fast)
                ));
                out.push_str(&format!(
                    "etlv_slo_burn{{tenant=\"{tenant}\",objective=\"{}\",window=\"slow\"}} {}\n",
                    s.objective,
                    num(s.burn_slow)
                ));
            }
        }
        out.push_str("# TYPE etlv_slo_alert gauge\n");
        for t in &self.tenants {
            let tenant = prom_escape_label(&t.tenant);
            for s in &t.objectives {
                out.push_str(&format!(
                    "etlv_slo_alert{{tenant=\"{tenant}\",objective=\"{}\"}} {}\n",
                    s.objective,
                    u8::from(s.alerting)
                ));
            }
        }
        out.push_str("# TYPE etlv_node_saturation gauge\n");
        for (resource, v) in [
            ("jobs", self.overload.job_saturation),
            ("sessions", self.overload.session_saturation),
            ("credits", self.overload.credit_saturation),
            ("memory", self.overload.memory_saturation),
        ] {
            out.push_str(&format!(
                "etlv_node_saturation{{resource=\"{resource}\"}} {}\n",
                num(v)
            ));
        }
        out.push_str("# TYPE etlv_node_recent_rejections gauge\n");
        out.push_str(&format!(
            "etlv_node_recent_rejections {}\n",
            self.overload.recent_rejections
        ));
        out.push_str("# TYPE etlv_node_overloaded gauge\n");
        out.push_str(&format!(
            "etlv_node_overloaded {}\n",
            u8::from(self.overload.overloaded)
        ));
        out
    }
}

/// Cumulative counter values sampled from one tenant block — the raw
/// material the burn rates are derived from. All monotone.
#[derive(Debug, Clone, Copy, Default)]
struct CumCounts {
    completed: u64,
    failed: u64,
    aborted: u64,
    rejections: u64,
    slow: u64,
    errors: u64,
    rows: u64,
}

struct TenantRing {
    name: String,
    points: VecDeque<(Instant, CumCounts)>,
}

struct EngineInner {
    policy: SloPolicy,
    /// Points closer together than this update the ring tail in place
    /// instead of growing it, bounding ring size in tight health loops.
    min_gap: Duration,
    rings: Mutex<Vec<TenantRing>>,
    /// Node-global admission-rejection samples (for overload).
    node_rejections: Mutex<VecDeque<(Instant, u64)>>,
}

/// The burn-rate engine. Cloneable handle; all state is shared.
#[derive(Clone)]
pub struct SloEngine {
    inner: Arc<EngineInner>,
}

/// Locate the cumulative value at `now - window`: the newest point no
/// younger than the window start, else the implicit zero origin (every
/// counter was zero when the tenant first appeared).
fn at_window_start(
    points: &VecDeque<(Instant, CumCounts)>,
    now: Instant,
    window: Duration,
) -> CumCounts {
    let start = now.checked_sub(window);
    let mut origin = CumCounts::default();
    if let Some(start) = start {
        for (at, counts) in points {
            if *at <= start {
                origin = *counts;
            } else {
                break;
            }
        }
    }
    origin
}

/// `bad/total` as a fraction, 0 when the window saw no events.
fn frac(bad: u64, total: u64) -> f64 {
    if total == 0 {
        0.0
    } else {
        bad as f64 / total as f64
    }
}

fn burn(bad_frac: f64, objective: f64) -> f64 {
    let budget = (1.0 - objective).max(1.0 / MAX_BURN);
    (bad_frac / budget).min(MAX_BURN)
}

impl SloEngine {
    /// New engine evaluating `policy`.
    pub fn new(policy: SloPolicy) -> SloEngine {
        let min_gap = (policy.fast_window / 32).max(Duration::from_millis(1));
        SloEngine {
            inner: Arc::new(EngineInner {
                policy,
                min_gap,
                rings: Mutex::new(Vec::new()),
                node_rejections: Mutex::new(VecDeque::new()),
            }),
        }
    }

    /// The policy this engine evaluates.
    pub fn policy(&self) -> &SloPolicy {
        &self.inner.policy
    }

    /// Sample every interned tenant's counters into the rings. Called
    /// from the sampler's refresh hook each tick and from every health
    /// evaluation; cost is a handful of relaxed loads per tenant.
    pub fn observe(&self, obs: &Obs) {
        let now = Instant::now();
        let keep = self
            .inner
            .policy
            .slow_window
            .saturating_mul(2)
            .max(Duration::from_secs(1));
        let mut rings = self.inner.rings.lock();
        for t in obs.registry.tenant_handles() {
            let counts = CumCounts {
                completed: t.jobs_completed.value(),
                failed: t.jobs_failed.value(),
                aborted: t.jobs_aborted.value(),
                rejections: t.admission_rejections.value(),
                slow: t.slow_jobs.value(),
                errors: t.errors_et.value() + t.errors_uv.value(),
                rows: t.rows_applied.value() + t.errors_et.value() + t.errors_uv.value(),
            };
            let ring = match rings.iter_mut().find(|r| r.name == t.name) {
                Some(ring) => ring,
                None => {
                    rings.push(TenantRing {
                        name: t.name.clone(),
                        points: VecDeque::new(),
                    });
                    rings.last_mut().expect("just pushed")
                }
            };
            match ring.points.back_mut() {
                Some((at, tail)) if now.duration_since(*at) < self.inner.min_gap => {
                    *tail = counts;
                }
                _ => ring.points.push_back((now, counts)),
            }
            while ring.points.len() > MAX_POINTS
                || ring
                    .points
                    .front()
                    .is_some_and(|(at, _)| now.duration_since(*at) > keep)
            {
                ring.points.pop_front();
            }
        }
        let mut node = self.inner.node_rejections.lock();
        let rejections = obs.gateway.admission_rejections.value();
        match node.back_mut() {
            Some((at, tail)) if now.duration_since(*at) < self.inner.min_gap => *tail = rejections,
            _ => node.push_back((now, rejections)),
        }
        while node.len() > MAX_POINTS
            || node
                .front()
                .is_some_and(|(at, _)| now.duration_since(*at) > keep)
        {
            node.pop_front();
        }
    }

    fn tenant_health(&self, ring: &TenantRing, now: Instant) -> TenantHealth {
        let policy = &self.inner.policy;
        let latest = ring.points.back().map(|(_, c)| *c).unwrap_or_default();
        let fast = at_window_start(&ring.points, now, policy.fast_window);
        let slow = at_window_start(&ring.points, now, policy.slow_window);

        // (objective name, target, bad(c), total(c))
        type Extract = fn(&CumCounts) -> (u64, u64);
        let latency: Extract = |c| (c.slow, c.completed + c.failed);
        let error_rate: Extract = |c| (c.errors, c.rows);
        let availability: Extract = |c| {
            (
                c.rejections + c.failed + c.aborted,
                c.completed + c.failed + c.aborted + c.rejections,
            )
        };
        let objectives: [(&'static str, f64, Extract); 3] = [
            ("latency", policy.latency_objective, latency),
            ("error_rate", policy.error_rate_objective, error_rate),
            ("availability", policy.availability_objective, availability),
        ];

        let mut statuses = Vec::with_capacity(3);
        let mut alerts = Vec::new();
        for (name, objective, extract) in objectives {
            let (bad_now, total_now) = extract(&latest);
            let (bad_f0, total_f0) = extract(&fast);
            let (bad_s0, total_s0) = extract(&slow);
            let bad_fast = bad_now.saturating_sub(bad_f0);
            let total_fast = total_now.saturating_sub(total_f0);
            let bad_slow = bad_now.saturating_sub(bad_s0);
            let total_slow = total_now.saturating_sub(total_s0);
            let burn_fast = burn(frac(bad_fast, total_fast), objective);
            let burn_slow = burn(frac(bad_slow, total_slow), objective);
            let alerting = burn_fast >= policy.fast_burn && burn_slow >= policy.slow_burn;
            if alerting {
                alerts.push(name);
            }
            statuses.push(SloStatus {
                objective: name,
                burn_fast,
                burn_slow,
                bad_fast,
                total_fast,
                bad_slow,
                total_slow,
                alerting,
            });
        }
        TenantHealth {
            tenant: ring.name.clone(),
            objectives: statuses,
            alerts,
        }
    }

    /// Evaluate every tenant's burn rates plus node overload from the
    /// samples collected so far.
    pub fn evaluate(&self, input: &OverloadInput) -> HealthReport {
        let now = Instant::now();
        let policy = &self.inner.policy;
        let rings = self.inner.rings.lock();
        let mut tenants: Vec<TenantHealth> = rings
            .iter()
            .map(|ring| self.tenant_health(ring, now))
            .collect();
        drop(rings);
        tenants.sort_by(|a, b| a.tenant.cmp(&b.tenant));

        let node = self.inner.node_rejections.lock();
        let latest_rejections = node.back().map(|(_, v)| *v).unwrap_or(0);
        let origin = {
            let start = now.checked_sub(policy.fast_window);
            let mut origin = 0;
            if let Some(start) = start {
                for (at, v) in node.iter() {
                    if *at <= start {
                        origin = *v;
                    } else {
                        break;
                    }
                }
            }
            origin
        };
        drop(node);
        let recent_rejections = latest_rejections.saturating_sub(origin);

        let ratio = |used: u64, cap: u64| {
            if cap == 0 {
                0.0
            } else {
                used as f64 / cap as f64
            }
        };
        let job_saturation = ratio(input.active_jobs, input.max_jobs);
        let session_saturation = ratio(input.active_sessions, input.max_sessions);
        let credit_saturation = ratio(input.credit_in_flight, input.credit_capacity);
        let memory_saturation = ratio(input.memory_in_flight, input.memory_cap);
        let overloaded = recent_rejections > 0
            || [
                job_saturation,
                session_saturation,
                credit_saturation,
                memory_saturation,
            ]
            .iter()
            .any(|s| *s >= policy.overload_ratio);

        HealthReport {
            enabled: super::enabled(),
            overload: OverloadState {
                job_saturation,
                session_saturation,
                credit_saturation,
                memory_saturation,
                recent_rejections,
                overloaded,
            },
            tenants,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy_ms(fast_ms: u64, slow_ms: u64) -> SloPolicy {
        SloPolicy {
            latency_target: Duration::from_millis(50),
            fast_window: Duration::from_millis(fast_ms),
            slow_window: Duration::from_millis(slow_ms),
            ..SloPolicy::default()
        }
    }

    #[test]
    fn burn_math_scales_with_budget() {
        // 10% bad against a 0.1% budget burns at 100x.
        assert!((burn(0.10, 0.999) - 100.0).abs() < 1e-9);
        // Exactly on budget burns at 1.0.
        assert!((burn(0.001, 0.999) - 1.0).abs() < 1e-9);
        // Zero budget clamps instead of inf.
        assert!(burn(0.5, 1.0) <= MAX_BURN);
    }

    #[test]
    fn window_origin_prefers_newest_point_before_start() {
        let mut points = VecDeque::new();
        let now = Instant::now();
        let at = |ms: u64| now.checked_sub(Duration::from_millis(ms)).unwrap();
        let c = |completed: u64| CumCounts {
            completed,
            ..CumCounts::default()
        };
        points.push_back((at(300), c(1)));
        points.push_back((at(200), c(5)));
        points.push_back((at(50), c(9)));
        let origin = at_window_start(&points, now, Duration::from_millis(100));
        assert_eq!(origin.completed, 5, "newest point at or before now-100ms");
        let origin = at_window_start(&points, now, Duration::from_millis(400));
        assert_eq!(origin.completed, 0, "window predates all points");
    }

    #[cfg(feature = "obs")]
    #[test]
    fn heavy_error_tenant_alerts_light_tenant_stays_green() {
        let obs = Obs::default();
        let engine = SloEngine::new(policy_ms(40, 120));
        let heavy = obs.tenant("heavy");
        let light = obs.tenant("light");
        // Seed the zero origin, then burn error budget on one tenant
        // across both windows.
        engine.observe(&obs);
        for _ in 0..6 {
            heavy.jobs_completed.add(5);
            heavy.rows_applied.add(900);
            heavy.errors_et.add(80);
            heavy.errors_uv.add(20);
            light.jobs_completed.add(5);
            light.rows_applied.add(1000);
            std::thread::sleep(Duration::from_millis(25));
            engine.observe(&obs);
        }
        let report = engine.evaluate(&OverloadInput::default());
        assert!(report.enabled);
        let tenant = |name: &str| {
            report
                .tenants
                .iter()
                .find(|t| t.tenant == name)
                .unwrap_or_else(|| panic!("missing tenant {name}"))
                .clone()
        };
        let heavy_health = tenant("heavy");
        assert!(
            heavy_health.alerts.contains(&"error_rate"),
            "10% errors against 0.1% budget must alert: {heavy_health:?}"
        );
        let light_health = tenant("light");
        assert!(
            light_health.alerts.is_empty(),
            "clean tenant must stay green: {light_health:?}"
        );
        for s in &light_health.objectives {
            assert_eq!(s.burn_fast, 0.0, "{s:?}");
        }
    }

    #[cfg(feature = "obs")]
    #[test]
    fn latency_objective_burns_on_slow_jobs() {
        let obs = Obs::default();
        let engine = SloEngine::new(policy_ms(40, 120));
        let t = obs.tenant("lag");
        engine.observe(&obs);
        for _ in 0..4 {
            t.jobs_completed.add(10);
            t.slow_jobs.add(5); // 50% slow vs 1% budget → burn 50
            std::thread::sleep(Duration::from_millis(30));
            engine.observe(&obs);
        }
        let report = engine.evaluate(&OverloadInput::default());
        let health = &report.tenants[0];
        let latency = &health.objectives[0];
        assert_eq!(latency.objective, "latency");
        assert!(latency.alerting, "{latency:?}");
        assert!(health.alerts.contains(&"latency"));
    }

    #[cfg(feature = "obs")]
    #[test]
    fn alert_clears_after_bad_window_passes() {
        let obs = Obs::default();
        let engine = SloEngine::new(policy_ms(30, 60));
        let t = obs.tenant("recovering");
        engine.observe(&obs);
        t.jobs_completed.add(10);
        t.slow_jobs.add(10);
        std::thread::sleep(Duration::from_millis(35));
        engine.observe(&obs);
        let mid = engine.evaluate(&OverloadInput::default());
        assert!(
            mid.tenants[0].alerts.contains(&"latency"),
            "alert while the bad minutes are inside both windows: {mid:?}"
        );
        // Only clean traffic from here; once both windows roll past the
        // bad burst the alert must clear.
        for _ in 0..5 {
            t.jobs_completed.add(50);
            std::thread::sleep(Duration::from_millis(20));
            engine.observe(&obs);
        }
        let after = engine.evaluate(&OverloadInput::default());
        assert!(
            after.tenants[0].alerts.is_empty(),
            "alert must clear after recovery: {after:?}"
        );
    }

    #[test]
    fn overload_tracks_saturation_and_rejections() {
        let obs = Obs::default();
        let engine = SloEngine::new(policy_ms(50, 100));
        engine.observe(&obs);
        let calm = engine.evaluate(&OverloadInput {
            active_jobs: 2,
            max_jobs: 8,
            active_sessions: 3,
            max_sessions: 100,
            credit_in_flight: 1,
            credit_capacity: 64,
            memory_in_flight: 0,
            memory_cap: 0,
        });
        assert!(!calm.overload.overloaded, "{:?}", calm.overload);
        assert!((calm.overload.job_saturation - 0.25).abs() < 1e-9);
        assert_eq!(calm.overload.memory_saturation, 0.0, "uncapped memory");
        let hot = engine.evaluate(&OverloadInput {
            active_jobs: 8,
            max_jobs: 8,
            ..OverloadInput::default()
        });
        assert!(hot.overload.overloaded, "job saturation 1.0");
    }

    #[cfg(feature = "obs")]
    #[test]
    fn node_rejections_mark_overload_within_fast_window() {
        let obs = Obs::default();
        let engine = SloEngine::new(policy_ms(60, 120));
        engine.observe(&obs);
        obs.gateway.admission_rejections.add(3);
        std::thread::sleep(Duration::from_millis(5));
        engine.observe(&obs);
        let report = engine.evaluate(&OverloadInput::default());
        assert_eq!(report.overload.recent_rejections, 3);
        assert!(report.overload.overloaded);
    }

    #[test]
    fn health_report_renders_valid_json_and_prometheus() {
        let report = HealthReport {
            enabled: true,
            overload: OverloadState {
                job_saturation: 0.5,
                recent_rejections: 2,
                overloaded: true,
                ..OverloadState::default()
            },
            tenants: vec![TenantHealth {
                tenant: "we\"ird\\name".into(),
                objectives: vec![SloStatus {
                    objective: "latency",
                    burn_fast: 14.5,
                    burn_slow: 7.0,
                    bad_fast: 3,
                    total_fast: 10,
                    bad_slow: 3,
                    total_slow: 40,
                    alerting: true,
                }],
                alerts: vec!["latency"],
            }],
        };
        let json = report.to_json();
        assert!(json.contains("\"obs_enabled\": true"), "{json}");
        assert!(json.contains("\"tenant\": \"we\\\"ird\\\\name\""), "{json}");
        assert!(json.contains("\"alerts\": [\"latency\"]"), "{json}");
        let prom = report.to_prometheus();
        assert!(
            prom.contains("etlv_slo_alert{tenant=\"we\\\"ird\\\\name\",objective=\"latency\"} 1"),
            "{prom}"
        );
        assert!(prom.contains("etlv_node_overloaded 1"), "{prom}");
        // One TYPE line per family.
        for family in [
            "etlv_slo_burn",
            "etlv_slo_alert",
            "etlv_node_saturation",
            "etlv_node_recent_rejections",
            "etlv_node_overloaded",
        ] {
            let types = prom
                .lines()
                .filter(|l| *l == format!("# TYPE {family} gauge"))
                .count();
            assert_eq!(types, 1, "{family}");
        }
    }
}
