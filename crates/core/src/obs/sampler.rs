//! Background time-series sampler: snapshots selected counters and gauges
//! on a fixed tick into bounded per-metric rings, turning the registry's
//! monotonic totals into Fig. 8/9-style rate-over-time series. Compiled
//! only with the `obs` feature; the noop build substitutes a zero-size
//! stub that never spawns a thread.
//!
//! Design constraints:
//!
//! - The sampled subsystems never see the sampler: it reads the same
//!   [`MetricsRegistry`] snapshots the Stats endpoint does, so the hot
//!   path cost is zero regardless of tick rate.
//! - Rings are bounded (`capacity` points per metric); old points fall
//!   off the front, so a long-running node holds a sliding window rather
//!   than growing without bound.
//! - Rates are derived at render time from consecutive counter deltas
//!   (`rate_per_s`); gauges render their raw value with a zero rate.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use super::Obs;

/// Whether a sampled metric is a monotonic counter (rates are meaningful)
/// or a gauge (instantaneous level).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SampleKind {
    Counter,
    Gauge,
}

/// One observation: the sampler-relative timestamp and the raw value.
#[derive(Debug, Clone, Copy)]
struct Point {
    t_micros: u64,
    value: u64,
}

struct Series {
    metric: String,
    /// `None` for node-global series; `Some(name)` for a per-tenant ring
    /// discovered dynamically from registry snapshots.
    tenant: Option<String>,
    kind: SampleKind,
    points: VecDeque<Point>,
}

struct SamplerInner {
    epoch: Instant,
    tick: Duration,
    capacity: usize,
    /// Tenant-block metric names (e.g. `chunks`, `rows_applied`) to track
    /// per tenant; tenants themselves are discovered at snapshot time.
    tenant_metrics: Vec<String>,
    series: Mutex<Vec<Series>>,
    stop: AtomicBool,
    thread: Mutex<Option<JoinHandle<()>>>,
}

/// Handle to the background sampling thread. Cloning shares the rings;
/// [`Sampler::stop`] joins the thread (also done on the owning node's
/// drop).
#[derive(Clone)]
pub struct Sampler {
    inner: Arc<SamplerInner>,
}

impl Sampler {
    /// Start sampling `metrics` (registry counter/gauge names) every
    /// `tick`, retaining up to `capacity` points per metric. `refresh` is
    /// invoked before each snapshot so gauge-backed values (credit
    /// occupancy, memory, fault totals) are current. `tenant_metrics`
    /// names tenant-block metrics sampled per tenant; tenant series are
    /// created lazily as tenants appear in snapshots.
    pub fn start(
        obs: Arc<Obs>,
        refresh: Box<dyn Fn() + Send + Sync>,
        tick: Duration,
        capacity: usize,
        metrics: Vec<String>,
        tenant_metrics: Vec<String>,
    ) -> Sampler {
        let inner = Arc::new(SamplerInner {
            epoch: Instant::now(),
            tick,
            capacity: capacity.max(2),
            tenant_metrics,
            series: Mutex::new(
                metrics
                    .into_iter()
                    .map(|metric| Series {
                        metric,
                        tenant: None,
                        // Kind is resolved on first observation; counters
                        // dominate the default set, so start there.
                        kind: SampleKind::Counter,
                        points: VecDeque::new(),
                    })
                    .collect(),
            ),
            stop: AtomicBool::new(false),
            thread: Mutex::new(None),
        });
        let sampler = Sampler {
            inner: Arc::clone(&inner),
        };
        let handle = std::thread::Builder::new()
            .name("etlv-sampler".into())
            .spawn(move || {
                while !inner.stop.load(Ordering::Relaxed) {
                    refresh();
                    let snap = obs.registry.snapshot();
                    let now = inner.epoch.elapsed().as_micros() as u64;
                    let mut series = inner.series.lock();
                    for s in series.iter_mut() {
                        let (value, kind) = if let Some((_, v)) =
                            snap.counters.iter().find(|(n, _)| *n == s.metric)
                        {
                            (Some(*v), SampleKind::Counter)
                        } else if let Some((_, v)) =
                            snap.gauges.iter().find(|(n, _)| *n == s.metric)
                        {
                            (Some(*v), SampleKind::Gauge)
                        } else {
                            (None, s.kind)
                        };
                        if let Some(value) = value {
                            s.kind = kind;
                            if s.points.len() == inner.capacity {
                                s.points.pop_front();
                            }
                            s.points.push_back(Point {
                                t_micros: now,
                                value,
                            });
                        }
                    }
                    // Tenant series: discovered from the snapshot so a
                    // tenant interned after start() still gets rings.
                    for t in &snap.tenants {
                        for metric in &inner.tenant_metrics {
                            let (value, kind) = if let Some((_, v)) =
                                t.counters.iter().find(|(n, _)| n == metric)
                            {
                                (*v, SampleKind::Counter)
                            } else if let Some((_, v)) = t.gauges.iter().find(|(n, _)| n == metric)
                            {
                                (*v, SampleKind::Gauge)
                            } else {
                                continue;
                            };
                            let s = match series.iter_mut().find(|s| {
                                s.metric == *metric && s.tenant.as_deref() == Some(&t.tenant)
                            }) {
                                Some(s) => s,
                                None => {
                                    series.push(Series {
                                        metric: metric.clone(),
                                        tenant: Some(t.tenant.clone()),
                                        kind,
                                        points: VecDeque::new(),
                                    });
                                    series.last_mut().expect("just pushed")
                                }
                            };
                            s.kind = kind;
                            if s.points.len() == inner.capacity {
                                s.points.pop_front();
                            }
                            s.points.push_back(Point {
                                t_micros: now,
                                value,
                            });
                        }
                    }
                    drop(series);
                    // Sleep in short slices so stop() never blocks a full
                    // tick.
                    let mut left = inner.tick;
                    while !left.is_zero() && !inner.stop.load(Ordering::Relaxed) {
                        let slice = left.min(Duration::from_millis(20));
                        std::thread::sleep(slice);
                        left = left.saturating_sub(slice);
                    }
                }
            })
            .expect("spawn sampler thread");
        *sampler.inner.thread.lock() = Some(handle);
        sampler
    }

    /// Stop the sampling thread and join it. Idempotent; the rings stay
    /// readable afterwards.
    pub fn stop(&self) {
        self.inner.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.inner.thread.lock().take() {
            let _ = handle.join();
        }
    }

    /// Render every ring as a JSON document. Counters get a derived
    /// `rate_per_s` from consecutive deltas (first point rates 0); gauges
    /// report their raw level.
    pub fn series_json(&self) -> String {
        let series = self.inner.series.lock();
        let mut out = String::with_capacity(1024);
        out.push_str(&format!(
            "{{\"enabled\": true, \"tick_micros\": {}, \"series\": [",
            self.inner.tick.as_micros()
        ));
        for (i, s) in series.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            let tenant = match &s.tenant {
                Some(t) => format!("\"tenant\": \"{}\", ", super::render::json_escape(t)),
                None => String::new(),
            };
            out.push_str(&format!(
                "  {{\"metric\": \"{}\", {tenant}\"kind\": \"{}\", \"points\": [",
                s.metric,
                match s.kind {
                    SampleKind::Counter => "counter",
                    SampleKind::Gauge => "gauge",
                }
            ));
            let mut prev: Option<Point> = None;
            for (j, p) in s.points.iter().enumerate() {
                let rate = match (s.kind, prev) {
                    (SampleKind::Counter, Some(q)) if p.t_micros > q.t_micros => {
                        (p.value.saturating_sub(q.value)) as f64
                            / ((p.t_micros - q.t_micros) as f64 / 1e6)
                    }
                    _ => 0.0,
                };
                out.push_str(if j == 0 { "" } else { ", " });
                out.push_str(&format!(
                    "{{\"t_micros\": {}, \"value\": {}, \"rate_per_s\": {rate:.3}}}",
                    p.t_micros, p.value
                ));
                prev = Some(*p);
            }
            out.push_str("]}");
        }
        out.push_str("\n]}\n");
        out
    }

    /// Number of points currently held for the node-global `metric`
    /// (0 if unknown).
    pub fn points_for(&self, metric: &str) -> usize {
        self.inner
            .series
            .lock()
            .iter()
            .find(|s| s.metric == metric && s.tenant.is_none())
            .map_or(0, |s| s.points.len())
    }

    /// Number of points currently held for `metric` under `tenant`
    /// (0 if that series does not exist).
    pub fn tenant_points_for(&self, metric: &str, tenant: &str) -> usize {
        self.inner
            .series
            .lock()
            .iter()
            .find(|s| s.metric == metric && s.tenant.as_deref() == Some(tenant))
            .map_or(0, |s| s.points.len())
    }
}

impl Drop for SamplerInner {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.thread.lock().take() {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn samples_counters_into_bounded_rings() {
        let obs = Arc::new(Obs::new(64, None));
        let sampler = Sampler::start(
            Arc::clone(&obs),
            Box::new(|| {}),
            Duration::from_millis(5),
            4,
            vec![
                "pipeline.convert_rows".to_string(),
                "credit.in_flight".to_string(),
                "no.such.metric".to_string(),
            ],
            Vec::new(),
        );
        for i in 0..10 {
            obs.pipeline.convert_rows.add(100 + i);
            obs.credit.in_flight.set(3);
            std::thread::sleep(Duration::from_millis(5));
        }
        sampler.stop();
        assert!(sampler.points_for("pipeline.convert_rows") >= 2);
        assert!(
            sampler.points_for("pipeline.convert_rows") <= 4,
            "ring bounded"
        );
        assert_eq!(sampler.points_for("no.such.metric"), 0);

        let json = sampler.series_json();
        assert!(json.contains("\"enabled\": true"), "{json}");
        assert!(
            json.contains("\"metric\": \"pipeline.convert_rows\", \"kind\": \"counter\""),
            "{json}"
        );
        assert!(
            json.contains("\"metric\": \"credit.in_flight\", \"kind\": \"gauge\""),
            "{json}"
        );
        assert!(json.contains("\"rate_per_s\""), "{json}");
    }

    #[test]
    fn ring_wraps_and_points_for_saturates_at_capacity() {
        let obs = Arc::new(Obs::new(64, None));
        let sampler = Sampler::start(
            Arc::clone(&obs),
            Box::new(|| {}),
            Duration::from_millis(2),
            3,
            vec!["pipeline.convert_rows".to_string()],
            Vec::new(),
        );
        // Run for many more ticks than the ring holds so it wraps several
        // times over.
        for i in 0..30 {
            obs.pipeline.convert_rows.add(i);
            std::thread::sleep(Duration::from_millis(2));
        }
        sampler.stop();
        assert_eq!(
            sampler.points_for("pipeline.convert_rows"),
            3,
            "after overflow the ring reports exactly its capacity"
        );
        // The retained window is the *newest* points: the oldest surviving
        // value must already reflect growth past the first few samples.
        let json = sampler.series_json();
        assert!(
            !json.contains("\"value\": 0,"),
            "oldest points fell off: {json}"
        );
    }

    #[test]
    fn tenant_series_are_discovered_and_bounded() {
        let obs = Arc::new(Obs::new(64, None));
        let sampler = Sampler::start(
            Arc::clone(&obs),
            Box::new(|| {}),
            Duration::from_millis(2),
            4,
            Vec::new(),
            vec!["rows_applied".to_string(), "active_jobs".to_string()],
        );
        // Tenant interned *after* the sampler starts: discovered from the
        // snapshot on the next tick.
        let t = obs.registry.tenant("alice");
        for i in 0..20 {
            t.rows_applied.add(10 + i);
            t.active_jobs.set(2);
            std::thread::sleep(Duration::from_millis(2));
        }
        sampler.stop();
        let n = sampler.tenant_points_for("rows_applied", "alice");
        assert!((2..=4).contains(&n), "bounded tenant ring, got {n}");
        assert_eq!(sampler.tenant_points_for("rows_applied", "bob"), 0);
        assert_eq!(sampler.points_for("rows_applied"), 0, "tenant-only series");

        let json = sampler.series_json();
        assert!(
            json.contains(
                "\"metric\": \"rows_applied\", \"tenant\": \"alice\", \"kind\": \"counter\""
            ),
            "{json}"
        );
        assert!(
            json.contains(
                "\"metric\": \"active_jobs\", \"tenant\": \"alice\", \"kind\": \"gauge\""
            ),
            "{json}"
        );
    }

    #[test]
    fn profile_series_sample_pool_and_lock_wait_with_wraparound() {
        let obs = Arc::new(Obs::new(64, None));
        let sampler = Sampler::start(
            Arc::clone(&obs),
            Box::new(|| {}),
            Duration::from_millis(2),
            3,
            vec!["pool.busy_workers".to_string(), "lock.wait_us".to_string()],
            Vec::new(),
        );
        // Drive both sources long enough for the 3-point rings to wrap:
        // the busy-worker gauge through the pool block, the aggregate
        // wait-time counter through a lock site's contended acquires.
        let site = obs.registry.lock_site("test.site");
        for i in 0..25 {
            obs.pool.busy_workers.set(1 + (i % 3));
            site.acquired_after(Duration::from_micros(150));
            std::thread::sleep(Duration::from_millis(2));
        }
        sampler.stop();
        assert_eq!(
            sampler.points_for("pool.busy_workers"),
            3,
            "gauge ring wrapped to exactly its capacity"
        );
        assert_eq!(
            sampler.points_for("lock.wait_us"),
            3,
            "counter ring wrapped to exactly its capacity"
        );
        let json = sampler.series_json();
        assert!(
            json.contains("\"metric\": \"pool.busy_workers\", \"kind\": \"gauge\""),
            "{json}"
        );
        assert!(
            json.contains("\"metric\": \"lock.wait_us\", \"kind\": \"counter\""),
            "{json}"
        );
    }

    #[test]
    fn stop_is_idempotent_and_fast() {
        let obs = Arc::new(Obs::new(16, None));
        let sampler = Sampler::start(
            obs,
            Box::new(|| {}),
            Duration::from_secs(3600),
            8,
            vec!["gateway.chunks_received".to_string()],
            Vec::new(),
        );
        let t0 = Instant::now();
        sampler.stop();
        sampler.stop();
        assert!(t0.elapsed() < Duration::from_secs(2), "stop joins promptly");
        // One sample was taken on entry before the long sleep.
        assert!(sampler.points_for("gateway.chunks_received") >= 1);
    }
}
