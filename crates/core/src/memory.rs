//! In-flight memory accounting.
//!
//! Every byte of client data that has been acked but not yet written out
//! is tracked against an optional cap. The paper reports that with one
//! million credits "Hyper-Q ran out of memory and crashed"; here the same
//! condition is detected deterministically and surfaced as
//! [`OutOfMemory`], failing the job instead of the process.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// The node's in-flight memory cap was exceeded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OutOfMemory {
    /// Bytes that were already in flight.
    pub in_flight: u64,
    /// Bytes the failed reservation asked for.
    pub requested: u64,
    /// The configured cap.
    pub cap: u64,
}

impl fmt::Display for OutOfMemory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "out of memory: {} bytes in flight + {} requested exceeds cap {}",
            self.in_flight, self.requested, self.cap
        )
    }
}

impl std::error::Error for OutOfMemory {}

#[derive(Debug)]
struct Gauge {
    in_flight: AtomicU64,
    peak: AtomicU64,
    cap: u64,
}

/// Tracks in-flight bytes against a cap (0 = unlimited).
#[derive(Clone)]
pub struct MemoryGauge {
    gauge: Arc<Gauge>,
}

/// An accounted reservation; releases on drop.
#[derive(Debug)]
pub struct MemGuard {
    gauge: Arc<Gauge>,
    bytes: u64,
}

impl MemoryGauge {
    /// New gauge with `cap` bytes (0 disables the cap).
    pub fn new(cap: usize) -> MemoryGauge {
        MemoryGauge {
            gauge: Arc::new(Gauge {
                in_flight: AtomicU64::new(0),
                peak: AtomicU64::new(0),
                cap: cap as u64,
            }),
        }
    }

    /// Reserve `bytes`; fails if the cap would be exceeded.
    pub fn reserve(&self, bytes: usize) -> Result<MemGuard, OutOfMemory> {
        let bytes = bytes as u64;
        let mut cur = self.gauge.in_flight.load(Ordering::Relaxed);
        loop {
            let next = cur + bytes;
            if self.gauge.cap != 0 && next > self.gauge.cap {
                return Err(OutOfMemory {
                    in_flight: cur,
                    requested: bytes,
                    cap: self.gauge.cap,
                });
            }
            match self.gauge.in_flight.compare_exchange_weak(
                cur,
                next,
                Ordering::AcqRel,
                Ordering::Relaxed,
            ) {
                Ok(_) => {
                    self.gauge.peak.fetch_max(next, Ordering::Relaxed);
                    return Ok(MemGuard {
                        gauge: Arc::clone(&self.gauge),
                        bytes,
                    });
                }
                Err(actual) => cur = actual,
            }
        }
    }

    /// Bytes currently in flight.
    pub fn in_flight(&self) -> u64 {
        self.gauge.in_flight.load(Ordering::Relaxed)
    }

    /// Highest in-flight watermark observed.
    pub fn peak(&self) -> u64 {
        self.gauge.peak.load(Ordering::Relaxed)
    }

    /// The configured cap (0 = unlimited).
    pub fn cap(&self) -> u64 {
        self.gauge.cap
    }
}

impl MemGuard {
    /// Shrink the reservation (e.g. after conversion produced smaller
    /// output than the raw input).
    pub fn shrink_to(&mut self, new_bytes: usize) {
        let new_bytes = new_bytes as u64;
        if new_bytes < self.bytes {
            self.gauge
                .in_flight
                .fetch_sub(self.bytes - new_bytes, Ordering::AcqRel);
            self.bytes = new_bytes;
        }
    }

    /// Reserved size.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }
}

impl Drop for MemGuard {
    fn drop(&mut self) {
        self.gauge.in_flight.fetch_sub(self.bytes, Ordering::AcqRel);
    }
}

impl std::fmt::Debug for MemoryGauge {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MemoryGauge")
            .field("in_flight", &self.in_flight())
            .field("peak", &self.peak())
            .field("cap", &self.cap())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reserve_and_release() {
        let g = MemoryGauge::new(100);
        let a = g.reserve(60).unwrap();
        assert_eq!(g.in_flight(), 60);
        let b = g.reserve(40).unwrap();
        assert_eq!(g.in_flight(), 100);
        assert!(g.reserve(1).is_err());
        drop(a);
        assert_eq!(g.in_flight(), 40);
        let _c = g.reserve(59).unwrap();
        drop(b);
        assert_eq!(g.peak(), 100);
    }

    #[test]
    fn unlimited_when_cap_zero() {
        let g = MemoryGauge::new(0);
        let _a = g.reserve(usize::MAX / 4).unwrap();
        assert!(g.reserve(1024).is_ok());
    }

    #[test]
    fn oom_error_details() {
        let g = MemoryGauge::new(10);
        let _a = g.reserve(8).unwrap();
        let err = g.reserve(5).unwrap_err();
        assert_eq!(err.in_flight, 8);
        assert_eq!(err.requested, 5);
        assert_eq!(err.cap, 10);
    }

    #[test]
    fn shrink_reduces_in_flight() {
        let g = MemoryGauge::new(100);
        let mut a = g.reserve(80).unwrap();
        a.shrink_to(30);
        assert_eq!(g.in_flight(), 30);
        assert_eq!(a.bytes(), 30);
        // Growing via shrink_to is a no-op.
        a.shrink_to(50);
        assert_eq!(g.in_flight(), 30);
        drop(a);
        assert_eq!(g.in_flight(), 0);
    }

    #[test]
    fn concurrent_reservations_respect_cap() {
        let g = MemoryGauge::new(1000);
        let mut handles = Vec::new();
        for _ in 0..8 {
            let g = g.clone();
            handles.push(std::thread::spawn(move || {
                let mut ok = 0u32;
                for _ in 0..1000 {
                    if let Ok(guard) = g.reserve(10) {
                        std::hint::spin_loop();
                        drop(guard);
                        ok += 1;
                    }
                }
                ok
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(g.in_flight(), 0);
        assert!(g.peak() <= 1000);
    }
}
