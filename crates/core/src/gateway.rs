//! The virtualizer node: job orchestration (the paper's
//! Alpha/Coalescer/PXC/Beta roles, §3).
//!
//! From the outside this is a legacy EDW server — same frames, same
//! message flow, same error tables. Inside, every request is
//! cross-compiled and executed on the CDW through the acquisition
//! pipeline, COPY bulk loading, and the adaptive application phase.
//!
//! The per-connection message loop lives in [`crate::session`]; the TCP
//! accept loop and server lifecycle ([`crate::server::ServerHandle`]) in
//! [`crate::server`]. This module owns the node state and the request
//! handlers they dispatch into.

use std::collections::{HashMap, VecDeque};
use std::io;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use etlv_cdw::{Cdw, CdwConfig, ExecOp};
use etlv_cloudstore::{
    BulkLoader, ChaosStore, LoaderConfig, MemStore, ObjectStore, ObservedStore, StoreOp,
};
use etlv_protocol::data::Value;
use etlv_protocol::errcode::ErrCode;
use etlv_protocol::layout::Layout;
use etlv_protocol::message::{
    BeginExportOk, BeginLoad, ExportChunk, Message, RecordFormat, SqlResult, WireError,
};
use etlv_protocol::record::encode_rows;
use etlv_protocol::trace::TraceContext;
use etlv_protocol::transport::Transport;
use etlv_sql::types::SqlType;
use etlv_sql::Dialect;
use parking_lot::{Condvar, Mutex};

use crate::adaptive::{AdaptiveParams, ErrorRows, RecordedError};
use crate::apply::apply;
use crate::config::{RuntimeMode, VirtualizerConfig};
use crate::convert::DataConverter;
use crate::credit::CreditManager;
use crate::cursor::TdfCursor;
use crate::emulate;
use crate::fault::{retry_cdw, FaultCounts, FaultInjector};
use crate::memory::MemoryGauge;
use crate::obs::{
    stats_json, stats_prometheus, CpuTimer, HealthReport, JobObs, Obs, OverloadInput,
    ProfileReport, Sampler, SloEngine, SpanIds, TenantObs,
};
use crate::pipeline::{ChunkSink, Pipeline, PipelineReport, RawChunk, WorkerRuntime};
use crate::report::{JobReport, NodeMetrics};
use crate::session::SessionRegistry;
use crate::trace::JobTrace;
use crate::xcompile;

pub(crate) struct ImportJobState {
    spec: BeginLoad,
    staging_table: String,
    prefix: String,
    /// CDW statements retried while creating the job's tables — folded
    /// into the report's `cdw_retries` at job end.
    setup_retries: u64,
    /// The job's root span identity: trace id from the client's
    /// `TraceContext` (or minted on entry), root span parenting every
    /// stage span the job emits.
    ids: SpanIds,
    /// Accumulated gateway-side ack turnaround (credit acquire + memory
    /// reserve + enqueue per chunk), µs — emitted as one aggregate
    /// `ack.wait` span at job end so the hot path stays journal-free.
    ack_wait_micros: AtomicU64,
    pipeline: Mutex<Option<Pipeline>>,
    sink: Mutex<Option<ChunkSink>>,
    rows_received: AtomicU64,
    oom: Mutex<Option<String>>,
    started: Instant,
    /// The owning session's tenant metric block — every job-scoped count
    /// and latency lands here as well as in the node-global registry.
    tenant: Arc<TenantObs>,
}

pub(crate) struct ExportJobState {
    cursor: TdfCursor,
    format: RecordFormat,
    layout: Layout,
}

pub(crate) enum Job {
    Import(Arc<ImportJobState>),
    Export(Arc<ExportJobState>),
}

pub(crate) struct Node {
    pub(crate) config: VirtualizerConfig,
    pub(crate) cdw: Cdw,
    pub(crate) store: Arc<dyn ObjectStore>,
    pub(crate) injector: Option<Arc<FaultInjector>>,
    pub(crate) credits: CreditManager,
    pub(crate) memory: MemoryGauge,
    pub(crate) obs: Arc<Obs>,
    pub(crate) jobs: Mutex<HashMap<u64, Job>>,
    pub(crate) next_token: AtomicU64,
    pub(crate) next_session: AtomicU32,
    pub(crate) metrics: Mutex<NodeMetrics>,
    /// Ring of the most recent completed load reports, newest last
    /// (capacity `config.report_history`).
    pub(crate) reports: Mutex<VecDeque<JobReport>>,
    /// Background time-series sampler (`config.sampler_tick > 0` only).
    pub(crate) sampler: Option<Sampler>,
    /// The node-wide worker runtime (`RuntimeMode::Shared`); `None` in
    /// per-job-spawn mode, where every `BeginLoad` starts its own.
    pub(crate) runtime: Option<WorkerRuntime>,
    /// Per-tenant SLO burn-rate engine behind the `Health` endpoint.
    pub(crate) slo: SloEngine,
    /// Active-session table (logon admission + per-session owned jobs).
    pub(crate) registry: SessionRegistry,
    /// Set by `ServerHandle::drain`: refuse new logons and new jobs,
    /// finish what's in flight.
    pub(crate) draining: AtomicBool,
    /// Notified (under the `jobs` mutex) on every job removal, so
    /// drain can block instead of sleep-polling `active_jobs()`.
    pub(crate) jobs_drained: Condvar,
}

impl Drop for Node {
    fn drop(&mut self) {
        if let Some(sampler) = &self.sampler {
            sampler.stop();
        }
    }
}

/// A virtualizer node.
///
/// Cheaply cloneable; one [`CreditManager`] and one [`MemoryGauge`] are
/// shared across all sessions and jobs of the node, exactly as §5
/// prescribes.
#[derive(Clone)]
pub struct Virtualizer {
    pub(crate) node: Arc<Node>,
}

impl Virtualizer {
    /// Create a node with its own in-memory object store and CDW.
    ///
    /// When [`VirtualizerConfig::fault_plan`] is set, the store is wrapped
    /// in a [`ChaosStore`] *before* the CDW is constructed over it, so
    /// injected store faults hit both the uploader's puts and COPY's gets.
    pub fn new(config: VirtualizerConfig) -> Virtualizer {
        let obs = build_obs(&config);
        let injector = config
            .fault_plan
            .clone()
            .map(|plan| Arc::new(FaultInjector::new(plan)));
        let mut store: Arc<dyn ObjectStore> = Arc::new(MemStore::new());
        if let Some(injector) = &injector {
            store = Arc::new(ChaosStore::new(store, injector.store_hook()));
        }
        // The observed decorator wraps *outside* the chaos layer and
        // *before* the CDW is constructed, so both the uploader's puts and
        // COPY's gets — injected faults included — land in the registry.
        store = Arc::new(ObservedStore::new(store, store_observer(&obs)));
        let cdw = Cdw::with_config(CdwConfig::default(), Some(Arc::clone(&store)));
        Virtualizer::assemble(config, cdw, store, injector, obs)
    }

    /// Create a node over an existing CDW and object store. The CDW must
    /// have been constructed with the same store attached (COPY reads
    /// staged files from it). With a fault plan configured, only the
    /// uploader-facing store handle is chaos-wrapped here — the CDW keeps
    /// reading through the handle the caller built it with.
    pub fn with_backends(
        config: VirtualizerConfig,
        cdw: Cdw,
        store: Arc<dyn ObjectStore>,
    ) -> Virtualizer {
        let obs = build_obs(&config);
        let injector = config
            .fault_plan
            .clone()
            .map(|plan| Arc::new(FaultInjector::new(plan)));
        let store = match &injector {
            Some(injector) => {
                Arc::new(ChaosStore::new(store, injector.store_hook())) as Arc<dyn ObjectStore>
            }
            None => store,
        };
        let store: Arc<dyn ObjectStore> = Arc::new(ObservedStore::new(store, store_observer(&obs)));
        Virtualizer::assemble(config, cdw, store, injector, obs)
    }

    fn assemble(
        config: VirtualizerConfig,
        cdw: Cdw,
        store: Arc<dyn ObjectStore>,
        injector: Option<Arc<FaultInjector>>,
        obs: Arc<Obs>,
    ) -> Virtualizer {
        config
            .validate()
            .unwrap_or_else(|e| panic!("invalid virtualizer config: {e}"));
        if let Some(injector) = &injector {
            cdw.set_transient_fault(Some(injector.cdw_hook()));
        }
        let cdw_obs = obs.cdw.clone();
        cdw.set_exec_observer(Some(Arc::new(move |op, elapsed, ok| {
            match op {
                ExecOp::Statement => cdw_obs.statements.inc(),
                ExecOp::CopyBatch => cdw_obs.batches.inc(),
            }
            if !ok {
                cdw_obs.errors.inc();
            }
            cdw_obs.exec_us.record_duration(elapsed);
        })));
        let plan_obs = obs.cdw.clone();
        cdw.set_plan_observer(Some(Arc::new(move |stats| {
            plan_obs.plan_index_seek.add(stats.index_seeks);
            plan_obs.plan_full_scan.add(stats.full_scans);
            plan_obs.index_maintain.add(stats.index_maintains);
        })));
        if crate::obs::enabled() {
            // Lock-contention attribution: every catalog/table acquisition
            // the engine reports lands in a named lock site
            // (`cdw.catalog`, `cdw.table/<name>`). Interning is bounded by
            // the registry's site limit, so hostile table churn cannot
            // grow the registry without bound. Hold time is not tracked
            // for CDW sites — the engine only reports the acquisition.
            let lock_reg = obs.registry.clone();
            cdw.set_lock_observer(Some(Arc::new(move |site, wait, contended| {
                let site = lock_reg.lock_site(site);
                if contended {
                    site.acquired_after(wait);
                } else {
                    site.acquired_uncontended();
                }
            })));
        }
        let credits = CreditManager::with_obs(config.credits, obs.credit.clone());
        let memory = MemoryGauge::new(config.memory_cap);
        let slo = SloEngine::new(config.slo.clone());
        let sampler = if crate::obs::enabled() && !config.sampler_tick.is_zero() {
            // The sampler's refresh mirrors `refresh_gauges` so gauge
            // series (credit occupancy, memory) are current every tick;
            // it also feeds the SLO engine's burn-rate windows, so health
            // evaluation stays current without its own thread.
            let refresh: Box<dyn Fn() + Send + Sync> = {
                let obs = Arc::clone(&obs);
                let credits = credits.clone();
                let memory = memory.clone();
                let injector = injector.clone();
                let slo = slo.clone();
                Box::new(move || {
                    refresh_gauges_into(&obs, &credits, &memory, injector.as_deref());
                    slo.observe(&obs);
                })
            };
            Some(Sampler::start(
                Arc::clone(&obs),
                refresh,
                config.sampler_tick,
                config.sampler_capacity,
                config.sampler_metrics.clone(),
                config.sampler_tenant_metrics.clone(),
            ))
        } else {
            None
        };
        let runtime = match config.runtime_mode {
            RuntimeMode::Shared => Some(WorkerRuntime::start(
                &config,
                Arc::clone(&obs),
                injector.clone(),
            )),
            RuntimeMode::PerJob => None,
        };
        let registry = SessionRegistry::new(
            config.max_sessions,
            obs.registry.lock_site("gateway.sessions"),
        );
        Virtualizer {
            node: Arc::new(Node {
                credits,
                memory,
                config,
                cdw,
                store,
                injector,
                obs,
                jobs: Mutex::new(HashMap::new()),
                next_token: AtomicU64::new(1),
                next_session: AtomicU32::new(1),
                metrics: Mutex::new(NodeMetrics::default()),
                reports: Mutex::new(VecDeque::new()),
                sampler,
                runtime,
                slo,
                registry,
                draining: AtomicBool::new(false),
                jobs_drained: Condvar::new(),
            }),
        }
    }

    /// The node's fault injector, when a fault plan is configured. Chaos
    /// tests read injected-fault counts through this.
    pub fn fault_counts(&self) -> Option<FaultCounts> {
        self.node.injector.as_ref().map(|i| i.counts())
    }

    /// The configured fault injector (for wiring client-side transport
    /// chaos to the same plan).
    pub fn fault_injector(&self) -> Option<Arc<FaultInjector>> {
        self.node.injector.clone()
    }

    /// The CDW this node virtualizes onto (test/bench assertions).
    pub fn cdw(&self) -> &Cdw {
        &self.node.cdw
    }

    /// The node's credit manager.
    pub fn credits(&self) -> &CreditManager {
        &self.node.credits
    }

    /// The node's memory gauge.
    pub fn memory(&self) -> &MemoryGauge {
        &self.node.memory
    }

    /// The active configuration.
    pub fn config(&self) -> &VirtualizerConfig {
        &self.node.config
    }

    /// Snapshot of node metrics.
    pub fn metrics(&self) -> NodeMetrics {
        let mut m = self.node.metrics.lock().clone();
        m.credit_stalls = self.node.credits.stalls();
        m.credit_stall_time = self.node.credits.stall_time();
        m.peak_memory = self.node.memory.peak();
        m
    }

    /// The most recent completed load job's report (benches read phase
    /// timings here).
    pub fn last_job_report(&self) -> Option<JobReport> {
        self.node.reports.lock().back().cloned()
    }

    /// The retained ring of recent load reports, oldest first (capacity
    /// [`VirtualizerConfig::report_history`]).
    pub fn recent_job_reports(&self) -> Vec<JobReport> {
        self.node.reports.lock().iter().cloned().collect()
    }

    /// The node's observability hub (registry + journal + handles).
    pub fn obs(&self) -> &Obs {
        &self.node.obs
    }

    /// Copy point-in-time state (credit/memory/fault-injector levels) into
    /// the registry's gauges so a snapshot is self-consistent.
    fn refresh_gauges(&self) {
        let node = &self.node;
        refresh_gauges_into(
            &node.obs,
            &node.credits,
            &node.memory,
            node.injector.as_deref(),
        );
    }

    /// The full stats surface as one JSON document: node metrics, every
    /// registered counter/gauge/histogram, the recent-report ring, and
    /// journal occupancy. This is what a `Stats` wire request returns.
    pub fn stats_snapshot(&self) -> String {
        self.refresh_gauges();
        let snap = self.node.obs.snapshot();
        let recent = self.recent_job_reports();
        stats_json(
            &self.metrics(),
            &snap,
            &recent,
            self.node.obs.journal.emitted(),
            self.node.obs.journal.retained(),
            self.node.obs.journal.dropped(),
        )
    }

    /// The same registry rendered as Prometheus text exposition.
    pub fn stats_prometheus(&self) -> String {
        self.refresh_gauges();
        stats_prometheus(
            &self.metrics(),
            &self.node.obs.snapshot(),
            self.node.obs.journal.emitted(),
            self.node.obs.journal.dropped(),
        )
    }

    /// Evaluate per-tenant SLO burn rates and node overload right now.
    /// Feeds the engine a fresh observation first, so health answers are
    /// current even when the background sampler is disabled. With `obs`
    /// compiled out the report comes back `enabled: false` and empty.
    pub fn health(&self) -> HealthReport {
        let node = &self.node;
        self.refresh_gauges();
        node.slo.observe(&node.obs);
        node.slo.evaluate(&OverloadInput {
            active_jobs: node.jobs.lock().len() as u64,
            max_jobs: node.config.max_concurrent_jobs as u64,
            active_sessions: node.registry.active() as u64,
            max_sessions: node.config.max_sessions as u64,
            credit_in_flight: node.credits.in_flight() as u64,
            credit_capacity: node.config.credits as u64,
            memory_in_flight: node.memory.in_flight(),
            memory_cap: node.config.memory_cap as u64,
        })
    }

    /// The health report as JSON (the `Health` wire reply body).
    pub fn health_json(&self) -> String {
        self.health().to_json()
    }

    /// The health report as Prometheus text exposition.
    pub fn health_prometheus(&self) -> String {
        self.health().to_prometheus()
    }

    /// Assemble the causal trace of one job from the journal's retained
    /// events. `None` when the journal no longer holds the job's
    /// `job.begin` (ring evicted it, job unknown, or `obs` compiled out).
    pub fn trace(&self, job: u64) -> Option<JobTrace> {
        JobTrace::assemble(&self.node.obs.journal.events_for_job(job))
    }

    /// The trace rendered as JSON (the `Trace` wire reply body).
    pub fn trace_json(&self, job: u64) -> Option<String> {
        self.trace(job).map(|t| t.to_json())
    }

    /// The continuous-profiling report: per-stage CPU/wall accounting,
    /// top-K contended lock sites, worker-pool utilization, and the
    /// folded-stack flamegraph aggregated from the journal's retained
    /// spans. With `obs` compiled out the report comes back
    /// `enabled: false` and empty.
    pub fn profile(&self) -> ProfileReport {
        ProfileReport::collect(&self.node.obs)
    }

    /// The profile report as JSON (the `Profile` wire reply body).
    pub fn profile_json(&self) -> String {
        self.profile().to_json()
    }

    /// The background sampler's time-series rings as JSON. A disabled (or
    /// compiled-out) sampler yields `{"enabled": false, ...}` so callers
    /// can always parse the same shape.
    pub fn sampler_json(&self) -> String {
        match &self.node.sampler {
            Some(sampler) => sampler.series_json(),
            None => "{\"enabled\": false, \"tick_micros\": 0, \"series\": []}\n".to_string(),
        }
    }

    /// Stop the background sampler (idempotent). Freezes the series
    /// document — after this, successive [`Self::sampler_json`] calls
    /// (local or over the wire) return identical bytes, which is what
    /// exact-comparison tests need.
    pub fn stop_sampler(&self) {
        if let Some(sampler) = &self.node.sampler {
            sampler.stop();
        }
    }

    /// Serve one connection on the calling thread until
    /// logoff/disconnect. Registers a session on logon and tears it
    /// down — aborting any jobs it still owns — when the connection
    /// ends for any reason. The loop lives in
    /// [`crate::session::serve_session`]; TCP connections are served by
    /// the reactor instead (`listen_tcp`).
    pub fn serve(&self, transport: impl Transport) -> io::Result<()> {
        crate::session::serve_session(self, transport)
    }

    /// Jobs currently registered (imports + exports).
    pub fn active_jobs(&self) -> usize {
        self.node.jobs.lock().len()
    }

    /// Sessions currently registered.
    pub fn active_sessions(&self) -> usize {
        self.node.registry.active()
    }

    /// Refuse new logons and new jobs from here on; in-flight jobs run to
    /// completion. [`crate::server::ServerHandle::drain`] calls this and
    /// then blocks in [`wait_jobs_drained`](Virtualizer::wait_jobs_drained).
    pub fn begin_drain(&self) {
        self.node.draining.store(true, Ordering::Relaxed);
    }

    /// Block until the job table is empty or `deadline` passes. Woken
    /// by the condvar every job removal notifies — no sleep-polling.
    /// Returns `true` when the table emptied in time.
    pub fn wait_jobs_drained(&self, deadline: Instant) -> bool {
        let mut jobs = self.node.jobs.lock();
        while !jobs.is_empty() {
            if Instant::now() >= deadline {
                return false;
            }
            if self
                .node
                .jobs_drained
                .wait_until(&mut jobs, deadline)
                .timed_out()
            {
                return jobs.is_empty();
            }
        }
        true
    }

    /// Whether `begin_drain` has been called.
    pub fn draining(&self) -> bool {
        self.node.draining.load(Ordering::Relaxed)
    }

    // ------------------------------------------------------------- SQL

    /// Control-session SQL: cross-compile legacy text, execute on the CDW,
    /// convert results back to the legacy representation.
    pub(crate) fn handle_sql(&self, text: &str) -> Message {
        let translated = match xcompile::translate_sql(text) {
            Ok(t) => t,
            Err(e) => return error_msg(ErrCode::SQL_ERROR, e.to_string(), false),
        };
        match self.node.cdw.execute(&translated) {
            Ok(result) => Message::SqlResult(SqlResult {
                activity_count: result.affected,
                columns: result
                    .columns
                    .iter()
                    .map(|(n, ty)| (n.clone(), ty.to_legacy()))
                    .collect(),
                rows: result.rows,
            }),
            Err(e) => error_msg(ErrCode::SQL_ERROR, e.to_string(), false),
        }
    }

    // ------------------------------------------------------------ import

    pub(crate) fn handle_begin_load(&self, spec: BeginLoad, tenant: Arc<TenantObs>) -> Message {
        let node = &self.node;
        if node.draining.load(Ordering::Relaxed) {
            return error_msg(ErrCode::SHUTTING_DOWN, "server is draining", false);
        }
        // Admission control: a node already running its configured job
        // complement answers with retryable SERVER_BUSY instead of
        // accepting unbounded concurrent pipelines. The legacy client
        // backs off and re-issues BeginLoad.
        if node.jobs.lock().len() >= node.config.max_concurrent_jobs {
            node.obs.gateway.admission_rejections.inc();
            tenant.admission_rejections.inc();
            return error_msg(
                ErrCode::SERVER_BUSY,
                format!(
                    "job limit reached ({} active), retry later",
                    node.config.max_concurrent_jobs
                ),
                false,
            );
        }
        let token = node.next_token.fetch_add(1, Ordering::Relaxed);
        let staging_table = xcompile::staging_table_name(token);
        let prefix = xcompile::staging_prefix(token);

        // Causal identity: adopt the client's trace context; a trace-free
        // legacy client gets one minted here, so every job is traceable.
        let ctx = spec.trace.unwrap_or_else(TraceContext::mint);
        let ids = SpanIds {
            trace: ctx.trace_id,
            span: node.obs.journal.next_span_id(),
            parent: ctx.parent_span,
        };

        // Staging + error tables on the CDW.
        let setup_retries = match self.create_job_tables(&spec, &staging_table) {
            Ok(retries) => retries,
            Err(e) => return error_msg(ErrCode::SQL_ERROR, e, true),
        };

        // Spin up the acquisition pipeline.
        let converter = DataConverter::new(
            spec.layout.clone(),
            spec.format,
            node.config.staging_delimiter,
        );
        let loader = Arc::new(BulkLoader::new(
            Arc::clone(&node.store),
            LoaderConfig {
                bucket: node.config.staging_bucket.clone(),
                compress: node.config.compress_staged,
                throttle: node.config.upload_throttle,
            },
        ));
        let pipeline = match &node.runtime {
            Some(runtime) => runtime.begin_job(
                converter,
                loader,
                prefix.clone(),
                token,
                ids,
                node.config.drain_timeout,
                Arc::clone(&tenant),
            ),
            None => Pipeline::spawn(
                &node.config,
                converter,
                loader,
                prefix.clone(),
                node.injector.clone(),
                Arc::clone(&node.obs),
                token,
                ids,
                Arc::clone(&tenant),
            ),
        };
        let sink = pipeline.sink();
        node.obs.gateway.jobs_started.inc();
        tenant.jobs_started.inc();
        tenant.active_jobs.add(1);
        node.obs.journal.emit_span(
            "job.begin",
            ids,
            token,
            0,
            0,
            spec.sessions as u64,
            Duration::ZERO,
        );

        let mut jobs = node.jobs.lock();
        jobs.insert(
            token,
            Job::Import(Arc::new(ImportJobState {
                spec,
                staging_table,
                prefix,
                setup_retries,
                ids,
                ack_wait_micros: AtomicU64::new(0),
                pipeline: Mutex::new(Some(pipeline)),
                sink: Mutex::new(Some(sink)),
                rows_received: AtomicU64::new(0),
                oom: Mutex::new(None),
                started: Instant::now(),
                tenant,
            })),
        );
        node.obs.gateway.active_jobs.set(jobs.len() as u64);
        Message::BeginLoadOk { load_token: token }
    }

    /// Create the job's staging + error tables; returns how many setup
    /// statements had to be retried after transient faults.
    fn create_job_tables(&self, spec: &BeginLoad, staging_table: &str) -> Result<u64, String> {
        // Job setup DDL retries transient blips like any other statement —
        // with an armed cdw_exec fault spec these are the first statements
        // the plan can hit.
        let policy = self.node.config.retry_policy();
        let seed = self.node.config.fault_seed();
        let mut retries = 0u64;
        let mut run = |sql: &str| -> Result<(), String> {
            retry_cdw(policy, seed, &mut retries, || self.node.cdw.execute(sql))
                .map(|_| ())
                .map_err(|e| format!("{sql}: {e}"))
        };
        run(&format!("DROP TABLE IF EXISTS {staging_table}"))?;
        run(&xcompile::staging_ddl(staging_table, &spec.layout))?;
        run(&format!("DROP TABLE IF EXISTS {}", spec.error_table_et))?;
        run(&format!(
            "CREATE TABLE {} (SEQNO BIGINT, ERRCODE INTEGER, ERRFIELD VARCHAR(128), ERRMESSAGE VARCHAR(512))",
            spec.error_table_et
        ))?;
        run(&format!("DROP TABLE IF EXISTS {}", spec.error_table_uv))?;
        let mut uv_cols: Vec<String> = spec
            .layout
            .fields
            .iter()
            .map(|f| {
                format!(
                    "{} {}",
                    f.name,
                    SqlType::from_legacy(f.ty)
                        .legacy_to_cdw()
                        .render(Dialect::Cdw)
                )
            })
            .collect();
        uv_cols.push("SEQNO BIGINT".into());
        uv_cols.push("ERRCODE INTEGER".into());
        run(&format!(
            "CREATE TABLE {} ({})",
            spec.error_table_uv,
            uv_cols.join(", ")
        ))?;
        Ok(retries)
    }

    /// The PXC data path: acquire a credit (back-pressure), reserve
    /// memory, push the raw chunk to the converters, ack immediately. No
    /// parsing happens on this thread beyond the header fields — the
    /// paper's "lazy parsing of data messages".
    pub(crate) fn handle_data_chunk(
        &self,
        token: u64,
        chunk: etlv_protocol::message::DataChunk,
    ) -> Message {
        // Hot-path instrumentation is counters + one histogram — all
        // pre-registered sharded handles, no journal event per chunk.
        let handle_started = Instant::now();
        let chunk_bytes = chunk.data.len() as u64;
        let job = {
            let jobs = self.node.jobs.lock();
            match jobs.get(&token) {
                Some(Job::Import(j)) => Arc::clone(j),
                _ => {
                    return error_msg(
                        ErrCode::PROTOCOL,
                        format!("no import job for token {token}"),
                        true,
                    )
                }
            }
        };
        if let Some(oom) = job.oom.lock().clone() {
            return error_msg(ErrCode::OUT_OF_MEMORY, oom, true);
        }
        let credit = self.node.credits.acquire();
        let memory = match self.node.memory.reserve(chunk.data.len()) {
            Ok(m) => m,
            Err(e) => {
                *job.oom.lock() = Some(e.to_string());
                return error_msg(ErrCode::OUT_OF_MEMORY, e.to_string(), true);
            }
        };
        let sink = match job.sink.lock().as_ref() {
            Some(s) => s.clone(),
            None => return error_msg(ErrCode::PROTOCOL, "data chunk after the load ended", true),
        };
        let chunk_seq = chunk.chunk_seq;
        job.rows_received
            .fetch_add(chunk.record_count as u64, Ordering::Relaxed);
        // Held-resource gauges increment *before* the push: the pipeline
        // decrements them when it retires the chunk, and a retire must
        // never be able to observe the gauge before the increment landed.
        let tenant = &job.tenant;
        tenant.credit_held.add(1);
        tenant.memory_held.add(chunk_bytes);
        if !sink.push(RawChunk {
            base_seq: chunk.base_seq,
            data: chunk.data,
            credit,
            memory,
            enqueued: handle_started,
        }) {
            // Refused chunks never reach the pipeline; unwind the gauges.
            tenant.credit_held.sub(1);
            tenant.memory_held.sub(chunk_bytes);
            return error_msg(ErrCode::INTERNAL, "acquisition pipeline closed", true);
        }
        let obs = &self.node.obs.gateway;
        obs.chunks_received.inc();
        obs.chunk_bytes.add(chunk_bytes);
        // Tenant attribution: four relaxed atomics per accepted chunk.
        tenant.chunks.inc();
        tenant.chunk_bytes.add(chunk_bytes);
        let handle_elapsed = handle_started.elapsed();
        obs.chunk_handle_us.record_duration(handle_elapsed);
        // One relaxed add per chunk — the only tracing cost on this path;
        // the aggregate becomes the job's `ack.wait` span at job end.
        job.ack_wait_micros
            .fetch_add(handle_elapsed.as_micros() as u64, Ordering::Relaxed);
        Message::Ack { chunk_seq }
    }

    pub(crate) fn handle_end_load(&self, token: u64, dml: &str) -> Message {
        let job = {
            let mut jobs = self.node.jobs.lock();
            match jobs.remove(&token) {
                Some(Job::Import(j)) => {
                    self.node.obs.gateway.active_jobs.set(jobs.len() as u64);
                    self.node.jobs_drained.notify_all();
                    j
                }
                _ => {
                    return error_msg(
                        ErrCode::PROTOCOL,
                        format!("no import job for token {token}"),
                        true,
                    )
                }
            }
        };
        match self.finish_load(token, &job, dml) {
            Ok(report) => {
                let mut metrics = self.node.metrics.lock();
                metrics.jobs_completed += 1;
                metrics.rows_ingested += report.rows_received;
                drop(metrics);
                self.node.obs.gateway.jobs_completed.inc();
                let total = report.total();
                let t = &job.tenant;
                t.jobs_completed.inc();
                t.rows_applied.add(report.rows_applied);
                t.errors_et.add(report.errors_et);
                t.errors_uv.add(report.errors_uv);
                t.retries.add(report.upload_retries + report.cdw_retries);
                t.job_us.record_duration(total);
                // A job slower than the tenant's latency target is an SLO
                // "bad event" for the latency objective.
                if total > self.node.config.slo.latency_target {
                    t.slow_jobs.inc();
                }
                t.active_jobs.sub(1);
                self.node.obs.journal.emit_span(
                    "job.end",
                    job.ids,
                    token,
                    0,
                    0,
                    report.rows_received,
                    report.total(),
                );
                let mut reports = self.node.reports.lock();
                while reports.len() >= self.node.config.report_history {
                    reports.pop_front();
                }
                reports.push_back(report.clone());
                drop(reports);
                Message::LoadReport(report.to_wire())
            }
            Err((code, message)) => {
                self.node.metrics.lock().jobs_failed += 1;
                self.node.obs.gateway.jobs_failed.inc();
                job.tenant.jobs_failed.inc();
                job.tenant.active_jobs.sub(1);
                self.node.obs.journal.emit_span(
                    "job.fail",
                    job.ids,
                    token,
                    0,
                    0,
                    code.0 as u64,
                    Duration::ZERO,
                );
                self.cleanup_job(&job);
                // A failed load is a clean job failure, not a session
                // failure: the client gets the error reply and the control
                // session stays usable for diagnostics or another attempt.
                error_msg(code, message, false)
            }
        }
    }

    fn finish_load(
        &self,
        token: u64,
        job: &ImportJobState,
        dml: &str,
    ) -> Result<JobReport, (ErrCode, String)> {
        let node = &self.node;

        // Drain the pipeline: all chunks converted, staged, uploaded.
        let pipeline = job
            .pipeline
            .lock()
            .take()
            .ok_or((ErrCode::PROTOCOL, "load already ended".to_string()))?;
        drop(job.sink.lock().take());
        let pipe_report: PipelineReport = pipeline.finish();
        if let Some(oom) = job.oom.lock().clone() {
            return Err((ErrCode::OUT_OF_MEMORY, oom));
        }
        if !pipe_report.fatal.is_empty() {
            return Err((ErrCode::INTERNAL, pipe_report.fatal.join("; ")));
        }

        // In-cloud COPY into the staging table completes acquisition. COPY
        // validates every staged file before mutating the staging table,
        // so re-issuing it after a transient engine or store-read failure
        // cannot duplicate rows.
        let retry_policy = node.config.retry_policy();
        let retry_seed = node.config.fault_seed();
        let mut cdw_retries = job.setup_retries;
        if !pipe_report.files.is_empty() {
            let copy = format!(
                "COPY INTO {} FROM 'store://{}/{}' DELIMITER '{}'{}",
                job.staging_table,
                node.config.staging_bucket,
                job.prefix,
                node.config.staging_delimiter as char,
                if node.config.compress_staged {
                    " COMPRESSED"
                } else {
                    ""
                }
            );
            let copy_started = Instant::now();
            let copy_cpu = CpuTimer::start();
            retry_cdw(retry_policy, retry_seed ^ 0xC0, &mut cdw_retries, || {
                node.cdw.execute(&copy)
            })
            .map_err(|e| (ErrCode::INTERNAL, format!("COPY failed: {e}")))?;
            let copy_elapsed = copy_started.elapsed();
            node.obs
                .profile
                .copy
                .record(copy_elapsed, copy_cpu.elapsed());
            node.obs.adaptive.copy_us.record_duration(copy_elapsed);
            node.obs.journal.emit_span(
                "copy",
                job.ids.child(node.obs.journal.next_span_id()),
                token,
                0,
                0,
                pipe_report.files.len() as u64,
                copy_elapsed,
            );
        }
        let acquisition = job.started.elapsed();

        // Application phase: cross-compile, plan emulation, apply.
        let application_started = Instant::now();
        let apply_cpu = CpuTimer::start();
        let compiled = xcompile::compile_dml(dml, &job.spec.layout, &job.staging_table)
            .map_err(|e| (ErrCode::SQL_ERROR, e.to_string()))?;
        let emulation =
            emulate::plan(&node.cdw, &compiled).map_err(|e| (ErrCode::SQL_ERROR, e.to_string()))?;
        let rows_received = job.rows_received.load(Ordering::Relaxed);
        let params = AdaptiveParams {
            max_errors: effective_max_errors(node.config.max_errors, job.spec.error_limit),
            max_retries: node.config.max_retries,
            retry: retry_policy,
            retry_seed,
        };
        let apply_ids = job.ids.child(node.obs.journal.next_span_id());
        let job_obs = JobObs {
            obs: &node.obs,
            job: token,
            ids: apply_ids,
        };
        let outcome = apply(
            &node.cdw,
            &compiled,
            emulation.as_ref(),
            &job.spec.layout,
            1,
            rows_received + 1,
            node.config.apply_strategy,
            params,
            Some(&job_obs),
        )
        .map_err(|e| (ErrCode::SQL_ERROR, format!("application failed: {e}")))?;
        cdw_retries += outcome.transient_retries;
        let application = application_started.elapsed();
        node.obs
            .profile
            .apply
            .record(application, apply_cpu.elapsed());
        node.obs.adaptive.statements.add(outcome.statements);
        node.obs
            .adaptive
            .transient_retries
            .add(outcome.transient_retries);
        node.obs.adaptive.apply_us.record_duration(application);
        job.tenant.apply_us.record_duration(application);
        node.obs.journal.emit_span(
            "apply",
            apply_ids,
            token,
            0,
            0,
            outcome.applied,
            application,
        );
        let ack_wait = Duration::from_micros(job.ack_wait_micros.load(Ordering::Relaxed));
        if !ack_wait.is_zero() {
            node.obs.journal.emit_span(
                "ack.wait",
                job.ids.child(node.obs.journal.next_span_id()),
                token,
                0,
                0,
                0,
                ack_wait,
            );
        }

        // Error tables: acquisition errors + application errors.
        let teardown_started = Instant::now();
        self.write_error_tables(job, &pipe_report, &outcome.errors, &mut cdw_retries)
            .map_err(|e| (ErrCode::INTERNAL, e))?;
        self.cleanup_job(job);

        let errors_uv = outcome
            .errors
            .iter()
            .filter(|e| e.code == ErrCode::UNIQUENESS)
            .count() as u64;
        let errors_et =
            pipe_report.acq_errors.len() as u64 + outcome.errors.len() as u64 - errors_uv;
        Ok(JobReport {
            rows_received,
            rows_applied: outcome.applied,
            errors_et,
            errors_uv,
            acquisition,
            application,
            other: teardown_started.elapsed(),
            files_staged: pipe_report.files.len() as u64,
            bytes_staged: pipe_report.bytes_staged,
            upload_retries: pipe_report.upload_retries,
            cdw_retries,
            faults_injected: node
                .injector
                .as_ref()
                .map(|i| i.counts().total())
                .unwrap_or(0),
            aborted: false,
        })
    }

    fn write_error_tables(
        &self,
        job: &ImportJobState,
        pipe_report: &PipelineReport,
        app_errors: &[RecordedError],
        retries: &mut u64,
    ) -> Result<(), String> {
        let mut et_rows: Vec<Vec<Value>> = Vec::new();
        for e in &pipe_report.acq_errors {
            et_rows.push(vec![
                Value::Int(e.seq as i64),
                Value::Int(e.code.0 as i64),
                Value::Null,
                Value::Str(e.message.clone()),
            ]);
        }
        let mut uv_rows: Vec<Vec<Value>> = Vec::new();
        for e in app_errors {
            if e.code == ErrCode::UNIQUENESS {
                let seq = match e.rows {
                    ErrorRows::Single(s) => s,
                    ErrorRows::Range(a, _) => a,
                };
                let mut row: Vec<Value> = e
                    .uv_tuple
                    .clone()
                    .unwrap_or_default()
                    .into_iter()
                    .map(uv_column_value)
                    .collect();
                // Pad if the tuple was unavailable.
                while row.len() < job.spec.layout.arity() {
                    row.push(Value::Null);
                }
                row.push(Value::Int(seq as i64));
                row.push(Value::Int(e.code.0 as i64));
                uv_rows.push(row);
            } else {
                let seqno = match e.rows {
                    ErrorRows::Single(s) => Value::Int(s as i64),
                    ErrorRows::Range(_, _) => Value::Null,
                };
                et_rows.push(vec![
                    seqno,
                    Value::Int(e.code.0 as i64),
                    match &e.field {
                        Some(f) => Value::Str(f.clone()),
                        None => Value::Null,
                    },
                    Value::Str(e.message.clone()),
                ]);
            }
        }
        if !et_rows.is_empty() {
            self.insert_rows(&job.spec.error_table_et, et_rows, retries)?;
        }
        if !uv_rows.is_empty() {
            self.insert_rows(&job.spec.error_table_uv, uv_rows, retries)?;
        }
        Ok(())
    }

    /// Write error rows via the CDW's batched ingest fast path. The rows
    /// are pre-built `Value`s, so no SQL text or VALUES AST is constructed
    /// and the warehouse validates/appends the whole batch under one
    /// catalog-lock acquisition.
    fn insert_rows(
        &self,
        table: &str,
        rows: Vec<Vec<Value>>,
        retries: &mut u64,
    ) -> Result<(), String> {
        retry_cdw(
            self.node.config.retry_policy(),
            self.node.config.fault_seed() ^ 0xE7,
            retries,
            || self.node.cdw.copy_batch(table, rows.clone()),
        )
        .map(|_| ())
        .map_err(|e| format!("writing error table {table}: {e}"))
    }

    fn cleanup_job(&self, job: &ImportJobState) {
        let _ = self
            .node
            .cdw
            .execute(&format!("DROP TABLE IF EXISTS {}", job.staging_table));
        if let Ok(keys) = self
            .node
            .store
            .list(&self.node.config.staging_bucket, &job.prefix)
        {
            for key in keys {
                let _ = self
                    .node
                    .store
                    .delete(&self.node.config.staging_bucket, &key);
            }
        }
    }

    /// Abort one job its owning session abandoned (disconnect, idle
    /// timeout, or shutdown) — the disconnect-safe half of the job
    /// lifecycle. For an import: discard the pipeline's queued and
    /// in-flight chunks (credits and memory release immediately), drop
    /// the staging and error tables, delete staged objects, and record an
    /// aborted [`JobReport`] so the loss is visible in `recent_job_reports`.
    /// For an export: deregister the cursor. A `clean` close (explicit
    /// logoff) silently retires exports — they have no end-of-job message,
    /// so logoff *is* their normal completion — but an import still open
    /// at logoff was abandoned mid-load and is aborted like a disconnect.
    /// Unknown tokens (job already completed) are a no-op.
    pub(crate) fn abort_job(&self, token: u64, clean: bool) {
        let node = &self.node;
        let job = {
            let mut jobs = node.jobs.lock();
            let job = jobs.remove(&token);
            if job.is_some() {
                node.obs.gateway.active_jobs.set(jobs.len() as u64);
                node.jobs_drained.notify_all();
            }
            job
        };
        match job {
            Some(Job::Import(job)) => {
                let pipeline = job.pipeline.lock().take();
                drop(job.sink.lock().take());
                if let Some(pipeline) = pipeline {
                    let _ = pipeline.abort();
                }
                self.cleanup_job(&job);
                let _ = node
                    .cdw
                    .execute(&format!("DROP TABLE IF EXISTS {}", job.spec.error_table_et));
                let _ = node
                    .cdw
                    .execute(&format!("DROP TABLE IF EXISTS {}", job.spec.error_table_uv));
                node.obs.gateway.jobs_aborted.inc();
                job.tenant.jobs_aborted.inc();
                job.tenant.active_jobs.sub(1);
                node.metrics.lock().jobs_aborted += 1;
                node.obs.journal.emit_span(
                    "job.abort",
                    job.ids,
                    token,
                    0,
                    0,
                    job.rows_received.load(Ordering::Relaxed),
                    job.started.elapsed(),
                );
                let report = JobReport {
                    rows_received: job.rows_received.load(Ordering::Relaxed),
                    acquisition: job.started.elapsed(),
                    aborted: true,
                    ..JobReport::default()
                };
                let mut reports = node.reports.lock();
                while reports.len() >= node.config.report_history {
                    reports.pop_front();
                }
                reports.push_back(report);
            }
            Some(Job::Export(_)) if !clean => {
                node.obs.gateway.jobs_aborted.inc();
                node.metrics.lock().jobs_aborted += 1;
                node.obs
                    .journal
                    .emit("job.abort", token, 0, 0, 0, Duration::ZERO);
            }
            Some(Job::Export(_)) | None => {}
        }
    }

    // ------------------------------------------------------------ export

    pub(crate) fn handle_begin_export(
        &self,
        spec: etlv_protocol::message::BeginExport,
        tenant: Arc<TenantObs>,
    ) -> Message {
        let node = &self.node;
        if node.draining.load(Ordering::Relaxed) {
            return error_msg(ErrCode::SHUTTING_DOWN, "server is draining", false);
        }
        if node.jobs.lock().len() >= node.config.max_concurrent_jobs {
            node.obs.gateway.admission_rejections.inc();
            tenant.admission_rejections.inc();
            return error_msg(
                ErrCode::SERVER_BUSY,
                format!(
                    "job limit reached ({} active), retry later",
                    node.config.max_concurrent_jobs
                ),
                false,
            );
        }
        let translated = match xcompile::translate_sql(&spec.select) {
            Ok(t) => t,
            Err(e) => return error_msg(ErrCode::SQL_ERROR, e.to_string(), true),
        };
        let chunk_rows = if spec.chunk_rows == 0 {
            node.config.export_chunk_rows
        } else {
            spec.chunk_rows
        };
        let cursor = match TdfCursor::open(
            &node.cdw,
            &translated,
            chunk_rows,
            node.config.export_prefetch_chunks,
        ) {
            Ok(c) => c,
            Err(e) => return error_msg(ErrCode::SQL_ERROR, e.to_string(), true),
        };
        let layout = Layout {
            name: "EXPORT".into(),
            fields: cursor
                .columns()
                .iter()
                .map(|(n, ty)| etlv_protocol::layout::FieldDef::new(n.clone(), *ty))
                .collect(),
        };
        let token = node.next_token.fetch_add(1, Ordering::Relaxed);
        {
            let mut jobs = node.jobs.lock();
            jobs.insert(
                token,
                Job::Export(Arc::new(ExportJobState {
                    cursor,
                    format: spec.format,
                    layout: layout.clone(),
                })),
            );
            node.obs.gateway.active_jobs.set(jobs.len() as u64);
        }
        node.metrics.lock().exports_completed += 1;
        Message::BeginExportOk(BeginExportOk {
            export_token: token,
            layout,
        })
    }

    /// Serve one export chunk: pull the TDF packet from the cursor, unwrap
    /// it, and re-encode rows in the legacy wire format (the PXC's result
    /// conversion, §4).
    pub(crate) fn handle_export_req(&self, token: u64, index: u64) -> Message {
        let job = {
            let jobs = self.node.jobs.lock();
            match jobs.get(&token) {
                Some(Job::Export(j)) => Arc::clone(j),
                _ => {
                    return error_msg(
                        ErrCode::PROTOCOL,
                        format!("no export job for token {token}"),
                        true,
                    )
                }
            }
        };
        let chunk = job.cursor.chunk(index);
        let rows = match chunk.packet.scalar_rows() {
            Ok(r) => r,
            Err(e) => return error_msg(ErrCode::INTERNAL, e.to_string(), true),
        };
        let data = match encode_rows(&job.layout, job.format, &rows) {
            Ok(d) => d,
            Err(e) => return error_msg(ErrCode::INTERNAL, e.to_string(), true),
        };
        {
            let mut metrics = self.node.metrics.lock();
            metrics.rows_exported += rows.len() as u64;
            metrics.bytes_exported += data.len() as u64;
        }
        let export = &self.node.obs.export;
        export.chunks.inc();
        export.rows.add(rows.len() as u64);
        export.bytes.add(data.len() as u64);
        Message::ExportChunk(ExportChunk {
            index,
            record_count: rows.len() as u32,
            last: chunk.last,
            data: data.into(),
        })
    }
}

/// Normalize a UV-table column the way the old INSERT literal path did:
/// types without a SQL literal form (bytes, timestamps) are written as
/// their display text; everything else passes through unchanged.
fn uv_column_value(v: Value) -> Value {
    match v {
        Value::Bytes(_) | Value::Timestamp(_) => Value::Str(v.display_text()),
        other => other,
    }
}

/// Shared gauge refresh used by both the snapshot path and the sampler
/// thread.
fn refresh_gauges_into(
    obs: &Obs,
    credits: &CreditManager,
    memory: &MemoryGauge,
    injector: Option<&FaultInjector>,
) {
    obs.credit.in_flight.set(credits.in_flight() as u64);
    obs.memory.in_flight.set(memory.in_flight());
    obs.memory.peak.set(memory.peak());
    if let Some(injector) = injector {
        let c = injector.counts();
        obs.fault.injected_total.set(c.total());
        obs.fault.injected_store_put.set(c.store_put);
        obs.fault.injected_store_get.set(c.store_get);
        obs.fault.injected_cdw_exec.set(c.cdw_exec);
        obs.fault.injected_convert.set(c.convert);
        obs.fault.injected_transport.set(c.transport);
    }
}

/// The node's observability hub, shaped by the config's journal knobs.
fn build_obs(config: &VirtualizerConfig) -> Arc<Obs> {
    let obs = Obs::new(config.journal_capacity, config.journal_jsonl.as_deref());
    obs.registry.set_tenant_limit(config.max_tenants);
    Arc::new(obs)
}

/// The callback an [`ObservedStore`] feeds: op counts, byte totals, error
/// counts, and wall-time histograms per store operation.
fn store_observer(obs: &Obs) -> etlv_cloudstore::StoreObserver {
    let store = obs.store.clone();
    Arc::new(move |op, bytes, elapsed, ok| match op {
        StoreOp::Put => {
            store.put_ops.inc();
            if ok {
                store.put_bytes.add(bytes);
            } else {
                store.put_errors.inc();
            }
            store.put_us.record_duration(elapsed);
        }
        StoreOp::Get => {
            store.get_ops.inc();
            if ok {
                store.get_bytes.add(bytes);
            } else {
                store.get_errors.inc();
            }
            store.get_us.record_duration(elapsed);
        }
    })
}

pub(crate) fn error_msg(code: ErrCode, message: impl Into<String>, fatal: bool) -> Message {
    Message::Error(WireError {
        code: code.0,
        message: message.into(),
        fatal,
    })
}

/// Combine the node's `max_errors` with the script's `errlimit` (both 0 =
/// unlimited; otherwise the tighter bound wins).
fn effective_max_errors(config_max: u64, errlimit: u64) -> u64 {
    match (config_max, errlimit) {
        (0, 0) => 0,
        (0, e) => e,
        (m, 0) => m,
        (m, e) => m.min(e),
    }
}

/// Expose staged-value access for tests: the staging tables are dropped at
/// job end, so tests assert through the CDW's target/error tables instead.
#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn effective_max_errors_combination() {
        assert_eq!(effective_max_errors(0, 0), 0);
        assert_eq!(effective_max_errors(5, 0), 5);
        assert_eq!(effective_max_errors(0, 7), 7);
        assert_eq!(effective_max_errors(5, 7), 5);
        assert_eq!(effective_max_errors(9, 7), 7);
    }

    #[test]
    #[should_panic(expected = "invalid virtualizer config")]
    fn invalid_config_panics() {
        let _ = Virtualizer::new(VirtualizerConfig {
            credits: 0,
            ..Default::default()
        });
    }

    #[test]
    fn node_constructs_with_defaults() {
        let v = Virtualizer::new(VirtualizerConfig::default());
        assert!(v.cdw().execute("CREATE TABLE T (A INTEGER)").is_ok());
        assert_eq!(v.metrics().jobs_completed, 0);
        assert!(v.last_job_report().is_none());
    }
}
