//! The DataConverter: legacy wire chunks → CDW staged text (paper §4).
//!
//! Conversion covers the discrepancies the paper lists: binary format
//! decoding (endianness, null-indicator bits, packed dates, scaled
//! decimals), null detection, empty-string handling, and escaping for the
//! staged text format. Each converted row is prefixed with its `__SEQ`
//! input row number.
//!
//! Per-record *data errors* (wrong field count, invalid UTF-8, malformed
//! values) do not fail the chunk: the offending record is skipped and
//! recorded as an acquisition error, which the job later lands in the ET
//! table — mirroring the legacy per-tuple acquisition semantics.

use etlv_cdw::staged::StagedFormat;
use etlv_protocol::data::Value;
use etlv_protocol::errcode::ErrCode;
use etlv_protocol::layout::Layout;
use etlv_protocol::message::RecordFormat;
use etlv_protocol::record::{FieldRef, RecordDecoder, RecordError};
use etlv_protocol::vartext::{VartextError, VartextFormat};

/// An error attached to one input record during acquisition.
#[derive(Debug, Clone, PartialEq)]
pub struct AcqError {
    /// 1-based input row number.
    pub seq: u64,
    /// Legacy error code.
    pub code: ErrCode,
    /// Description.
    pub message: String,
}

/// A fatal conversion failure (the chunk framing itself is broken).
#[derive(Debug, Clone, PartialEq)]
pub struct ConvertFatal {
    /// Description.
    pub message: String,
}

impl std::fmt::Display for ConvertFatal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "conversion failed: {}", self.message)
    }
}

impl std::error::Error for ConvertFatal {}

/// Output of converting one chunk.
#[derive(Debug, Clone, PartialEq)]
pub struct ConvertedChunk {
    /// 1-based row number of the first input record.
    pub base_seq: u64,
    /// Rows successfully converted.
    pub rows: u32,
    /// Staged bytes (delimited text, `__SEQ` first).
    pub bytes: Vec<u8>,
    /// Records skipped with data errors.
    pub errors: Vec<AcqError>,
}

/// Reusable scratch state for the zero-allocation conversion kernel.
///
/// One instance lives with each converter worker for the life of the
/// pipeline; the buffers grow to the high-water mark of the workload and
/// are then reused, so the steady-state convert loop performs no heap
/// allocation (see `tests/alloc_convert.rs`).
#[derive(Debug, Default)]
pub struct ConvertScratch {
    /// Render buffer for numeric/temporal field text and the `__SEQ`
    /// prefix.
    field: Vec<u8>,
    /// Unescape buffer loaned to the vartext streaming decoder, and hex
    /// render buffer for VARBYTE fields.
    unescape: Vec<u8>,
    /// Acquisition errors collected by the last [`DataConverter::convert_into`]
    /// call. Allocates only when a record actually fails.
    errors: Vec<AcqError>,
}

impl ConvertScratch {
    /// Fresh scratch state.
    pub fn new() -> ConvertScratch {
        ConvertScratch::default()
    }

    /// Whether the last conversion recorded acquisition errors.
    pub fn has_errors(&self) -> bool {
        !self.errors.is_empty()
    }

    /// Move collected acquisition errors into `dst`, keeping this
    /// scratch's capacity for reuse.
    pub fn drain_errors_into(&mut self, dst: &mut Vec<AcqError>) {
        dst.append(&mut self.errors);
    }

    /// Take collected acquisition errors as an owned vector.
    pub fn take_errors(&mut self) -> Vec<AcqError> {
        std::mem::take(&mut self.errors)
    }
}

/// `write!` into a byte buffer; infallible for `Vec<u8>`.
fn render_into(buf: &mut Vec<u8>, args: std::fmt::Arguments<'_>) {
    use std::io::Write;
    buf.write_fmt(args).expect("write to Vec<u8> cannot fail");
}

const HEX: &[u8; 16] = b"0123456789ABCDEF";

/// Byte classes for the fused vartext scan (`stage_vartext_line`): a byte
/// with class 0 is plain ASCII content that needs neither wire unescaping,
/// staged escaping, nor UTF-8 scrutiny — whole runs of it copy with one
/// `extend_from_slice`.
const CL_WIRE_DELIM: u8 = 1;
const CL_WIRE_ESCAPE: u8 = 2;
const CL_STAGED: u8 = 4;
const CL_HIGH: u8 = 8;

/// Converts chunks of one job's wire format into the staged format.
#[derive(Debug, Clone)]
pub struct DataConverter {
    layout: Layout,
    wire: RecordFormat,
    staged: StagedFormat,
    decoder: RecordDecoder,
    vt_class: [u8; 256],
}

impl DataConverter {
    /// Converter for a job.
    pub fn new(layout: Layout, wire: RecordFormat, staging_delimiter: u8) -> DataConverter {
        let staged = StagedFormat::new(staging_delimiter);
        let mut vt_class = [0u8; 256];
        if let RecordFormat::Vartext { delimiter, .. } = wire {
            vt_class[delimiter as usize] |= CL_WIRE_DELIM;
        }
        vt_class[b'\\' as usize] |= CL_WIRE_ESCAPE;
        for b in [staged.delimiter(), staged.quote(), b'\\', b'\n', b'\r'] {
            vt_class[b as usize] |= CL_STAGED;
        }
        for c in vt_class.iter_mut().skip(0x80) {
            *c |= CL_HIGH;
        }
        DataConverter {
            decoder: RecordDecoder::new(layout.clone()),
            layout,
            wire,
            staged,
            vt_class,
        }
    }

    /// Fused vartext row scanner: splits `line` on the wire delimiter,
    /// undoes wire escapes, and appends the staged-escaped rendering of
    /// every field to `out` — one pass over the input, no intermediate
    /// buffer. Runs of class-0 bytes copy with a single
    /// `extend_from_slice`, and UTF-8 validation only runs for fields
    /// that contained a non-ASCII byte (staged escaping inserts ASCII
    /// only between scalar boundaries, so validating the escaped bytes is
    /// equivalent to validating the raw content).
    ///
    /// Each field is preceded by a staged delimiter (the `__SEQ` column is
    /// already in `out`). Semantics mirror [`VartextFormat::decode_line`]
    /// exactly, including error precedence — proven byte-for-byte by
    /// `tests/convert_differential.rs`.
    fn stage_vartext_line(
        &self,
        delimiter: u8,
        quote: u8,
        line: &[u8],
        out: &mut Vec<u8>,
    ) -> Result<usize, VartextError> {
        let class = &self.vt_class;
        // The reference decoder checks backslash, then delimiter, then
        // quote — so a quote that collides with either never starts a
        // quoted-empty field.
        let probe_quote = quote != delimiter && quote != b'\\';
        let mut nfields = 0usize;
        let mut i = 0usize;
        loop {
            self.staged.push_delimiter(out);
            if probe_quote
                && i + 1 < line.len()
                && line[i] == quote
                && line[i + 1] == quote
                && (i + 2 == line.len() || line[i + 2] == delimiter)
            {
                self.staged.push_empty(out);
                i += 2;
            } else {
                let field_start = i;
                let check_start = out.len();
                let mut run_start = i;
                let mut saw_high = false;
                loop {
                    while i < line.len() && class[line[i] as usize] == 0 {
                        i += 1;
                    }
                    if i >= line.len() {
                        out.extend_from_slice(&line[run_start..i]);
                        break;
                    }
                    let b = line[i];
                    let c = class[b as usize];
                    if c & CL_WIRE_ESCAPE != 0 {
                        if i + 1 >= line.len() {
                            return Err(VartextError::DanglingEscape);
                        }
                        out.extend_from_slice(&line[run_start..i]);
                        let u = match line[i + 1] {
                            b'n' => b'\n',
                            b'r' => b'\r',
                            other => other,
                        };
                        if class[u as usize] & CL_STAGED != 0 {
                            out.push(b'\\');
                            out.push(match u {
                                b'\n' => b'n',
                                b'\r' => b'r',
                                other => other,
                            });
                        } else {
                            saw_high |= class[u as usize] & CL_HIGH != 0;
                            out.push(u);
                        }
                        i += 2;
                        run_start = i;
                        continue;
                    }
                    if c & CL_WIRE_DELIM != 0 {
                        out.extend_from_slice(&line[run_start..i]);
                        break;
                    }
                    if c & CL_STAGED != 0 {
                        out.extend_from_slice(&line[run_start..i]);
                        out.push(b'\\');
                        out.push(match b {
                            b'\n' => b'n',
                            b'\r' => b'r',
                            other => other,
                        });
                        i += 1;
                        run_start = i;
                        continue;
                    }
                    // Non-ASCII content byte: stays in the run, but the
                    // field needs UTF-8 validation when it closes.
                    saw_high = true;
                    i += 1;
                }
                // A zero-length field is NULL (nothing emitted at all);
                // anything else must be valid UTF-8.
                if i != field_start && saw_high && std::str::from_utf8(&out[check_start..]).is_err()
                {
                    return Err(VartextError::BadUtf8);
                }
            }
            nfields += 1;
            if i >= line.len() {
                return Ok(nfields);
            }
            i += 1; // consume the wire delimiter
        }
    }

    /// Convert one raw chunk into a fresh buffer.
    pub fn convert(&self, base_seq: u64, data: &[u8]) -> Result<ConvertedChunk, ConvertFatal> {
        let mut out = Vec::new();
        let mut scratch = ConvertScratch::new();
        let rows = self.convert_into(base_seq, data, &mut out, &mut scratch)?;
        Ok(ConvertedChunk {
            base_seq,
            rows,
            bytes: out,
            errors: scratch.take_errors(),
        })
    }

    /// Convert one raw chunk, appending staged text to `out` and reusing
    /// `scratch` across calls — the zero-allocation streaming kernel.
    ///
    /// Wire records are decoded directly from `data` (borrowed fields, no
    /// intermediate `Vec<Value>` row) and field text is rendered straight
    /// into `out`; the only heap traffic in the steady state is amortized
    /// buffer growth. Output bytes, row counts, acquisition errors and
    /// fatal errors are byte-for-byte identical to
    /// [`convert_reference`](Self::convert_reference) (proven by
    /// `tests/convert_differential.rs`).
    ///
    /// On `Err`, the contents of `out` are unspecified; callers recycle
    /// the buffer. Acquisition errors land in `scratch` (cleared on
    /// entry); drain them with [`ConvertScratch::drain_errors_into`].
    pub fn convert_into(
        &self,
        base_seq: u64,
        data: &[u8],
        out: &mut Vec<u8>,
        scratch: &mut ConvertScratch,
    ) -> Result<u32, ConvertFatal> {
        let ConvertScratch {
            field,
            unescape,
            errors,
        } = scratch;
        errors.clear();
        out.reserve(data.len() + data.len() / 8 + 64);
        let mut rows = 0u32;
        match self.wire {
            RecordFormat::Vartext { delimiter, quote } => {
                let arity = self.layout.arity();
                let mut seq = base_seq;
                for line in data.split(|&b| b == b'\n') {
                    let line = line.strip_suffix(b"\r").unwrap_or(line);
                    if line.is_empty() {
                        continue;
                    }
                    let row_start = out.len();
                    field.clear();
                    render_into(field, format_args!("{}", seq as i64));
                    self.staged.push_escaped(field, out);
                    let res = self
                        .stage_vartext_line(delimiter, quote, line, out)
                        .and_then(|actual| {
                            if actual != arity {
                                Err(VartextError::FieldCount {
                                    expected: arity,
                                    actual,
                                })
                            } else {
                                Ok(())
                            }
                        });
                    match res {
                        Ok(()) => {
                            self.staged.end_row(out);
                            rows += 1;
                        }
                        Err(e) => {
                            out.truncate(row_start);
                            let code = match e {
                                VartextError::FieldCount { .. } => ErrCode::FIELD_COUNT,
                                _ => ErrCode::BAD_VALUE,
                            };
                            errors.push(AcqError {
                                seq,
                                code,
                                message: e.to_string(),
                            });
                        }
                    }
                    seq += 1;
                }
            }
            RecordFormat::Binary => {
                let mut buf: &[u8] = data;
                let mut seq = base_seq;
                while !buf.is_empty() {
                    let row_start = out.len();
                    field.clear();
                    render_into(field, format_args!("{}", seq as i64));
                    self.staged.push_escaped(field, out);
                    let res = self.decoder.decode_record_with(&mut buf, |f| {
                        self.staged.push_delimiter(out);
                        match f {
                            FieldRef::Null => {}
                            FieldRef::Str("") => self.staged.push_empty(out),
                            FieldRef::Str(s) => self.staged.push_escaped(s.as_bytes(), out),
                            FieldRef::Bytes([]) => self.staged.push_empty(out),
                            FieldRef::Bytes(b) => {
                                unescape.clear();
                                for &x in b {
                                    unescape.push(HEX[(x >> 4) as usize]);
                                    unescape.push(HEX[(x & 0x0F) as usize]);
                                }
                                self.staged.push_escaped(unescape, out);
                            }
                            FieldRef::Int(v) => {
                                field.clear();
                                render_into(field, format_args!("{v}"));
                                self.staged.push_escaped(field, out);
                            }
                            FieldRef::Float(v) => {
                                field.clear();
                                if v.fract() == 0.0 && v.abs() < 1e15 {
                                    render_into(field, format_args!("{v:.1}"));
                                } else {
                                    render_into(field, format_args!("{v}"));
                                }
                                self.staged.push_escaped(field, out);
                            }
                            FieldRef::Decimal(d) => {
                                field.clear();
                                render_into(field, format_args!("{d}"));
                                self.staged.push_escaped(field, out);
                            }
                            FieldRef::Date(d) => {
                                field.clear();
                                render_into(field, format_args!("{d}"));
                                self.staged.push_escaped(field, out);
                            }
                            FieldRef::Timestamp(ts) => {
                                field.clear();
                                render_into(field, format_args!("{ts}"));
                                self.staged.push_escaped(field, out);
                            }
                        }
                    });
                    match res {
                        Ok(()) => {
                            self.staged.end_row(out);
                            rows += 1;
                        }
                        Err(RecordError::BadValue(msg)) => {
                            // Same rationale as the reference path: BadValue
                            // can leave `buf` unadvanced mid-record, so
                            // resynchronization is unsafe — fatal.
                            out.truncate(row_start);
                            return Err(ConvertFatal {
                                message: format!("bad value in binary record {seq}: {msg}"),
                            });
                        }
                        Err(e) => {
                            out.truncate(row_start);
                            return Err(ConvertFatal {
                                message: format!(
                                    "binary chunk framing broken at record {seq}: {e}"
                                ),
                            });
                        }
                    }
                    seq += 1;
                }
            }
        }
        Ok(rows)
    }

    /// The original materializing conversion path, retained as the
    /// reference implementation for differential tests: every record is
    /// decoded into an owned `Vec<Value>` row and rendered through
    /// [`StagedFormat::write_row`]. Must stay semantically frozen so
    /// `convert_into` can be proven byte-identical against it.
    pub fn convert_reference(
        &self,
        base_seq: u64,
        data: &[u8],
    ) -> Result<ConvertedChunk, ConvertFatal> {
        let mut out = Vec::with_capacity(data.len() + data.len() / 8 + 64);
        let mut errors = Vec::new();
        let mut rows = 0u32;
        match self.wire {
            RecordFormat::Vartext { delimiter, quote } => {
                let vt = VartextFormat { delimiter, quote };
                let arity = self.layout.arity();
                let mut seq = base_seq;
                for line in data.split(|&b| b == b'\n') {
                    let line = line.strip_suffix(b"\r").unwrap_or(line);
                    if line.is_empty() {
                        continue;
                    }
                    match vt.decode_line(line, Some(arity)) {
                        Ok(fields) => {
                            self.write_staged_row(seq, &fields, &mut out);
                            rows += 1;
                        }
                        Err(e) => {
                            let code = match e {
                                etlv_protocol::vartext::VartextError::FieldCount { .. } => {
                                    ErrCode::FIELD_COUNT
                                }
                                _ => ErrCode::BAD_VALUE,
                            };
                            errors.push(AcqError {
                                seq,
                                code,
                                message: e.to_string(),
                            });
                        }
                    }
                    seq += 1;
                }
            }
            RecordFormat::Binary => {
                let decoder = RecordDecoder::new(self.layout.clone());
                let mut buf: &[u8] = data;
                let mut seq = base_seq;
                while !buf.is_empty() {
                    match decoder.decode_record(&mut buf) {
                        Ok(values) => {
                            self.write_staged_row(seq, &values, &mut out);
                            rows += 1;
                        }
                        Err(etlv_protocol::record::RecordError::BadValue(msg)) => {
                            // The framing advanced past the record; the
                            // value inside was bad. Record and continue...
                            // except BadValue can also leave `buf`
                            // unadvanced mid-record, so resynchronization
                            // is unsafe: treat as fatal.
                            return Err(ConvertFatal {
                                message: format!("bad value in binary record {seq}: {msg}"),
                            });
                        }
                        Err(e) => {
                            return Err(ConvertFatal {
                                message: format!(
                                    "binary chunk framing broken at record {seq}: {e}"
                                ),
                            })
                        }
                    }
                    seq += 1;
                }
            }
        }
        Ok(ConvertedChunk {
            base_seq,
            rows,
            bytes: out,
            errors,
        })
    }

    /// Serialize one converted row: `__SEQ` plus the CDW text rendering of
    /// each field (nulls as empty fields, empty strings quoted, special
    /// characters escaped — the staged format handles all three).
    ///
    /// Deliberately frozen as the pre-kernel implementation, including an
    /// inlined copy of the original per-byte escape loop: the reference
    /// path must not share optimized primitives with the streaming kernel,
    /// both so differential tests compare independently-written code and
    /// so benchmarks measure the kernel against the true pre-change hot
    /// path.
    fn write_staged_row(&self, seq: u64, values: &[Value], out: &mut Vec<u8>) {
        let mut row: Vec<Value> = Vec::with_capacity(values.len() + 1);
        row.push(Value::Int(seq as i64));
        for v in values {
            // The staged format stores text renderings; conversion to the
            // CDW value model happens at COPY against the staging schema.
            row.push(match v {
                Value::Null => Value::Null,
                Value::Str(s) => Value::Str(s.clone()),
                other => Value::Str(other.display_text()),
            });
        }
        let (delimiter, quote) = (self.staged.delimiter(), self.staged.quote());
        for (i, v) in row.iter().enumerate() {
            if i > 0 {
                out.push(delimiter);
            }
            match v {
                Value::Null => {}
                Value::Str(s) if s.is_empty() => {
                    out.push(quote);
                    out.push(quote);
                }
                other => {
                    for &b in other.display_text().as_bytes() {
                        if b == delimiter || b == quote || b == b'\\' || b == b'\n' || b == b'\r' {
                            out.push(b'\\');
                            if b == b'\n' {
                                out.push(b'n');
                                continue;
                            }
                            if b == b'\r' {
                                out.push(b'r');
                                continue;
                            }
                        }
                        out.push(b);
                    }
                }
            }
        }
        out.push(b'\n');
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use etlv_protocol::data::{Date, Decimal, LegacyType as T};
    use etlv_protocol::record::RecordEncoder;

    const WIRE_VT: RecordFormat = RecordFormat::Vartext {
        delimiter: b'|',
        quote: b'"',
    };

    fn vt_layout() -> Layout {
        Layout::new("L")
            .field("A", T::VarChar(5))
            .field("B", T::VarChar(50))
            .field("C", T::VarChar(10))
    }

    #[test]
    fn vartext_conversion_prefixes_seq() {
        let conv = DataConverter::new(vt_layout(), WIRE_VT, b'|');
        let out = conv.convert(11, b"x|y|z\na||c\n").unwrap();
        assert_eq!(out.rows, 2);
        assert!(out.errors.is_empty());
        let text = String::from_utf8(out.bytes).unwrap();
        assert_eq!(text, "11|x|y|z\n12|a||c\n");
    }

    #[test]
    fn field_count_errors_skipped_not_fatal() {
        let conv = DataConverter::new(vt_layout(), WIRE_VT, b'|');
        let out = conv.convert(1, b"a|b|c\nwrong|count\nd|e|f\n").unwrap();
        assert_eq!(out.rows, 2);
        assert_eq!(out.errors.len(), 1);
        assert_eq!(out.errors[0].seq, 2);
        assert_eq!(out.errors[0].code, ErrCode::FIELD_COUNT);
        let text = String::from_utf8(out.bytes).unwrap();
        assert_eq!(text, "1|a|b|c\n3|d|e|f\n");
    }

    #[test]
    fn binary_conversion_renders_cdw_text() {
        let layout = Layout::new("L")
            .field("I", T::Integer)
            .field("D", T::Date)
            .field("DEC", T::Decimal(10, 2))
            .field("S", T::VarChar(10));
        let enc = RecordEncoder::new(layout.clone());
        let rows = vec![
            vec![
                Value::Int(42),
                Value::Date(Date::new(2012, 1, 5).unwrap()),
                Value::Decimal(Decimal::parse("3.50").unwrap()),
                Value::Str("hi|there".into()),
            ],
            vec![
                Value::Null,
                Value::Null,
                Value::Null,
                Value::Str(String::new()),
            ],
        ];
        let data = enc.encode_batch(&rows).unwrap();
        let conv = DataConverter::new(layout, RecordFormat::Binary, b'|');
        let out = conv.convert(7, &data).unwrap();
        assert_eq!(out.rows, 2);
        let text = String::from_utf8(out.bytes).unwrap();
        // Dates become ISO, decimals keep scale, delimiter escaped, nulls
        // empty, empty string quoted.
        assert_eq!(text, "7|42|2012-01-05|3.50|hi\\|there\n8||||\"\"\n");
    }

    #[test]
    fn binary_framing_error_is_fatal() {
        let layout = Layout::new("L").field("I", T::Integer);
        let enc = RecordEncoder::new(layout.clone());
        let mut data = enc.encode_batch(&[vec![Value::Int(1)]]).unwrap();
        data.pop();
        let conv = DataConverter::new(layout, RecordFormat::Binary, b'|');
        assert!(conv.convert(1, &data).is_err());
    }

    #[test]
    fn staged_output_parses_back() {
        let conv = DataConverter::new(vt_layout(), WIRE_VT, b'|');
        let out = conv.convert(1, b"a|b|c\n\"\"||z\n").unwrap();
        let staged = StagedFormat::new(b'|');
        let rows = staged.parse(&out.bytes, 4).unwrap();
        assert_eq!(rows[0][0], Value::Str("1".into()));
        assert_eq!(rows[1][1], Value::Str(String::new())); // empty string preserved
        assert_eq!(rows[1][2], Value::Null); // null preserved
    }
}
