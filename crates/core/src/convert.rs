//! The DataConverter: legacy wire chunks → CDW staged text (paper §4).
//!
//! Conversion covers the discrepancies the paper lists: binary format
//! decoding (endianness, null-indicator bits, packed dates, scaled
//! decimals), null detection, empty-string handling, and escaping for the
//! staged text format. Each converted row is prefixed with its `__SEQ`
//! input row number.
//!
//! Per-record *data errors* (wrong field count, invalid UTF-8, malformed
//! values) do not fail the chunk: the offending record is skipped and
//! recorded as an acquisition error, which the job later lands in the ET
//! table — mirroring the legacy per-tuple acquisition semantics.

use etlv_cdw::staged::StagedFormat;
use etlv_protocol::data::Value;
use etlv_protocol::errcode::ErrCode;
use etlv_protocol::layout::Layout;
use etlv_protocol::message::RecordFormat;
use etlv_protocol::record::RecordDecoder;
use etlv_protocol::vartext::VartextFormat;

/// An error attached to one input record during acquisition.
#[derive(Debug, Clone, PartialEq)]
pub struct AcqError {
    /// 1-based input row number.
    pub seq: u64,
    /// Legacy error code.
    pub code: ErrCode,
    /// Description.
    pub message: String,
}

/// A fatal conversion failure (the chunk framing itself is broken).
#[derive(Debug, Clone, PartialEq)]
pub struct ConvertFatal {
    /// Description.
    pub message: String,
}

impl std::fmt::Display for ConvertFatal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "conversion failed: {}", self.message)
    }
}

impl std::error::Error for ConvertFatal {}

/// Output of converting one chunk.
#[derive(Debug, Clone, PartialEq)]
pub struct ConvertedChunk {
    /// 1-based row number of the first input record.
    pub base_seq: u64,
    /// Rows successfully converted.
    pub rows: u32,
    /// Staged bytes (delimited text, `__SEQ` first).
    pub bytes: Vec<u8>,
    /// Records skipped with data errors.
    pub errors: Vec<AcqError>,
}

/// Converts chunks of one job's wire format into the staged format.
#[derive(Debug, Clone)]
pub struct DataConverter {
    layout: Layout,
    wire: RecordFormat,
    staged: StagedFormat,
}

impl DataConverter {
    /// Converter for a job.
    pub fn new(layout: Layout, wire: RecordFormat, staging_delimiter: u8) -> DataConverter {
        DataConverter {
            layout,
            wire,
            staged: StagedFormat::new(staging_delimiter),
        }
    }

    /// Convert one raw chunk.
    pub fn convert(&self, base_seq: u64, data: &[u8]) -> Result<ConvertedChunk, ConvertFatal> {
        let mut out = Vec::with_capacity(data.len() + data.len() / 8 + 64);
        let mut errors = Vec::new();
        let mut rows = 0u32;
        match self.wire {
            RecordFormat::Vartext { delimiter, quote } => {
                let vt = VartextFormat { delimiter, quote };
                let arity = self.layout.arity();
                let mut seq = base_seq;
                for line in data.split(|&b| b == b'\n') {
                    let line = line.strip_suffix(b"\r").unwrap_or(line);
                    if line.is_empty() {
                        continue;
                    }
                    match vt.decode_line(line, Some(arity)) {
                        Ok(fields) => {
                            self.write_staged_row(seq, &fields, &mut out);
                            rows += 1;
                        }
                        Err(e) => {
                            let code = match e {
                                etlv_protocol::vartext::VartextError::FieldCount { .. } => {
                                    ErrCode::FIELD_COUNT
                                }
                                _ => ErrCode::BAD_VALUE,
                            };
                            errors.push(AcqError {
                                seq,
                                code,
                                message: e.to_string(),
                            });
                        }
                    }
                    seq += 1;
                }
            }
            RecordFormat::Binary => {
                let decoder = RecordDecoder::new(self.layout.clone());
                let mut buf: &[u8] = data;
                let mut seq = base_seq;
                while !buf.is_empty() {
                    match decoder.decode_record(&mut buf) {
                        Ok(values) => {
                            self.write_staged_row(seq, &values, &mut out);
                            rows += 1;
                        }
                        Err(etlv_protocol::record::RecordError::BadValue(msg)) => {
                            // The framing advanced past the record; the
                            // value inside was bad. Record and continue...
                            // except BadValue can also leave `buf`
                            // unadvanced mid-record, so resynchronization
                            // is unsafe: treat as fatal.
                            return Err(ConvertFatal {
                                message: format!("bad value in binary record {seq}: {msg}"),
                            });
                        }
                        Err(e) => {
                            return Err(ConvertFatal {
                                message: format!("binary chunk framing broken at record {seq}: {e}"),
                            })
                        }
                    }
                    seq += 1;
                }
            }
        }
        Ok(ConvertedChunk {
            base_seq,
            rows,
            bytes: out,
            errors,
        })
    }

    /// Serialize one converted row: `__SEQ` plus the CDW text rendering of
    /// each field (nulls as empty fields, empty strings quoted, special
    /// characters escaped — the staged format handles all three).
    fn write_staged_row(&self, seq: u64, values: &[Value], out: &mut Vec<u8>) {
        let mut row: Vec<Value> = Vec::with_capacity(values.len() + 1);
        row.push(Value::Int(seq as i64));
        for v in values {
            // The staged format stores text renderings; conversion to the
            // CDW value model happens at COPY against the staging schema.
            row.push(match v {
                Value::Null => Value::Null,
                Value::Str(s) => Value::Str(s.clone()),
                other => Value::Str(other.display_text()),
            });
        }
        self.staged.write_row(&row, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use etlv_protocol::data::{Date, Decimal, LegacyType as T};
    use etlv_protocol::record::RecordEncoder;

    const WIRE_VT: RecordFormat = RecordFormat::Vartext {
        delimiter: b'|',
        quote: b'"',
    };

    fn vt_layout() -> Layout {
        Layout::new("L")
            .field("A", T::VarChar(5))
            .field("B", T::VarChar(50))
            .field("C", T::VarChar(10))
    }

    #[test]
    fn vartext_conversion_prefixes_seq() {
        let conv = DataConverter::new(vt_layout(), WIRE_VT, b'|');
        let out = conv.convert(11, b"x|y|z\na||c\n").unwrap();
        assert_eq!(out.rows, 2);
        assert!(out.errors.is_empty());
        let text = String::from_utf8(out.bytes).unwrap();
        assert_eq!(text, "11|x|y|z\n12|a||c\n");
    }

    #[test]
    fn field_count_errors_skipped_not_fatal() {
        let conv = DataConverter::new(vt_layout(), WIRE_VT, b'|');
        let out = conv.convert(1, b"a|b|c\nwrong|count\nd|e|f\n").unwrap();
        assert_eq!(out.rows, 2);
        assert_eq!(out.errors.len(), 1);
        assert_eq!(out.errors[0].seq, 2);
        assert_eq!(out.errors[0].code, ErrCode::FIELD_COUNT);
        let text = String::from_utf8(out.bytes).unwrap();
        assert_eq!(text, "1|a|b|c\n3|d|e|f\n");
    }

    #[test]
    fn binary_conversion_renders_cdw_text() {
        let layout = Layout::new("L")
            .field("I", T::Integer)
            .field("D", T::Date)
            .field("DEC", T::Decimal(10, 2))
            .field("S", T::VarChar(10));
        let enc = RecordEncoder::new(layout.clone());
        let rows = vec![
            vec![
                Value::Int(42),
                Value::Date(Date::new(2012, 1, 5).unwrap()),
                Value::Decimal(Decimal::parse("3.50").unwrap()),
                Value::Str("hi|there".into()),
            ],
            vec![Value::Null, Value::Null, Value::Null, Value::Str(String::new())],
        ];
        let data = enc.encode_batch(&rows).unwrap();
        let conv = DataConverter::new(layout, RecordFormat::Binary, b'|');
        let out = conv.convert(7, &data).unwrap();
        assert_eq!(out.rows, 2);
        let text = String::from_utf8(out.bytes).unwrap();
        // Dates become ISO, decimals keep scale, delimiter escaped, nulls
        // empty, empty string quoted.
        assert_eq!(text, "7|42|2012-01-05|3.50|hi\\|there\n8||||\"\"\n");
    }

    #[test]
    fn binary_framing_error_is_fatal() {
        let layout = Layout::new("L").field("I", T::Integer);
        let enc = RecordEncoder::new(layout.clone());
        let mut data = enc.encode_batch(&[vec![Value::Int(1)]]).unwrap();
        data.pop();
        let conv = DataConverter::new(layout, RecordFormat::Binary, b'|');
        assert!(conv.convert(1, &data).is_err());
    }

    #[test]
    fn staged_output_parses_back() {
        let conv = DataConverter::new(vt_layout(), WIRE_VT, b'|');
        let out = conv.convert(1, b"a|b|c\n\"\"||z\n").unwrap();
        let staged = StagedFormat::new(b'|');
        let rows = staged.parse(&out.bytes, 4).unwrap();
        assert_eq!(rows[0][0], Value::Str("1".into()));
        assert_eq!(rows[1][1], Value::Str(String::new())); // empty string preserved
        assert_eq!(rows[1][2], Value::Null); // null preserved
    }
}
