//! Deterministic fault injection and retry/backoff policy.
//!
//! Cloud acquisition pipelines fail in the middle: an object-store put
//! tears, the warehouse drops a statement, a client link dies between two
//! chunks. This module gives the virtualizer one seeded description of
//! such failures — a [`FaultPlan`] — and one runtime that applies it — a
//! [`FaultInjector`] — so every chaos scenario is reproducible: the same
//! seed yields the same injected-fault sequence, run after run.
//!
//! The injector itself lives above the fault sites. The lower crates each
//! expose a decision hook at their injection point (`ChaosStore` in
//! `etlv-cloudstore`, the transient hook on `etlv-cdw`'s engine,
//! `ChaosTransport` in `etlv-protocol`); [`FaultInjector`] manufactures
//! all of them from the single plan, keeping seeding and accounting in
//! one place.
//!
//! The consumer side lives here too: [`RetryPolicy`] and [`Backoff`]
//! implement capped exponential backoff with deterministic jitter, and
//! [`retry_with`] is the loop the uploader and the application phase run
//! their statements through.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use etlv_cdw::error::CdwError;
use etlv_cdw::TransientFaultHook;
use etlv_cloudstore::{StoreFault, StoreFaultHook, StoreOp};
use etlv_protocol::frame::MsgKind;
use etlv_protocol::rng::splitmix64;
use etlv_protocol::transport::{TransportFault, TransportFaultHook};

// The retry schedule itself (policy + capped deterministic-jitter
// backoff) moved down to `etlv-protocol::backoff` so the legacy client
// can share it for `SERVER_BUSY` admission backoff; re-exported here so
// existing `etlv_core::fault::{RetryPolicy, Backoff}` paths keep working.
pub use etlv_protocol::backoff::{Backoff, RetryPolicy};

/// When a fault fires at one injection point.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultSpec {
    /// Never fault.
    Never,
    /// Fault the first `n` operations, then behave normally — the classic
    /// "flaky then recovers" shape retry logic must absorb.
    FirstN(u32),
    /// Fault exactly the listed 0-based operation indices.
    AtOps(Vec<u64>),
    /// Fault each operation independently with probability
    /// `rate_ppm / 1_000_000`, decided by hashing (seed, point, index);
    /// at most `limit` faults fire (0 = unlimited).
    Random {
        /// Fault probability in parts per million.
        rate_ppm: u32,
        /// Cap on total faults at this point (0 = unlimited).
        limit: u32,
    },
}

impl FaultSpec {
    /// Whether this spec can ever fire.
    pub fn is_active(&self) -> bool {
        !matches!(self, FaultSpec::Never)
    }
}

/// How injected store-put faults present.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StorePutFailure {
    /// Clean error; nothing written.
    Error,
    /// Torn write: half the object lands, then the put errors.
    PartialWrite,
}

/// How injected transport faults present.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransportFailure {
    /// The data frame vanishes; the sender only notices by timeout.
    Drop,
    /// Half the frame's bytes arrive, then the link is cut.
    Truncate,
    /// The link is cut before the frame leaves.
    Sever,
}

/// A seeded, deterministic description of which faults to inject where.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlan {
    /// Seed for all randomized decisions and backoff jitter.
    pub seed: u64,
    /// Object-store writes (staged-file uploads).
    pub store_put: FaultSpec,
    /// Presentation of store-put faults.
    pub store_put_failure: StorePutFailure,
    /// Object-store reads (COPY pulling staged files).
    pub store_get: FaultSpec,
    /// CDW statement execution (COPY trigger, application DML, DDL).
    pub cdw_exec: FaultSpec,
    /// DataConverter worker failures.
    pub convert: FaultSpec,
    /// Client→server data-chunk frame delivery.
    pub transport: FaultSpec,
    /// Presentation of transport faults.
    pub transport_failure: TransportFailure,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::seeded(0)
    }
}

impl FaultPlan {
    /// A plan with every injection point disabled and the given seed.
    pub fn seeded(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            store_put: FaultSpec::Never,
            store_put_failure: StorePutFailure::Error,
            store_get: FaultSpec::Never,
            cdw_exec: FaultSpec::Never,
            convert: FaultSpec::Never,
            transport: FaultSpec::Never,
            transport_failure: TransportFailure::Drop,
        }
    }
}

/// The injection points a [`FaultInjector`] arbitrates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InjectionPoint {
    /// Object-store put.
    StorePut,
    /// Object-store get.
    StoreGet,
    /// CDW statement execution.
    CdwExec,
    /// Converter-worker chunk conversion.
    Convert,
    /// Transport data-frame delivery.
    Transport,
}

const POINT_COUNT: usize = 5;

impl InjectionPoint {
    fn index(self) -> usize {
        match self {
            InjectionPoint::StorePut => 0,
            InjectionPoint::StoreGet => 1,
            InjectionPoint::CdwExec => 2,
            InjectionPoint::Convert => 3,
            InjectionPoint::Transport => 4,
        }
    }

    /// Salt mixed into random decisions so points with equal specs fault
    /// on different op indices.
    fn salt(self) -> u64 {
        0x5157_0000 + self.index() as u64
    }
}

/// Faults injected so far, per point.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultCounts {
    /// Store-put faults fired.
    pub store_put: u64,
    /// Store-get faults fired.
    pub store_get: u64,
    /// CDW transient faults fired.
    pub cdw_exec: u64,
    /// Converter-worker faults fired.
    pub convert: u64,
    /// Transport frame faults fired.
    pub transport: u64,
}

impl FaultCounts {
    /// Total faults fired across all points.
    pub fn total(&self) -> u64 {
        self.store_put + self.store_get + self.cdw_exec + self.convert + self.transport
    }
}

/// Applies a [`FaultPlan`]: counts operations per injection point and
/// decides, deterministically, which ones fault.
pub struct FaultInjector {
    plan: FaultPlan,
    ops: [AtomicU64; POINT_COUNT],
    injected: [AtomicU64; POINT_COUNT],
}

impl FaultInjector {
    /// New injector for `plan`.
    pub fn new(plan: FaultPlan) -> FaultInjector {
        FaultInjector {
            plan,
            ops: Default::default(),
            injected: Default::default(),
        }
    }

    /// The plan this injector applies.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    fn spec(&self, point: InjectionPoint) -> &FaultSpec {
        match point {
            InjectionPoint::StorePut => &self.plan.store_put,
            InjectionPoint::StoreGet => &self.plan.store_get,
            InjectionPoint::CdwExec => &self.plan.cdw_exec,
            InjectionPoint::Convert => &self.plan.convert,
            InjectionPoint::Transport => &self.plan.transport,
        }
    }

    /// Count one operation at `point` and decide whether it faults.
    pub fn decide(&self, point: InjectionPoint) -> bool {
        let spec = self.spec(point);
        if !spec.is_active() {
            return false;
        }
        let p = point.index();
        let index = self.ops[p].fetch_add(1, Ordering::Relaxed);
        let hit = match spec {
            FaultSpec::Never => false,
            FaultSpec::FirstN(n) => index < *n as u64,
            FaultSpec::AtOps(indices) => indices.contains(&index),
            FaultSpec::Random { rate_ppm, limit } => {
                (*limit == 0 || self.injected[p].load(Ordering::Relaxed) < *limit as u64)
                    && splitmix64(self.plan.seed ^ point.salt() ^ index) % 1_000_000
                        < *rate_ppm as u64
            }
        };
        if hit {
            self.injected[p].fetch_add(1, Ordering::Relaxed);
        }
        hit
    }

    /// Snapshot of faults injected so far.
    pub fn counts(&self) -> FaultCounts {
        let n = |point: InjectionPoint| self.injected[point.index()].load(Ordering::Relaxed);
        FaultCounts {
            store_put: n(InjectionPoint::StorePut),
            store_get: n(InjectionPoint::StoreGet),
            cdw_exec: n(InjectionPoint::CdwExec),
            convert: n(InjectionPoint::Convert),
            transport: n(InjectionPoint::Transport),
        }
    }

    /// Hook for wrapping the object store in a
    /// [`ChaosStore`](etlv_cloudstore::ChaosStore).
    pub fn store_hook(self: &Arc<Self>) -> StoreFaultHook {
        let injector = Arc::clone(self);
        Arc::new(move |op| match op {
            StoreOp::Put => {
                if injector.decide(InjectionPoint::StorePut) {
                    match injector.plan.store_put_failure {
                        StorePutFailure::Error => StoreFault::Error,
                        StorePutFailure::PartialWrite => StoreFault::PartialWrite,
                    }
                } else {
                    StoreFault::None
                }
            }
            StoreOp::Get => {
                if injector.decide(InjectionPoint::StoreGet) {
                    StoreFault::Error
                } else {
                    StoreFault::None
                }
            }
        })
    }

    /// Hook for [`Cdw::set_transient_fault`](etlv_cdw::Cdw).
    pub fn cdw_hook(self: &Arc<Self>) -> TransientFaultHook {
        let injector = Arc::clone(self);
        Arc::new(move || injector.decide(InjectionPoint::CdwExec))
    }

    /// Hook for wrapping a client transport in a
    /// [`ChaosTransport`](etlv_protocol::transport::ChaosTransport). Only
    /// data-chunk frames are counted and faulted — control traffic
    /// (logon, begin/end load) always passes, so scenarios target the
    /// mid-load window.
    pub fn transport_hook(self: &Arc<Self>) -> TransportFaultHook {
        let injector = Arc::clone(self);
        Arc::new(move |_index, kind| {
            if kind != MsgKind::DataChunk {
                return TransportFault::Deliver;
            }
            if injector.decide(InjectionPoint::Transport) {
                match injector.plan.transport_failure {
                    TransportFailure::Drop => TransportFault::Drop,
                    TransportFailure::Truncate => TransportFault::Truncate,
                    TransportFailure::Sever => TransportFault::Sever,
                }
            } else {
                TransportFault::Deliver
            }
        })
    }

    /// Whether the converter worker handling the current chunk should
    /// fail (the pipeline consults this once per chunk).
    pub fn convert_should_fail(&self) -> bool {
        self.decide(InjectionPoint::Convert)
    }
}

/// Run `op`, retrying failures `is_retryable` accepts up to
/// `policy.budget` times with backoff. Increments `retries` once per
/// retry performed; returns the final result either way.
pub fn retry_with<T, E>(
    policy: RetryPolicy,
    seed: u64,
    retries: &mut u64,
    is_retryable: impl Fn(&E) -> bool,
    mut op: impl FnMut() -> Result<T, E>,
) -> Result<T, E> {
    let mut backoff = policy.backoff(seed);
    let mut attempts = 0u32;
    loop {
        match op() {
            Ok(value) => return Ok(value),
            Err(e) if attempts < policy.budget && is_retryable(&e) => {
                attempts += 1;
                *retries += 1;
                std::thread::sleep(backoff.next_delay());
            }
            Err(e) => return Err(e),
        }
    }
}

/// [`retry_with`] specialized to CDW statements: retries
/// [`CdwError::is_retryable`] failures (transient + store I/O) only.
/// Bulk aborts and structural errors surface immediately so the adaptive
/// error handler still sees every per-tuple failure.
pub fn retry_cdw<T>(
    policy: RetryPolicy,
    seed: u64,
    retries: &mut u64,
    op: impl FnMut() -> Result<T, CdwError>,
) -> Result<T, CdwError> {
    retry_with(policy, seed, retries, CdwError::is_retryable, op)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn first_n_and_at_ops_specs() {
        let mut plan = FaultPlan::seeded(1);
        plan.store_put = FaultSpec::FirstN(2);
        plan.cdw_exec = FaultSpec::AtOps(vec![1, 3]);
        let injector = FaultInjector::new(plan);
        let puts: Vec<bool> = (0..4)
            .map(|_| injector.decide(InjectionPoint::StorePut))
            .collect();
        assert_eq!(puts, [true, true, false, false]);
        let execs: Vec<bool> = (0..5)
            .map(|_| injector.decide(InjectionPoint::CdwExec))
            .collect();
        assert_eq!(execs, [false, true, false, true, false]);
        let counts = injector.counts();
        assert_eq!(counts.store_put, 2);
        assert_eq!(counts.cdw_exec, 2);
        assert_eq!(counts.total(), 4);
    }

    #[test]
    fn random_spec_is_seed_deterministic_and_limited() {
        let mut plan = FaultPlan::seeded(42);
        plan.convert = FaultSpec::Random {
            rate_ppm: 250_000,
            limit: 3,
        };
        let run = |plan: FaultPlan| -> Vec<bool> {
            let injector = FaultInjector::new(plan);
            (0..64)
                .map(|_| injector.decide(InjectionPoint::Convert))
                .collect()
        };
        let a = run(plan.clone());
        let b = run(plan.clone());
        assert_eq!(a, b, "same seed, same fault sequence");
        assert_eq!(a.iter().filter(|h| **h).count(), 3, "limit respected");
        plan.seed = 43;
        assert_ne!(run(plan), a, "different seed, different sequence");
    }

    #[test]
    fn retry_with_respects_budget_and_counts() {
        let policy = RetryPolicy {
            budget: 3,
            base: Duration::from_micros(10),
            cap: Duration::from_micros(50),
        };
        // Succeeds on the third attempt.
        let mut retries = 0u64;
        let mut failures_left = 2;
        let result: Result<u32, &str> = retry_with(
            policy,
            0,
            &mut retries,
            |_| true,
            || {
                if failures_left > 0 {
                    failures_left -= 1;
                    Err("flaky")
                } else {
                    Ok(99)
                }
            },
        );
        assert_eq!(result, Ok(99));
        assert_eq!(retries, 2);

        // Budget exhausted: the error surfaces, retries counted.
        let mut retries = 0u64;
        let result: Result<u32, &str> =
            retry_with(policy, 0, &mut retries, |_| true, || Err("down"));
        assert_eq!(result, Err("down"));
        assert_eq!(retries, 3);

        // Non-retryable error fails immediately.
        let mut retries = 0u64;
        let result: Result<u32, &str> =
            retry_with(policy, 0, &mut retries, |_| false, || Err("fatal"));
        assert_eq!(result, Err("fatal"));
        assert_eq!(retries, 0);
    }

    #[test]
    fn retry_cdw_passes_bulk_aborts_through() {
        use etlv_cdw::error::BulkAbortKind;
        let mut retries = 0u64;
        let result: Result<(), CdwError> =
            retry_cdw(RetryPolicy::default(), 0, &mut retries, || {
                Err(CdwError::BulkAbort {
                    kind: BulkAbortKind::Conversion,
                    message: "bad date".into(),
                })
            });
        assert!(result.unwrap_err().is_bulk_abort());
        assert_eq!(retries, 0, "per-tuple errors are not retried");
    }
}
