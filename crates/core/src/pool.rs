//! A freelist of reusable byte buffers for the acquisition pipeline.
//!
//! Converter workers take a buffer, fill it with staged text, and send it
//! downstream; file writers return it after copying into the staging file.
//! Buffers keep their capacity across trips, so after warm-up the convert
//! hot path performs no per-chunk output allocation. The idle list is
//! capped: when the pipeline drains and workers outnumber writers, excess
//! buffers are simply dropped instead of pinning peak memory forever.
//!
//! PR 9 makes recycling observable: a pool built with
//! [`BufferPool::with_obs`] maintains an idle-buffer gauge and hit/miss
//! counters, so Stats and the Profile report show whether the freelist
//! actually absorbs the steady-state allocation traffic.

use parking_lot::Mutex;

use crate::obs::{Counter, Gauge};

/// Observability handles a pool reports through (all feature-aliased, so
/// a `--no-default-features` build carries three ZSTs here).
struct PoolHandles {
    idle: Gauge,
    hits: Counter,
    misses: Counter,
}

/// A capped freelist of `Vec<u8>` buffers.
pub struct BufferPool {
    slots: Mutex<Vec<Vec<u8>>>,
    max_idle: usize,
    obs: Option<PoolHandles>,
}

impl BufferPool {
    /// Pool retaining at most `max_idle` idle buffers.
    pub fn new(max_idle: usize) -> BufferPool {
        BufferPool {
            slots: Mutex::new(Vec::with_capacity(max_idle)),
            max_idle,
            obs: None,
        }
    }

    /// Pool reporting its idle depth and recycle hit/miss traffic through
    /// the given handles (`pool.idle_buffers` / `pool.recycle_hits` /
    /// `pool.recycle_misses` on the node hub).
    pub fn with_obs(max_idle: usize, idle: Gauge, hits: Counter, misses: Counter) -> BufferPool {
        BufferPool {
            slots: Mutex::new(Vec::with_capacity(max_idle)),
            max_idle,
            obs: Some(PoolHandles { idle, hits, misses }),
        }
    }

    /// Take a buffer (empty, capacity retained from its previous trip) or
    /// a fresh one if the freelist is dry.
    pub fn take(&self) -> Vec<u8> {
        let popped = {
            let mut slots = self.slots.lock();
            let popped = slots.pop();
            if let Some(obs) = &self.obs {
                obs.idle.set(slots.len() as u64);
            }
            popped
        };
        if let Some(obs) = &self.obs {
            match popped.is_some() {
                true => obs.hits.inc(),
                false => obs.misses.inc(),
            }
        }
        popped.unwrap_or_default()
    }

    /// Return a buffer to the freelist; dropped if the pool is full.
    pub fn put(&self, mut buf: Vec<u8>) {
        buf.clear();
        let mut slots = self.slots.lock();
        if slots.len() < self.max_idle {
            slots.push(buf);
        }
        if let Some(obs) = &self.obs {
            obs.idle.set(slots.len() as u64);
        }
    }

    /// Number of idle buffers currently held.
    pub fn idle(&self) -> usize {
        self.slots.lock().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffers_recycle_with_capacity() {
        let pool = BufferPool::new(2);
        let mut a = pool.take();
        a.extend_from_slice(&[1, 2, 3, 4]);
        let cap = a.capacity();
        pool.put(a);
        assert_eq!(pool.idle(), 1);
        let b = pool.take();
        assert!(b.is_empty());
        assert_eq!(b.capacity(), cap);
        assert_eq!(pool.idle(), 0);
    }

    #[test]
    fn idle_cap_enforced() {
        let pool = BufferPool::new(1);
        pool.put(Vec::with_capacity(8));
        pool.put(Vec::with_capacity(8));
        assert_eq!(pool.idle(), 1);
    }

    #[test]
    fn observed_pool_counts_hits_misses_and_idle() {
        let reg = crate::obs::MetricsRegistry::new();
        let (idle, hits, misses) = (
            reg.gauge("pool.idle_buffers"),
            reg.counter("pool.recycle_hits"),
            reg.counter("pool.recycle_misses"),
        );
        let pool = BufferPool::with_obs(2, idle.clone(), hits.clone(), misses.clone());
        let a = pool.take(); // dry → miss
        pool.put(a);
        let b = pool.take(); // recycled → hit
        pool.put(b);
        pool.put(Vec::new());
        if crate::obs::enabled() {
            assert_eq!(misses.value(), 1);
            assert_eq!(hits.value(), 1);
            assert_eq!(idle.value(), 2, "gauge tracks the freelist depth");
        }
        assert_eq!(pool.idle(), 2);
    }
}
