//! A freelist of reusable byte buffers for the acquisition pipeline.
//!
//! Converter workers take a buffer, fill it with staged text, and send it
//! downstream; file writers return it after copying into the staging file.
//! Buffers keep their capacity across trips, so after warm-up the convert
//! hot path performs no per-chunk output allocation. The idle list is
//! capped: when the pipeline drains and workers outnumber writers, excess
//! buffers are simply dropped instead of pinning peak memory forever.

use parking_lot::Mutex;

/// A capped freelist of `Vec<u8>` buffers.
#[derive(Debug)]
pub struct BufferPool {
    slots: Mutex<Vec<Vec<u8>>>,
    max_idle: usize,
}

impl BufferPool {
    /// Pool retaining at most `max_idle` idle buffers.
    pub fn new(max_idle: usize) -> BufferPool {
        BufferPool {
            slots: Mutex::new(Vec::with_capacity(max_idle)),
            max_idle,
        }
    }

    /// Take a buffer (empty, capacity retained from its previous trip) or
    /// a fresh one if the freelist is dry.
    pub fn take(&self) -> Vec<u8> {
        self.slots.lock().pop().unwrap_or_default()
    }

    /// Return a buffer to the freelist; dropped if the pool is full.
    pub fn put(&self, mut buf: Vec<u8>) {
        buf.clear();
        let mut slots = self.slots.lock();
        if slots.len() < self.max_idle {
            slots.push(buf);
        }
    }

    /// Number of idle buffers currently held.
    pub fn idle(&self) -> usize {
        self.slots.lock().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffers_recycle_with_capacity() {
        let pool = BufferPool::new(2);
        let mut a = pool.take();
        a.extend_from_slice(&[1, 2, 3, 4]);
        let cap = a.capacity();
        pool.put(a);
        assert_eq!(pool.idle(), 1);
        let b = pool.take();
        assert!(b.is_empty());
        assert_eq!(b.capacity(), cap);
        assert_eq!(pool.idle(), 0);
    }

    #[test]
    fn idle_cap_enforced() {
        let pool = BufferPool::new(1);
        pool.put(Vec::with_capacity(8));
        pool.put(Vec::with_capacity(8));
        assert_eq!(pool.idle(), 1);
    }
}
