//! # etlv-core — the virtualizer
//!
//! Real-time virtualization of legacy ETL pipelines onto a cloud data
//! warehouse (CDW): the from-scratch reproduction of the EDBT 2023 paper's
//! Hyper-Q ETL extension.
//!
//! The virtualizer listens on the **legacy wire protocol**. Unmodified
//! legacy clients and job scripts connect to it as if it were the legacy
//! EDW; behind the protocol boundary every request is cross-compiled and
//! executed on the CDW:
//!
//! ```text
//!  legacy client ──frames──▶ gateway (Alpha) ─▶ Coalescer ─▶ PXC
//!                                │   data chunks: credit + immediate ack
//!                                ▼
//!      DataConverter workers (legacy binary/vartext → staged text)
//!                                ▼
//!      FileWriters (rotate at size threshold, optional compression)
//!                                ▼
//!      Bulk uploader → object store → COPY INTO staging table
//!                                ▼
//!      Application phase: cross-compiled DML (adaptive error handling,
//!      uniqueness emulation) → target table → LoadReport
//! ```
//!
//! Module map (paper section in parentheses):
//!
//! - [`gateway`]: node state + request handlers
//!   (Alpha/Coalescer/PXC, §3).
//! - [`session`]: per-connection serve loop, session registry, and
//!   disconnect-safe teardown (DESIGN §11).
//! - [`server`]: TCP bind and [`server::ServerHandle`] lifecycle —
//!   `shutdown()` and graceful `drain()` (DESIGN §11).
//! - [`reactor`]: the event-driven front end — a fixed pool of
//!   epoll loops multiplexing every TCP session, plus the dispatch
//!   pool for blocking-capable work (DESIGN §16).
//! - [`xcompile`]: SQL cross-compilation, placeholder → staging-column
//!   mapping, staging DDL, type mapping (§3, §6).
//! - [`convert`]: DataConverter — binary/vartext → CDW staged text (§4).
//! - [`pipeline`]: the acquisition pipeline, converter/writer stages (§5).
//! - [`credit`]: the CreditManager back-pressure mechanism (§5, Fig. 4).
//! - [`memory`]: in-flight memory accounting — the guard that turns the
//!   paper's one-million-credit OOM crash into a reportable error (§9).
//! - [`apply`]: DML application strategies — bulk, adaptive, and the
//!   singleton baseline from Figure 11 (§7).
//! - [`adaptive`]: recursive chunk-splitting error handler (§7, Fig. 6).
//! - [`emulate`]: uniqueness emulation on CDWs without native UNIQUE (§7).
//! - [`fault`]: seeded deterministic fault injection + retry/backoff
//!   policy hardening the acquisition pipeline (§9, DESIGN §7).
//! - [`tdf`] / [`cursor`]: the Tabular Data Format and TDFCursor serving
//!   parallel export sessions (§3, §4).
//! - [`obs`]: observability — sharded metrics registry, span journal,
//!   time-series sampler, and the stats snapshot renderers (§9, DESIGN §9).
//! - [`trace`]: causal job tracing — assembles journal events into a
//!   per-job span tree with critical-path attribution (DESIGN §10).
//! - [`report`]: phase-timed job reports and node metrics (§9).
//! - [`workload`]: deterministic workload generators for tests, examples,
//!   and the figure benches.

pub mod adaptive;
pub mod apply;
pub mod config;
pub mod convert;
pub mod credit;
pub mod cursor;
pub mod emulate;
pub mod fault;
pub mod gateway;
pub mod memory;
pub mod obs;
pub mod pipeline;
pub mod pool;
pub mod reactor;
pub mod report;
pub mod server;
pub mod session;
pub mod tdf;
pub mod trace;
pub mod workload;
pub mod xcompile;

pub use apply::ApplyStrategy;
pub use config::{ConverterMode, RuntimeMode, VirtualizerConfig};
pub use credit::{Credit, CreditManager};
pub use fault::{
    Backoff, FaultCounts, FaultInjector, FaultPlan, FaultSpec, InjectionPoint, RetryPolicy,
    StorePutFailure, TransportFailure,
};
pub use gateway::Virtualizer;
pub use memory::{MemoryGauge, OutOfMemory};
pub use obs::{
    HealthReport, Obs, OverloadState, RegistrySnapshot, SloPolicy, SloStatus, SpanEvent, SpanIds,
    TenantHealth, TenantObs,
};
pub use pipeline::{ChunkSink, Pipeline, PipelineReport, RawChunk, WorkerRuntime};
pub use report::{JobReport, NodeMetrics};
pub use server::ServerHandle;
pub use trace::{JobTrace, SpanNode, Stage};
