//! TDFCursor: on-demand, buffered retrieval of export result chunks
//! (paper §3/§4).
//!
//! The cursor executes the cross-compiled SELECT on the CDW, slices the
//! result into TDF chunks, and serves them **by index** to parallel client
//! export sessions. A background prefetcher keeps up to `prefetch` chunks
//! encoded ahead of demand; when a session requests an index beyond the
//! read-ahead window (parallel sessions fetch round-robin, so this is
//! normal), the prefetcher runs forward to cover it rather than stalling
//! the session.

use std::collections::HashMap;
use std::sync::Arc;

use etlv_cdw::{Cdw, CdwError};
use parking_lot::{Condvar, Mutex};

use crate::tdf::TdfPacket;

/// A chunk served to an export session.
#[derive(Debug, Clone, PartialEq)]
pub struct CursorChunk {
    /// Chunk index.
    pub index: u64,
    /// Encoded TDF packet.
    pub packet: TdfPacket,
    /// Whether this is at/after the end of the result.
    pub last: bool,
}

#[derive(Default)]
struct State {
    ready: HashMap<u64, CursorChunk>,
    /// Highest index any consumer has asked for.
    demanded: u64,
}

struct Shared {
    state: Mutex<State>,
    produced: Condvar,
    consumed: Condvar,
    total_chunks: u64,
}

/// The TDF cursor.
pub struct TdfCursor {
    shared: Arc<Shared>,
    columns: Vec<(String, etlv_protocol::data::LegacyType)>,
    rows_total: u64,
}

impl TdfCursor {
    /// Execute `select_cdw` (CDW dialect text) and open a cursor over the
    /// result with `chunk_rows` rows per chunk and `prefetch` chunks of
    /// read-ahead.
    pub fn open(
        cdw: &Cdw,
        select_cdw: &str,
        chunk_rows: u32,
        prefetch: usize,
    ) -> Result<TdfCursor, CdwError> {
        let result = cdw.execute(select_cdw)?;
        let columns: Vec<(String, etlv_protocol::data::LegacyType)> = result
            .columns
            .iter()
            .map(|(n, ty)| (n.clone(), ty.to_legacy()))
            .collect();
        let rows_total = result.rows.len() as u64;
        let chunk_rows = chunk_rows.max(1) as usize;
        let chunks: Vec<Vec<Vec<etlv_protocol::data::Value>>> = if result.rows.is_empty() {
            Vec::new()
        } else {
            result.rows.chunks(chunk_rows).map(|c| c.to_vec()).collect()
        };
        let total_chunks = chunks.len() as u64;

        let shared = Arc::new(Shared {
            state: Mutex::new(State::default()),
            produced: Condvar::new(),
            consumed: Condvar::new(),
            total_chunks,
        });

        // Background prefetcher: encodes chunks into TDF packets, keeping
        // `prefetch` in the buffer — but never stalling behind an index a
        // consumer is already waiting for.
        {
            let shared = Arc::clone(&shared);
            let columns = columns.clone();
            let prefetch = prefetch.max(1);
            std::thread::spawn(move || {
                for (i, rows) in chunks.into_iter().enumerate() {
                    let index = i as u64;
                    let packet = TdfPacket::from_rows(columns.clone(), rows);
                    let chunk = CursorChunk {
                        index,
                        packet,
                        last: index + 1 >= total_chunks,
                    };
                    let mut state = shared.state.lock();
                    while state.ready.len() >= prefetch && index > state.demanded {
                        shared.consumed.wait(&mut state);
                    }
                    state.ready.insert(index, chunk);
                    shared.produced.notify_all();
                }
            });
        }

        Ok(TdfCursor {
            shared,
            columns,
            rows_total,
        })
    }

    /// Result columns (legacy wire types).
    pub fn columns(&self) -> &[(String, etlv_protocol::data::LegacyType)] {
        &self.columns
    }

    /// Total rows in the result.
    pub fn rows_total(&self) -> u64 {
        self.rows_total
    }

    /// Total number of chunks.
    pub fn total_chunks(&self) -> u64 {
        self.shared.total_chunks
    }

    /// Fetch chunk `index`, blocking until the prefetcher has produced it.
    /// Indexes at/after the end return an empty terminal chunk.
    pub fn chunk(&self, index: u64) -> CursorChunk {
        if index >= self.shared.total_chunks {
            return CursorChunk {
                index,
                packet: TdfPacket::from_rows(self.columns.clone(), Vec::new()),
                last: true,
            };
        }
        let mut state = self.shared.state.lock();
        if index > state.demanded {
            state.demanded = index;
            self.shared.consumed.notify_all();
        }
        loop {
            if let Some(chunk) = state.ready.remove(&index) {
                self.shared.consumed.notify_all();
                return chunk;
            }
            self.shared.produced.wait(&mut state);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use etlv_protocol::data::Value;

    fn cdw_with_rows(n: usize) -> Cdw {
        let cdw = Cdw::new();
        cdw.execute("CREATE TABLE T (A INTEGER, B VARCHAR(10))")
            .unwrap();
        for i in 0..n {
            cdw.execute(&format!("INSERT INTO T VALUES ({i}, 'v{i}')"))
                .unwrap();
        }
        cdw
    }

    #[test]
    fn serves_chunks_in_any_order() {
        let cdw = cdw_with_rows(10);
        let cursor = TdfCursor::open(&cdw, "SELECT A, B FROM T ORDER BY A", 3, 2).unwrap();
        assert_eq!(cursor.total_chunks(), 4);
        assert_eq!(cursor.rows_total(), 10);
        // Request out of order — including an index beyond the prefetch
        // window, which must not deadlock.
        let c2 = cursor.chunk(2);
        let c0 = cursor.chunk(0);
        let c3 = cursor.chunk(3);
        let c1 = cursor.chunk(1);
        assert!(!c0.last && !c1.last && !c2.last);
        assert!(c3.last);
        assert_eq!(c3.packet.rows.len(), 1);
        let all: Vec<i64> = [c0, c1, c2, c3]
            .iter()
            .flat_map(|c| c.packet.scalar_rows().unwrap())
            .map(|row| match &row[0] {
                Value::Int(v) => *v,
                _ => panic!(),
            })
            .collect();
        assert_eq!(all, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn reverse_order_consumption() {
        let cdw = cdw_with_rows(20);
        let cursor = TdfCursor::open(&cdw, "SELECT A FROM T ORDER BY A", 2, 1).unwrap();
        // Fetch every chunk strictly backwards with a 1-chunk window.
        let total = cursor.total_chunks();
        let mut rows = 0usize;
        for index in (0..total).rev() {
            rows += cursor.chunk(index).packet.rows.len();
        }
        assert_eq!(rows, 20);
    }

    #[test]
    fn beyond_end_is_empty_terminal() {
        let cdw = cdw_with_rows(2);
        let cursor = TdfCursor::open(&cdw, "SELECT A FROM T", 10, 2).unwrap();
        assert_eq!(cursor.total_chunks(), 1);
        let c5 = cursor.chunk(5);
        assert!(c5.last);
        assert!(c5.packet.rows.is_empty());
    }

    #[test]
    fn empty_result() {
        let cdw = cdw_with_rows(0);
        let cursor = TdfCursor::open(&cdw, "SELECT A FROM T", 10, 2).unwrap();
        assert_eq!(cursor.total_chunks(), 0);
        assert_eq!(cursor.rows_total(), 0);
        let c0 = cursor.chunk(0);
        assert!(c0.last);
    }

    #[test]
    fn parallel_consumers() {
        let cdw = cdw_with_rows(100);
        let cursor = Arc::new(TdfCursor::open(&cdw, "SELECT A FROM T ORDER BY A", 7, 3).unwrap());
        let next = Arc::new(std::sync::atomic::AtomicU64::new(0));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let cursor = Arc::clone(&cursor);
            let next = Arc::clone(&next);
            handles.push(std::thread::spawn(move || {
                let mut rows = 0u64;
                loop {
                    let idx = next.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                    let chunk = cursor.chunk(idx);
                    rows += chunk.packet.rows.len() as u64;
                    if chunk.last {
                        return rows;
                    }
                }
            }));
        }
        let total: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(total, 100);
    }

    #[test]
    fn query_errors_surface() {
        let cdw = Cdw::new();
        assert!(TdfCursor::open(&cdw, "SELECT A FROM MISSING", 10, 2).is_err());
    }
}
