//! The TCP server lifecycle: [`ServerHandle`] over the reactor.
//!
//! `Virtualizer::listen_tcp` binds the port and hands the (nonblocking)
//! listener to the [`crate::reactor`]: a fixed pool of event-loop
//! threads multiplexes every connection, so ten thousand keepalive
//! sessions cost the same thread count as sixteen. The returned handle
//! owns the reactor: [`ServerHandle::shutdown`] stops everything and
//! tears down live sessions (aborting their jobs);
//! [`ServerHandle::drain`] closes the front door, refuses new logons
//! and jobs, blocks on the node's job-drained condvar until in-flight
//! jobs complete (no poll loop), then closes.

use std::io;
use std::net::{SocketAddr, TcpListener};
use std::time::Instant;

use crate::gateway::Virtualizer;
use crate::reactor::Reactor;

/// A running TCP server: the reactor's event-loop threads plus its
/// dispatch pool. Dropping the handle shuts the server down (stop flag
/// + join), so no detached threads outlive it.
pub struct ServerHandle {
    v: Virtualizer,
    addr: SocketAddr,
    reactor: Option<Reactor>,
}

impl Virtualizer {
    /// Bind `addr` and start serving connections on the reactor. The
    /// returned handle owns every spawned thread; drop it (or call
    /// [`ServerHandle::shutdown`] / [`ServerHandle::drain`]) to stop.
    pub fn listen_tcp(&self, addr: &str) -> io::Result<ServerHandle> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local = listener.local_addr()?;
        let reactor = Reactor::start(self.clone(), listener)?;
        Ok(ServerHandle {
            v: self.clone(),
            addr: local,
            reactor: Some(reactor),
        })
    }
}

impl ServerHandle {
    /// The bound listen address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The node this server fronts.
    pub fn virtualizer(&self) -> &Virtualizer {
        &self.v
    }

    /// Stop immediately: no new connections, live sessions are told the
    /// server is shutting down and torn down (their in-flight jobs are
    /// aborted with full resource release), all threads joined.
    pub fn shutdown(mut self) {
        self.stop();
    }

    /// Graceful drain: stop accepting and refuse new logons/jobs, let
    /// in-flight jobs finish (bounded by the config's `drain_timeout`),
    /// then close. Returns `true` when every job completed in time,
    /// `false` when the timeout expired and stragglers were aborted.
    pub fn drain(mut self) -> bool {
        self.v.begin_drain();
        if let Some(reactor) = &self.reactor {
            // Close the port now — drain refuses new connections while
            // existing sessions run their jobs to completion.
            reactor.stop_accepting();
        }
        let deadline = Instant::now() + self.v.config().drain_timeout;
        let drained = self.v.wait_jobs_drained(deadline);
        self.stop();
        drained
    }

    /// Idempotent stop: shut the reactor down and join every thread.
    fn stop(&mut self) {
        if let Some(reactor) = self.reactor.take() {
            reactor.shutdown();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop();
    }
}
