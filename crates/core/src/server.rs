//! The TCP server lifecycle: accept loop and [`ServerHandle`].
//!
//! `Virtualizer::listen_tcp` used to detach an accept thread and forget
//! it — no way to stop accepting, no way to join connections, and accept
//! errors silently `flatten()`ed away. It now returns a [`ServerHandle`]
//! that owns the loop: [`ServerHandle::shutdown`] stops accepting and
//! tears down live sessions (aborting their jobs); [`ServerHandle::drain`]
//! stops accepting, refuses new logons and jobs, lets in-flight jobs run
//! to completion, then closes. Accept failures are counted in
//! `server.accept_errors` instead of being swallowed.

use std::io;
use std::net::{SocketAddr, TcpListener};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use crate::gateway::Virtualizer;

/// How long the accept loop sleeps between polls of the (nonblocking)
/// listener and the stop flag.
const ACCEPT_TICK: Duration = Duration::from_millis(5);

/// A running TCP server: the accept-loop thread plus every connection
/// thread it spawned. Dropping the handle shuts the server down (stop
/// flag + join), so no detached threads outlive it.
pub struct ServerHandle {
    v: Virtualizer,
    addr: SocketAddr,
    /// Stops the accept loop.
    stop_accept: Arc<AtomicBool>,
    /// Stops the session serve loops. Separate from `stop_accept` so
    /// `drain` can close the front door while sessions finish their jobs.
    stop_sessions: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    conns: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl Virtualizer {
    /// Bind `addr` and start the accept loop (one thread per connection).
    /// The returned handle owns every spawned thread; drop it (or call
    /// [`ServerHandle::shutdown`] / [`ServerHandle::drain`]) to stop.
    pub fn listen_tcp(&self, addr: &str) -> io::Result<ServerHandle> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local = listener.local_addr()?;
        let stop_accept = Arc::new(AtomicBool::new(false));
        let stop_sessions = Arc::new(AtomicBool::new(false));
        let conns: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));

        let this = self.clone();
        let accept_stop = Arc::clone(&stop_accept);
        let session_stop = Arc::clone(&stop_sessions);
        let accept_conns = Arc::clone(&conns);
        let accept = std::thread::spawn(move || {
            let server_obs = this.obs().server.clone();
            while !accept_stop.load(Ordering::Relaxed) {
                match listener.accept() {
                    Ok((stream, _)) => {
                        server_obs.connections.inc();
                        // The listener is nonblocking for the poll loop;
                        // accepted sockets go back to blocking reads (the
                        // session loop has its own recv_wait polling).
                        if stream.set_nonblocking(false).is_err() {
                            server_obs.accept_errors.inc();
                            continue;
                        }
                        let this = this.clone();
                        let stop = Arc::clone(&session_stop);
                        let conn = std::thread::spawn(move || {
                            if let Ok(t) = etlv_protocol::transport::TcpTransport::new(stream) {
                                let _ = crate::session::serve_session(&this, t, Some(&stop));
                            }
                        });
                        let mut conns = accept_conns.lock();
                        // Reap finished connection threads so the vec
                        // doesn't grow with every short-lived client.
                        conns.retain(|h| !h.is_finished());
                        conns.push(conn);
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        std::thread::sleep(ACCEPT_TICK);
                    }
                    Err(_) => {
                        // One bad accept (e.g. EMFILE, aborted handshake)
                        // must not kill the server; count it and go on.
                        server_obs.accept_errors.inc();
                        std::thread::sleep(ACCEPT_TICK);
                    }
                }
            }
        });
        Ok(ServerHandle {
            v: self.clone(),
            addr: local,
            stop_accept,
            stop_sessions,
            accept: Some(accept),
            conns,
        })
    }
}

impl ServerHandle {
    /// The bound listen address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The node this server fronts.
    pub fn virtualizer(&self) -> &Virtualizer {
        &self.v
    }

    /// Stop immediately: no new connections, live sessions are told the
    /// server is shutting down and torn down (their in-flight jobs are
    /// aborted with full resource release), all threads joined.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    /// Graceful drain: stop accepting and refuse new logons/jobs, let
    /// in-flight jobs finish (bounded by the config's `drain_timeout`),
    /// then close. Returns `true` when every job completed in time,
    /// `false` when the timeout expired and stragglers were aborted.
    pub fn drain(mut self) -> bool {
        self.v.begin_drain();
        self.stop_accept.store(true, Ordering::Relaxed);
        let deadline = Instant::now() + self.v.config().drain_timeout;
        let drained = loop {
            if self.v.active_jobs() == 0 {
                break true;
            }
            if Instant::now() >= deadline {
                break false;
            }
            std::thread::sleep(ACCEPT_TICK);
        };
        self.stop_and_join();
        drained
    }

    /// Idempotent stop: raise both flags, join the accept loop, join
    /// every connection thread.
    fn stop_and_join(&mut self) {
        self.stop_accept.store(true, Ordering::Relaxed);
        self.stop_sessions.store(true, Ordering::Relaxed);
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
        loop {
            // Joining can race a final spawn from the accept loop only
            // before the accept thread is joined — by here the vec can
            // only shrink, but drain it under the lock in rounds anyway.
            let batch: Vec<JoinHandle<()>> = self.conns.lock().drain(..).collect();
            if batch.is_empty() {
                break;
            }
            for handle in batch {
                let _ = handle.join();
            }
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}
