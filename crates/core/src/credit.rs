//! The CreditManager — the paper's back-pressure mechanism (§5, Figure 4).
//!
//! One CreditManager exists per virtualizer node and is shared by all
//! concurrent jobs. A session handler must acquire a credit before it
//! hands a data chunk to conversion; the credit travels with the chunk
//! through the converter and file-writer stages and is returned to the
//! pool just before the data is written out. When the pool is empty the
//! acquiring session blocks — which, because the ack for the *previous*
//! chunk has already been sent, stalls exactly one chunk of client
//! progress per session: lightweight, self-clocking back-pressure.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};

use crate::obs::CreditObs;

struct Pool {
    available: Mutex<usize>,
    returned: Condvar,
    capacity: usize,
    /// Times an acquirer had to block (pool was empty).
    stalls: AtomicU64,
    /// Total time spent blocked, micros.
    stall_micros: AtomicU64,
    /// Total credits ever acquired.
    acquired: AtomicU64,
    /// Optional registry handles: per-stall latency histogram plus
    /// acquire/stall counters (the atomics above remain authoritative
    /// for `NodeMetrics`).
    obs: Option<CreditObs>,
}

/// A shared credit pool.
#[derive(Clone)]
pub struct CreditManager {
    pool: Arc<Pool>,
}

/// One credit. Dropping it returns it to the pool — on every path,
/// including panics and injected faults; the guard, not the happy path,
/// owns the release, so the pool can never leak.
#[must_use = "dropping the Credit immediately returns it to the pool"]
pub struct Credit {
    pool: Arc<Pool>,
}

impl CreditManager {
    /// Pool with `capacity` credits (clamped to ≥ 1).
    pub fn new(capacity: usize) -> CreditManager {
        CreditManager::build(capacity, None)
    }

    /// Pool reporting into pre-registered observability handles.
    pub fn with_obs(capacity: usize, obs: CreditObs) -> CreditManager {
        CreditManager::build(capacity, Some(obs))
    }

    fn build(capacity: usize, obs: Option<CreditObs>) -> CreditManager {
        let capacity = capacity.max(1);
        CreditManager {
            pool: Arc::new(Pool {
                available: Mutex::new(capacity),
                returned: Condvar::new(),
                capacity,
                stalls: AtomicU64::new(0),
                stall_micros: AtomicU64::new(0),
                acquired: AtomicU64::new(0),
                obs,
            }),
        }
    }

    /// Acquire a credit, blocking while the pool is empty.
    #[must_use = "the credit returns to the pool the moment it is dropped"]
    pub fn acquire(&self) -> Credit {
        let mut available = self.pool.available.lock();
        if *available == 0 {
            self.pool.stalls.fetch_add(1, Ordering::Relaxed);
            let start = Instant::now();
            while *available == 0 {
                self.pool.returned.wait(&mut available);
            }
            let stalled = start.elapsed();
            self.pool
                .stall_micros
                .fetch_add(stalled.as_micros() as u64, Ordering::Relaxed);
            if let Some(obs) = &self.pool.obs {
                obs.stalls.inc();
                obs.stall_us.record_duration(stalled);
            }
        }
        *available -= 1;
        self.pool.acquired.fetch_add(1, Ordering::Relaxed);
        if let Some(obs) = &self.pool.obs {
            obs.acquires.inc();
        }
        Credit {
            pool: Arc::clone(&self.pool),
        }
    }

    /// Acquire with a timeout; `None` if the pool stayed empty.
    pub fn try_acquire_for(&self, timeout: Duration) -> Option<Credit> {
        let deadline = Instant::now() + timeout;
        let mut available = self.pool.available.lock();
        while *available == 0 {
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            if self
                .pool
                .returned
                .wait_until(&mut available, deadline)
                .timed_out()
                && *available == 0
            {
                return None;
            }
        }
        *available -= 1;
        self.pool.acquired.fetch_add(1, Ordering::Relaxed);
        if let Some(obs) = &self.pool.obs {
            obs.acquires.inc();
        }
        Some(Credit {
            pool: Arc::clone(&self.pool),
        })
    }

    /// Pool capacity.
    pub fn capacity(&self) -> usize {
        self.pool.capacity
    }

    /// Credits currently available.
    pub fn available(&self) -> usize {
        *self.pool.available.lock()
    }

    /// Credits currently in flight.
    pub fn in_flight(&self) -> usize {
        self.capacity() - self.available()
    }

    /// Number of acquisitions that had to block.
    pub fn stalls(&self) -> u64 {
        self.pool.stalls.load(Ordering::Relaxed)
    }

    /// Total blocked time across all acquirers.
    pub fn stall_time(&self) -> Duration {
        Duration::from_micros(self.pool.stall_micros.load(Ordering::Relaxed))
    }

    /// Total credits ever acquired.
    pub fn total_acquired(&self) -> u64 {
        self.pool.acquired.load(Ordering::Relaxed)
    }
}

impl Drop for Credit {
    fn drop(&mut self) {
        let mut available = self.pool.available.lock();
        *available += 1;
        debug_assert!(*available <= self.pool.capacity, "credit over-return");
        drop(available);
        self.pool.returned.notify_one();
    }
}

impl std::fmt::Debug for CreditManager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CreditManager")
            .field("capacity", &self.capacity())
            .field("available", &self.available())
            .field("stalls", &self.stalls())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn acquire_and_return() {
        let mgr = CreditManager::new(2);
        let a = mgr.acquire();
        let b = mgr.acquire();
        assert_eq!(mgr.available(), 0);
        assert_eq!(mgr.in_flight(), 2);
        drop(a);
        assert_eq!(mgr.available(), 1);
        drop(b);
        assert_eq!(mgr.available(), 2);
        assert_eq!(mgr.total_acquired(), 2);
    }

    #[test]
    fn blocks_until_returned() {
        let mgr = CreditManager::new(1);
        let held = mgr.acquire();
        let mgr2 = mgr.clone();
        let t = thread::spawn(move || {
            let _c = mgr2.acquire(); // blocks until main drops
            mgr2.available()
        });
        thread::sleep(Duration::from_millis(30));
        drop(held);
        let avail_inside = t.join().unwrap();
        assert_eq!(avail_inside, 0);
        assert_eq!(mgr.available(), 1);
        assert_eq!(mgr.stalls(), 1);
    }

    #[test]
    fn try_acquire_times_out() {
        let mgr = CreditManager::new(1);
        let _held = mgr.acquire();
        let got = mgr.try_acquire_for(Duration::from_millis(20));
        assert!(got.is_none());
        assert_eq!(mgr.available(), 0);
    }

    #[test]
    fn try_acquire_succeeds_when_available() {
        let mgr = CreditManager::new(1);
        let c = mgr.try_acquire_for(Duration::from_millis(1));
        assert!(c.is_some());
    }

    #[test]
    fn stall_accounting() {
        let mgr = CreditManager::new(1);
        let held = mgr.acquire();
        let mgr2 = mgr.clone();
        let t = thread::spawn(move || {
            let _c = mgr2.acquire();
        });
        thread::sleep(Duration::from_millis(30));
        drop(held);
        t.join().unwrap();
        assert_eq!(mgr.stalls(), 1);
        assert!(mgr.stall_time() >= Duration::from_millis(20));
    }

    #[test]
    fn panicking_holder_still_returns_credit() {
        let mgr = CreditManager::new(2);
        let mgr2 = mgr.clone();
        let t = thread::spawn(move || {
            let _held = mgr2.acquire();
            panic!("worker died mid-chunk");
        });
        assert!(t.join().is_err());
        // Unwinding dropped the guard: no leak.
        assert_eq!(mgr.available(), 2);
    }

    #[test]
    fn obs_handles_record_acquires_and_stalls() {
        let obs = crate::obs::Obs::default();
        let mgr = CreditManager::with_obs(1, obs.credit.clone());
        let held = mgr.acquire();
        let mgr2 = mgr.clone();
        let t = thread::spawn(move || {
            let _c = mgr2.acquire();
        });
        thread::sleep(Duration::from_millis(30));
        drop(held);
        t.join().unwrap();
        if crate::obs::enabled() {
            assert_eq!(obs.credit.acquires.value(), 2);
            assert_eq!(obs.credit.stalls.value(), 1);
            let stall = obs.credit.stall_us.snapshot("credit.stall_us");
            assert_eq!(stall.count, 1);
            assert!(stall.max >= 20_000, "stall_us max {}", stall.max);
        }
        // The built-in atomics stay authoritative either way.
        assert_eq!(mgr.stalls(), 1);
        assert_eq!(mgr.total_acquired(), 2);
    }

    #[test]
    fn many_threads_never_exceed_capacity() {
        let mgr = CreditManager::new(4);
        let peak = Arc::new(AtomicU64::new(0));
        let current = Arc::new(AtomicU64::new(0));
        let mut handles = Vec::new();
        for _ in 0..16 {
            let mgr = mgr.clone();
            let peak = Arc::clone(&peak);
            let current = Arc::clone(&current);
            handles.push(thread::spawn(move || {
                for _ in 0..50 {
                    let _c = mgr.acquire();
                    let now = current.fetch_add(1, Ordering::SeqCst) + 1;
                    peak.fetch_max(now, Ordering::SeqCst);
                    std::hint::spin_loop();
                    current.fetch_sub(1, Ordering::SeqCst);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert!(peak.load(Ordering::SeqCst) <= 4);
        assert_eq!(mgr.available(), 4);
        assert_eq!(mgr.total_acquired(), 16 * 50);
    }
}
