//! DML application strategies (paper §7 and the Figure 11 baseline).

use etlv_cdw::error::{BulkAbortKind, CdwError};
use etlv_cdw::Cdw;
use etlv_protocol::data::Value;
use etlv_protocol::errcode::ErrCode;
use etlv_protocol::layout::Layout;
use etlv_sql::ast::Literal;
use etlv_sql::transform::bind_placeholders;

use crate::adaptive::{
    apply_adaptive, attribute_field, AdaptiveOutcome, AdaptiveParams, ErrorRows, RecordedError,
};
use crate::emulate::UniqueEmulation;
use crate::fault::retry_cdw;
use crate::obs::JobObs;
use crate::xcompile::CompiledDml;

/// How the application phase executes the job's DML.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ApplyStrategy {
    /// One set-oriented statement over the whole staging table; any error
    /// fails the job. Fastest when the data is known-clean.
    Bulk,
    /// Set-oriented with adaptive error handling (the paper's design).
    BulkAdaptive,
    /// Row-at-a-time singleton inserts with immediate error logging — the
    /// baseline system of Figure 11.
    Singleton,
}

/// Apply the compiled DML to staging rows `[lo, hi)`.
#[allow(clippy::too_many_arguments)]
pub fn apply(
    cdw: &Cdw,
    compiled: &CompiledDml,
    emulation: Option<&UniqueEmulation>,
    layout: &Layout,
    lo: u64,
    hi: u64,
    strategy: ApplyStrategy,
    params: AdaptiveParams,
    obs: Option<&JobObs>,
) -> Result<AdaptiveOutcome, CdwError> {
    match strategy {
        ApplyStrategy::Bulk => {
            let mut outcome = AdaptiveOutcome::default();
            if let Some(emu) = emulation {
                outcome.statements += 1;
                let violations = retry_cdw(
                    params.retry,
                    params.retry_seed,
                    &mut outcome.transient_retries,
                    || emu.violations_in_range(cdw, lo, hi),
                )?;
                if violations > 0 {
                    return Err(emu.violation_error());
                }
            }
            outcome.statements += 1;
            let stmt = compiled.range_stmt(Some(lo), Some(hi));
            let result = retry_cdw(
                params.retry,
                params.retry_seed ^ 1,
                &mut outcome.transient_retries,
                || cdw.execute_stmt(&stmt),
            )?;
            outcome.applied = result.affected;
            Ok(outcome)
        }
        ApplyStrategy::BulkAdaptive => {
            apply_adaptive(cdw, compiled, emulation, layout, lo, hi, params, obs)
        }
        ApplyStrategy::Singleton => {
            apply_singleton(cdw, compiled, emulation, layout, lo, hi, params)
        }
    }
}

/// The Figure 11 baseline: fetch the staging rows once, then apply the
/// original legacy DML one tuple at a time with values bound as literals.
/// Each tuple costs at least one CDW round trip (plus a uniqueness check
/// when emulation is active), which is exactly why the paper's bulk
/// approach wins at low error rates.
fn apply_singleton(
    cdw: &Cdw,
    compiled: &CompiledDml,
    emulation: Option<&UniqueEmulation>,
    layout: &Layout,
    lo: u64,
    hi: u64,
    params: AdaptiveParams,
) -> Result<AdaptiveOutcome, CdwError> {
    let mut outcome = AdaptiveOutcome::default();
    outcome.statements += 1;
    let scan = compiled.staging_scan(Some(lo), Some(hi));
    let rows = retry_cdw(
        params.retry,
        params.retry_seed ^ 0x51,
        &mut outcome.transient_retries,
        || cdw.execute_stmt(&scan),
    )?
    .rows;

    for row in rows {
        let Some(Value::Int(seq)) = row.first() else {
            return Err(CdwError::Eval("staging row without __SEQ".into()));
        };
        let seq = *seq as u64;
        let tuple = row[1..].to_vec();

        // Emulated uniqueness check for this one tuple.
        if let Some(emu) = emulation {
            outcome.statements += 1;
            let violations = retry_cdw(
                params.retry,
                params.retry_seed ^ seq,
                &mut outcome.transient_retries,
                || emu.violations_in_range(cdw, seq, seq + 1),
            )?;
            if violations > 0 {
                outcome.errors.push(RecordedError {
                    code: ErrCode::UNIQUENESS,
                    field: None,
                    message: format!(
                        "Duplicate row violates unique constraint during DML on {}, row number: {seq}",
                        compiled.target.dotted()
                    ),
                    rows: ErrorRows::Single(seq),
                    uv_tuple: Some(tuple),
                });
                continue;
            }
        }

        let bound = bind_placeholders(&compiled.original, |name| {
            layout
                .field_index(name)
                .filter(|i| *i < tuple.len())
                .map(|i| Literal::from_value(&tuple[i]))
        });
        outcome.statements += 1;
        let attempt = retry_cdw(
            params.retry,
            params.retry_seed ^ seq ^ (1 << 32),
            &mut outcome.transient_retries,
            || cdw.execute_stmt(&bound),
        );
        match attempt {
            Ok(r) => outcome.applied += r.affected,
            Err(CdwError::BulkAbort { kind, message }) => {
                let (code, uv_tuple) = if kind == BulkAbortKind::Uniqueness {
                    (ErrCode::UNIQUENESS, Some(tuple.clone()))
                } else {
                    (ErrCode::DML_CONVERSION, None)
                };
                let kind_text = if message.to_ascii_lowercase().contains("date") {
                    "DATE conversion"
                } else {
                    "Conversion"
                };
                outcome.errors.push(RecordedError {
                    code,
                    field: attribute_field(compiled, layout, &tuple),
                    message: format!(
                        "{kind_text} failed during DML on {}, row number: {seq}",
                        compiled.target.dotted()
                    ),
                    rows: ErrorRows::Single(seq),
                    uv_tuple,
                });
            }
            Err(other) => return Err(other),
        }
    }
    Ok(outcome)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::emulate;
    use crate::xcompile::{compile_dml, staging_ddl};
    use etlv_protocol::data::LegacyType as T;

    fn setup() -> (Cdw, CompiledDml, Layout) {
        let cdw = Cdw::new();
        cdw.execute(
            "CREATE TABLE PROD.CUSTOMER (CUST_ID VARCHAR(5), CUST_NAME VARCHAR(50), JOIN_DATE DATE, PRIMARY KEY (CUST_ID))",
        )
        .unwrap();
        let layout = Layout::new("L")
            .field("CUST_ID", T::VarChar(5))
            .field("CUST_NAME", T::VarChar(50))
            .field("JOIN_DATE", T::VarChar(10));
        let compiled = compile_dml(
            "insert into PROD.CUSTOMER values (trim(:CUST_ID), trim(:CUST_NAME), cast(:JOIN_DATE as DATE format 'YYYY-MM-DD'))",
            &layout,
            "STG",
        )
        .unwrap();
        cdw.execute(&staging_ddl("STG", &layout)).unwrap();
        for (seq, id, name, date) in [
            (1, "123", "Smith", "2012-01-01"),
            (2, "456", "Brown", "xxxx"),
            (3, "789", "Brown", "yyyyy"),
            (4, "123", "Jones", "2012-12-01"),
            (5, "157", "Jones", "2012-12-01"),
        ] {
            cdw.execute(&format!(
                "INSERT INTO STG VALUES ({seq}, '{id}', '{name}', '{date}')"
            ))
            .unwrap();
        }
        (cdw, compiled, layout)
    }

    #[test]
    fn singleton_matches_legacy_semantics() {
        let (cdw, compiled, layout) = setup();
        let emu = emulate::plan(&cdw, &compiled).unwrap();
        let outcome = apply(
            &cdw,
            &compiled,
            emu.as_ref(),
            &layout,
            1,
            6,
            ApplyStrategy::Singleton,
            AdaptiveParams::default(),
            None,
        )
        .unwrap();
        assert_eq!(outcome.applied, 2);
        assert_eq!(outcome.errors.len(), 3);
        // Errors in row order for singleton.
        assert_eq!(outcome.errors[0].rows, ErrorRows::Single(2));
        assert_eq!(outcome.errors[1].rows, ErrorRows::Single(3));
        assert_eq!(outcome.errors[2].rows, ErrorRows::Single(4));
        assert_eq!(outcome.errors[2].code, ErrCode::UNIQUENESS);
        // Per-row statement cost: scan + 5×(check + insert) minus the
        // skipped insert for the UV row.
        assert!(outcome.statements >= 10, "{}", outcome.statements);
    }

    #[test]
    fn bulk_fails_fast_on_dirty_data() {
        let (cdw, compiled, layout) = setup();
        let emu = emulate::plan(&cdw, &compiled).unwrap();
        let err = apply(
            &cdw,
            &compiled,
            emu.as_ref(),
            &layout,
            1,
            6,
            ApplyStrategy::Bulk,
            AdaptiveParams::default(),
            None,
        )
        .unwrap_err();
        assert!(err.is_bulk_abort());
        assert_eq!(cdw.table_len("PROD.CUSTOMER").unwrap(), 0);
    }

    #[test]
    fn bulk_succeeds_on_clean_range() {
        let (cdw, compiled, layout) = setup();
        let emu = emulate::plan(&cdw, &compiled).unwrap();
        // Row 1 alone is clean.
        let outcome = apply(
            &cdw,
            &compiled,
            emu.as_ref(),
            &layout,
            1,
            2,
            ApplyStrategy::Bulk,
            AdaptiveParams::default(),
            None,
        )
        .unwrap();
        assert_eq!(outcome.applied, 1);
        assert_eq!(outcome.statements, 2);
    }

    #[test]
    fn strategies_agree_on_outcome() {
        // Adaptive and singleton must load the same rows and find the same
        // errors (modulo ordering) when max_errors is unlimited.
        let (cdw_a, compiled_a, layout) = setup();
        let emu_a = emulate::plan(&cdw_a, &compiled_a).unwrap();
        let adaptive = apply(
            &cdw_a,
            &compiled_a,
            emu_a.as_ref(),
            &layout,
            1,
            6,
            ApplyStrategy::BulkAdaptive,
            AdaptiveParams::default(),
            None,
        )
        .unwrap();

        let (cdw_s, compiled_s, layout_s) = setup();
        let emu_s = emulate::plan(&cdw_s, &compiled_s).unwrap();
        let singleton = apply(
            &cdw_s,
            &compiled_s,
            emu_s.as_ref(),
            &layout_s,
            1,
            6,
            ApplyStrategy::Singleton,
            AdaptiveParams::default(),
            None,
        )
        .unwrap();

        assert_eq!(adaptive.applied, singleton.applied);
        let mut a_rows: Vec<_> = adaptive.errors.iter().map(|e| (e.rows, e.code)).collect();
        let mut s_rows: Vec<_> = singleton.errors.iter().map(|e| (e.rows, e.code)).collect();
        a_rows.sort_by_key(|(r, _)| match r {
            ErrorRows::Single(s) => *s,
            ErrorRows::Range(a, _) => *a,
        });
        s_rows.sort_by_key(|(r, _)| match r {
            ErrorRows::Single(s) => *s,
            ErrorRows::Range(a, _) => *a,
        });
        assert_eq!(a_rows, s_rows);
        // ...but adaptive does it in far fewer statements on mostly-clean
        // data? (Here data is 60% dirty; the interesting claim is equality
        // of results. Statement-count comparisons live in the benches.)
    }
}
