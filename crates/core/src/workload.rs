//! Deterministic workload generators.
//!
//! The paper's experiments run "real-world jobs" we do not have; these
//! generators produce synthetic equivalents with the knobs the
//! experiments sweep: row count, average row width (Figures 7/8), column
//! count (Figure 10's 50-column table), and seeded error rates — invalid
//! dates and duplicate keys — for the error-handling study (Figure 11).
//! Everything is seeded, so tests can assert exact error attributions.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Specification of the canonical customer-load workload (the Example 2.1
/// shape: id, name, date, plus a payload column that pads rows to the
/// requested width).
#[derive(Debug, Clone)]
pub struct CustomerSpec {
    /// Number of input rows.
    pub rows: u64,
    /// Approximate bytes per input row (payload pads to this).
    pub row_bytes: usize,
    /// Fraction of rows whose JOIN_DATE is invalid text (0.0–1.0).
    pub date_error_rate: f64,
    /// Fraction of rows whose CUST_ID duplicates an earlier row (0.0–1.0).
    pub dup_rate: f64,
    /// Parallel data sessions the generated script requests.
    pub sessions: u16,
    /// Declare a unique primary index on CUST_ID in the target DDL.
    pub unique_key: bool,
    /// RNG seed.
    pub seed: u64,
}

impl Default for CustomerSpec {
    fn default() -> Self {
        CustomerSpec {
            rows: 1000,
            row_bytes: 100,
            date_error_rate: 0.0,
            dup_rate: 0.0,
            sessions: 2,
            unique_key: true,
            seed: 42,
        }
    }
}

/// A generated workload: the job script, its input data, and ground truth
/// about the injected errors.
#[derive(Debug, Clone)]
pub struct Workload {
    /// The import job script (dot-command source).
    pub script: String,
    /// The input file contents (vartext).
    pub data: Vec<u8>,
    /// Legacy-dialect DDL creating the target table.
    pub target_ddl: String,
    /// Name of the target table.
    pub target: String,
    /// Input rows generated.
    pub rows: u64,
    /// 1-based row numbers with invalid dates.
    pub bad_date_rows: Vec<u64>,
    /// 1-based row numbers that duplicate an earlier CUST_ID.
    pub dup_rows: Vec<u64>,
}

impl Workload {
    /// Total injected erroneous rows.
    pub fn error_rows(&self) -> u64 {
        (self.bad_date_rows.len() + self.dup_rows.len()) as u64
    }
}

/// Generate the customer workload.
pub fn customer_workload(spec: &CustomerSpec) -> Workload {
    let mut rng = StdRng::seed_from_u64(spec.seed);
    // Fixed overhead: id (≤8) + name (≤12) + date (10) + 3 delimiters.
    let payload_width = spec.row_bytes.saturating_sub(34).max(1);

    let mut data = Vec::with_capacity(spec.rows as usize * spec.row_bytes);
    let mut bad_date_rows = Vec::new();
    let mut dup_rows = Vec::new();

    for i in 1..=spec.rows {
        let is_dup = i > 1 && rng.gen_bool(spec.dup_rate.clamp(0.0, 1.0));
        let id = if is_dup {
            dup_rows.push(i);
            rng.gen_range(1..i)
        } else {
            i
        };
        let is_bad_date = rng.gen_bool(spec.date_error_rate.clamp(0.0, 1.0));
        let date = if is_bad_date {
            bad_date_rows.push(i);
            format!("bad{:05}", rng.gen_range(0..100_000))
        } else {
            let year = 2000 + (rng.gen_range(0..20i32));
            let month = rng.gen_range(1..=12u8);
            let day = rng.gen_range(1..=28u8);
            format!("{year:04}-{month:02}-{day:02}")
        };
        let name = format!("name{:07}", rng.gen_range(0..10_000_000));
        let payload: String = (0..payload_width)
            .map(|_| (b'a' + rng.gen_range(0..26u8)) as char)
            .collect();
        data.extend_from_slice(format!("C{id:07}|{name}|{date}|{payload}\n").as_bytes());
    }

    let payload_decl = payload_width.clamp(1, 60_000);
    let unique_clause = if spec.unique_key {
        " UNIQUE PRIMARY INDEX (CUST_ID)"
    } else {
        ""
    };
    let target_ddl = format!(
        "CREATE TABLE PROD.CUSTOMER (CUST_ID VARCHAR(8) NOT NULL, CUST_NAME VARCHAR(12), JOIN_DATE DATE, PAYLOAD VARCHAR({payload_decl})){unique_clause}"
    );
    let script = format!(
        r#".logon edw/loader,secret;
.sessions {sessions};
.layout CustLayout;
.field CUST_ID varchar(8);
.field CUST_NAME varchar(12);
.field JOIN_DATE varchar(10);
.field PAYLOAD varchar({payload_decl});
.begin import tables PROD.CUSTOMER
errortables PROD.CUSTOMER_ET PROD.CUSTOMER_UV;
.dml label InsApply;
insert into PROD.CUSTOMER values (
    trim(:CUST_ID), trim(:CUST_NAME),
    cast(:JOIN_DATE as DATE format 'YYYY-MM-DD'), :PAYLOAD );
.import infile input.txt
    format vartext '|' layout CustLayout
    apply InsApply;
.end load
"#,
        sessions = spec.sessions,
    );

    Workload {
        script,
        data,
        target_ddl,
        target: "PROD.CUSTOMER".into(),
        rows: spec.rows,
        bad_date_rows,
        dup_rows,
    }
}

/// Generate a wide-table workload: `cols` payload columns of `col_width`
/// bytes each (the Figure 10 experiment loads a 50-column table).
pub fn wide_workload(rows: u64, cols: usize, col_width: usize, seed: u64) -> Workload {
    let mut rng = StdRng::seed_from_u64(seed);
    let cols = cols.max(2);
    let mut data = Vec::with_capacity(rows as usize * cols * (col_width + 1));
    for i in 1..=rows {
        let mut line = format!("R{i:08}");
        for _ in 1..cols {
            line.push('|');
            for _ in 0..col_width {
                line.push((b'a' + rng.gen_range(0..26u8)) as char);
            }
        }
        line.push('\n');
        data.extend_from_slice(line.as_bytes());
    }

    let mut fields = String::from(".field K varchar(9);\n");
    let mut ddl_cols = String::from("K VARCHAR(9)");
    let mut placeholders = String::from(":K");
    for c in 1..cols {
        fields.push_str(&format!(".field C{c} varchar({col_width});\n"));
        ddl_cols.push_str(&format!(", C{c} VARCHAR({col_width})"));
        placeholders.push_str(&format!(", :C{c}"));
    }
    let target_ddl = format!("CREATE TABLE PROD.WIDE ({ddl_cols})");
    let script = format!(
        r#".logon edw/loader,secret;
.layout WideLayout;
{fields}.begin import tables PROD.WIDE
errortables PROD.WIDE_ET PROD.WIDE_UV;
.dml label Go;
insert into PROD.WIDE values ({placeholders});
.import infile input.txt
    format vartext '|' layout WideLayout
    apply Go;
.end load
"#
    );

    Workload {
        script,
        data,
        target_ddl,
        target: "PROD.WIDE".into(),
        rows,
        bad_date_rows: Vec::new(),
        dup_rows: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use etlv_script::{compile, parse_script, JobPlan};

    #[test]
    fn deterministic_by_seed() {
        let spec = CustomerSpec {
            rows: 50,
            date_error_rate: 0.2,
            dup_rate: 0.1,
            ..Default::default()
        };
        let a = customer_workload(&spec);
        let b = customer_workload(&spec);
        assert_eq!(a.data, b.data);
        assert_eq!(a.bad_date_rows, b.bad_date_rows);
        let c = customer_workload(&CustomerSpec { seed: 7, ..spec });
        assert_ne!(a.data, c.data);
    }

    #[test]
    fn script_compiles() {
        let w = customer_workload(&CustomerSpec::default());
        let JobPlan::Import(job) = compile(&parse_script(&w.script).unwrap()).unwrap() else {
            panic!()
        };
        assert_eq!(job.target, "PROD.CUSTOMER");
        assert_eq!(job.layout.arity(), 4);
        assert_eq!(job.sessions, 2);
    }

    #[test]
    fn row_width_roughly_honored() {
        for width in [60usize, 250, 1000] {
            let w = customer_workload(&CustomerSpec {
                rows: 100,
                row_bytes: width,
                ..Default::default()
            });
            let avg = w.data.len() / 100;
            assert!(
                avg.abs_diff(width) <= width / 4 + 8,
                "width {width} -> avg {avg}"
            );
        }
    }

    #[test]
    fn error_rates_roughly_honored() {
        let w = customer_workload(&CustomerSpec {
            rows: 2000,
            date_error_rate: 0.10,
            dup_rate: 0.05,
            ..Default::default()
        });
        let bad = w.bad_date_rows.len() as f64 / 2000.0;
        let dup = w.dup_rows.len() as f64 / 2000.0;
        assert!((0.06..=0.14).contains(&bad), "bad rate {bad}");
        assert!((0.02..=0.08).contains(&dup), "dup rate {dup}");
        // Row counts line up with the data.
        let lines = w
            .data
            .split(|&b| b == b'\n')
            .filter(|l| !l.is_empty())
            .count();
        assert_eq!(lines as u64, w.rows);
    }

    #[test]
    fn wide_workload_shape() {
        let w = wide_workload(10, 50, 8, 1);
        let JobPlan::Import(job) = compile(&parse_script(&w.script).unwrap()).unwrap() else {
            panic!()
        };
        assert_eq!(job.layout.arity(), 50);
        let first_line = w.data.split(|&b| b == b'\n').next().unwrap();
        assert_eq!(first_line.iter().filter(|&&b| b == b'|').count(), 49);
    }

    #[test]
    fn clean_workload_has_no_errors() {
        let w = customer_workload(&CustomerSpec {
            rows: 100,
            ..Default::default()
        });
        assert_eq!(w.error_rows(), 0);
    }
}
