//! The acquisition pipeline (paper §5, Figures 2/4).
//!
//! Stage 1 — the session handler (PXC) — receives a raw chunk, acquires a
//! **credit**, reserves **memory**, pushes the chunk to stage 2, and acks
//! the client immediately. Stage 2 — **DataConverter** workers — decode and
//! convert chunks concurrently (a fixed pool, or one worker per in-flight
//! chunk in [`ConverterMode::PerChunk`]). Stage 3 — **FileWriters** —
//! serialize converted chunks into staging files, rotating at the size
//! threshold and finalizing (compressing) full files; the credit is
//! returned *just before the write*, exactly as Figure 4 shows. Stage 4 —
//! the **uploader** — ships finalized files to the object store.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

use bytes::Bytes;
use crossbeam::channel::{bounded, Receiver, Sender};
use etlv_cloudstore::BulkLoader;
use parking_lot::Mutex;

use crate::config::VirtualizerConfig;
use crate::convert::{AcqError, ConvertScratch, DataConverter};
use crate::credit::Credit;
use crate::fault::{retry_with, FaultInjector};
use crate::memory::MemGuard;
use crate::obs::{Obs, SpanIds};
use crate::pool::BufferPool;

/// A raw chunk travelling from a session handler into the pipeline. The
/// credit and memory reservation ride along.
pub struct RawChunk {
    /// 1-based input row number of the first record.
    pub base_seq: u64,
    /// Raw wire bytes.
    pub data: Bytes,
    /// The back-pressure credit (returned just before the file write).
    pub credit: Credit,
    /// The in-flight memory reservation (released once staged).
    pub memory: MemGuard,
    /// When the session handler enqueued the chunk — converter workers
    /// derive the `chunk.queue` wait span from this.
    pub enqueued: Instant,
}

struct Converted {
    bytes: Vec<u8>,
    rows: u32,
    credit: Credit,
    memory: MemGuard,
}

/// Final accounting for a drained pipeline.
#[derive(Debug, Default, Clone)]
pub struct PipelineReport {
    /// Rows converted and staged.
    pub rows_staged: u64,
    /// Bytes written into staging files (pre-compression).
    pub bytes_staged: u64,
    /// Staged files uploaded (object keys).
    pub files: Vec<String>,
    /// Per-record acquisition errors (→ ET table).
    pub acq_errors: Vec<AcqError>,
    /// Fatal pipeline failures (conversion framing, upload).
    pub fatal: Vec<String>,
    /// Upload attempts retried after transient store failures.
    pub upload_retries: u64,
    /// Converter worker threads spawned over the pipeline's lifetime —
    /// with the persistent pool this equals the configured worker count,
    /// never the chunk count.
    pub converter_workers: usize,
}

/// A running acquisition pipeline for one job.
pub struct Pipeline {
    input: Option<Sender<RawChunk>>,
    collector: JoinHandle<PipelineReport>,
}

impl Pipeline {
    /// Spawn the pipeline for one load job. `prefix` is the object-key
    /// prefix staged files upload under (e.g. `job42/`); `job` is the load
    /// token stamped on every journal event the stages emit; `ids` is the
    /// job's root span — every stage span the pipeline emits is minted as
    /// a child of it, so the trace assembler can hang chunk.queue /
    /// chunk.convert / file.upload under the job root.
    #[allow(clippy::too_many_arguments)]
    pub fn spawn(
        config: &VirtualizerConfig,
        converter: DataConverter,
        loader: Arc<BulkLoader>,
        prefix: String,
        injector: Option<Arc<FaultInjector>>,
        obs: Arc<Obs>,
        job: u64,
        ids: SpanIds,
    ) -> Pipeline {
        let workers = config.converter_workers();
        let sim_cost = config.simulated_convert_cost_per_mb;
        let retry_policy = config.retry_policy();
        let retry_seed = config.fault_seed();
        let (chunk_tx, chunk_rx) = bounded::<RawChunk>(config.credits.min(1 << 16));
        let (conv_tx, conv_rx) = bounded::<Converted>(workers.clamp(1, 1 << 16));
        let (file_tx, file_rx) = bounded::<Vec<u8>>(config.file_writers * 2);

        let shared_errors: Arc<Mutex<Vec<AcqError>>> = Arc::new(Mutex::new(Vec::new()));
        let shared_fatal: Arc<Mutex<Vec<String>>> = Arc::new(Mutex::new(Vec::new()));

        // ---- Stage 2: converters -------------------------------------
        // One persistent pool for both scheduling modes: `converter_workers()`
        // long-lived threads pulling from the bounded chunk channel. In
        // per-chunk mode the pool is sized to the credit count (capped by
        // `max_converter_threads`), which preserves the paper's
        // one-worker-per-in-flight-chunk concurrency without creating an
        // OS thread per chunk. Output buffers recycle through a freelist so
        // the steady-state convert loop never touches the allocator.
        let buffers = Arc::new(BufferPool::new(workers + config.file_writers.max(1) + 2));
        let workers_started = Arc::new(AtomicUsize::new(0));
        let mut conv_handles: Vec<JoinHandle<()>> = Vec::with_capacity(workers);
        for _ in 0..workers {
            let rx = chunk_rx.clone();
            let tx = conv_tx.clone();
            let converter = converter.clone();
            let errors = Arc::clone(&shared_errors);
            let fatal = Arc::clone(&shared_fatal);
            let injector = injector.clone();
            let buffers = Arc::clone(&buffers);
            let started = Arc::clone(&workers_started);
            let obs = Arc::clone(&obs);
            conv_handles.push(std::thread::spawn(move || {
                started.fetch_add(1, Ordering::Relaxed);
                let mut scratch = ConvertScratch::new();
                while let Ok(chunk) = rx.recv() {
                    convert_one(
                        &converter,
                        chunk,
                        &tx,
                        &errors,
                        &fatal,
                        sim_cost,
                        injector.as_deref(),
                        &buffers,
                        &mut scratch,
                        &obs,
                        job,
                        ids,
                    );
                }
            }));
        }
        drop(chunk_rx);
        drop(conv_tx);

        // ---- Stage 3: file writers ------------------------------------
        let threshold = config.file_size_threshold;
        let mut writer_handles = Vec::new();
        for _ in 0..config.file_writers.max(1) {
            let conv_rx: Receiver<Converted> = conv_rx.clone();
            let file_tx = file_tx.clone();
            let buffers = Arc::clone(&buffers);
            let obs = Arc::clone(&obs);
            writer_handles.push(std::thread::spawn(move || -> (u64, u64) {
                let mut current: Vec<u8> = Vec::with_capacity(threshold.min(1 << 22));
                let mut rows = 0u64;
                let mut bytes = 0u64;
                while let Ok(converted) = conv_rx.recv() {
                    let Converted {
                        bytes: staged,
                        rows: staged_rows,
                        credit,
                        memory,
                    } = converted;
                    // Figure 4: the credit returns to the pool just before
                    // the data is written out.
                    drop(credit);
                    current.extend_from_slice(&staged);
                    rows += staged_rows as u64;
                    bytes += staged.len() as u64;
                    // The chunk's output buffer goes back to the freelist
                    // for the next conversion.
                    buffers.put(staged);
                    // Data now lives in the staging file: release the
                    // in-flight reservation.
                    drop(memory);
                    if current.len() >= threshold {
                        let full = std::mem::replace(
                            &mut current,
                            Vec::with_capacity(threshold.min(1 << 22)),
                        );
                        obs.pipeline.files_rotated.inc();
                        obs.journal.emit_span(
                            "file.rotate",
                            ids.child(obs.journal.next_span_id()),
                            job,
                            0,
                            0,
                            full.len() as u64,
                            std::time::Duration::ZERO,
                        );
                        if file_tx.send(full).is_err() {
                            break;
                        }
                    }
                }
                if !current.is_empty() {
                    let _ = file_tx.send(current);
                }
                (rows, bytes)
            }));
        }
        drop(conv_rx);
        drop(file_tx);

        // ---- Stage 4: uploader ----------------------------------------
        // Each part gets `retry_budget` additional attempts with capped,
        // seeded backoff: a torn or failed put is simply re-put (object
        // stores overwrite whole objects, so a retry erases a partial
        // write). When the budget runs dry the failure is recorded and the
        // job fails cleanly at EndLoad — never a hang.
        let uploader: JoinHandle<(Vec<String>, Vec<String>, u64)> = {
            let loader = Arc::clone(&loader);
            let obs = Arc::clone(&obs);
            std::thread::spawn(move || {
                let mut keys = Vec::new();
                let mut failures = Vec::new();
                let mut retries = 0u64;
                let mut part = 0u32;
                while let Ok(file) = file_rx.recv() {
                    let key = format!("{prefix}part-{part:05}");
                    part += 1;
                    let retries_before = retries;
                    let upload_started = std::time::Instant::now();
                    let attempt = retry_with(
                        retry_policy,
                        retry_seed ^ part as u64,
                        &mut retries,
                        |_| true,
                        || loader.upload_part_from(&key, &file),
                    );
                    let elapsed = upload_started.elapsed();
                    obs.pipeline.upload_us.record_duration(elapsed);
                    let part_retries = retries - retries_before;
                    if part_retries > 0 {
                        obs.pipeline.upload_retries.add(part_retries);
                        obs.journal.emit_span(
                            "upload.retry",
                            ids.child(obs.journal.next_span_id()),
                            job,
                            0,
                            part as u64,
                            part_retries,
                            std::time::Duration::ZERO,
                        );
                    }
                    match attempt {
                        Ok(_) => {
                            obs.pipeline.upload_parts.inc();
                            obs.pipeline.upload_bytes.add(file.len() as u64);
                            obs.journal.emit_span(
                                "file.upload",
                                ids.child(obs.journal.next_span_id()),
                                job,
                                0,
                                part as u64,
                                file.len() as u64,
                                elapsed,
                            );
                            keys.push(key)
                        }
                        Err(e) => failures.push(format!("upload {key}: {e}")),
                    }
                }
                (keys, failures, retries)
            })
        };

        // ---- Collector: joins all stages, assembles the report --------
        let collector = std::thread::spawn(move || {
            for worker in conv_handles {
                let _ = worker.join();
            }
            let mut rows_staged = 0u64;
            let mut bytes_staged = 0u64;
            for writer in writer_handles {
                if let Ok((rows, bytes)) = writer.join() {
                    rows_staged += rows;
                    bytes_staged += bytes;
                }
            }
            let (files, upload_failures, upload_retries) = uploader.join().unwrap_or_default();
            let mut report = PipelineReport {
                rows_staged,
                bytes_staged,
                files,
                acq_errors: std::mem::take(&mut *shared_errors.lock()),
                fatal: std::mem::take(&mut *shared_fatal.lock()),
                upload_retries,
                converter_workers: workers_started.load(Ordering::Relaxed),
            };
            report.fatal.extend(upload_failures);
            report.acq_errors.sort_by_key(|e| e.seq);
            report
        });

        Pipeline {
            input: Some(chunk_tx),
            collector,
        }
    }

    /// A sender for pushing chunks in (one clone per data session).
    pub fn sender(&self) -> Sender<RawChunk> {
        self.input.as_ref().expect("pipeline open").clone()
    }

    /// Close the input and wait for the pipeline to drain.
    pub fn finish(mut self) -> PipelineReport {
        drop(self.input.take());
        self.collector
            .join()
            .unwrap_or_else(|_| PipelineReport {
                fatal: vec!["pipeline collector panicked".into()],
                ..Default::default()
            })
    }
}

#[allow(clippy::too_many_arguments)]
fn convert_one(
    converter: &DataConverter,
    chunk: RawChunk,
    tx: &Sender<Converted>,
    errors: &Mutex<Vec<AcqError>>,
    fatal: &Mutex<Vec<String>>,
    sim_cost_per_mb: std::time::Duration,
    injector: Option<&FaultInjector>,
    buffers: &BufferPool,
    scratch: &mut ConvertScratch,
    obs: &Obs,
    job: u64,
    ids: SpanIds,
) {
    // How long the chunk sat on the bounded channel before a worker picked
    // it up — the trace's queue_wait stage.
    let queue_wait = chunk.enqueued.elapsed();
    obs.journal.emit_span(
        "chunk.queue",
        ids.child(obs.journal.next_span_id()),
        job,
        0,
        chunk.base_seq,
        chunk.data.len() as u64,
        queue_wait,
    );
    if !sim_cost_per_mb.is_zero() {
        let cost = sim_cost_per_mb.mul_f64(chunk.data.len() as f64 / 1_000_000.0);
        std::thread::sleep(cost);
    }
    if injector.is_some_and(|i| i.convert_should_fail()) {
        obs.pipeline.convert_errors.inc();
        fatal.lock().push(format!(
            "injected fault: converter worker failed on chunk at row {}",
            chunk.base_seq
        ));
        // Dropping the chunk releases its credit and memory reservation —
        // the guards, not the happy path, own the cleanup.
        return;
    }
    let mut out = buffers.take();
    // A panicking converter must not wedge the pipeline: contain it, record
    // a fatal error, and let the chunk's guards release credit + memory.
    let convert_started = std::time::Instant::now();
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        converter.convert_into(chunk.base_seq, &chunk.data, &mut out, scratch)
    }));
    let elapsed = convert_started.elapsed();
    let result = match outcome {
        Ok(result) => result,
        Err(panic) => {
            let what = panic
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| panic.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "unknown panic".into());
            obs.pipeline.convert_errors.inc();
            fatal
                .lock()
                .push(format!("converter worker panicked: {what}"));
            buffers.put(out);
            return;
        }
    };
    match result {
        Ok(rows) => {
            if scratch.has_errors() {
                scratch.drain_errors_into(&mut errors.lock());
            }
            obs.pipeline.convert_chunks.inc();
            obs.pipeline.convert_rows.add(rows as u64);
            obs.pipeline.convert_bytes.add(out.len() as u64);
            obs.pipeline.convert_us.record_duration(elapsed);
            obs.journal.emit_span(
                "chunk.convert",
                ids.child(obs.journal.next_span_id()),
                job,
                0,
                chunk.base_seq,
                rows as u64,
                elapsed,
            );
            let mut memory = chunk.memory;
            memory.shrink_to(out.len());
            let _ = tx.send(Converted {
                bytes: out,
                rows,
                credit: chunk.credit,
                memory,
            });
        }
        Err(e) => {
            obs.pipeline.convert_errors.inc();
            fatal.lock().push(e.to_string());
            buffers.put(out);
            // Credit and memory release on drop.
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ConverterMode;
    use crate::credit::CreditManager;
    use crate::memory::MemoryGauge;
    use etlv_cloudstore::{LoaderConfig, MemStore, ObjectStore};
    use etlv_protocol::data::LegacyType as T;
    use etlv_protocol::layout::Layout;
    use etlv_protocol::message::RecordFormat;

    const WIRE_VT: RecordFormat = RecordFormat::Vartext {
        delimiter: b'|',
        quote: b'"',
    };

    fn layout() -> Layout {
        Layout::new("L")
            .field("A", T::VarChar(10))
            .field("B", T::VarChar(10))
    }

    fn run_pipeline(config: &VirtualizerConfig, nchunks: u64, rows_per_chunk: u64) -> (PipelineReport, Arc<MemStore>) {
        let store = Arc::new(MemStore::new());
        let loader = Arc::new(BulkLoader::new(
            Arc::clone(&store) as Arc<dyn ObjectStore>,
            LoaderConfig {
                bucket: config.staging_bucket.clone(),
                compress: config.compress_staged,
                throttle: config.upload_throttle,
            },
        ));
        let converter = DataConverter::new(layout(), WIRE_VT, config.staging_delimiter);
        let pipeline = Pipeline::spawn(
            config,
            converter,
            loader,
            "job1/".into(),
            None,
            Arc::new(Obs::default()),
            1,
            SpanIds::default(),
        );
        let credits = CreditManager::new(config.credits);
        let memory = MemoryGauge::new(config.memory_cap);
        let sender = pipeline.sender();
        for c in 0..nchunks {
            let mut data = Vec::new();
            for r in 0..rows_per_chunk {
                data.extend_from_slice(format!("a{c}|b{r}\n").as_bytes());
            }
            let credit = credits.acquire();
            let mem = memory.reserve(data.len()).unwrap();
            sender
                .send(RawChunk {
                    base_seq: c * rows_per_chunk + 1,
                    data: data.into(),
                    credit,
                    memory: mem,
                    enqueued: Instant::now(),
                })
                .unwrap();
        }
        drop(sender);
        let report = pipeline.finish();
        assert_eq!(credits.available(), config.credits, "credits all returned");
        assert_eq!(memory.in_flight(), 0, "memory all released");
        (report, store)
    }

    #[test]
    fn stages_all_rows_small_files() {
        let config = VirtualizerConfig {
            file_size_threshold: 64, // force many rotations
            file_writers: 3,
            ..Default::default()
        };
        let (report, store) = run_pipeline(&config, 10, 20);
        assert!(report.fatal.is_empty(), "{:?}", report.fatal);
        assert_eq!(report.rows_staged, 200);
        assert!(report.files.len() > 1, "expected rotation, got {}", report.files.len());
        assert_eq!(store.object_count(&config.staging_bucket), report.files.len());
        // Every staged row is present exactly once across all parts.
        let mut total_lines = 0;
        for key in &report.files {
            let data = store.get(&config.staging_bucket, key).unwrap();
            total_lines += data.split(|&b| b == b'\n').filter(|l| !l.is_empty()).count();
        }
        assert_eq!(total_lines, 200);
    }

    #[test]
    fn per_chunk_mode_stages_everything() {
        let config = VirtualizerConfig {
            converter_mode: ConverterMode::PerChunk,
            credits: 8,
            ..Default::default()
        };
        let (report, _) = run_pipeline(&config, 20, 5);
        assert!(report.fatal.is_empty());
        assert_eq!(report.rows_staged, 100);
        // The pool is persistent: 8 workers for 20 chunks, not 20 threads.
        assert_eq!(report.converter_workers, 8);
    }

    #[test]
    fn workers_spawned_once_per_pipeline_not_per_chunk() {
        let config = VirtualizerConfig {
            converter_mode: ConverterMode::Pool(3),
            ..Default::default()
        };
        let (report, _) = run_pipeline(&config, 50, 4);
        assert_eq!(report.rows_staged, 200);
        assert_eq!(report.converter_workers, 3);

        // Per-chunk mode with a credit count above the thread cap: the
        // pool clamps instead of spawning unbounded threads.
        let config = VirtualizerConfig {
            converter_mode: ConverterMode::PerChunk,
            credits: 10_000,
            max_converter_threads: 4,
            ..Default::default()
        };
        let (report, _) = run_pipeline(&config, 30, 2);
        assert_eq!(report.rows_staged, 60);
        assert_eq!(report.converter_workers, 4);
    }

    #[test]
    fn compressed_staging() {
        let config = VirtualizerConfig {
            compress_staged: true,
            ..Default::default()
        };
        let (report, store) = run_pipeline(&config, 4, 50);
        assert_eq!(report.rows_staged, 200);
        let key = &report.files[0];
        let raw = store.get(&config.staging_bucket, key).unwrap();
        assert!(etlv_cloudstore::compress::is_compressed(&raw));
    }

    #[test]
    fn acquisition_errors_collected_sorted() {
        let config = VirtualizerConfig::default();
        let store = Arc::new(MemStore::new());
        let loader = Arc::new(BulkLoader::new(
            Arc::clone(&store) as Arc<dyn ObjectStore>,
            LoaderConfig::new(config.staging_bucket.clone()),
        ));
        let converter = DataConverter::new(layout(), WIRE_VT, b'|');
        let pipeline = Pipeline::spawn(
            &config,
            converter,
            loader,
            "j/".into(),
            None,
            Arc::new(Obs::default()),
            1,
            SpanIds::default(),
        );
        let credits = CreditManager::new(4);
        let memory = MemoryGauge::new(0);
        let sender = pipeline.sender();
        // Chunk 2 has a bad record (field count).
        for (base, data) in [(1u64, &b"a|b\n"[..]), (2, b"only_one_field\n"), (3, b"c|d\n")] {
            sender
                .send(RawChunk {
                    base_seq: base,
                    data: Bytes::copy_from_slice(data),
                    credit: credits.acquire(),
                    memory: memory.reserve(data.len()).unwrap(),
                    enqueued: Instant::now(),
                })
                .unwrap();
        }
        drop(sender);
        let report = pipeline.finish();
        assert_eq!(report.rows_staged, 2);
        assert_eq!(report.acq_errors.len(), 1);
        assert_eq!(report.acq_errors[0].seq, 2);
    }

    #[test]
    fn uploader_retries_flaky_store_then_succeeds() {
        use crate::fault::{FaultPlan, FaultSpec};
        use etlv_cloudstore::ChaosStore;

        let mut plan = FaultPlan::seeded(11);
        plan.store_put = FaultSpec::FirstN(2);
        let config = VirtualizerConfig {
            file_size_threshold: 64,
            retry_base_delay: std::time::Duration::from_micros(50),
            retry_max_delay: std::time::Duration::from_micros(500),
            fault_plan: Some(plan),
            ..Default::default()
        };
        let injector = Arc::new(FaultInjector::new(config.fault_plan.clone().unwrap()));

        let mem = Arc::new(MemStore::new());
        let chaos: Arc<dyn ObjectStore> = Arc::new(ChaosStore::new(
            Arc::clone(&mem) as Arc<dyn ObjectStore>,
            injector.store_hook(),
        ));
        let loader = Arc::new(BulkLoader::new(
            chaos,
            LoaderConfig::new(config.staging_bucket.clone()),
        ));
        let converter = DataConverter::new(layout(), WIRE_VT, b'|');
        let pipeline = Pipeline::spawn(
            &config,
            converter,
            loader,
            "j/".into(),
            Some(Arc::clone(&injector)),
            Arc::new(Obs::default()),
            1,
            SpanIds::default(),
        );
        let credits = CreditManager::new(config.credits);
        let memory = MemoryGauge::new(0);
        let sender = pipeline.sender();
        for c in 0..6u64 {
            let data: Vec<u8> = format!("a{c}|b{c}\n").repeat(10).into_bytes();
            let credit = credits.acquire();
            let mem_guard = memory.reserve(data.len()).unwrap();
            sender
                .send(RawChunk {
                    base_seq: c * 10 + 1,
                    data: data.into(),
                    credit,
                    memory: mem_guard,
                    enqueued: Instant::now(),
                })
                .unwrap();
        }
        drop(sender);
        let report = pipeline.finish();
        assert!(report.fatal.is_empty(), "{:?}", report.fatal);
        assert_eq!(report.upload_retries, 2, "both injected failures retried");
        assert_eq!(report.rows_staged, 60);
        assert_eq!(
            mem.object_count(&config.staging_bucket),
            report.files.len(),
            "every part landed despite the flaky store"
        );
        assert_eq!(credits.available(), config.credits);
        assert_eq!(memory.in_flight(), 0);
    }

    #[test]
    fn injected_converter_failure_fails_cleanly() {
        use crate::fault::{FaultPlan, FaultSpec};

        let mut config = VirtualizerConfig::default();
        let mut plan = FaultPlan::seeded(3);
        plan.convert = FaultSpec::AtOps(vec![1]);
        config.fault_plan = Some(plan);
        let injector = Arc::new(FaultInjector::new(config.fault_plan.clone().unwrap()));

        let store = Arc::new(MemStore::new());
        let loader = Arc::new(BulkLoader::new(
            Arc::clone(&store) as Arc<dyn ObjectStore>,
            LoaderConfig::new(config.staging_bucket.clone()),
        ));
        // One pool worker so chunk order = op order.
        config.converter_mode = ConverterMode::Pool(1);
        let converter = DataConverter::new(layout(), WIRE_VT, b'|');
        let pipeline = Pipeline::spawn(
            &config,
            converter,
            loader,
            "j/".into(),
            Some(injector),
            Arc::new(Obs::default()),
            1,
            SpanIds::default(),
        );
        let credits = CreditManager::new(4);
        let memory = MemoryGauge::new(0);
        let sender = pipeline.sender();
        for base in [1u64, 2, 3] {
            sender
                .send(RawChunk {
                    base_seq: base,
                    data: Bytes::copy_from_slice(b"a|b\n"),
                    credit: credits.acquire(),
                    memory: memory.reserve(4).unwrap(),
                    enqueued: Instant::now(),
                })
                .unwrap();
        }
        drop(sender);
        let report = pipeline.finish();
        assert_eq!(report.fatal.len(), 1, "{:?}", report.fatal);
        assert!(report.fatal[0].contains("injected fault"), "{:?}", report.fatal);
        assert_eq!(report.rows_staged, 2, "other chunks still staged");
        // The dropped chunk's credit and memory came back via the guards.
        assert_eq!(credits.available(), 4);
        assert_eq!(memory.in_flight(), 0);
    }

    #[test]
    fn back_pressure_blocks_when_out_of_credits() {
        // 1 credit: the second acquire blocks until the pipeline returns
        // the first — proving credits flow through to the writer stage.
        let config = VirtualizerConfig {
            credits: 1,
            ..Default::default()
        };
        let (report, _) = run_pipeline(&config, 8, 2);
        assert_eq!(report.rows_staged, 16);
    }
}
