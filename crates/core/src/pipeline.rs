//! The acquisition pipeline (paper §5, Figures 2/4), multiplexed over a
//! node-wide worker runtime.
//!
//! Stage 1 — the session handler (PXC) — receives a raw chunk, acquires a
//! **credit**, reserves **memory**, pushes the chunk onto its job's queue,
//! and acks the client immediately. Stage 2 — **DataConverter** workers —
//! decode and convert chunks. Stage 3 — **FileWriters** — append converted
//! chunks to the job's staging buffer, rotating at the size threshold and
//! uploading full parts; the credit is returned *just before the write*,
//! exactly as Figure 4 shows.
//!
//! Unlike the original per-job design (a fresh set of converter/writer/
//! uploader threads per `BeginLoad`), a [`WorkerRuntime`] is created once
//! per node and shared by every concurrent job: `converter_workers()`
//! converter threads and `file_writers` writer threads scan the registered
//! jobs' queues round-robin, so N concurrent jobs still cost a fixed
//! number of OS threads and no job can starve another of workers. A
//! [`Pipeline`] is now the lightweight per-job handle onto that runtime:
//! it registers the job at `BeginLoad`, collects its accounting, and
//! deregisters at `finish()` (clean drain) or `abort()` (discard, used by
//! session teardown when a client disconnects mid-load).

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use bytes::Bytes;
use etlv_cloudstore::BulkLoader;
use parking_lot::{Condvar, Mutex};

use crate::config::VirtualizerConfig;
use crate::convert::{AcqError, ConvertScratch, DataConverter};
use crate::credit::Credit;
use crate::fault::{retry_with, FaultInjector, RetryPolicy};
use crate::memory::MemGuard;
use crate::obs::{CpuTimer, Obs, SpanIds, TenantObs, TrackedCondvar, TrackedMutex};
use crate::pool::BufferPool;

/// A raw chunk travelling from a session handler into the pipeline. The
/// credit and memory reservation ride along.
pub struct RawChunk {
    /// 1-based input row number of the first record.
    pub base_seq: u64,
    /// Raw wire bytes.
    pub data: Bytes,
    /// The back-pressure credit (returned just before the file write).
    pub credit: Credit,
    /// The in-flight memory reservation (released once staged).
    pub memory: MemGuard,
    /// When the session handler enqueued the chunk — converter workers
    /// derive the `chunk.queue` wait span from this.
    pub enqueued: Instant,
}

struct Converted {
    bytes: Vec<u8>,
    rows: u32,
    credit: Credit,
    memory: MemGuard,
    /// The raw wire size of the source chunk — what the tenant's
    /// `memory_held` gauge was incremented by at admission, so retirement
    /// can decrement the same amount after the reservation shrank.
    raw_len: u64,
}

/// Final accounting for a drained pipeline.
#[derive(Debug, Default, Clone)]
pub struct PipelineReport {
    /// Rows converted and staged.
    pub rows_staged: u64,
    /// Bytes written into staging files (pre-compression).
    pub bytes_staged: u64,
    /// Staged files uploaded (object keys, part order).
    pub files: Vec<String>,
    /// Per-record acquisition errors (→ ET table).
    pub acq_errors: Vec<AcqError>,
    /// Fatal pipeline failures (conversion framing, upload).
    pub fatal: Vec<String>,
    /// Upload attempts retried after transient store failures.
    pub upload_retries: u64,
    /// Converter worker threads serving the job — with the shared runtime
    /// this is the node's fixed pool size, never the chunk or job count.
    pub converter_workers: usize,
}

/// Per-job state registered with the runtime. Queue fields are only ever
/// touched under the runtime's state lock (see [`RtShared::state`]);
/// accounting fields are atomics or their own locks.
struct JobRt {
    job: u64,
    ids: SpanIds,
    /// The owning session's tenant metric block: stage latencies land
    /// here, and the held-resource gauges are decremented on retirement.
    tenant: Arc<TenantObs>,
    converter: DataConverter,
    loader: Arc<BulkLoader>,
    prefix: String,
    chunks: Mutex<VecDeque<RawChunk>>,
    converted: Mutex<VecDeque<Converted>>,
    /// Chunks accepted via the sink.
    queued: AtomicU64,
    /// Chunks fully processed: staged, failed, or discarded.
    retired: AtomicU64,
    /// No further chunks will be accepted.
    closed: AtomicBool,
    /// Discard instead of staging (session teardown).
    aborted: AtomicBool,
    done_lock: Mutex<()>,
    done: Condvar,
    /// The job's current staging-file accumulation buffer.
    accum: Mutex<Vec<u8>>,
    errors: Mutex<Vec<AcqError>>,
    fatal: Mutex<Vec<String>>,
    rows_staged: AtomicU64,
    bytes_staged: AtomicU64,
    upload_retries: AtomicU64,
    next_part: AtomicU32,
    files: Mutex<Vec<(u32, String)>>,
}

impl JobRt {
    fn drained(&self) -> bool {
        self.retired.load(Ordering::Acquire) >= self.queued.load(Ordering::Acquire)
    }
}

/// Round-robin job table: worker threads scan from the saved cursor so
/// every registered job gets chunks converted and written at the same
/// rate regardless of arrival order.
struct RtState {
    jobs: Vec<Arc<JobRt>>,
    next_convert: usize,
    next_write: usize,
}

struct RtShared {
    /// Guards the job table *and* every per-job queue operation: pushes,
    /// pops, and the closed/aborted transitions all serialize here, which
    /// is what makes the wait/notify protocol race-free. The critical
    /// sections are a queue op plus a notify — conversion and upload work
    /// happen outside it. Tracked (site `runtime.state`) because this is
    /// the runtime's hottest shared lock: every chunk crosses it twice.
    state: TrackedMutex<RtState>,
    /// Converters sleep here; signalled once per raw chunk enqueued.
    /// Tracked (site `runtime.raw_work`): the wait histogram is how long
    /// converters sat idle waiting for work.
    raw_work: TrackedCondvar,
    /// Writers sleep here; signalled once per converted chunk enqueued.
    /// Separate condvars (with `notify_one` on the push paths) keep a
    /// chunk push from waking the whole pool just to have all but one
    /// thread find nothing and sleep again. Tracked as `runtime.conv_work`.
    conv_work: TrackedCondvar,
    stop: AtomicBool,
    converters: usize,
    writers: usize,
    threshold: usize,
    sim_cost: Duration,
    retry_policy: RetryPolicy,
    retry_seed: u64,
    injector: Option<Arc<FaultInjector>>,
    buffers: Arc<BufferPool>,
    obs: Arc<Obs>,
    threads_started: AtomicUsize,
}

impl RtShared {
    /// Mark one chunk of `job` fully processed and wake its drain waiter.
    /// `raw_bytes` is the chunk's original wire size; every retirement
    /// path — staged, failed, discarded — releases the tenant's
    /// held-resource gauges by exactly what admission charged.
    fn retire(&self, job: &JobRt, raw_bytes: u64) {
        job.tenant.credit_held.sub(1);
        job.tenant.memory_held.sub(raw_bytes);
        let _guard = job.done_lock.lock();
        job.retired.fetch_add(1, Ordering::Release);
        job.done.notify_all();
    }

    /// Pop the next raw chunk, round-robin across jobs; blocks until work
    /// arrives or the runtime stops.
    fn next_chunk(&self) -> Option<(Arc<JobRt>, RawChunk)> {
        let mut state = self.state.lock();
        let mut woken = false;
        loop {
            if self.stop.load(Ordering::Relaxed) {
                return None;
            }
            let n = state.jobs.len();
            for i in 0..n {
                let idx = (state.next_convert + i) % n;
                let popped = state.jobs[idx].chunks.lock().pop_front();
                if let Some(chunk) = popped {
                    if i > 0 {
                        // Job slots scanned past before finding work —
                        // the round-robin fairness cost.
                        self.obs.pool.rr_skips.add(i as u64);
                    }
                    let job = Arc::clone(&state.jobs[idx]);
                    state.next_convert = (idx + 1) % n;
                    return Some((job, chunk));
                }
            }
            if woken {
                // Notified, scanned every slot, found nothing: the wakeup
                // was spurious or another worker won the race.
                self.obs.pool.idle_wakeups.inc();
            }
            self.raw_work.wait(&mut state);
            woken = true;
        }
    }

    /// Pop the next converted chunk, round-robin across jobs.
    fn next_converted(&self) -> Option<(Arc<JobRt>, Converted)> {
        let mut state = self.state.lock();
        let mut woken = false;
        loop {
            if self.stop.load(Ordering::Relaxed) {
                return None;
            }
            let n = state.jobs.len();
            for i in 0..n {
                let idx = (state.next_write + i) % n;
                let popped = state.jobs[idx].converted.lock().pop_front();
                if let Some(conv) = popped {
                    if i > 0 {
                        self.obs.pool.rr_skips.add(i as u64);
                    }
                    let job = Arc::clone(&state.jobs[idx]);
                    state.next_write = (idx + 1) % n;
                    return Some((job, conv));
                }
            }
            if woken {
                self.obs.pool.idle_wakeups.inc();
            }
            self.conv_work.wait(&mut state);
            woken = true;
        }
    }

    /// Hand a conversion result to the writers — unless the job was
    /// aborted in the meantime, in which case the chunk is discarded and
    /// its credit/memory released right here. The aborted check happens
    /// under the state lock, so it cannot race `Pipeline::abort`'s drain.
    fn push_converted(&self, job: &JobRt, conv: Converted) {
        let discard = {
            let state = self.state.lock();
            if job.aborted.load(Ordering::Relaxed) {
                Some(conv)
            } else {
                job.converted.lock().push_back(conv);
                self.conv_work.notify_one();
                drop(state);
                None
            }
        };
        if let Some(conv) = discard {
            let raw_len = conv.raw_len;
            self.buffers.put(conv.bytes);
            // credit + memory release via guard drops.
            self.retire(job, raw_len);
        }
    }
}

/// The node-wide worker runtime: a fixed set of converter and writer
/// threads multiplexing every registered job's queues. Created once at
/// node assembly (or per job when the config selects the per-job-spawn
/// baseline) and stopped when the node drops.
pub struct WorkerRuntime {
    shared: Arc<RtShared>,
    threads: Mutex<Vec<JoinHandle<()>>>,
}

impl WorkerRuntime {
    /// Start the worker pool: `converter_workers()` converters plus
    /// `file_writers` writers, sized once from config.
    pub fn start(
        config: &VirtualizerConfig,
        obs: Arc<Obs>,
        injector: Option<Arc<FaultInjector>>,
    ) -> WorkerRuntime {
        let converters = config.converter_workers();
        let writers = config.file_writers.max(1);
        let buffers = Arc::new(BufferPool::with_obs(
            converters + writers + 2,
            obs.pool.idle_buffers.clone(),
            obs.pool.recycle_hits.clone(),
            obs.pool.recycle_misses.clone(),
        ));
        let state_site = obs.registry.lock_site("runtime.state");
        let raw_site = obs.registry.lock_site("runtime.raw_work");
        let conv_site = obs.registry.lock_site("runtime.conv_work");
        let shared = Arc::new(RtShared {
            state: TrackedMutex::new(
                state_site,
                RtState {
                    jobs: Vec::new(),
                    next_convert: 0,
                    next_write: 0,
                },
            ),
            raw_work: TrackedCondvar::new(raw_site),
            conv_work: TrackedCondvar::new(conv_site),
            stop: AtomicBool::new(false),
            converters,
            writers,
            threshold: config.file_size_threshold,
            sim_cost: config.simulated_convert_cost_per_mb,
            retry_policy: config.retry_policy(),
            retry_seed: config.fault_seed(),
            injector,
            buffers,
            obs,
            threads_started: AtomicUsize::new(0),
        });
        shared
            .obs
            .runtime
            .workers
            .set((converters + writers) as u64);
        let mut threads = Vec::with_capacity(converters + writers);
        for _ in 0..converters {
            let shared = Arc::clone(&shared);
            threads.push(std::thread::spawn(move || {
                shared.threads_started.fetch_add(1, Ordering::Relaxed);
                shared.obs.runtime.threads_started.inc();
                let mut scratch = ConvertScratch::new();
                while let Some((job, chunk)) = shared.next_chunk() {
                    shared.obs.pool.busy_workers.add(1);
                    convert_work(&shared, &job, chunk, &mut scratch);
                    shared.obs.pool.busy_workers.sub(1);
                }
            }));
        }
        for _ in 0..writers {
            let shared = Arc::clone(&shared);
            threads.push(std::thread::spawn(move || {
                shared.threads_started.fetch_add(1, Ordering::Relaxed);
                shared.obs.runtime.threads_started.inc();
                while let Some((job, conv)) = shared.next_converted() {
                    shared.obs.pool.busy_workers.add(1);
                    write_work(&shared, &job, conv);
                    shared.obs.pool.busy_workers.sub(1);
                }
            }));
        }
        WorkerRuntime {
            shared,
            threads: Mutex::new(threads),
        }
    }

    /// Register a load job with the runtime and return its [`Pipeline`]
    /// handle. `prefix` is the object-key prefix staged files upload
    /// under (e.g. `job42/`); `job` is the load token stamped on every
    /// journal event; `ids` is the job's root span.
    #[allow(clippy::too_many_arguments)]
    pub fn begin_job(
        &self,
        converter: DataConverter,
        loader: Arc<BulkLoader>,
        prefix: String,
        job: u64,
        ids: SpanIds,
        drain_timeout: Duration,
        tenant: Arc<TenantObs>,
    ) -> Pipeline {
        let job_rt = Arc::new(JobRt {
            job,
            ids,
            tenant,
            converter,
            loader,
            prefix,
            chunks: Mutex::new(VecDeque::new()),
            converted: Mutex::new(VecDeque::new()),
            queued: AtomicU64::new(0),
            retired: AtomicU64::new(0),
            closed: AtomicBool::new(false),
            aborted: AtomicBool::new(false),
            done_lock: Mutex::new(()),
            done: Condvar::new(),
            accum: Mutex::new(Vec::with_capacity(self.shared.threshold.min(1 << 22))),
            errors: Mutex::new(Vec::new()),
            fatal: Mutex::new(Vec::new()),
            rows_staged: AtomicU64::new(0),
            bytes_staged: AtomicU64::new(0),
            upload_retries: AtomicU64::new(0),
            next_part: AtomicU32::new(0),
            files: Mutex::new(Vec::new()),
        });
        self.shared.state.lock().jobs.push(Arc::clone(&job_rt));
        Pipeline {
            shared: Arc::clone(&self.shared),
            job: job_rt,
            own: None,
            drain_timeout,
        }
    }

    /// Converter threads in the pool.
    pub fn converter_workers(&self) -> usize {
        self.shared.converters
    }

    /// Total worker threads (converters + writers) the pool is sized to.
    pub fn total_workers(&self) -> usize {
        self.shared.converters + self.shared.writers
    }

    /// Worker threads actually started over the runtime's lifetime —
    /// the bounded-thread-count evidence: stays at `total_workers()` no
    /// matter how many jobs run.
    pub fn threads_started(&self) -> usize {
        self.shared.threads_started.load(Ordering::Relaxed)
    }

    /// Jobs currently registered.
    pub fn active_jobs(&self) -> usize {
        self.shared.state.lock().jobs.len()
    }

    /// Stop and join every worker thread. Registered jobs' queued chunks
    /// are dropped with their guards (credits/memory release); callers
    /// abort or finish jobs before stopping in normal operation.
    pub fn stop(&self) {
        {
            let _state = self.shared.state.lock();
            self.shared.stop.store(true, Ordering::Relaxed);
            self.shared.raw_work.notify_all();
            self.shared.conv_work.notify_all();
        }
        for handle in self.threads.lock().drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for WorkerRuntime {
    fn drop(&mut self) {
        self.stop();
    }
}

/// A cloneable sink for pushing one job's chunks into the runtime (one
/// per data session).
#[derive(Clone)]
pub struct ChunkSink {
    shared: Arc<RtShared>,
    job: Arc<JobRt>,
}

impl ChunkSink {
    /// Enqueue a chunk. Returns `false` — dropping the chunk and thereby
    /// releasing its credit and memory guards — if the job is closed,
    /// aborted, or the runtime is stopping.
    pub fn push(&self, chunk: RawChunk) -> bool {
        let state = self.shared.state.lock();
        if self.job.closed.load(Ordering::Relaxed) || self.shared.stop.load(Ordering::Relaxed) {
            return false;
        }
        self.job.queued.fetch_add(1, Ordering::Release);
        let depth = {
            let mut q = self.job.chunks.lock();
            q.push_back(chunk);
            q.len()
        };
        self.shared.raw_work.notify_one();
        drop(state);
        self.shared.obs.runtime.queue_depth.record(depth as u64);
        true
    }
}

/// A running acquisition pipeline for one job: the per-job handle onto
/// the worker runtime.
pub struct Pipeline {
    shared: Arc<RtShared>,
    job: Arc<JobRt>,
    /// In per-job-spawn mode the pipeline owns a dedicated runtime that
    /// dies with it; in shared mode this is `None`.
    own: Option<WorkerRuntime>,
    drain_timeout: Duration,
}

impl Pipeline {
    /// Spawn a *dedicated* runtime for one load job — the per-job thread
    /// model the original design used, kept as the `RuntimeMode::PerJob`
    /// baseline the shared runtime is benchmarked against.
    #[allow(clippy::too_many_arguments)]
    pub fn spawn(
        config: &VirtualizerConfig,
        converter: DataConverter,
        loader: Arc<BulkLoader>,
        prefix: String,
        injector: Option<Arc<FaultInjector>>,
        obs: Arc<Obs>,
        job: u64,
        ids: SpanIds,
        tenant: Arc<TenantObs>,
    ) -> Pipeline {
        let runtime = WorkerRuntime::start(config, obs, injector);
        let mut pipeline = runtime.begin_job(
            converter,
            loader,
            prefix,
            job,
            ids,
            config.drain_timeout,
            tenant,
        );
        pipeline.own = Some(runtime);
        pipeline
    }

    /// A sink for pushing chunks in (one clone per data session).
    pub fn sink(&self) -> ChunkSink {
        ChunkSink {
            shared: Arc::clone(&self.shared),
            job: Arc::clone(&self.job),
        }
    }

    fn close(&self) {
        let _state = self.shared.state.lock();
        self.job.closed.store(true, Ordering::Relaxed);
    }

    /// Mark the job aborted and drop everything still queued, releasing
    /// each chunk's credit/memory on the spot. In-flight chunks (already
    /// popped by a worker) are discarded by the worker when it observes
    /// the flag.
    fn mark_aborted(&self) {
        let mut discarded: Vec<Converted> = Vec::new();
        let mut retired = 0u64;
        let mut raw_bytes = 0u64;
        {
            let _state = self.shared.state.lock();
            self.job.closed.store(true, Ordering::Relaxed);
            self.job.aborted.store(true, Ordering::Relaxed);
            while let Some(chunk) = self.job.chunks.lock().pop_front() {
                raw_bytes += chunk.data.len() as u64;
                drop(chunk); // credit + memory release
                retired += 1;
            }
            while let Some(conv) = self.job.converted.lock().pop_front() {
                raw_bytes += conv.raw_len;
                discarded.push(conv);
                retired += 1;
            }
        }
        for conv in discarded {
            self.shared.buffers.put(conv.bytes);
        }
        if retired > 0 {
            self.job.tenant.credit_held.sub(retired);
            self.job.tenant.memory_held.sub(raw_bytes);
        }
        if retired > 0 {
            let _guard = self.job.done_lock.lock();
            self.job.retired.fetch_add(retired, Ordering::Release);
            self.job.done.notify_all();
        }
    }

    /// Wait until every accepted chunk is retired; `false` on timeout.
    fn wait_drained(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut guard = self.job.done_lock.lock();
        while !self.job.drained() {
            if Instant::now() >= deadline {
                return false;
            }
            self.job.done.wait_until(&mut guard, deadline);
        }
        true
    }

    fn unregister(&self) {
        let mut state = self.shared.state.lock();
        state.jobs.retain(|j| !Arc::ptr_eq(j, &self.job));
    }

    fn report(&self) -> PipelineReport {
        let mut files = std::mem::take(&mut *self.job.files.lock());
        files.sort_by_key(|(part, _)| *part);
        let mut report = PipelineReport {
            rows_staged: self.job.rows_staged.load(Ordering::Relaxed),
            bytes_staged: self.job.bytes_staged.load(Ordering::Relaxed),
            files: files.into_iter().map(|(_, key)| key).collect(),
            acq_errors: std::mem::take(&mut *self.job.errors.lock()),
            fatal: std::mem::take(&mut *self.job.fatal.lock()),
            upload_retries: self.job.upload_retries.load(Ordering::Relaxed),
            converter_workers: self.shared.converters,
        };
        report.acq_errors.sort_by_key(|e| e.seq);
        report
    }

    /// Close the input, wait for the job's chunks to drain, upload the
    /// final partial staging file, and assemble the report.
    pub fn finish(mut self) -> PipelineReport {
        self.close();
        if !self.wait_drained(self.drain_timeout) {
            // Give up on the stragglers: discard whatever is still queued
            // (releasing guards) and record the failure. Workers discard
            // in-flight chunks of an aborted job promptly, so the second
            // wait is short.
            self.mark_aborted();
            self.job
                .fatal
                .lock()
                .push("pipeline drain timed out".into());
            let _ = self.wait_drained(Duration::from_secs(60));
        }
        let tail = std::mem::take(&mut *self.job.accum.lock());
        if !tail.is_empty() && !self.job.aborted.load(Ordering::Relaxed) {
            let part = self.job.next_part.fetch_add(1, Ordering::Relaxed);
            upload_part(&self.shared, &self.job, tail, part);
        }
        self.unregister();
        let report = self.report();
        if let Some(runtime) = self.own.take() {
            runtime.stop();
        }
        report
    }

    /// Abort the job: discard queued and in-flight chunks (credits and
    /// memory release immediately), skip the final upload, and deregister.
    /// Used by session teardown when a client disconnects mid-load.
    pub fn abort(mut self) -> PipelineReport {
        self.mark_aborted();
        // In-flight chunks are bounded by the worker count; discarding is
        // quick, but never wait forever on a wedged worker.
        let _ = self.wait_drained(Duration::from_secs(60));
        self.job.accum.lock().clear();
        self.unregister();
        let report = self.report();
        if let Some(runtime) = self.own.take() {
            runtime.stop();
        }
        report
    }
}

/// Convert one chunk on a runtime worker: the queue-wait span, the
/// (possibly fault-injected) conversion, and hand-off to the writers.
fn convert_work(shared: &RtShared, job: &JobRt, chunk: RawChunk, scratch: &mut ConvertScratch) {
    let raw_len = chunk.data.len() as u64;
    if job.aborted.load(Ordering::Relaxed) {
        // Guards release when the chunk drops.
        shared.retire(job, raw_len);
        return;
    }
    let obs = &shared.obs;
    // How long the chunk sat on the job queue before a worker picked it
    // up — the trace's queue_wait stage.
    let queue_wait = chunk.enqueued.elapsed();
    job.tenant.queue_wait_us.record_duration(queue_wait);
    obs.journal.emit_span(
        "chunk.queue",
        job.ids.child(obs.journal.next_span_id()),
        job.job,
        0,
        chunk.base_seq,
        chunk.data.len() as u64,
        queue_wait,
    );
    if !shared.sim_cost.is_zero() {
        let cost = shared
            .sim_cost
            .mul_f64(chunk.data.len() as f64 / 1_000_000.0);
        std::thread::sleep(cost);
    }
    if shared
        .injector
        .as_deref()
        .is_some_and(|i| i.convert_should_fail())
    {
        obs.pipeline.convert_errors.inc();
        job.fatal.lock().push(format!(
            "injected fault: converter worker failed on chunk at row {}",
            chunk.base_seq
        ));
        // Dropping the chunk releases its credit and memory reservation —
        // the guards, not the happy path, own the cleanup.
        shared.retire(job, raw_len);
        return;
    }
    let mut out = shared.buffers.take();
    // A panicking converter must not wedge the pipeline: contain it, record
    // a fatal error, and let the chunk's guards release credit + memory.
    let convert_started = Instant::now();
    let cpu = CpuTimer::start();
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        job.converter
            .convert_into(chunk.base_seq, &chunk.data, &mut out, scratch)
    }));
    let elapsed = convert_started.elapsed();
    let result = match outcome {
        Ok(result) => result,
        Err(panic) => {
            let what = panic
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| panic.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "unknown panic".into());
            obs.pipeline.convert_errors.inc();
            job.fatal
                .lock()
                .push(format!("converter worker panicked: {what}"));
            shared.buffers.put(out);
            shared.retire(job, raw_len);
            return;
        }
    };
    match result {
        Ok(rows) => {
            if scratch.has_errors() {
                scratch.drain_errors_into(&mut job.errors.lock());
            }
            obs.pipeline.convert_chunks.inc();
            obs.pipeline.convert_rows.add(rows as u64);
            obs.pipeline.convert_bytes.add(out.len() as u64);
            obs.pipeline.convert_us.record_duration(elapsed);
            obs.profile.convert.record(elapsed, cpu.elapsed());
            job.tenant.convert_us.record_duration(elapsed);
            obs.journal.emit_span(
                "chunk.convert",
                job.ids.child(obs.journal.next_span_id()),
                job.job,
                0,
                chunk.base_seq,
                rows as u64,
                elapsed,
            );
            let mut memory = chunk.memory;
            memory.shrink_to(out.len());
            shared.push_converted(
                job,
                Converted {
                    bytes: out,
                    rows,
                    credit: chunk.credit,
                    memory,
                    raw_len,
                },
            );
        }
        Err(e) => {
            obs.pipeline.convert_errors.inc();
            job.fatal.lock().push(e.to_string());
            shared.buffers.put(out);
            shared.retire(job, raw_len);
            // Credit and memory release on drop.
        }
    }
}

/// Append one converted chunk to the job's staging buffer on a writer
/// worker, rotating (and uploading) at the size threshold.
fn write_work(shared: &RtShared, job: &JobRt, conv: Converted) {
    let Converted {
        bytes: staged,
        rows,
        credit,
        memory,
        raw_len,
    } = conv;
    if job.aborted.load(Ordering::Relaxed) {
        drop(credit);
        shared.buffers.put(staged);
        drop(memory);
        shared.retire(job, raw_len);
        return;
    }
    // Figure 4: the credit returns to the pool just before the data is
    // written out.
    drop(credit);
    let staged_len = staged.len();
    let full = {
        let mut accum = job.accum.lock();
        accum.extend_from_slice(&staged);
        // The chunk's output buffer goes back to the freelist for the
        // next conversion; the staged bytes now live in the accumulator,
        // so the in-flight reservation releases.
        shared.buffers.put(staged);
        drop(memory);
        if accum.len() >= shared.threshold {
            let part = job.next_part.fetch_add(1, Ordering::Relaxed);
            let full = std::mem::replace(
                &mut *accum,
                Vec::with_capacity(shared.threshold.min(1 << 22)),
            );
            Some((full, part))
        } else {
            None
        }
    };
    job.rows_staged.fetch_add(rows as u64, Ordering::Relaxed);
    job.bytes_staged
        .fetch_add(staged_len as u64, Ordering::Relaxed);
    if let Some((data, part)) = full {
        shared.obs.pipeline.files_rotated.inc();
        shared.obs.journal.emit_span(
            "file.rotate",
            job.ids.child(shared.obs.journal.next_span_id()),
            job.job,
            0,
            part as u64,
            data.len() as u64,
            Duration::ZERO,
        );
        upload_part(shared, job, data, part);
    }
    shared.retire(job, raw_len);
}

/// Upload one finalized staging part. Each part gets `retry_budget`
/// additional attempts with capped, seeded backoff: a torn or failed put
/// is simply re-put (object stores overwrite whole objects, so a retry
/// erases a partial write). When the budget runs dry the failure is
/// recorded and the job fails cleanly at EndLoad — never a hang.
fn upload_part(shared: &RtShared, job: &JobRt, file: Vec<u8>, part: u32) {
    let obs = &shared.obs;
    let key = format!("{}part-{part:05}", job.prefix);
    let mut retries = 0u64;
    let upload_started = Instant::now();
    let cpu = CpuTimer::start();
    let attempt = retry_with(
        shared.retry_policy,
        shared.retry_seed ^ (part as u64 + 1),
        &mut retries,
        |_| true,
        || job.loader.upload_part_from(&key, &file),
    );
    let elapsed = upload_started.elapsed();
    obs.pipeline.upload_us.record_duration(elapsed);
    obs.profile.upload.record(elapsed, cpu.elapsed());
    job.tenant.upload_us.record_duration(elapsed);
    if retries > 0 {
        obs.pipeline.upload_retries.add(retries);
        obs.journal.emit_span(
            "upload.retry",
            job.ids.child(obs.journal.next_span_id()),
            job.job,
            0,
            part as u64 + 1,
            retries,
            Duration::ZERO,
        );
        job.upload_retries.fetch_add(retries, Ordering::Relaxed);
    }
    match attempt {
        Ok(_) => {
            obs.pipeline.upload_parts.inc();
            obs.pipeline.upload_bytes.add(file.len() as u64);
            obs.journal.emit_span(
                "file.upload",
                job.ids.child(obs.journal.next_span_id()),
                job.job,
                0,
                part as u64 + 1,
                file.len() as u64,
                elapsed,
            );
            job.files.lock().push((part, key));
        }
        Err(e) => job.fatal.lock().push(format!("upload {key}: {e}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ConverterMode;
    use crate::credit::CreditManager;
    use crate::memory::MemoryGauge;
    use etlv_cloudstore::{LoaderConfig, MemStore, ObjectStore};
    use etlv_protocol::data::LegacyType as T;
    use etlv_protocol::layout::Layout;
    use etlv_protocol::message::RecordFormat;

    const WIRE_VT: RecordFormat = RecordFormat::Vartext {
        delimiter: b'|',
        quote: b'"',
    };

    fn layout() -> Layout {
        Layout::new("L")
            .field("A", T::VarChar(10))
            .field("B", T::VarChar(10))
    }

    fn test_tenant() -> Arc<TenantObs> {
        Obs::default().registry.tenant("t")
    }

    fn loader_for(config: &VirtualizerConfig, store: Arc<MemStore>) -> Arc<BulkLoader> {
        Arc::new(BulkLoader::new(
            store as Arc<dyn ObjectStore>,
            LoaderConfig {
                bucket: config.staging_bucket.clone(),
                compress: config.compress_staged,
                throttle: config.upload_throttle,
            },
        ))
    }

    fn run_pipeline(
        config: &VirtualizerConfig,
        nchunks: u64,
        rows_per_chunk: u64,
    ) -> (PipelineReport, Arc<MemStore>) {
        let store = Arc::new(MemStore::new());
        let loader = loader_for(config, Arc::clone(&store));
        let converter = DataConverter::new(layout(), WIRE_VT, config.staging_delimiter);
        let pipeline = Pipeline::spawn(
            config,
            converter,
            loader,
            "job1/".into(),
            None,
            Arc::new(Obs::default()),
            1,
            SpanIds::default(),
            test_tenant(),
        );
        let credits = CreditManager::new(config.credits);
        let memory = MemoryGauge::new(config.memory_cap);
        let sink = pipeline.sink();
        for c in 0..nchunks {
            let mut data = Vec::new();
            for r in 0..rows_per_chunk {
                data.extend_from_slice(format!("a{c}|b{r}\n").as_bytes());
            }
            let credit = credits.acquire();
            let mem = memory.reserve(data.len()).unwrap();
            assert!(sink.push(RawChunk {
                base_seq: c * rows_per_chunk + 1,
                data: data.into(),
                credit,
                memory: mem,
                enqueued: Instant::now(),
            }));
        }
        let report = pipeline.finish();
        assert_eq!(credits.available(), config.credits, "credits all returned");
        assert_eq!(memory.in_flight(), 0, "memory all released");
        (report, store)
    }

    #[test]
    fn stages_all_rows_small_files() {
        let config = VirtualizerConfig {
            file_size_threshold: 64, // force many rotations
            file_writers: 3,
            ..Default::default()
        };
        let (report, store) = run_pipeline(&config, 10, 20);
        assert!(report.fatal.is_empty(), "{:?}", report.fatal);
        assert_eq!(report.rows_staged, 200);
        assert!(
            report.files.len() > 1,
            "expected rotation, got {}",
            report.files.len()
        );
        assert_eq!(
            store.object_count(&config.staging_bucket),
            report.files.len()
        );
        // Every staged row is present exactly once across all parts.
        let mut total_lines = 0;
        for key in &report.files {
            let data = store.get(&config.staging_bucket, key).unwrap();
            total_lines += data
                .split(|&b| b == b'\n')
                .filter(|l| !l.is_empty())
                .count();
        }
        assert_eq!(total_lines, 200);
    }

    #[test]
    fn per_chunk_mode_stages_everything() {
        let config = VirtualizerConfig {
            converter_mode: ConverterMode::PerChunk,
            credits: 8,
            ..Default::default()
        };
        let (report, _) = run_pipeline(&config, 20, 5);
        assert!(report.fatal.is_empty());
        assert_eq!(report.rows_staged, 100);
        // The pool is persistent: 8 workers for 20 chunks, not 20 threads.
        assert_eq!(report.converter_workers, 8);
    }

    #[test]
    fn workers_spawned_once_per_pipeline_not_per_chunk() {
        let config = VirtualizerConfig {
            converter_mode: ConverterMode::Pool(3),
            ..Default::default()
        };
        let (report, _) = run_pipeline(&config, 50, 4);
        assert_eq!(report.rows_staged, 200);
        assert_eq!(report.converter_workers, 3);

        // Per-chunk mode with a credit count above the thread cap: the
        // pool clamps instead of spawning unbounded threads.
        let config = VirtualizerConfig {
            converter_mode: ConverterMode::PerChunk,
            credits: 10_000,
            max_converter_threads: 4,
            ..Default::default()
        };
        let (report, _) = run_pipeline(&config, 30, 2);
        assert_eq!(report.rows_staged, 60);
        assert_eq!(report.converter_workers, 4);
    }

    #[test]
    fn compressed_staging() {
        let config = VirtualizerConfig {
            compress_staged: true,
            ..Default::default()
        };
        let (report, store) = run_pipeline(&config, 4, 50);
        assert_eq!(report.rows_staged, 200);
        let key = &report.files[0];
        let raw = store.get(&config.staging_bucket, key).unwrap();
        assert!(etlv_cloudstore::compress::is_compressed(&raw));
    }

    #[test]
    fn acquisition_errors_collected_sorted() {
        let config = VirtualizerConfig::default();
        let store = Arc::new(MemStore::new());
        let loader = loader_for(&config, store);
        let converter = DataConverter::new(layout(), WIRE_VT, b'|');
        let pipeline = Pipeline::spawn(
            &config,
            converter,
            loader,
            "j/".into(),
            None,
            Arc::new(Obs::default()),
            1,
            SpanIds::default(),
            test_tenant(),
        );
        let credits = CreditManager::new(4);
        let memory = MemoryGauge::new(0);
        let sink = pipeline.sink();
        // Chunk 2 has a bad record (field count).
        for (base, data) in [
            (1u64, &b"a|b\n"[..]),
            (2, b"only_one_field\n"),
            (3, b"c|d\n"),
        ] {
            assert!(sink.push(RawChunk {
                base_seq: base,
                data: Bytes::copy_from_slice(data),
                credit: credits.acquire(),
                memory: memory.reserve(data.len()).unwrap(),
                enqueued: Instant::now(),
            }));
        }
        let report = pipeline.finish();
        assert_eq!(report.rows_staged, 2);
        assert_eq!(report.acq_errors.len(), 1);
        assert_eq!(report.acq_errors[0].seq, 2);
    }

    #[test]
    fn uploader_retries_flaky_store_then_succeeds() {
        use crate::fault::{FaultPlan, FaultSpec};
        use etlv_cloudstore::ChaosStore;

        let mut plan = FaultPlan::seeded(11);
        plan.store_put = FaultSpec::FirstN(2);
        let config = VirtualizerConfig {
            file_size_threshold: 64,
            retry_base_delay: std::time::Duration::from_micros(50),
            retry_max_delay: std::time::Duration::from_micros(500),
            fault_plan: Some(plan),
            ..Default::default()
        };
        let injector = Arc::new(FaultInjector::new(config.fault_plan.clone().unwrap()));

        let mem = Arc::new(MemStore::new());
        let chaos: Arc<dyn ObjectStore> = Arc::new(ChaosStore::new(
            Arc::clone(&mem) as Arc<dyn ObjectStore>,
            injector.store_hook(),
        ));
        let loader = Arc::new(BulkLoader::new(
            chaos,
            LoaderConfig::new(config.staging_bucket.clone()),
        ));
        let converter = DataConverter::new(layout(), WIRE_VT, b'|');
        let pipeline = Pipeline::spawn(
            &config,
            converter,
            loader,
            "j/".into(),
            Some(Arc::clone(&injector)),
            Arc::new(Obs::default()),
            1,
            SpanIds::default(),
            test_tenant(),
        );
        let credits = CreditManager::new(config.credits);
        let memory = MemoryGauge::new(0);
        let sink = pipeline.sink();
        for c in 0..6u64 {
            let data: Vec<u8> = format!("a{c}|b{c}\n").repeat(10).into_bytes();
            let credit = credits.acquire();
            let mem_guard = memory.reserve(data.len()).unwrap();
            assert!(sink.push(RawChunk {
                base_seq: c * 10 + 1,
                data: data.into(),
                credit,
                memory: mem_guard,
                enqueued: Instant::now(),
            }));
        }
        let report = pipeline.finish();
        assert!(report.fatal.is_empty(), "{:?}", report.fatal);
        assert_eq!(report.upload_retries, 2, "both injected failures retried");
        assert_eq!(report.rows_staged, 60);
        assert_eq!(
            mem.object_count(&config.staging_bucket),
            report.files.len(),
            "every part landed despite the flaky store"
        );
        assert_eq!(credits.available(), config.credits);
        assert_eq!(memory.in_flight(), 0);
    }

    #[test]
    fn injected_converter_failure_fails_cleanly() {
        use crate::fault::{FaultPlan, FaultSpec};

        let mut config = VirtualizerConfig::default();
        let mut plan = FaultPlan::seeded(3);
        plan.convert = FaultSpec::AtOps(vec![1]);
        config.fault_plan = Some(plan);
        let injector = Arc::new(FaultInjector::new(config.fault_plan.clone().unwrap()));

        let store = Arc::new(MemStore::new());
        let loader = loader_for(&config, store);
        // One pool worker so chunk order = op order.
        config.converter_mode = ConverterMode::Pool(1);
        let converter = DataConverter::new(layout(), WIRE_VT, b'|');
        let pipeline = Pipeline::spawn(
            &config,
            converter,
            loader,
            "j/".into(),
            Some(injector),
            Arc::new(Obs::default()),
            1,
            SpanIds::default(),
            test_tenant(),
        );
        let credits = CreditManager::new(4);
        let memory = MemoryGauge::new(0);
        let sink = pipeline.sink();
        for base in [1u64, 2, 3] {
            assert!(sink.push(RawChunk {
                base_seq: base,
                data: Bytes::copy_from_slice(b"a|b\n"),
                credit: credits.acquire(),
                memory: memory.reserve(4).unwrap(),
                enqueued: Instant::now(),
            }));
        }
        let report = pipeline.finish();
        assert_eq!(report.fatal.len(), 1, "{:?}", report.fatal);
        assert!(
            report.fatal[0].contains("injected fault"),
            "{:?}",
            report.fatal
        );
        assert_eq!(report.rows_staged, 2, "other chunks still staged");
        // The dropped chunk's credit and memory came back via the guards.
        assert_eq!(credits.available(), 4);
        assert_eq!(memory.in_flight(), 0);
    }

    #[test]
    fn back_pressure_blocks_when_out_of_credits() {
        // 1 credit: the second acquire blocks until the pipeline returns
        // the first — proving credits flow through to the writer stage.
        let config = VirtualizerConfig {
            credits: 1,
            ..Default::default()
        };
        let (report, _) = run_pipeline(&config, 8, 2);
        assert_eq!(report.rows_staged, 16);
    }

    #[test]
    fn shared_runtime_multiplexes_jobs_with_fixed_threads() {
        // One runtime, 6 jobs: every job's rows land, the files stay
        // per-job (no cross-talk), and the thread count is the configured
        // pool size, not jobs × pool size.
        let config = VirtualizerConfig {
            converter_mode: ConverterMode::Pool(2),
            file_writers: 2,
            file_size_threshold: 128,
            ..Default::default()
        };
        let store = Arc::new(MemStore::new());
        let runtime = WorkerRuntime::start(&config, Arc::new(Obs::default()), None);
        let credits = CreditManager::new(config.credits);
        let memory = MemoryGauge::new(0);

        let mut pipelines = Vec::new();
        for j in 0..6u64 {
            let loader = loader_for(&config, Arc::clone(&store));
            let converter = DataConverter::new(layout(), WIRE_VT, b'|');
            pipelines.push(runtime.begin_job(
                converter,
                loader,
                format!("job{j}/"),
                j + 1,
                SpanIds::default(),
                config.drain_timeout,
                test_tenant(),
            ));
        }
        assert_eq!(runtime.active_jobs(), 6);
        for (j, pipeline) in pipelines.iter().enumerate() {
            let sink = pipeline.sink();
            for c in 0..10u64 {
                let data: Vec<u8> = format!("j{j}c{c}|x\n").repeat(5).into_bytes();
                assert!(sink.push(RawChunk {
                    base_seq: c * 5 + 1,
                    data: data.into(),
                    credit: credits.acquire(),
                    memory: memory.reserve(1).unwrap(),
                    enqueued: Instant::now(),
                }));
            }
        }
        for (j, pipeline) in pipelines.into_iter().enumerate() {
            let report = pipeline.finish();
            assert!(report.fatal.is_empty(), "job {j}: {:?}", report.fatal);
            assert_eq!(report.rows_staged, 50, "job {j}");
            assert_eq!(report.converter_workers, 2);
            for key in &report.files {
                assert!(
                    key.starts_with(&format!("job{j}/")),
                    "job {j} file {key} crossed into another job's prefix"
                );
            }
        }
        assert_eq!(runtime.active_jobs(), 0, "jobs deregister at finish");
        assert_eq!(
            runtime.threads_started(),
            runtime.total_workers(),
            "worker threads spawned once for the runtime, not per job"
        );
        assert_eq!(credits.available(), config.credits);
        assert_eq!(memory.in_flight(), 0);
        runtime.stop();
    }

    #[test]
    fn abort_discards_and_releases_everything() {
        let config = VirtualizerConfig {
            converter_mode: ConverterMode::Pool(2),
            // Make conversion slow enough that chunks are still queued
            // and in flight when the abort lands.
            simulated_convert_cost_per_mb: Duration::from_millis(2000),
            ..Default::default()
        };
        let store = Arc::new(MemStore::new());
        let loader = loader_for(&config, Arc::clone(&store));
        let converter = DataConverter::new(layout(), WIRE_VT, b'|');
        let pipeline = Pipeline::spawn(
            &config,
            converter,
            loader,
            "j/".into(),
            None,
            Arc::new(Obs::default()),
            1,
            SpanIds::default(),
            test_tenant(),
        );
        let credits = CreditManager::new(16);
        let memory = MemoryGauge::new(0);
        let sink = pipeline.sink();
        for base in 0..8u64 {
            let data: Vec<u8> = b"a|b\n".repeat(500); // 2 KB → 4 ms simulated
            assert!(sink.push(RawChunk {
                base_seq: base * 500 + 1,
                data: data.into(),
                credit: credits.acquire(),
                memory: memory.reserve(2000).unwrap(),
                enqueued: Instant::now(),
            }));
        }
        let report = pipeline.abort();
        assert_eq!(credits.available(), 16, "credits released by abort");
        assert_eq!(memory.in_flight(), 0, "memory released by abort");
        assert_eq!(store.object_count(&config.staging_bucket), 0, "no uploads");
        assert!(report.files.is_empty());
        // Late pushes after abort are rejected and their guards released.
        assert!(!sink.push(RawChunk {
            base_seq: 1,
            data: Bytes::copy_from_slice(b"a|b\n"),
            credit: credits.acquire(),
            memory: memory.reserve(4).unwrap(),
            enqueued: Instant::now(),
        }));
        assert_eq!(credits.available(), 16);
        assert_eq!(memory.in_flight(), 0);
    }
}
