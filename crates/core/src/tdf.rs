//! TDF — the Tabular Data Format (paper §3).
//!
//! TDF is the virtualizer's internal representation for result batches
//! flowing out of the CDW: "an extensible format that can handle
//! arbitrarily large nested data". A TDF packet is:
//!
//! ```text
//! magic "TDF1" | u16 ncols | column descriptors | u32 nrows | row data
//! column descriptor := name (u16-len string) | type tag u8 | p1 u16 | p2 u16
//! ```
//!
//! Values use a tagged encoding that includes `List` and `Struct`
//! composites, so nested data nests to arbitrary depth; export jobs only
//! produce scalars, but the format (and its tests) cover the general case.

use bytes::{Buf, BufMut};

use etlv_protocol::data::{Date, Decimal, LegacyType, Timestamp, Value};
use etlv_protocol::layout::Layout;

/// Packet magic.
pub const MAGIC: &[u8; 4] = b"TDF1";

/// A TDF value: the scalar legacy values plus nested composites.
#[derive(Debug, Clone, PartialEq)]
pub enum TdfValue {
    /// Scalar value.
    Scalar(Value),
    /// Homogeneous-ish list.
    List(Vec<TdfValue>),
    /// Named-field record.
    Struct(Vec<(String, TdfValue)>),
}

impl From<Value> for TdfValue {
    fn from(v: Value) -> TdfValue {
        TdfValue::Scalar(v)
    }
}

/// A decoded TDF packet: column metadata plus rows.
#[derive(Debug, Clone, PartialEq)]
pub struct TdfPacket {
    /// Column names and declared legacy types.
    pub columns: Vec<(String, LegacyType)>,
    /// Row data.
    pub rows: Vec<Vec<TdfValue>>,
}

/// TDF codec error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TdfError {
    /// Missing/incorrect magic.
    BadMagic,
    /// Input ended unexpectedly.
    Truncated,
    /// Unknown tag byte.
    BadTag(u8),
    /// Structural problem (bad UTF-8, bad type).
    Malformed(&'static str),
}

impl std::fmt::Display for TdfError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TdfError::BadMagic => write!(f, "not a TDF packet"),
            TdfError::Truncated => write!(f, "TDF packet truncated"),
            TdfError::BadTag(t) => write!(f, "unknown TDF value tag {t}"),
            TdfError::Malformed(m) => write!(f, "malformed TDF packet: {m}"),
        }
    }
}

impl std::error::Error for TdfError {}

impl TdfPacket {
    /// Build a scalar packet from a result batch.
    pub fn from_rows(columns: Vec<(String, LegacyType)>, rows: Vec<Vec<Value>>) -> TdfPacket {
        TdfPacket {
            columns,
            rows: rows
                .into_iter()
                .map(|row| row.into_iter().map(TdfValue::from).collect())
                .collect(),
        }
    }

    /// Extract scalar rows (composites become an error).
    pub fn scalar_rows(&self) -> Result<Vec<Vec<Value>>, TdfError> {
        self.rows
            .iter()
            .map(|row| {
                row.iter()
                    .map(|v| match v {
                        TdfValue::Scalar(s) => Ok(s.clone()),
                        _ => Err(TdfError::Malformed("nested value in scalar context")),
                    })
                    .collect()
            })
            .collect()
    }

    /// The wire layout corresponding to the packet's columns.
    pub fn layout(&self) -> Layout {
        Layout {
            name: "TDF".into(),
            fields: self
                .columns
                .iter()
                .map(|(name, ty)| etlv_protocol::layout::FieldDef::new(name.clone(), *ty))
                .collect(),
        }
    }

    /// Encode the packet.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64 + self.rows.len() * 16);
        out.extend_from_slice(MAGIC);
        out.put_u16_le(self.columns.len() as u16);
        for (name, ty) in &self.columns {
            put_string(&mut out, name);
            out.put_u8(ty.tag());
            let (p1, p2) = ty.params();
            out.put_u16_le(p1);
            out.put_u16_le(p2);
        }
        out.put_u32_le(self.rows.len() as u32);
        for row in &self.rows {
            for v in row {
                encode_value(v, &mut out);
            }
        }
        out
    }

    /// Decode a packet.
    pub fn decode(mut data: &[u8]) -> Result<TdfPacket, TdfError> {
        if data.len() < 4 || &data[..4] != MAGIC {
            return Err(TdfError::BadMagic);
        }
        data.advance(4);
        need(data, 2)?;
        let ncols = data.get_u16_le() as usize;
        let mut columns = Vec::with_capacity(ncols);
        for _ in 0..ncols {
            let name = get_string(&mut data)?;
            need(data, 5)?;
            let tag = data.get_u8();
            let p1 = data.get_u16_le();
            let p2 = data.get_u16_le();
            let ty = LegacyType::from_tag(tag, p1, p2)
                .ok_or(TdfError::Malformed("unknown column type"))?;
            columns.push((name, ty));
        }
        need(data, 4)?;
        let nrows = data.get_u32_le() as usize;
        let mut rows = Vec::with_capacity(nrows);
        for _ in 0..nrows {
            let mut row = Vec::with_capacity(ncols);
            for _ in 0..ncols {
                row.push(decode_value(&mut data)?);
            }
            rows.push(row);
        }
        if !data.is_empty() {
            return Err(TdfError::Malformed("trailing bytes"));
        }
        Ok(TdfPacket { columns, rows })
    }
}

fn need(data: &[u8], n: usize) -> Result<(), TdfError> {
    if data.len() < n {
        Err(TdfError::Truncated)
    } else {
        Ok(())
    }
}

fn put_string(out: &mut Vec<u8>, s: &str) {
    out.put_u16_le(s.len() as u16);
    out.extend_from_slice(s.as_bytes());
}

fn get_string(data: &mut &[u8]) -> Result<String, TdfError> {
    need(data, 2)?;
    let len = data.get_u16_le() as usize;
    need(data, len)?;
    let mut bytes = vec![0u8; len];
    data.copy_to_slice(&mut bytes);
    String::from_utf8(bytes).map_err(|_| TdfError::Malformed("invalid UTF-8"))
}

fn encode_value(v: &TdfValue, out: &mut Vec<u8>) {
    match v {
        TdfValue::Scalar(Value::Null) => out.put_u8(0),
        TdfValue::Scalar(Value::Int(x)) => {
            out.put_u8(1);
            out.put_i64_le(*x);
        }
        TdfValue::Scalar(Value::Float(f)) => {
            out.put_u8(2);
            out.put_f64_le(*f);
        }
        TdfValue::Scalar(Value::Decimal(d)) => {
            out.put_u8(3);
            out.put_i128_le(d.unscaled());
            out.put_u8(d.scale());
        }
        TdfValue::Scalar(Value::Str(s)) => {
            out.put_u8(4);
            out.put_u32_le(s.len() as u32);
            out.extend_from_slice(s.as_bytes());
        }
        TdfValue::Scalar(Value::Bytes(b)) => {
            out.put_u8(5);
            out.put_u32_le(b.len() as u32);
            out.extend_from_slice(b);
        }
        TdfValue::Scalar(Value::Date(d)) => {
            out.put_u8(6);
            out.put_i32_le(d.to_legacy_int());
        }
        TdfValue::Scalar(Value::Timestamp(ts)) => {
            out.put_u8(7);
            out.put_i64_le(ts.micros());
        }
        TdfValue::List(items) => {
            out.put_u8(8);
            out.put_u32_le(items.len() as u32);
            for item in items {
                encode_value(item, out);
            }
        }
        TdfValue::Struct(fields) => {
            out.put_u8(9);
            out.put_u16_le(fields.len() as u16);
            for (name, value) in fields {
                put_string(out, name);
                encode_value(value, out);
            }
        }
    }
}

fn decode_value(data: &mut &[u8]) -> Result<TdfValue, TdfError> {
    need(data, 1)?;
    let tag = data.get_u8();
    Ok(match tag {
        0 => TdfValue::Scalar(Value::Null),
        1 => {
            need(data, 8)?;
            TdfValue::Scalar(Value::Int(data.get_i64_le()))
        }
        2 => {
            need(data, 8)?;
            TdfValue::Scalar(Value::Float(data.get_f64_le()))
        }
        3 => {
            need(data, 17)?;
            let unscaled = data.get_i128_le();
            let scale = data.get_u8();
            TdfValue::Scalar(Value::Decimal(Decimal::new(unscaled, scale)))
        }
        4 => {
            need(data, 4)?;
            let len = data.get_u32_le() as usize;
            need(data, len)?;
            let mut bytes = vec![0u8; len];
            data.copy_to_slice(&mut bytes);
            TdfValue::Scalar(Value::Str(
                String::from_utf8(bytes).map_err(|_| TdfError::Malformed("invalid UTF-8"))?,
            ))
        }
        5 => {
            need(data, 4)?;
            let len = data.get_u32_le() as usize;
            need(data, len)?;
            let mut bytes = vec![0u8; len];
            data.copy_to_slice(&mut bytes);
            TdfValue::Scalar(Value::Bytes(bytes))
        }
        6 => {
            need(data, 4)?;
            TdfValue::Scalar(Value::Date(
                Date::from_legacy_int(data.get_i32_le())
                    .map_err(|_| TdfError::Malformed("invalid date"))?,
            ))
        }
        7 => {
            need(data, 8)?;
            TdfValue::Scalar(Value::Timestamp(Timestamp::from_micros(data.get_i64_le())))
        }
        8 => {
            need(data, 4)?;
            let len = data.get_u32_le() as usize;
            let mut items = Vec::with_capacity(len.min(1 << 16));
            for _ in 0..len {
                items.push(decode_value(data)?);
            }
            TdfValue::List(items)
        }
        9 => {
            need(data, 2)?;
            let len = data.get_u16_le() as usize;
            let mut fields = Vec::with_capacity(len);
            for _ in 0..len {
                let name = get_string(data)?;
                let value = decode_value(data)?;
                fields.push((name, value));
            }
            TdfValue::Struct(fields)
        }
        other => return Err(TdfError::BadTag(other)),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use etlv_protocol::data::LegacyType as T;

    fn sample() -> TdfPacket {
        TdfPacket::from_rows(
            vec![
                ("ID".into(), T::Integer),
                ("NAME".into(), T::VarChar(20)),
                ("D".into(), T::Date),
            ],
            vec![
                vec![
                    Value::Int(1),
                    Value::Str("alice".into()),
                    Value::Date(Date::new(2020, 2, 29).unwrap()),
                ],
                vec![Value::Null, Value::Null, Value::Null],
            ],
        )
    }

    #[test]
    fn scalar_roundtrip() {
        let packet = sample();
        let decoded = TdfPacket::decode(&packet.encode()).unwrap();
        assert_eq!(decoded, packet);
        assert_eq!(decoded.scalar_rows().unwrap().len(), 2);
        assert_eq!(decoded.layout().fields[1].name, "NAME");
    }

    #[test]
    fn nested_roundtrip() {
        let packet = TdfPacket {
            columns: vec![("NESTED".into(), T::VarByte(0))],
            rows: vec![vec![TdfValue::Struct(vec![
                ("id".into(), TdfValue::Scalar(Value::Int(7))),
                (
                    "tags".into(),
                    TdfValue::List(vec![
                        TdfValue::Scalar(Value::Str("a".into())),
                        TdfValue::List(vec![TdfValue::Scalar(Value::Null)]),
                    ]),
                ),
            ])]],
        };
        let decoded = TdfPacket::decode(&packet.encode()).unwrap();
        assert_eq!(decoded, packet);
        assert!(decoded.scalar_rows().is_err());
    }

    #[test]
    fn rejects_corruption() {
        let mut bytes = sample().encode();
        assert_eq!(TdfPacket::decode(b"nope"), Err(TdfError::BadMagic));
        let n = bytes.len();
        assert_eq!(TdfPacket::decode(&bytes[..n - 1]), Err(TdfError::Truncated));
        bytes.push(0xFF);
        assert!(TdfPacket::decode(&bytes).is_err());
    }

    #[test]
    fn empty_packet() {
        let packet = TdfPacket::from_rows(vec![], vec![]);
        assert_eq!(TdfPacket::decode(&packet.encode()).unwrap(), packet);
    }

    #[test]
    fn all_scalar_types() {
        let packet = TdfPacket::from_rows(
            vec![
                ("A".into(), T::BigInt),
                ("B".into(), T::Float),
                ("C".into(), T::Decimal(10, 3)),
                ("D".into(), T::VarByte(8)),
                ("E".into(), T::Timestamp),
            ],
            vec![vec![
                Value::Int(-5),
                Value::Float(1.5),
                Value::Decimal(Decimal::parse("-2.125").unwrap()),
                Value::Bytes(vec![1, 2, 3]),
                Value::Timestamp(Timestamp::from_micros(123_456_789)),
            ]],
        );
        assert_eq!(TdfPacket::decode(&packet.encode()).unwrap(), packet);
    }
}
