//! Uniqueness emulation (paper §7).
//!
//! Cloud warehouses commonly accept `UNIQUE`/`PRIMARY KEY` declarations
//! without enforcing them. Legacy ETL semantics *depend* on enforcement —
//! duplicate tuples must land in the UV error table. The virtualizer
//! bridges the gap by checking, before applying a staging range, whether
//! the range would violate the target's declared unique key:
//!
//! - **existing-row violations**: a join between the transformed staging
//!   keys and the target's current keys;
//! - **intra-range duplicates**: a GROUP BY over the transformed staging
//!   keys with `HAVING COUNT(*) > 1`.
//!
//! A positive count is treated exactly like a set-oriented uniqueness
//! abort, which hands control to the adaptive splitter; at singleton
//! granularity the violating tuple is recorded in the UV table.

use etlv_cdw::error::{BulkAbortKind, CdwError};
use etlv_cdw::Cdw;
use etlv_protocol::data::Value;
use etlv_sql::ast::{
    BinaryOp, Expr, ObjectName, OrderItem, SelectItem, SelectStmt, Stmt, TableRef,
};
use etlv_sql::transform::map_expr;

use crate::xcompile::{CompiledDml, DmlKind, SEQ_COL};

/// Alias of the staging table in emulation queries.
const STG_ALIAS: &str = "S";
/// Alias of the target table in emulation queries.
const TGT_ALIAS: &str = "T";

/// A planned uniqueness emulation for one load job.
#[derive(Debug, Clone)]
pub struct UniqueEmulation {
    /// Target table.
    pub target: ObjectName,
    /// Unique-key column names on the target.
    pub target_key_cols: Vec<String>,
    /// Transformed key expressions over staging columns, qualified with
    /// the staging alias (for join queries).
    key_exprs: Vec<Expr>,
    /// Staging table name.
    staging: String,
}

/// Plan emulation for a compiled DML. Returns `None` when the target has
/// no unique constraint, the DML is not row-wise, or the CDW already
/// enforces uniqueness natively.
pub fn plan(cdw: &Cdw, compiled: &CompiledDml) -> Result<Option<UniqueEmulation>, CdwError> {
    if compiled.kind != DmlKind::RowWise || cdw.config().native_unique {
        return Ok(None);
    }
    let target_name = compiled.target.dotted();
    let Some(unique_cols) = cdw.table_unique_columns(&target_name)? else {
        return Ok(None);
    };
    let schema = cdw.table_schema(&target_name)?;

    // Position of each unique column in the insert's projection.
    let mut key_exprs = Vec::with_capacity(unique_cols.len());
    for ucol in &unique_cols {
        let pos = match &compiled.insert_columns {
            Some(cols) => cols.iter().position(|c| c.eq_ignore_ascii_case(ucol)),
            None => schema
                .iter()
                .position(|(name, _)| name.eq_ignore_ascii_case(ucol)),
        };
        let Some(pos) = pos else {
            // The insert never touches the key column: every inserted row
            // has a NULL key; uniqueness over NULLs is not enforced.
            return Ok(None);
        };
        let Some(expr) = compiled.projection.get(pos) else {
            return Ok(None);
        };
        key_exprs.push(qualify_staging_columns(expr));
    }
    Ok(Some(UniqueEmulation {
        target: compiled.target.clone(),
        target_key_cols: unique_cols,
        key_exprs,
        staging: compiled.staging_table.clone(),
    }))
}

/// Qualify bare column references with the staging alias.
fn qualify_staging_columns(expr: &Expr) -> Expr {
    map_expr(expr, &mut |e| match &e {
        Expr::Column(name) if name.0.len() == 1 => {
            Expr::Column(ObjectName(vec![STG_ALIAS.into(), name.0[0].clone()]))
        }
        _ => e,
    })
}

fn range_filter_qualified(lo: u64, hi: u64) -> Expr {
    let seq = Expr::Column(ObjectName(vec![STG_ALIAS.into(), SEQ_COL.into()]));
    Expr::binary(
        Expr::binary(
            seq.clone(),
            BinaryOp::GtEq,
            Expr::Literal(etlv_sql::ast::Literal::Integer(lo as i64)),
        ),
        BinaryOp::And,
        Expr::binary(
            seq,
            BinaryOp::Lt,
            Expr::Literal(etlv_sql::ast::Literal::Integer(hi as i64)),
        ),
    )
}

fn count_of(cdw: &Cdw, stmt: &Stmt) -> Result<u64, CdwError> {
    let result = cdw.execute_stmt(stmt)?;
    match result.rows.first().and_then(|r| r.first()) {
        Some(Value::Int(n)) => Ok(*n as u64),
        other => Err(CdwError::Eval(format!(
            "emulation count query returned {other:?}"
        ))),
    }
}

impl UniqueEmulation {
    /// Count uniqueness violations the staging range `lo..hi` would cause:
    /// existing-row conflicts plus intra-range duplicates.
    pub fn violations_in_range(&self, cdw: &Cdw, lo: u64, hi: u64) -> Result<u64, CdwError> {
        let existing = count_of(cdw, &self.existing_conflicts_stmt(lo, hi))?;
        if existing > 0 {
            return Ok(existing);
        }
        // Singleton ranges cannot self-conflict.
        if hi - lo <= 1 {
            return Ok(0);
        }
        count_of(cdw, &self.intra_range_dups_stmt(lo, hi))
    }

    /// `SELECT COUNT(*) FROM stg S JOIN target T ON key(S) = T.key WHERE range`
    ///
    /// The target sits on the *right* of the join with every ON conjunct
    /// probing one of its unique-key columns, so the CDW planner turns
    /// the probe into index lookups against the target's PK index
    /// (public so plan-shape tests can EXPLAIN it).
    pub fn existing_conflicts_stmt(&self, lo: u64, hi: u64) -> Stmt {
        let mut on: Option<Expr> = None;
        for (expr, col) in self.key_exprs.iter().zip(&self.target_key_cols) {
            let eq = Expr::binary(
                expr.clone(),
                BinaryOp::Eq,
                Expr::Column(ObjectName(vec![TGT_ALIAS.into(), col.clone()])),
            );
            on = Some(match on {
                Some(prev) => Expr::binary(prev, BinaryOp::And, eq),
                None => eq,
            });
        }
        let mut sel = SelectStmt::new(vec![SelectItem::Expr {
            expr: Expr::Function {
                name: "COUNT".into(),
                args: vec![Expr::Wildcard],
                distinct: false,
            },
            alias: None,
        }]);
        sel.from = Some(TableRef::Join {
            left: Box::new(TableRef::Named {
                name: ObjectName::simple(self.staging.clone()),
                alias: Some(STG_ALIAS.into()),
            }),
            right: Box::new(TableRef::Named {
                name: self.target.clone(),
                alias: Some(TGT_ALIAS.into()),
            }),
            kind: etlv_sql::ast::JoinKind::Inner,
            on: Box::new(on.expect("at least one key column")),
        });
        sel.selection = Some(range_filter_qualified(lo, hi));
        Stmt::Select(sel)
    }

    /// `SELECT COUNT(*) FROM (SELECT key(S) FROM stg S WHERE range GROUP BY key(S) HAVING COUNT(*) > 1) q`
    /// (public so plan-shape tests can EXPLAIN it).
    pub fn intra_range_dups_stmt(&self, lo: u64, hi: u64) -> Stmt {
        let mut inner = SelectStmt::new(
            self.key_exprs
                .iter()
                .enumerate()
                .map(|(i, e)| SelectItem::Expr {
                    expr: e.clone(),
                    alias: Some(format!("K{i}")),
                })
                .collect(),
        );
        inner.from = Some(TableRef::Named {
            name: ObjectName::simple(self.staging.clone()),
            alias: Some(STG_ALIAS.into()),
        });
        inner.selection = Some(range_filter_qualified(lo, hi));
        inner.group_by = self.key_exprs.clone();
        inner.having = Some(Expr::binary(
            Expr::Function {
                name: "COUNT".into(),
                args: vec![Expr::Wildcard],
                distinct: false,
            },
            BinaryOp::Gt,
            Expr::Literal(etlv_sql::ast::Literal::Integer(1)),
        ));

        let mut outer = SelectStmt::new(vec![SelectItem::Expr {
            expr: Expr::Function {
                name: "COUNT".into(),
                args: vec![Expr::Wildcard],
                distinct: false,
            },
            alias: None,
        }]);
        outer.from = Some(TableRef::Subquery {
            query: Box::new(inner),
            alias: "Q".into(),
        });
        Stmt::Select(outer)
    }

    /// The error the emulation reports, shaped like a native uniqueness
    /// abort so the adaptive handler treats both identically.
    pub fn violation_error(&self) -> CdwError {
        CdwError::BulkAbort {
            kind: BulkAbortKind::Uniqueness,
            message: format!(
                "emulated uniqueness violation on {} ({})",
                self.target.dotted(),
                self.target_key_cols.join(", ")
            ),
        }
    }

    /// ORDER-BY-seq scan of the violating staging rows in a singleton
    /// range — used to fetch the UV tuple.
    pub fn staging_row_stmt(&self, seq: u64) -> Stmt {
        let mut sel = SelectStmt::new(vec![SelectItem::Wildcard]);
        sel.from = Some(TableRef::Named {
            name: ObjectName::simple(self.staging.clone()),
            alias: None,
        });
        sel.selection = Some(Expr::binary(
            Expr::col(SEQ_COL),
            BinaryOp::Eq,
            Expr::Literal(etlv_sql::ast::Literal::Integer(seq as i64)),
        ));
        sel.order_by = vec![OrderItem {
            expr: Expr::col(SEQ_COL),
            desc: false,
        }];
        Stmt::Select(sel)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::xcompile::{compile_dml, staging_ddl};
    use etlv_protocol::data::LegacyType as T;
    use etlv_protocol::layout::Layout;

    fn setup() -> (Cdw, CompiledDml) {
        let cdw = Cdw::new(); // native_unique = false
        cdw.execute(
            "CREATE TABLE PROD.CUSTOMER (CUST_ID VARCHAR(5), CUST_NAME VARCHAR(50), JOIN_DATE DATE, PRIMARY KEY (CUST_ID))",
        )
        .unwrap();
        let layout = Layout::new("L")
            .field("CUST_ID", T::VarChar(5))
            .field("CUST_NAME", T::VarChar(50))
            .field("JOIN_DATE", T::VarChar(10));
        let compiled = compile_dml(
            "insert into PROD.CUSTOMER values (trim(:CUST_ID), trim(:CUST_NAME), cast(:JOIN_DATE as DATE format 'YYYY-MM-DD'))",
            &layout,
            "STG",
        )
        .unwrap();
        cdw.execute(&staging_ddl("STG", &layout)).unwrap();
        (cdw, compiled)
    }

    fn stage(cdw: &Cdw, rows: &[(u64, &str, &str, &str)]) {
        for (seq, id, name, date) in rows {
            cdw.execute(&format!(
                "INSERT INTO STG VALUES ({seq}, '{id}', '{name}', '{date}')"
            ))
            .unwrap();
        }
    }

    #[test]
    fn plans_only_with_constraint() {
        let (cdw, compiled) = setup();
        let emu = plan(&cdw, &compiled).unwrap();
        assert!(emu.is_some());
        assert_eq!(emu.unwrap().target_key_cols, vec!["CUST_ID".to_string()]);

        // No constraint -> no plan.
        cdw.execute("CREATE TABLE PLAIN (A VARCHAR(5))").unwrap();
        let layout = Layout::new("L").field("A", T::VarChar(5));
        let c2 = compile_dml("insert into PLAIN values (:A)", &layout, "STG").unwrap();
        assert!(plan(&cdw, &c2).unwrap().is_none());
    }

    #[test]
    fn native_enforcement_disables_emulation() {
        let cdw = Cdw::with_config(
            etlv_cdw::CdwConfig {
                native_unique: true,
                ..Default::default()
            },
            None,
        );
        cdw.execute("CREATE TABLE T (A VARCHAR(5), PRIMARY KEY (A))")
            .unwrap();
        let layout = Layout::new("L").field("A", T::VarChar(5));
        let compiled = compile_dml("insert into T values (:A)", &layout, "STG").unwrap();
        assert!(plan(&cdw, &compiled).unwrap().is_none());
    }

    #[test]
    fn detects_existing_conflicts() {
        let (cdw, compiled) = setup();
        let emu = plan(&cdw, &compiled).unwrap().unwrap();
        cdw.execute("INSERT INTO PROD.CUSTOMER VALUES ('123', 'Smith', NULL)")
            .unwrap();
        stage(
            &cdw,
            &[
                (1, "123", "Jones", "2012-01-01"),
                (2, "456", "Ok", "2012-01-01"),
            ],
        );
        assert_eq!(emu.violations_in_range(&cdw, 1, 3).unwrap(), 1);
        assert_eq!(emu.violations_in_range(&cdw, 2, 3).unwrap(), 0);
        assert_eq!(emu.violations_in_range(&cdw, 1, 2).unwrap(), 1);
    }

    #[test]
    fn detects_intra_range_dups() {
        let (cdw, compiled) = setup();
        let emu = plan(&cdw, &compiled).unwrap().unwrap();
        stage(
            &cdw,
            &[
                (1, "123", "a", "2012-01-01"),
                (2, "456", "b", "2012-01-01"),
                (3, "123", "c", "2012-01-01"),
            ],
        );
        assert_eq!(emu.violations_in_range(&cdw, 1, 4).unwrap(), 1);
        // Split below the duplicate pair: clean.
        assert_eq!(emu.violations_in_range(&cdw, 1, 3).unwrap(), 0);
        assert_eq!(emu.violations_in_range(&cdw, 3, 4).unwrap(), 0);
    }

    #[test]
    fn key_transformation_applied() {
        // The key expression is trim(:CUST_ID): staged values with padding
        // still collide.
        let (cdw, compiled) = setup();
        let emu = plan(&cdw, &compiled).unwrap().unwrap();
        stage(
            &cdw,
            &[
                (1, "  99", "a", "2012-01-01"),
                (2, "99  ", "b", "2012-01-01"),
            ],
        );
        assert_eq!(emu.violations_in_range(&cdw, 1, 3).unwrap(), 1);
    }

    #[test]
    fn violation_error_is_uniqueness_class() {
        let (cdw, compiled) = setup();
        let emu = plan(&cdw, &compiled).unwrap().unwrap();
        assert!(emu.violation_error().is_uniqueness());
    }
}
