//! Virtualizer configuration — the tuning parameters the paper's §5/§6
//! expose to customers.

use std::time::Duration;

use etlv_cloudstore::Throttle;

use crate::apply::ApplyStrategy;
use crate::fault::{FaultPlan, RetryPolicy};
use crate::obs::SloPolicy;

/// How DataConverter work is scheduled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConverterMode {
    /// A fixed pool of converter worker threads (the production default).
    Pool(usize),
    /// One worker per in-flight chunk — the paper's process-per-chunk
    /// model. Concurrency is bounded only by the credit pool, which is
    /// how large credit counts translate into scheduling overhead
    /// (Figure 10).
    PerChunk,
}

/// How pipeline worker threads relate to jobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RuntimeMode {
    /// One node-wide [`WorkerRuntime`](crate::pipeline::WorkerRuntime):
    /// converter and writer threads are sized once from the config and
    /// multiplex every concurrent job's chunk queues round-robin, so the
    /// node's thread count is fixed regardless of job concurrency.
    #[default]
    Shared,
    /// The original design: every `BeginLoad` spawns its own converter and
    /// writer threads and joins them at `EndLoad`. Thread count grows with
    /// concurrent jobs — kept as the baseline the shared runtime is
    /// benchmarked against.
    PerJob,
}

/// All virtualizer tuning knobs.
#[derive(Debug, Clone)]
pub struct VirtualizerConfig {
    /// CreditManager pool size (shared per node across jobs, §5). Must be
    /// at least 1.
    pub credits: usize,
    /// Converter scheduling mode.
    pub converter_mode: ConverterMode,
    /// Number of parallel FileWriter stages.
    pub file_writers: usize,
    /// Staged-file rotation threshold in bytes (§6: tuned to the CDW's
    /// preferred load size).
    pub file_size_threshold: usize,
    /// Compress finalized staged files before upload (§6: pays off when
    /// the link to the cloud is slow).
    pub compress_staged: bool,
    /// Object-store bucket staged files land in.
    pub staging_bucket: String,
    /// Delimiter of the staged text format.
    pub staging_delimiter: u8,
    /// Link model between the virtualizer node and the cloud store.
    pub upload_throttle: Throttle,
    /// DML application strategy (§7; `Singleton` is the Figure 11
    /// baseline).
    pub apply_strategy: ApplyStrategy,
    /// Adaptive error handling: stop recording individual errors after
    /// this many (0 = unlimited) — the paper's `max_errors`.
    pub max_errors: u64,
    /// Adaptive error handling: maximum chunk-split depth — the paper's
    /// `max_retries`.
    pub max_retries: u32,
    /// In-flight memory cap in bytes (0 = unlimited). When unconverted +
    /// unwritten data exceeds this, the job fails with an out-of-memory
    /// error — the deterministic stand-in for the paper's one-million
    /// credit crash.
    pub memory_cap: usize,
    /// Rows per export chunk handed to client sessions.
    pub export_chunk_rows: u32,
    /// TDFCursor read-ahead, in chunks.
    pub export_prefetch_chunks: usize,
    /// How long EndLoad waits for the acquisition pipeline to drain before
    /// declaring the job wedged.
    pub drain_timeout: Duration,
    /// Simulated per-megabyte conversion cost added to every DataConverter
    /// invocation (default zero). On hosts without enough cores to show
    /// real converter scaling — the paper's testbed had 16 — this models
    /// conversion as overlappable work so the Figure 9 core sweep remains
    /// reproducible; leave at zero for genuine CPU-bound measurement.
    pub simulated_convert_cost_per_mb: Duration,
    /// Per-job retry budget for each transient-failure site (staged-file
    /// upload, COPY trigger, retryable application statements).
    pub retry_budget: u32,
    /// First retry backoff delay.
    pub retry_base_delay: Duration,
    /// Retry backoff ceiling.
    pub retry_max_delay: Duration,
    /// Optional deterministic fault plan. `None` (the default) disables
    /// injection entirely; a plan arms the store, CDW, converter, and
    /// transport hooks with the plan's seed.
    pub fault_plan: Option<FaultPlan>,
    /// How many recent [`JobReport`](crate::report::JobReport)s the node
    /// retains (ring buffer, oldest evicted). Exposed through
    /// `recent_job_reports()` and the stats snapshot. Must be ≥ 1.
    pub report_history: usize,
    /// Capacity of the in-memory span/event journal (ring buffer). Must
    /// be ≥ 1. Irrelevant when the `obs` feature is compiled out.
    pub journal_capacity: usize,
    /// Optional JSONL sink: every journal event is appended to this file
    /// as one JSON object per line. `None` (the default) keeps the
    /// journal in-memory only.
    pub journal_jsonl: Option<std::path::PathBuf>,
    /// Time-series sampler tick. `Duration::ZERO` (the default) disables
    /// the background sampler entirely; a nonzero tick snapshots the
    /// metrics named in `sampler_metrics` every tick into bounded rings
    /// (see `Virtualizer::sampler_json`). Irrelevant when the `obs`
    /// feature is compiled out.
    pub sampler_tick: Duration,
    /// Points retained per sampled metric (sliding window). Must be ≥ 2
    /// when the sampler is enabled, so rates can be derived from
    /// consecutive deltas.
    pub sampler_capacity: usize,
    /// Registry counter/gauge names the sampler tracks. The default set
    /// covers the paper's Fig. 8/9 series: rows/sec, bytes/sec, credit
    /// occupancy, and adaptive/upload retry rates.
    pub sampler_metrics: Vec<String>,
    /// Ceiling on converter worker threads regardless of mode. Per-chunk
    /// mode historically spawned one OS thread per in-flight chunk, so a
    /// large credit pool (Figure 10 sweeps up to 10⁶) translated directly
    /// into thread-creation overhead — or resource exhaustion. The
    /// persistent pool sizes itself to `min(credits, max_converter_threads)`
    /// instead; chunks beyond that simply queue on the bounded channel.
    pub max_converter_threads: usize,
    /// How pipeline worker threads are provisioned across jobs.
    pub runtime_mode: RuntimeMode,
    /// Maximum concurrently connected sessions per node. A logon beyond
    /// this limit is refused with retryable `SERVER_BUSY`. Must be ≥ 1.
    pub max_sessions: usize,
    /// Maximum concurrently running jobs (imports + exports) per node.
    /// `BeginLoad`/`BeginExport` beyond this is refused with retryable
    /// `SERVER_BUSY` — the legacy client backs off and retries. Must be
    /// ≥ 1.
    pub max_concurrent_jobs: usize,
    /// Close a session when no frame (including `Keepalive`) arrives for
    /// this long. `Duration::ZERO` (the default) disables idle timeout.
    /// The session's in-flight jobs are aborted and their resources
    /// released, exactly as on disconnect.
    pub session_idle_timeout: Duration,
    /// Per-tenant SLO objectives and burn-rate alerting policy evaluated
    /// by the `Health` endpoint. Irrelevant when the `obs` feature is
    /// compiled out (health then reports `enabled: false`).
    pub slo: SloPolicy,
    /// Ceiling on distinct per-tenant metric blocks. Tenants interned
    /// beyond this share one `~overflow` block so label cardinality stays
    /// bounded no matter how many usernames connect. Must be ≥ 1.
    pub max_tenants: usize,
    /// Tenant-block metric names the background sampler tracks per tenant
    /// (in addition to the node-global `sampler_metrics`).
    pub sampler_tenant_metrics: Vec<String>,
    /// Event-loop threads the TCP reactor runs. Each loop multiplexes
    /// its share of the connection fds with epoll; connection count is
    /// independent of this number. Must be ≥ 1.
    pub reactor_threads: usize,
    /// Dispatch-pool threads executing blocking-capable session
    /// requests (loads, chunks, exports, stats) off the event loops.
    /// At most one request per session is in flight at a time, so this
    /// bounds *concurrently progressing* requests, not connections.
    /// Must be ≥ 1.
    pub dispatch_threads: usize,
    /// Granularity of the reactor's timer wheel (idle timeouts, accept
    /// backoff). Finer ticks wake the loops more often. Must be
    /// nonzero.
    pub reactor_tick: Duration,
}

impl Default for VirtualizerConfig {
    fn default() -> Self {
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4);
        VirtualizerConfig {
            credits: cores * 4,
            converter_mode: ConverterMode::Pool(cores),
            file_writers: 2,
            file_size_threshold: 4 * 1024 * 1024,
            compress_staged: false,
            staging_bucket: "etlv-staging".into(),
            staging_delimiter: b'|',
            upload_throttle: Throttle::unlimited(),
            apply_strategy: ApplyStrategy::BulkAdaptive,
            max_errors: 0,
            max_retries: 64,
            memory_cap: 0,
            export_chunk_rows: 4096,
            export_prefetch_chunks: 4,
            drain_timeout: Duration::from_secs(600),
            simulated_convert_cost_per_mb: Duration::ZERO,
            retry_budget: 4,
            retry_base_delay: Duration::from_millis(2),
            retry_max_delay: Duration::from_millis(200),
            fault_plan: None,
            report_history: 16,
            journal_capacity: 4096,
            journal_jsonl: None,
            sampler_tick: Duration::ZERO,
            sampler_capacity: 512,
            sampler_metrics: default_sampler_metrics(),
            max_converter_threads: (cores * 8).clamp(16, 256),
            runtime_mode: RuntimeMode::Shared,
            max_sessions: 256,
            max_concurrent_jobs: 64,
            session_idle_timeout: Duration::ZERO,
            slo: SloPolicy::default(),
            max_tenants: 64,
            sampler_tenant_metrics: default_sampler_tenant_metrics(),
            reactor_threads: 2,
            dispatch_threads: cores.clamp(8, 32),
            reactor_tick: Duration::from_millis(25),
        }
    }
}

/// The default per-tenant sampled-metric set: enough to plot each
/// tenant's throughput and error contribution over time.
pub fn default_sampler_tenant_metrics() -> Vec<String> {
    [
        "chunks",
        "rows_applied",
        "errors_et",
        "errors_uv",
        "active_jobs",
    ]
    .into_iter()
    .map(String::from)
    .collect()
}

/// The default sampled-metric set: the series the paper's Fig. 8/9 plots
/// are built from.
pub fn default_sampler_metrics() -> Vec<String> {
    [
        "pipeline.convert_rows",
        "pipeline.convert_bytes",
        "gateway.chunks_received",
        "gateway.chunk_bytes",
        "cloudstore.put_bytes",
        "credit.in_flight",
        "memory.in_flight",
        "pipeline.upload_retries",
        "adaptive.transient_retries",
        "gateway.active_sessions",
        "gateway.active_jobs",
        "pool.busy_workers",
        "lock.wait_us",
    ]
    .into_iter()
    .map(String::from)
    .collect()
}

impl VirtualizerConfig {
    /// Number of converter workers the current mode implies for a job.
    pub fn converter_workers(&self) -> usize {
        match self.converter_mode {
            ConverterMode::Pool(n) => n.max(1),
            // Per-chunk semantics: enough workers that every in-flight
            // chunk (bounded by the credit pool) can convert concurrently —
            // but capped, so huge credit counts don't translate into huge
            // thread counts.
            ConverterMode::PerChunk => self.credits.clamp(1, self.max_converter_threads.max(1)),
        }
    }

    /// Validate invariants; returns a description of the first violation.
    pub fn validate(&self) -> Result<(), String> {
        if self.credits == 0 {
            return Err("credits must be at least 1".into());
        }
        if self.file_writers == 0 {
            return Err("file_writers must be at least 1".into());
        }
        if self.file_size_threshold == 0 {
            return Err("file_size_threshold must be positive".into());
        }
        if self.export_chunk_rows == 0 {
            return Err("export_chunk_rows must be positive".into());
        }
        if self.retry_base_delay > self.retry_max_delay {
            return Err("retry_base_delay must not exceed retry_max_delay".into());
        }
        if self.max_converter_threads == 0 {
            return Err("max_converter_threads must be at least 1".into());
        }
        if self.max_sessions == 0 {
            return Err("max_sessions must be at least 1".into());
        }
        if self.max_concurrent_jobs == 0 {
            return Err("max_concurrent_jobs must be at least 1".into());
        }
        if self.report_history == 0 {
            return Err("report_history must be at least 1".into());
        }
        if self.journal_capacity == 0 {
            return Err("journal_capacity must be at least 1".into());
        }
        if !self.sampler_tick.is_zero() && self.sampler_capacity < 2 {
            return Err("sampler_capacity must be at least 2 when the sampler is enabled".into());
        }
        if self.max_tenants == 0 {
            return Err("max_tenants must be at least 1".into());
        }
        if self.reactor_threads == 0 {
            return Err("reactor_threads must be at least 1".into());
        }
        if self.dispatch_threads == 0 {
            return Err("dispatch_threads must be at least 1".into());
        }
        if self.reactor_tick.is_zero() {
            return Err("reactor_tick must be nonzero".into());
        }
        if self.slo.fast_window.is_zero() || self.slo.slow_window.is_zero() {
            return Err("slo windows must be nonzero".into());
        }
        if self.slo.fast_window >= self.slo.slow_window {
            return Err("slo.fast_window must be shorter than slo.slow_window".into());
        }
        if self.slo.latency_target.is_zero() {
            return Err("slo.latency_target must be nonzero".into());
        }
        for (name, v) in [
            ("slo.latency_objective", self.slo.latency_objective),
            ("slo.error_rate_objective", self.slo.error_rate_objective),
            (
                "slo.availability_objective",
                self.slo.availability_objective,
            ),
        ] {
            if !(v > 0.0 && v < 1.0) {
                return Err(format!("{name} must be in (0, 1)"));
            }
        }
        for (name, v) in [
            ("slo.fast_burn", self.slo.fast_burn),
            ("slo.slow_burn", self.slo.slow_burn),
            ("slo.overload_ratio", self.slo.overload_ratio),
        ] {
            if v.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
                return Err(format!("{name} must be positive"));
            }
        }
        Ok(())
    }

    /// The retry policy the config's budget/backoff knobs describe.
    pub fn retry_policy(&self) -> RetryPolicy {
        RetryPolicy {
            budget: self.retry_budget,
            base: self.retry_base_delay,
            cap: self.retry_max_delay,
        }
    }

    /// The fault seed retry jitter derives from (0 when injection is off).
    pub fn fault_seed(&self) -> u64 {
        self.fault_plan.as_ref().map(|p| p.seed).unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        assert!(VirtualizerConfig::default().validate().is_ok());
    }

    #[test]
    fn validation_catches_zeros() {
        let c = VirtualizerConfig {
            credits: 0,
            ..Default::default()
        };
        assert!(c.validate().is_err());
        let c = VirtualizerConfig {
            file_writers: 0,
            ..Default::default()
        };
        assert!(c.validate().is_err());
        let c = VirtualizerConfig {
            file_size_threshold: 0,
            ..Default::default()
        };
        assert!(c.validate().is_err());
        let c = VirtualizerConfig {
            retry_base_delay: Duration::from_secs(1),
            retry_max_delay: Duration::from_millis(1),
            ..Default::default()
        };
        assert!(c.validate().is_err());
        let c = VirtualizerConfig {
            report_history: 0,
            ..Default::default()
        };
        assert!(c.validate().is_err());
        let c = VirtualizerConfig {
            max_sessions: 0,
            ..Default::default()
        };
        assert!(c.validate().is_err());
        let c = VirtualizerConfig {
            max_concurrent_jobs: 0,
            ..Default::default()
        };
        assert!(c.validate().is_err());
        let c = VirtualizerConfig {
            journal_capacity: 0,
            ..Default::default()
        };
        assert!(c.validate().is_err());
        let c = VirtualizerConfig {
            sampler_tick: Duration::from_millis(10),
            sampler_capacity: 1,
            ..Default::default()
        };
        assert!(c.validate().is_err());
        let c = VirtualizerConfig {
            sampler_tick: Duration::from_millis(10),
            sampler_capacity: 2,
            ..Default::default()
        };
        assert!(c.validate().is_ok());
        let c = VirtualizerConfig {
            max_tenants: 0,
            ..Default::default()
        };
        assert!(c.validate().is_err());
        let c = VirtualizerConfig {
            reactor_threads: 0,
            ..Default::default()
        };
        assert!(c.validate().is_err());
        let c = VirtualizerConfig {
            dispatch_threads: 0,
            ..Default::default()
        };
        assert!(c.validate().is_err());
        let c = VirtualizerConfig {
            reactor_tick: Duration::ZERO,
            ..Default::default()
        };
        assert!(c.validate().is_err());
        let mut c = VirtualizerConfig::default();
        c.slo.fast_window = c.slo.slow_window;
        assert!(c.validate().is_err());
        let mut c = VirtualizerConfig::default();
        c.slo.latency_objective = 1.0;
        assert!(c.validate().is_err());
        let mut c = VirtualizerConfig::default();
        c.slo.fast_burn = 0.0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn converter_workers_by_mode() {
        let mut c = VirtualizerConfig {
            converter_mode: ConverterMode::Pool(3),
            ..Default::default()
        };
        assert_eq!(c.converter_workers(), 3);
        c.converter_mode = ConverterMode::PerChunk;
        c.credits = 7;
        assert_eq!(c.converter_workers(), 7);
    }

    #[test]
    fn per_chunk_workers_capped() {
        let c = VirtualizerConfig {
            converter_mode: ConverterMode::PerChunk,
            credits: 100_000,
            max_converter_threads: 32,
            ..Default::default()
        };
        assert_eq!(c.converter_workers(), 32);
        let c = VirtualizerConfig {
            max_converter_threads: 0,
            ..Default::default()
        };
        assert!(c.validate().is_err());
    }
}
