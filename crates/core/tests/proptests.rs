//! Property tests for the virtualizer's core invariants:
//!
//! - the adaptive error handler finds **exactly** the seeded bad rows for
//!   any error pattern, and loads exactly the good ones;
//! - the credit pool never exceeds capacity and never leaks under
//!   arbitrary acquire/release interleavings;
//! - TDF packets roundtrip for arbitrary scalar tables.

use std::collections::HashSet;

use proptest::prelude::*;

use etlv_cdw::Cdw;
use etlv_core::adaptive::{apply_adaptive, AdaptiveParams, ErrorRows};
use etlv_core::emulate;
use etlv_core::tdf::TdfPacket;
use etlv_core::xcompile::{compile_dml, staging_ddl};
use etlv_protocol::data::{LegacyType as T, Value};
use etlv_protocol::layout::Layout;

fn setup(
    total_rows: u64,
    bad: &HashSet<u64>,
    dups: &HashSet<u64>,
) -> (Cdw, etlv_core::xcompile::CompiledDml, Layout) {
    let cdw = Cdw::new();
    cdw.execute("CREATE TABLE TGT (ID VARCHAR(10), D DATE, PRIMARY KEY (ID))")
        .unwrap();
    let layout = Layout::new("L")
        .field("ID", T::VarChar(10))
        .field("D", T::VarChar(10));
    let compiled = compile_dml(
        "insert into TGT values (trim(:ID), cast(:D as DATE format 'YYYY-MM-DD'))",
        &layout,
        "STG",
    )
    .unwrap();
    cdw.execute(&staging_ddl("STG", &layout)).unwrap();
    for seq in 1..=total_rows {
        let id = if dups.contains(&seq) {
            // Duplicate the first non-dup row's key.
            "dup0".to_string()
        } else {
            format!("id{seq}")
        };
        let date = if bad.contains(&seq) {
            "garbage".to_string()
        } else {
            "2020-01-01".to_string()
        };
        cdw.execute(&format!("INSERT INTO STG VALUES ({seq}, '{id}', '{date}')"))
            .unwrap();
    }
    (cdw, compiled, layout)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn adaptive_finds_exactly_the_seeded_errors(
        total in 1u64..40,
        bad_bits in any::<u64>(),
    ) {
        let bad: HashSet<u64> = (1..=total).filter(|i| bad_bits & (1 << (i % 64)) != 0).collect();
        let (cdw, compiled, layout) = setup(total, &bad, &HashSet::new());
        let emu = emulate::plan(&cdw, &compiled).unwrap();
        let outcome = apply_adaptive(
            &cdw,
            &compiled,
            emu.as_ref(),
            &layout,
            1,
            total + 1,
            AdaptiveParams::default(),
            None,
        )
        .unwrap();
        let found: HashSet<u64> = outcome
            .errors
            .iter()
            .map(|e| match e.rows {
                ErrorRows::Single(s) => s,
                ErrorRows::Range(a, b) => panic!("unexpected range ({a},{b}) with unlimited max_errors"),
            })
            .collect();
        prop_assert_eq!(&found, &bad);
        prop_assert_eq!(outcome.applied, total - bad.len() as u64);
        prop_assert_eq!(cdw.table_len("TGT").unwrap() as u64, total - bad.len() as u64);
    }

    #[test]
    fn adaptive_with_dups_and_bad_dates(
        total in 2u64..30,
        bad_bits in any::<u64>(),
        dup_bits in any::<u64>(),
    ) {
        // Row 1 is always the anchor "dup0" row so duplicates have a
        // conflict target; duplicates and bad dates are disjoint sets.
        let bad: HashSet<u64> = (2..=total)
            .filter(|i| bad_bits & (1 << (i % 64)) != 0)
            .collect();
        let dups: HashSet<u64> = (2..=total)
            .filter(|i| !bad.contains(i) && dup_bits & (1 << (i % 61)) != 0)
            .collect();
        // Seed the anchor row as a dup target.
        let (cdw, compiled, layout) = setup(total, &bad, &dups);
        cdw.execute("UPDATE STG SET ID = 'dup0' WHERE __SEQ = 1").unwrap();

        let emu = emulate::plan(&cdw, &compiled).unwrap();
        let outcome = apply_adaptive(
            &cdw,
            &compiled,
            emu.as_ref(),
            &layout,
            1,
            total + 1,
            AdaptiveParams::default(),
            None,
        )
        .unwrap();
        // Every bad-date row is an ET-class single error; every dup row
        // (beyond the first 'dup0' occurrence, which loads) is a UV error.
        let et: HashSet<u64> = outcome
            .errors
            .iter()
            .filter(|e| e.uv_tuple.is_none())
            .map(|e| match e.rows {
                ErrorRows::Single(s) => s,
                _ => panic!("range with unlimited max_errors"),
            })
            .collect();
        let uv: HashSet<u64> = outcome
            .errors
            .iter()
            .filter(|e| e.uv_tuple.is_some())
            .map(|e| match e.rows {
                ErrorRows::Single(s) => s,
                _ => panic!("range with unlimited max_errors"),
            })
            .collect();
        prop_assert_eq!(&et, &bad);
        prop_assert_eq!(&uv, &dups);
        prop_assert_eq!(
            outcome.applied,
            total - bad.len() as u64 - dups.len() as u64
        );
    }

    #[test]
    fn credit_pool_invariants(
        capacity in 1usize..8,
        ops in proptest::collection::vec(any::<bool>(), 1..60),
    ) {
        let mgr = etlv_core::CreditManager::new(capacity);
        let mut held = Vec::new();
        for acquire in ops {
            if acquire {
                if let Some(c) = mgr.try_acquire_for(std::time::Duration::from_millis(1)) {
                    held.push(c);
                }
            } else {
                held.pop();
            }
            prop_assert!(mgr.available() + held.len() == capacity);
            prop_assert!(held.len() <= capacity);
        }
        drop(held);
        prop_assert_eq!(mgr.available(), capacity);
    }

    #[test]
    fn memory_gauge_invariants(
        cap in 1usize..10_000,
        sizes in proptest::collection::vec(1usize..4096, 1..30),
    ) {
        let gauge = etlv_core::MemoryGauge::new(cap);
        let mut held = Vec::new();
        for size in sizes {
            match gauge.reserve(size) {
                Ok(guard) => held.push(guard),
                Err(e) => {
                    prop_assert!(e.in_flight + e.requested > e.cap);
                }
            }
            prop_assert!(gauge.in_flight() <= cap as u64);
        }
        drop(held);
        prop_assert_eq!(gauge.in_flight(), 0);
    }

    #[test]
    fn backoff_monotone_capped_for_any_policy(
        base_us in 1u64..5_000,
        cap_us in 1u64..50_000,
        seed in any::<u64>(),
    ) {
        let policy = etlv_core::RetryPolicy {
            budget: 16,
            base: std::time::Duration::from_micros(base_us),
            cap: std::time::Duration::from_micros(cap_us),
        };
        let schedule: Vec<std::time::Duration> = {
            let mut b = policy.backoff(seed);
            (0..24).map(|_| b.next_delay()).collect()
        };
        let again: Vec<std::time::Duration> = {
            let mut b = policy.backoff(seed);
            (0..24).map(|_| b.next_delay()).collect()
        };
        prop_assert_eq!(&schedule, &again);
        for pair in schedule.windows(2) {
            prop_assert!(pair[1] >= pair[0], "monotone violated: {:?}", &schedule);
        }
        for delay in &schedule {
            prop_assert!(*delay <= policy.cap, "cap violated: {:?}", &schedule);
        }
    }

    #[test]
    fn credit_pool_survives_arbitrary_fault_interleavings(
        capacity in 1usize..6,
        ops in proptest::collection::vec(0u8..3, 1..40),
    ) {
        // Ops: 0 = acquire and hold, 1 = release one held credit, 2 = a
        // worker acquires and then dies mid-chunk (an injected fault).
        // Whatever the interleaving, credits never leak and never
        // double-release: available + held always equals capacity once the
        // faulted workers are reaped, and the pool refills completely.
        let mgr = etlv_core::CreditManager::new(capacity);
        let mut held = Vec::new();
        for op in ops {
            match op {
                0 => {
                    if let Some(c) = mgr.try_acquire_for(std::time::Duration::from_millis(1)) {
                        held.push(c);
                    }
                }
                1 => {
                    held.pop();
                }
                _ => {
                    let mgr2 = mgr.clone();
                    let worker = std::thread::spawn(move || {
                        let _credit = mgr2.try_acquire_for(std::time::Duration::from_millis(5));
                        panic!("injected fault: worker died holding a credit");
                    });
                    prop_assert!(worker.join().is_err());
                }
            }
            prop_assert_eq!(mgr.available() + held.len(), capacity);
            prop_assert!(held.len() <= capacity);
        }
        drop(held);
        prop_assert_eq!(mgr.available(), capacity);
    }

    #[test]
    fn tdf_roundtrip_scalar_tables(
        rows in proptest::collection::vec(
            (any::<i32>(), "[ -~]{0,20}", proptest::option::of(any::<i16>())),
            0..30
        )
    ) {
        let packet = TdfPacket::from_rows(
            vec![
                ("A".into(), T::Integer),
                ("B".into(), T::VarChar(20)),
                ("C".into(), T::SmallInt),
            ],
            rows.into_iter()
                .map(|(a, b, c)| {
                    vec![
                        Value::Int(a as i64),
                        Value::Str(b),
                        c.map(|v| Value::Int(v as i64)).unwrap_or(Value::Null),
                    ]
                })
                .collect(),
        );
        let decoded = TdfPacket::decode(&packet.encode()).unwrap();
        prop_assert_eq!(decoded, packet);
    }
}
