//! Differential property tests for the zero-allocation conversion kernel.
//!
//! The streaming kernel (`DataConverter::convert_into`) must be
//! observationally identical to the retained naive implementation
//! (`DataConverter::convert_reference`): byte-identical staged output,
//! identical row counts, identical `AcqError` sequences, and identical
//! fatal errors — for arbitrary layouts, null patterns, malformed
//! records, and corrupted chunk framing.

use proptest::prelude::*;

use etlv_core::convert::{ConvertScratch, DataConverter};
use etlv_protocol::data::{Date, Decimal, LegacyType, Timestamp, Value};
use etlv_protocol::layout::Layout;
use etlv_protocol::message::RecordFormat;
use etlv_protocol::record::RecordEncoder;

/// Small deterministic generator so one proptest seed drives layout,
/// data, and corruption choices together.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 11
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }

    fn chance(&mut self, percent: u64) -> bool {
        self.below(100) < percent
    }
}

fn random_type(rng: &mut Lcg) -> LegacyType {
    match rng.below(12) {
        0 => LegacyType::ByteInt,
        1 => LegacyType::SmallInt,
        2 => LegacyType::Integer,
        3 => LegacyType::BigInt,
        4 => LegacyType::Float,
        5 => LegacyType::Decimal(9, 1 + rng.below(4) as u8),
        6 => LegacyType::Char(1 + rng.below(6) as u16),
        7 => LegacyType::VarChar(1 + rng.below(10) as u16),
        8 => LegacyType::VarCharUnicode(2 + rng.below(8) as u16),
        9 => LegacyType::Date,
        10 => LegacyType::Timestamp,
        _ => LegacyType::VarByte(1 + rng.below(8) as u16),
    }
}

fn random_layout(rng: &mut Lcg) -> Layout {
    let arity = 1 + rng.below(8) as usize;
    let mut layout = Layout::new("PROP");
    for i in 0..arity {
        layout = layout.field(format!("F{i}"), random_type(rng));
    }
    layout
}

fn random_value(rng: &mut Lcg, ty: LegacyType) -> Value {
    if rng.chance(25) {
        return Value::Null;
    }
    match ty {
        LegacyType::ByteInt => Value::Int(rng.below(256) as i64 - 128),
        LegacyType::SmallInt => Value::Int(rng.below(65536) as i64 - 32768),
        LegacyType::Integer => Value::Int(rng.below(1 << 32) as i64 - (1 << 31)),
        LegacyType::BigInt => Value::Int(rng.next() as i64),
        LegacyType::Float => {
            // Mix of integral-valued and fractional floats to cover both
            // display branches.
            let base = rng.below(10_000) as f64 - 5_000.0;
            if rng.chance(50) {
                Value::Float(base)
            } else {
                Value::Float(base + 0.25)
            }
        }
        LegacyType::Decimal(_, s) => {
            Value::Decimal(Decimal::new(rng.below(2_000_000) as i128 - 1_000_000, s))
        }
        LegacyType::Char(n) | LegacyType::VarChar(n) => {
            let len = rng.below(n as u64 + 1) as usize;
            let s: String = (0..len)
                .map(|_| (b'a' + rng.below(26) as u8) as char)
                .collect();
            Value::Str(s)
        }
        LegacyType::VarCharUnicode(n) => {
            // Mix ASCII and multi-byte characters, staying within the
            // declared byte budget (each 'é' is two bytes).
            let mut s = String::new();
            while s.len() + 2 <= n as usize && rng.chance(70) {
                if rng.chance(50) {
                    s.push((b'A' + rng.below(26) as u8) as char);
                } else {
                    s.push('é');
                }
            }
            Value::Str(s)
        }
        LegacyType::Date => Value::Date(
            Date::new(
                1900 + rng.below(200) as i32,
                1 + rng.below(12) as u8,
                1 + rng.below(28) as u8,
            )
            .unwrap(),
        ),
        LegacyType::Timestamp => {
            Value::Timestamp(Timestamp::from_micros(rng.below(1 << 50) as i64))
        }
        LegacyType::VarByte(n) => {
            let len = rng.below(n as u64 + 1) as usize;
            Value::Bytes((0..len).map(|_| rng.below(256) as u8).collect())
        }
    }
}

/// Build a random binary chunk (possibly corrupted) and its layout.
fn binary_chunk(seed: u64) -> (Layout, Vec<u8>) {
    let mut rng = Lcg(seed);
    let layout = random_layout(&mut rng);
    let encoder = RecordEncoder::new(layout.clone());
    let mut data = Vec::new();
    let rows = rng.below(12);
    for _ in 0..rows {
        let values: Vec<Value> = layout
            .fields
            .iter()
            .map(|f| random_value(&mut rng, f.ty))
            .collect();
        encoder.encode_record(&values, &mut data).unwrap();
    }
    // Half the cases get corrupted framing: truncation or a byte flip.
    if rng.chance(50) && !data.is_empty() {
        if rng.chance(50) {
            let keep = rng.below(data.len() as u64) as usize;
            data.truncate(keep);
        } else {
            let pos = rng.below(data.len() as u64) as usize;
            data[pos] ^= 0xFF;
        }
    }
    (layout, data)
}

/// Build a random vartext chunk: valid rows, wrong-arity rows, bad
/// escapes, bad UTF-8, quoted empties, CRLF endings, blank lines.
fn vartext_chunk(seed: u64) -> (Layout, u8, u8, Vec<u8>) {
    let mut rng = Lcg(seed);
    let arity = 1 + rng.below(6) as usize;
    let mut layout = Layout::new("PROP");
    for i in 0..arity {
        layout = layout.field(format!("F{i}"), LegacyType::VarChar(64));
    }
    // Include pathological formats: quote colliding with the delimiter or
    // the escape character exercises the decoder's precedence rules.
    let (delimiter, quote) = match rng.below(4) {
        0 => (b'|', b'"'),
        1 => (b',', b'\''),
        2 => (b'|', b'|'),
        _ => (b',', b'\\'),
    };
    let mut data = Vec::new();
    let rows = rng.below(10);
    for _ in 0..rows {
        let fields = if rng.chance(80) {
            arity as u64
        } else {
            1 + rng.below(arity as u64 + 3)
        };
        for i in 0..fields {
            if i > 0 {
                data.push(delimiter);
            }
            match rng.below(8) {
                0 => {}                                       // NULL (zero-length)
                1 => data.extend_from_slice(&[quote, quote]), // quoted empty
                2 => {
                    // Escaped content: delimiter, quote, backslash.
                    data.extend_from_slice(b"a\\");
                    data.push(delimiter);
                    data.extend_from_slice(b"b\\\\");
                }
                3 if rng.chance(50) => data.push(0xC3), // lone UTF-8 lead byte
                4 if rng.chance(30) => data.push(b'\\'), // dangling escape
                _ => {
                    let len = 1 + rng.below(12) as usize;
                    for _ in 0..len {
                        data.push(b'a' + rng.below(26) as u8);
                    }
                }
            }
        }
        if rng.chance(20) {
            data.push(b'\r');
        }
        data.push(b'\n');
        if rng.chance(10) {
            data.push(b'\n'); // blank line: skipped, consumes no seq
        }
    }
    (layout, delimiter, quote, data)
}

/// Run a conversion, treating a panic as a comparable outcome. Corrupted
/// binary framing can decode to out-of-range temporals whose rendering
/// panics; the pipeline catches that per-chunk, and both kernels must
/// panic (or not) on exactly the same inputs.
fn catching<T>(f: impl FnOnce() -> T) -> Result<T, &'static str> {
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(f)).map_err(|_| "panicked")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn binary_kernel_matches_reference(seed in any::<u64>(), base_seq in 1u64..1_000_000) {
        let (layout, data) = binary_chunk(seed);
        let conv = DataConverter::new(layout, RecordFormat::Binary, b'|');
        let fast = catching(|| conv.convert(base_seq, &data));
        let slow = catching(|| conv.convert_reference(base_seq, &data));
        prop_assert_eq!(fast, slow);
    }

    #[test]
    fn vartext_kernel_matches_reference(seed in any::<u64>(), base_seq in 1u64..1_000_000) {
        let (layout, delimiter, quote, data) = vartext_chunk(seed);
        let conv = DataConverter::new(
            layout,
            RecordFormat::Vartext { delimiter, quote },
            b'|',
        );
        let fast = conv.convert(base_seq, &data);
        let slow = conv.convert_reference(base_seq, &data);
        prop_assert_eq!(fast, slow);
    }

    #[test]
    fn reused_buffers_stay_identical_across_chunks(seed in any::<u64>()) {
        // The pipeline reuses one output buffer and one scratch across
        // many chunks; staleness in either would corrupt later chunks.
        let mut rng = Lcg(seed);
        let mut out = Vec::new();
        let mut scratch = ConvertScratch::new();
        for round in 0..4u64 {
            let chunk_seed = rng.next();
            let base_seq = 1 + rng.below(10_000);
            let (layout, data) = binary_chunk(chunk_seed);
            let conv = DataConverter::new(layout, RecordFormat::Binary, b'|');
            out.clear();
            let fast = catching(|| {
                conv.convert_into(base_seq, &data, &mut out, &mut scratch)
            });
            let slow = catching(|| conv.convert_reference(base_seq, &data));
            match (fast, slow) {
                (Ok(fast), Ok(slow)) => {
                    let fast = fast.map(|rows| (rows, out.clone(), scratch_errors(&mut scratch)));
                    let slow = slow.map(|c| (c.rows, c.bytes, c.errors));
                    prop_assert_eq!(fast, slow, "diverged on round {}", round);
                }
                (fast, slow) => {
                    // Both must have panicked; mirror the pipeline, which
                    // discards the output buffer and keeps the scratch.
                    prop_assert_eq!(fast.is_err(), slow.is_err(), "panic mismatch on round {}", round);
                    out.clear();
                }
            }
        }
    }
}

fn scratch_errors(scratch: &mut ConvertScratch) -> Vec<etlv_core::convert::AcqError> {
    let mut errors = Vec::new();
    scratch.drain_errors_into(&mut errors);
    errors
}
