//! Proves the conversion kernel's zero-allocation claim: once the output
//! buffer and scratch have grown to the workload's high-water mark (one
//! warm-up chunk), converting further chunks of clean data performs **no**
//! heap allocation at all — for both wire formats.
//!
//! A counting global allocator gates on a thread-local flag so the
//! measurement ignores allocator traffic from the test harness's other
//! threads. The whole proof lives in a single `#[test]` so nothing else
//! in this binary runs concurrently with the counted window.

use std::alloc::{GlobalAlloc, Layout as AllocLayout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};

use etlv_core::convert::{ConvertScratch, DataConverter};
use etlv_protocol::data::{Date, Decimal, LegacyType as T, Timestamp, Value};
use etlv_protocol::layout::Layout;
use etlv_protocol::message::RecordFormat;
use etlv_protocol::record::RecordEncoder;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

thread_local! {
    static COUNTING: Cell<bool> = const { Cell::new(false) };
}

struct CountingAlloc;

impl CountingAlloc {
    fn record(&self) {
        // `try_with` so allocations during thread teardown (after TLS
        // destruction) never panic inside the allocator.
        let counting = COUNTING.try_with(Cell::get).unwrap_or(false);
        if counting {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
    }
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: AllocLayout) -> *mut u8 {
        self.record();
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: AllocLayout) -> *mut u8 {
        self.record();
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: AllocLayout, new_size: usize) -> *mut u8 {
        self.record();
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: AllocLayout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

/// Count allocations made by `f` on this thread.
fn count_allocs(f: impl FnOnce()) -> u64 {
    COUNTING.with(|c| c.set(true));
    let before = ALLOCS.load(Ordering::Relaxed);
    f();
    let after = ALLOCS.load(Ordering::Relaxed);
    COUNTING.with(|c| c.set(false));
    after - before
}

fn wide_layout() -> Layout {
    Layout::new("ALLOC")
        .field("ID", T::BigInt)
        .field("QTY", T::Integer)
        .field("PRICE", T::Decimal(9, 2))
        .field("RATIO", T::Float)
        .field("NAME", T::VarChar(40))
        .field("CODE", T::Char(8))
        .field("BORN", T::Date)
        .field("SEEN", T::Timestamp)
        .field("BLOB", T::VarByte(16))
}

fn sample_values(i: u64) -> Vec<Value> {
    vec![
        Value::Int(i as i64 * 7919),
        if i.is_multiple_of(5) {
            Value::Null
        } else {
            Value::Int(i as i64 % 1000)
        },
        Value::Decimal(Decimal::new(123450 + i as i128, 2)),
        Value::Float(i as f64 + 0.5),
        Value::Str(format!("customer-{i}")),
        Value::Str("FIXEDLEN".into()),
        Value::Date(Date::new(2012, 1 + (i % 12) as u8, 1 + (i % 28) as u8).unwrap()),
        Value::Timestamp(Timestamp::from_micros(1_600_000_000_000_000 + i as i64)),
        Value::Bytes(vec![0xAB; 1 + (i % 16) as usize]),
    ]
}

#[test]
fn steady_state_convert_loop_does_not_allocate() {
    // --- binary wire format -------------------------------------------
    let layout = wide_layout();
    let encoder = RecordEncoder::new(layout.clone());
    let mut data = Vec::new();
    for i in 0..200 {
        encoder.encode_record(&sample_values(i), &mut data).unwrap();
    }
    let conv = DataConverter::new(layout, RecordFormat::Binary, b'|');
    let mut out = Vec::new();
    let mut scratch = ConvertScratch::new();

    // Warm-up chunk grows every buffer to its high-water mark.
    let warm = conv.convert_into(1, &data, &mut out, &mut scratch).unwrap();
    assert_eq!(warm, 200);
    let expected = out.clone();

    out.clear();
    let allocs = count_allocs(|| {
        let rows = conv
            .convert_into(201, &data, &mut out, &mut scratch)
            .unwrap();
        assert_eq!(rows, 200);
    });
    assert_eq!(
        allocs, 0,
        "binary steady-state convert loop allocated {allocs} times"
    );
    // Same staged bytes as the warm-up modulo the shifted __SEQ prefix.
    let seq_digits = |lo: u64, hi: u64| (lo..=hi).map(|s| s.to_string().len()).sum::<usize>();
    assert_eq!(
        out.len(),
        expected.len() + seq_digits(201, 400) - seq_digits(1, 200)
    );

    // --- vartext wire format ------------------------------------------
    let layout = Layout::new("VT")
        .field("A", T::VarChar(64))
        .field("B", T::VarChar(64))
        .field("C", T::VarChar(64));
    let mut data = Vec::new();
    for i in 0..200 {
        data.extend_from_slice(format!("alpha{i}|\\|escaped|\"\"\n").as_bytes());
    }
    let conv = DataConverter::new(
        layout,
        RecordFormat::Vartext {
            delimiter: b'|',
            quote: b'"',
        },
        b'|',
    );
    let mut out = Vec::new();
    let mut scratch = ConvertScratch::new();
    let warm = conv.convert_into(1, &data, &mut out, &mut scratch).unwrap();
    assert_eq!(warm, 200);

    out.clear();
    let allocs = count_allocs(|| {
        let rows = conv
            .convert_into(201, &data, &mut out, &mut scratch)
            .unwrap();
        assert_eq!(rows, 200);
    });
    assert_eq!(
        allocs, 0,
        "vartext steady-state convert loop allocated {allocs} times"
    );
}
