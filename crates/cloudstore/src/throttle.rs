//! Throughput shaping for the virtualizer↔cloud link.
//!
//! The paper's §6 notes that tuning (compression, file sizes) depends on
//! the speed of the link between the virtualizer node and the CDW. The
//! [`Throttle`] models that link: a per-request latency plus a byte rate.
//! Uploads call [`Throttle::consume`] with the transferred size and the
//! throttle sleeps long enough to match the modelled link.

use std::time::Duration;

/// A simple bandwidth/latency model for a network link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Throttle {
    /// Fixed per-request latency.
    pub latency: Duration,
    /// Link bandwidth in bytes/second (`None` = unlimited).
    pub bytes_per_sec: Option<u64>,
}

impl Default for Throttle {
    fn default() -> Self {
        Throttle::unlimited()
    }
}

impl Throttle {
    /// No shaping at all.
    pub fn unlimited() -> Throttle {
        Throttle {
            latency: Duration::ZERO,
            bytes_per_sec: None,
        }
    }

    /// A link with the given round-trip latency and bandwidth.
    pub fn shaped(latency: Duration, bytes_per_sec: u64) -> Throttle {
        Throttle {
            latency,
            bytes_per_sec: Some(bytes_per_sec),
        }
    }

    /// The simulated transfer duration for `bytes`.
    pub fn duration_for(&self, bytes: u64) -> Duration {
        let bw = match self.bytes_per_sec {
            Some(b) if b > 0 => {
                Duration::from_nanos((bytes as u128 * 1_000_000_000 / b as u128) as u64)
            }
            _ => Duration::ZERO,
        };
        self.latency + bw
    }

    /// Block for the simulated transfer time of `bytes`.
    pub fn consume(&self, bytes: u64) {
        let d = self.duration_for(bytes);
        if !d.is_zero() {
            std::thread::sleep(d);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_is_instant() {
        let t = Throttle::unlimited();
        assert_eq!(t.duration_for(1 << 30), Duration::ZERO);
    }

    #[test]
    fn duration_math() {
        let t = Throttle::shaped(Duration::from_millis(5), 1_000_000);
        // 1 MB at 1 MB/s = 1s + 5ms latency.
        assert_eq!(t.duration_for(1_000_000), Duration::from_millis(1005));
        assert_eq!(t.duration_for(0), Duration::from_millis(5));
    }

    #[test]
    fn consume_sleeps_roughly_right() {
        let t = Throttle::shaped(Duration::from_millis(10), u64::MAX);
        let start = std::time::Instant::now();
        t.consume(100);
        assert!(start.elapsed() >= Duration::from_millis(9));
    }
}
