//! Object-store abstraction: `store://bucket/key` addressing over
//! in-memory or on-disk backends.

use std::collections::BTreeMap;
use std::fmt;
use std::path::PathBuf;
use std::sync::Arc;

use parking_lot::RwLock;

/// Error raised by store operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// The object does not exist.
    NotFound(String),
    /// The URL is not a valid `store://bucket/key`.
    BadUrl(String),
    /// Underlying I/O failure (DirStore).
    Io(String),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::NotFound(k) => write!(f, "object not found: {k}"),
            StoreError::BadUrl(u) => write!(f, "bad store URL: {u}"),
            StoreError::Io(e) => write!(f, "store I/O error: {e}"),
        }
    }
}

impl std::error::Error for StoreError {}

/// A parsed `store://bucket/key` URL.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoreUrl {
    /// Bucket (container) name.
    pub bucket: String,
    /// Object key or key prefix.
    pub key: String,
}

impl StoreUrl {
    /// Render back to URL form.
    pub fn to_url(&self) -> String {
        format!("store://{}/{}", self.bucket, self.key)
    }
}

/// Parse a `store://bucket/key` URL. The key may be empty or end with `/`
/// (a prefix).
pub fn parse_url(url: &str) -> Result<StoreUrl, StoreError> {
    let rest = url
        .strip_prefix("store://")
        .ok_or_else(|| StoreError::BadUrl(url.to_string()))?;
    let (bucket, key) = match rest.split_once('/') {
        Some((b, k)) => (b, k),
        None => (rest, ""),
    };
    if bucket.is_empty() {
        return Err(StoreError::BadUrl(url.to_string()));
    }
    Ok(StoreUrl {
        bucket: bucket.to_string(),
        key: key.to_string(),
    })
}

/// A blob store: buckets of byte objects. All methods are `&self` —
/// implementations are internally synchronized so the virtualizer's
/// parallel FileWriter/uploader stages can share one handle.
pub trait ObjectStore: Send + Sync {
    /// Store `data` at `bucket/key`, overwriting.
    fn put(&self, bucket: &str, key: &str, data: Vec<u8>) -> Result<(), StoreError>;

    /// Fetch the object at `bucket/key`.
    fn get(&self, bucket: &str, key: &str) -> Result<Vec<u8>, StoreError>;

    /// List keys in `bucket` starting with `prefix`, sorted.
    fn list(&self, bucket: &str, prefix: &str) -> Result<Vec<String>, StoreError>;

    /// Delete the object (idempotent).
    fn delete(&self, bucket: &str, key: &str) -> Result<(), StoreError>;

    /// Total bytes stored under `prefix`.
    fn size_of_prefix(&self, bucket: &str, prefix: &str) -> Result<u64, StoreError> {
        let mut total = 0u64;
        for key in self.list(bucket, prefix)? {
            total += self.get(bucket, &key)?.len() as u64;
        }
        Ok(total)
    }
}

/// One bucket's objects, keyed by object key.
type Bucket = BTreeMap<String, Arc<Vec<u8>>>;

/// In-memory store (the default for tests and benches).
#[derive(Debug, Default)]
pub struct MemStore {
    buckets: RwLock<BTreeMap<String, Bucket>>,
}

impl MemStore {
    /// New empty store.
    pub fn new() -> MemStore {
        MemStore::default()
    }

    /// Number of objects in `bucket`.
    pub fn object_count(&self, bucket: &str) -> usize {
        self.buckets
            .read()
            .get(bucket)
            .map(|b| b.len())
            .unwrap_or(0)
    }
}

impl ObjectStore for MemStore {
    fn put(&self, bucket: &str, key: &str, data: Vec<u8>) -> Result<(), StoreError> {
        self.buckets
            .write()
            .entry(bucket.to_string())
            .or_default()
            .insert(key.to_string(), Arc::new(data));
        Ok(())
    }

    fn get(&self, bucket: &str, key: &str) -> Result<Vec<u8>, StoreError> {
        self.buckets
            .read()
            .get(bucket)
            .and_then(|b| b.get(key))
            .map(|data| data.as_ref().clone())
            .ok_or_else(|| StoreError::NotFound(format!("{bucket}/{key}")))
    }

    fn list(&self, bucket: &str, prefix: &str) -> Result<Vec<String>, StoreError> {
        Ok(self
            .buckets
            .read()
            .get(bucket)
            .map(|b| {
                b.keys()
                    .filter(|k| k.starts_with(prefix))
                    .cloned()
                    .collect()
            })
            .unwrap_or_default())
    }

    fn delete(&self, bucket: &str, key: &str) -> Result<(), StoreError> {
        if let Some(b) = self.buckets.write().get_mut(bucket) {
            b.remove(key);
        }
        Ok(())
    }
}

/// Filesystem-backed store: each bucket is a directory, each key a file
/// (slashes in keys become subdirectories).
#[derive(Debug)]
pub struct DirStore {
    root: PathBuf,
}

impl DirStore {
    /// Create a store rooted at `root` (created if missing).
    pub fn new(root: impl Into<PathBuf>) -> Result<DirStore, StoreError> {
        let root = root.into();
        std::fs::create_dir_all(&root).map_err(|e| StoreError::Io(e.to_string()))?;
        Ok(DirStore { root })
    }

    fn path_of(&self, bucket: &str, key: &str) -> PathBuf {
        let mut p = self.root.join(bucket);
        for part in key.split('/').filter(|s| !s.is_empty()) {
            p.push(part);
        }
        p
    }
}

impl ObjectStore for DirStore {
    fn put(&self, bucket: &str, key: &str, data: Vec<u8>) -> Result<(), StoreError> {
        let path = self.path_of(bucket, key);
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent).map_err(|e| StoreError::Io(e.to_string()))?;
        }
        std::fs::write(&path, data).map_err(|e| StoreError::Io(e.to_string()))
    }

    fn get(&self, bucket: &str, key: &str) -> Result<Vec<u8>, StoreError> {
        let path = self.path_of(bucket, key);
        std::fs::read(&path).map_err(|e| {
            if e.kind() == std::io::ErrorKind::NotFound {
                StoreError::NotFound(format!("{bucket}/{key}"))
            } else {
                StoreError::Io(e.to_string())
            }
        })
    }

    fn list(&self, bucket: &str, prefix: &str) -> Result<Vec<String>, StoreError> {
        let dir = self.root.join(bucket);
        let mut keys = Vec::new();
        if !dir.exists() {
            return Ok(keys);
        }
        let mut stack = vec![dir.clone()];
        while let Some(d) = stack.pop() {
            let entries = std::fs::read_dir(&d).map_err(|e| StoreError::Io(e.to_string()))?;
            for entry in entries {
                let entry = entry.map_err(|e| StoreError::Io(e.to_string()))?;
                let path = entry.path();
                if path.is_dir() {
                    stack.push(path);
                } else {
                    let key = path
                        .strip_prefix(&dir)
                        .expect("under bucket dir")
                        .components()
                        .map(|c| c.as_os_str().to_string_lossy())
                        .collect::<Vec<_>>()
                        .join("/");
                    if key.starts_with(prefix) {
                        keys.push(key);
                    }
                }
            }
        }
        keys.sort();
        Ok(keys)
    }

    fn delete(&self, bucket: &str, key: &str) -> Result<(), StoreError> {
        let path = self.path_of(bucket, key);
        match std::fs::remove_file(&path) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(StoreError::Io(e.to_string())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise(store: &dyn ObjectStore) {
        store.put("b", "job1/part-000", b"aaa".to_vec()).unwrap();
        store.put("b", "job1/part-001", b"bbbb".to_vec()).unwrap();
        store.put("b", "job2/part-000", b"cc".to_vec()).unwrap();

        assert_eq!(store.get("b", "job1/part-000").unwrap(), b"aaa");
        assert_eq!(
            store.list("b", "job1/").unwrap(),
            vec!["job1/part-000".to_string(), "job1/part-001".to_string()]
        );
        assert_eq!(store.size_of_prefix("b", "job1/").unwrap(), 7);
        assert!(matches!(
            store.get("b", "missing"),
            Err(StoreError::NotFound(_))
        ));

        store.put("b", "job1/part-000", b"xyz".to_vec()).unwrap(); // overwrite
        assert_eq!(store.get("b", "job1/part-000").unwrap(), b"xyz");

        store.delete("b", "job1/part-000").unwrap();
        store.delete("b", "job1/part-000").unwrap(); // idempotent
        assert_eq!(store.list("b", "job1/").unwrap().len(), 1);
    }

    #[test]
    fn mem_store() {
        let store = MemStore::new();
        exercise(&store);
        assert_eq!(store.object_count("b"), 2);
    }

    #[test]
    fn dir_store() {
        let dir = std::env::temp_dir().join(format!("etlv-dirstore-{}", std::process::id()));
        let store = DirStore::new(&dir).unwrap();
        exercise(&store);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn url_parsing() {
        let u = parse_url("store://bucket/a/b/c").unwrap();
        assert_eq!(u.bucket, "bucket");
        assert_eq!(u.key, "a/b/c");
        assert_eq!(u.to_url(), "store://bucket/a/b/c");

        let u = parse_url("store://bucket").unwrap();
        assert_eq!(u.key, "");

        assert!(parse_url("s3://bucket/k").is_err());
        assert!(parse_url("store:///k").is_err());
    }

    #[test]
    fn empty_bucket_list() {
        let store = MemStore::new();
        assert_eq!(store.list("nope", "").unwrap(), Vec::<String>::new());
    }
}
