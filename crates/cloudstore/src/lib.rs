//! # etlv-cloudstore
//!
//! A simulated cloud object store plus the client-side bulk-upload
//! utilities the virtualizer uses to stage data for the CDW — the stand-in
//! for S3/Azure Blob and `aws s3 cp`/AzCopy in the paper's §6.
//!
//! - [`store`]: the [`ObjectStore`] trait with in-memory ([`MemStore`]) and
//!   on-disk ([`DirStore`]) backends, both addressable through
//!   `store://bucket/key` URLs.
//! - [`compress`]: a self-contained LZSS block codec used for compressed
//!   staged files (the paper: "data compression can improve upload speed if
//!   the communication link ... is slow").
//! - [`loader`]: the [`BulkLoader`] utility — uploads files or directories,
//!   optionally compressing, with configurable part size.
//! - [`throttle`]: bandwidth/latency shaping so benches can model slow
//!   links between the virtualizer node and the cloud.
//! - [`observe`]: the [`ObservedStore`] decorator reporting put/get
//!   latency and byte counts to a caller-supplied observer.

pub mod chaos;
pub mod compress;
pub mod loader;
pub mod observe;
pub mod store;
pub mod throttle;

pub use chaos::{ChaosStore, StoreFault, StoreFaultHook, StoreOp};
pub use compress::{compress, decompress, CompressError};
pub use loader::{BulkLoader, LoaderConfig, UploadReport};
pub use observe::{ObservedStore, StoreObserver};
pub use store::{parse_url, MemStore, ObjectStore, StoreError, StoreUrl};
pub use throttle::Throttle;
