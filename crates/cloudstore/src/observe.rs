//! Metrics-observing object-store wrapper.
//!
//! [`ObservedStore`] decorates any [`ObjectStore`] with a callback invoked
//! after every `put`/`get`, reporting the operation, the byte count moved,
//! the wall time, and whether it succeeded. Like [`ChaosStore`]
//! (crate::chaos), the wrapper carries no policy of its own — the
//! virtualizer installs a hook that feeds its metrics registry, so this
//! crate stays free of any dependency on the observability subsystem.

use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::store::{ObjectStore, StoreError};

/// Re-use the chaos enum: observers see the same operation taxonomy.
pub use crate::chaos::StoreOp;

/// Per-operation observation callback: `(op, bytes, elapsed, ok)`.
///
/// `bytes` is the payload size — the data written for `put`, the data
/// returned for `get` (0 when the read failed).
pub type StoreObserver = Arc<dyn Fn(StoreOp, u64, Duration, bool) + Send + Sync>;

/// An [`ObjectStore`] decorator that reports every `put`/`get` to an
/// observer. `list`/`delete` pass through unobserved — they are
/// control-plane operations off the data path.
pub struct ObservedStore {
    inner: Arc<dyn ObjectStore>,
    observer: StoreObserver,
}

impl ObservedStore {
    /// Wrap `inner`, reporting every put/get to `observer`.
    pub fn new(inner: Arc<dyn ObjectStore>, observer: StoreObserver) -> ObservedStore {
        ObservedStore { inner, observer }
    }
}

impl ObjectStore for ObservedStore {
    fn put(&self, bucket: &str, key: &str, data: Vec<u8>) -> Result<(), StoreError> {
        let bytes = data.len() as u64;
        let start = Instant::now();
        let result = self.inner.put(bucket, key, data);
        (self.observer)(StoreOp::Put, bytes, start.elapsed(), result.is_ok());
        result
    }

    fn get(&self, bucket: &str, key: &str) -> Result<Vec<u8>, StoreError> {
        let start = Instant::now();
        let result = self.inner.get(bucket, key);
        let bytes = result.as_ref().map(|d| d.len() as u64).unwrap_or(0);
        (self.observer)(StoreOp::Get, bytes, start.elapsed(), result.is_ok());
        result
    }

    fn list(&self, bucket: &str, prefix: &str) -> Result<Vec<String>, StoreError> {
        self.inner.list(bucket, prefix)
    }

    fn delete(&self, bucket: &str, key: &str) -> Result<(), StoreError> {
        self.inner.delete(bucket, key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::MemStore;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn observer_sees_puts_gets_and_failures() {
        let mem = Arc::new(MemStore::new());
        let put_bytes = Arc::new(AtomicU64::new(0));
        let get_bytes = Arc::new(AtomicU64::new(0));
        let failures = Arc::new(AtomicU64::new(0));
        let (pb, gb, fl) = (put_bytes.clone(), get_bytes.clone(), failures.clone());
        let observer: StoreObserver = Arc::new(move |op, bytes, _elapsed, ok| {
            if !ok {
                fl.fetch_add(1, Ordering::Relaxed);
            }
            match op {
                StoreOp::Put => pb.fetch_add(bytes, Ordering::Relaxed),
                StoreOp::Get => gb.fetch_add(bytes, Ordering::Relaxed),
            };
        });
        let store = ObservedStore::new(mem as Arc<dyn ObjectStore>, observer);

        store.put("b", "k", b"12345".to_vec()).unwrap();
        assert_eq!(store.get("b", "k").unwrap(), b"12345");
        assert!(store.get("b", "missing").is_err());

        assert_eq!(put_bytes.load(Ordering::Relaxed), 5);
        assert_eq!(get_bytes.load(Ordering::Relaxed), 5);
        assert_eq!(failures.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn list_and_delete_pass_through_unobserved() {
        let mem = Arc::new(MemStore::new());
        let calls = Arc::new(AtomicU64::new(0));
        let c = calls.clone();
        let observer: StoreObserver = Arc::new(move |_, _, _, _| {
            c.fetch_add(1, Ordering::Relaxed);
        });
        let store = ObservedStore::new(mem as Arc<dyn ObjectStore>, observer);
        store.put("b", "k", b"x".to_vec()).unwrap();
        assert_eq!(store.list("b", "").unwrap(), vec!["k".to_string()]);
        store.delete("b", "k").unwrap();
        assert_eq!(calls.load(Ordering::Relaxed), 1, "only the put observed");
    }
}
