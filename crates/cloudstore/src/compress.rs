//! A self-contained LZSS block codec.
//!
//! Staged ETL files are highly repetitive (delimiters, repeated keys,
//! fixed-width padding), so even a simple dictionary coder gets a useful
//! ratio. The format is:
//!
//! ```text
//! magic "LZS1" | u64 original_len | token stream
//! ```
//!
//! The token stream is groups of a *flag byte* followed by up to eight
//! items, LSB first: flag bit 1 = a literal byte; flag bit 0 = a 2-byte
//! back-reference `offset:12 len:4` encoding a match of `len + MIN_MATCH`
//! bytes at `offset + 1` positions back (window 4 KiB, match length
//! 3..=18).
//!
//! This is not meant to compete with zstd — it exists so the compression
//! stage of the pipeline (FileWriter finalization, COPY decompression) does
//! real, measurable work without an external dependency.

/// Magic prefix of a compressed block.
pub const MAGIC: &[u8; 4] = b"LZS1";
/// Sliding-window size.
const WINDOW: usize = 4096;
/// Minimum match length worth encoding.
const MIN_MATCH: usize = 3;
/// Maximum match length (4-bit length field).
const MAX_MATCH: usize = MIN_MATCH + 15;
/// Hash-chain bucket count (power of two).
const HASH_SIZE: usize = 1 << 13;
/// Limit on chain probes per position (bounds worst-case time).
const MAX_PROBES: usize = 32;

/// Error raised by [`decompress`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompressError {
    /// Input does not start with the block magic.
    BadMagic,
    /// Input ended unexpectedly.
    Truncated,
    /// A back-reference pointed before the start of output.
    BadReference,
    /// Decompressed size differs from the header's claim.
    LengthMismatch {
        /// Length the header declared.
        declared: u64,
        /// Length actually produced.
        actual: u64,
    },
}

impl std::fmt::Display for CompressError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CompressError::BadMagic => write!(f, "not an LZS1 block"),
            CompressError::Truncated => write!(f, "compressed block truncated"),
            CompressError::BadReference => write!(f, "back-reference out of range"),
            CompressError::LengthMismatch { declared, actual } => {
                write!(f, "decompressed {actual} bytes, header declared {declared}")
            }
        }
    }
}

impl std::error::Error for CompressError {}

fn hash3(data: &[u8]) -> usize {
    let h = (data[0] as u32)
        .wrapping_mul(2654435761)
        .wrapping_add((data[1] as u32).wrapping_mul(40503))
        .wrapping_add(data[2] as u32);
    (h as usize) & (HASH_SIZE - 1)
}

/// Compress `input` into a self-describing block.
pub fn compress(input: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(input.len() / 2 + 16);
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&(input.len() as u64).to_le_bytes());

    // head[h] = most recent position with hash h; prev[i % WINDOW] = chain.
    let mut head = vec![usize::MAX; HASH_SIZE];
    let mut prev = vec![usize::MAX; WINDOW];

    let mut i = 0usize;
    let mut flag_pos = 0usize;
    let mut flag_bit = 8u8; // forces a new flag byte on first item
    let mut flag_val = 0u8;

    macro_rules! begin_item {
        () => {
            if flag_bit == 8 {
                if flag_pos != 0 {
                    out[flag_pos] = flag_val;
                }
                flag_pos = out.len();
                out.push(0);
                flag_val = 0;
                flag_bit = 0;
            }
        };
    }

    while i < input.len() {
        let mut best_len = 0usize;
        let mut best_off = 0usize;
        if i + MIN_MATCH <= input.len() {
            let h = hash3(&input[i..]);
            let mut cand = head[h];
            let mut probes = 0;
            while cand != usize::MAX && i - cand <= WINDOW && probes < MAX_PROBES {
                if cand < i {
                    let max_len = MAX_MATCH.min(input.len() - i);
                    let mut l = 0usize;
                    while l < max_len && input[cand + l] == input[i + l] {
                        l += 1;
                    }
                    if l >= MIN_MATCH && l > best_len {
                        best_len = l;
                        best_off = i - cand;
                        if l == MAX_MATCH {
                            break;
                        }
                    }
                }
                let next = prev[cand % WINDOW];
                if next == usize::MAX || next >= cand {
                    break;
                }
                cand = next;
                probes += 1;
            }
        }

        begin_item!();
        if best_len >= MIN_MATCH {
            // Back-reference item: offset-1 in 12 bits, len-MIN_MATCH in 4.
            let enc = (((best_off - 1) as u16) << 4) | ((best_len - MIN_MATCH) as u16);
            out.extend_from_slice(&enc.to_le_bytes());
            // Insert hash entries for every covered position.
            let end = i + best_len;
            while i < end {
                if i + MIN_MATCH <= input.len() {
                    let h = hash3(&input[i..]);
                    prev[i % WINDOW] = head[h];
                    head[h] = i;
                }
                i += 1;
            }
        } else {
            flag_val |= 1 << flag_bit;
            out.push(input[i]);
            if i + MIN_MATCH <= input.len() {
                let h = hash3(&input[i..]);
                prev[i % WINDOW] = head[h];
                head[h] = i;
            }
            i += 1;
        }
        flag_bit += 1;
    }
    // Patch the final (possibly partial) flag byte.
    if flag_pos != 0 {
        out[flag_pos] = flag_val;
    }
    out
}

/// Decompress a block produced by [`compress`].
pub fn decompress(input: &[u8]) -> Result<Vec<u8>, CompressError> {
    if input.len() < 12 {
        return Err(if input.len() < 4 || &input[..4] != MAGIC {
            CompressError::BadMagic
        } else {
            CompressError::Truncated
        });
    }
    if &input[..4] != MAGIC {
        return Err(CompressError::BadMagic);
    }
    let declared = u64::from_le_bytes(input[4..12].try_into().expect("8 bytes"));
    let mut out = Vec::with_capacity(declared as usize);
    let mut i = 12usize;
    while i < input.len() {
        let flags = input[i];
        i += 1;
        for bit in 0..8 {
            if i >= input.len() {
                break;
            }
            if out.len() as u64 == declared && i == input.len() {
                break;
            }
            if flags & (1 << bit) != 0 {
                out.push(input[i]);
                i += 1;
            } else {
                if i + 2 > input.len() {
                    return Err(CompressError::Truncated);
                }
                let enc = u16::from_le_bytes([input[i], input[i + 1]]);
                i += 2;
                let off = ((enc >> 4) as usize) + 1;
                let len = (enc & 0xF) as usize + MIN_MATCH;
                if off > out.len() {
                    return Err(CompressError::BadReference);
                }
                let start = out.len() - off;
                for k in 0..len {
                    let b = out[start + k];
                    out.push(b);
                }
            }
        }
    }
    if out.len() as u64 != declared {
        return Err(CompressError::LengthMismatch {
            declared,
            actual: out.len() as u64,
        });
    }
    Ok(out)
}

/// Whether `data` looks like a compressed block (magic check only).
pub fn is_compressed(data: &[u8]) -> bool {
    data.len() >= 4 && &data[..4] == MAGIC
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_roundtrip() {
        let c = compress(b"");
        assert_eq!(decompress(&c).unwrap(), b"");
    }

    #[test]
    fn short_roundtrip() {
        for input in [&b"a"[..], b"ab", b"abc", b"abcd"] {
            let c = compress(input);
            assert_eq!(decompress(&c).unwrap(), input, "input {input:?}");
        }
    }

    #[test]
    fn repetitive_data_shrinks() {
        let input: Vec<u8> = b"123|Smith|2012-01-01\n".repeat(200);
        let c = compress(&input);
        assert!(
            c.len() < input.len() / 2,
            "expected 2x+ ratio, got {} -> {}",
            input.len(),
            c.len()
        );
        assert_eq!(decompress(&c).unwrap(), input);
    }

    #[test]
    fn incompressible_data_roundtrips() {
        // Pseudo-random bytes: little compression, but must roundtrip.
        let mut state = 0x12345678u64;
        let input: Vec<u8> = (0..10_000)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (state >> 33) as u8
            })
            .collect();
        let c = compress(&input);
        assert_eq!(decompress(&c).unwrap(), input);
    }

    #[test]
    fn long_runs() {
        let input = vec![b'x'; 100_000];
        let c = compress(&input);
        assert!(c.len() < 20_000);
        assert_eq!(decompress(&c).unwrap(), input);
    }

    #[test]
    fn matches_beyond_window_not_used() {
        // A repeat spaced wider than the window still roundtrips.
        let mut input = vec![0u8; 0];
        input.extend_from_slice(b"needle-needle-needle");
        input.extend(std::iter::repeat_n(b'.', WINDOW + 100));
        input.extend_from_slice(b"needle-needle-needle");
        let c = compress(&input);
        assert_eq!(decompress(&c).unwrap(), input);
    }

    #[test]
    fn rejects_garbage() {
        assert_eq!(decompress(b"nope"), Err(CompressError::BadMagic));
        assert_eq!(decompress(b"LZS1\x01"), Err(CompressError::Truncated));
        // Declared length mismatch.
        let mut c = compress(b"hello world hello world");
        c[4] = 99; // corrupt declared length
        assert!(matches!(
            decompress(&c),
            Err(CompressError::LengthMismatch { .. }) | Err(CompressError::Truncated)
        ));
    }

    #[test]
    fn bad_reference_detected() {
        let mut block = Vec::new();
        block.extend_from_slice(MAGIC);
        block.extend_from_slice(&10u64.to_le_bytes());
        block.push(0b0000_0000); // first item is a reference
        block.extend_from_slice(&0xFFFFu16.to_le_bytes()); // offset far beyond output
        assert_eq!(decompress(&block), Err(CompressError::BadReference));
    }

    #[test]
    fn is_compressed_check() {
        assert!(is_compressed(&compress(b"abc")));
        assert!(!is_compressed(b"plain text"));
    }
}
