//! Fault-injecting object-store wrapper.
//!
//! [`ChaosStore`] decorates any [`ObjectStore`] with a hook consulted on
//! every `put`/`get`. The hook decides whether the operation proceeds,
//! fails outright, or — for `put` — tears mid-write, leaving a truncated
//! object behind exactly as an interrupted multipart upload would. The
//! decision logic (seeding, rates, budgets) lives with the caller; this
//! wrapper only applies verdicts, so the same store wiring serves unit
//! tests, the virtualizer's chaos suite, and manual experiments.

use std::sync::Arc;

use crate::store::{ObjectStore, StoreError};

/// Which store operation a fault verdict is being requested for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StoreOp {
    /// An object write.
    Put,
    /// An object read.
    Get,
}

/// The verdict for one store operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StoreFault {
    /// Perform the operation normally.
    None,
    /// Fail with an I/O error; the backing store is untouched.
    Error,
    /// `put` only: write the first half of the data, then fail — a torn
    /// upload. A later successful retry overwrites the partial object.
    /// Treated as [`StoreFault::Error`] for `get`.
    PartialWrite,
}

/// Per-operation fault decision hook.
pub type StoreFaultHook = Arc<dyn Fn(StoreOp) -> StoreFault + Send + Sync>;

/// An [`ObjectStore`] decorator that injects faults on `put`/`get`.
/// `list`/`delete` pass through untouched.
pub struct ChaosStore {
    inner: Arc<dyn ObjectStore>,
    hook: StoreFaultHook,
}

impl ChaosStore {
    /// Wrap `inner`, consulting `hook` on every put/get.
    pub fn new(inner: Arc<dyn ObjectStore>, hook: StoreFaultHook) -> ChaosStore {
        ChaosStore { inner, hook }
    }
}

impl ObjectStore for ChaosStore {
    fn put(&self, bucket: &str, key: &str, data: Vec<u8>) -> Result<(), StoreError> {
        match (self.hook)(StoreOp::Put) {
            StoreFault::None => self.inner.put(bucket, key, data),
            StoreFault::Error => Err(StoreError::Io(format!(
                "injected fault: put {bucket}/{key} failed"
            ))),
            StoreFault::PartialWrite => {
                let torn = data[..data.len() / 2].to_vec();
                self.inner.put(bucket, key, torn)?;
                Err(StoreError::Io(format!(
                    "injected fault: put {bucket}/{key} torn mid-write"
                )))
            }
        }
    }

    fn get(&self, bucket: &str, key: &str) -> Result<Vec<u8>, StoreError> {
        match (self.hook)(StoreOp::Get) {
            StoreFault::None => self.inner.get(bucket, key),
            _ => Err(StoreError::Io(format!(
                "injected fault: get {bucket}/{key} failed"
            ))),
        }
    }

    fn list(&self, bucket: &str, prefix: &str) -> Result<Vec<String>, StoreError> {
        self.inner.list(bucket, prefix)
    }

    fn delete(&self, bucket: &str, key: &str) -> Result<(), StoreError> {
        self.inner.delete(bucket, key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::MemStore;
    use std::sync::atomic::{AtomicU32, Ordering};

    fn chaos_first_n_puts(n: u32) -> (ChaosStore, Arc<MemStore>) {
        let mem = Arc::new(MemStore::new());
        let remaining = AtomicU32::new(n);
        let hook: StoreFaultHook = Arc::new(move |op| {
            if op == StoreOp::Put
                && remaining
                    .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| v.checked_sub(1))
                    .is_ok()
            {
                StoreFault::Error
            } else {
                StoreFault::None
            }
        });
        (
            ChaosStore::new(Arc::clone(&mem) as Arc<dyn ObjectStore>, hook),
            mem,
        )
    }

    #[test]
    fn error_faults_leave_store_untouched_then_clear() {
        let (chaos, mem) = chaos_first_n_puts(2);
        assert!(chaos.put("b", "k", b"data".to_vec()).is_err());
        assert!(chaos.put("b", "k", b"data".to_vec()).is_err());
        assert_eq!(mem.object_count("b"), 0);
        chaos.put("b", "k", b"data".to_vec()).unwrap();
        assert_eq!(chaos.get("b", "k").unwrap(), b"data");
    }

    #[test]
    fn partial_write_leaves_torn_object_retry_overwrites() {
        let mem = Arc::new(MemStore::new());
        let once = AtomicU32::new(1);
        let hook: StoreFaultHook = Arc::new(move |op| {
            if op == StoreOp::Put && once.swap(0, Ordering::Relaxed) == 1 {
                StoreFault::PartialWrite
            } else {
                StoreFault::None
            }
        });
        let chaos = ChaosStore::new(Arc::clone(&mem) as Arc<dyn ObjectStore>, hook);
        let err = chaos.put("b", "k", b"12345678".to_vec()).unwrap_err();
        assert!(matches!(err, StoreError::Io(_)));
        // Torn half is visible — exactly the hazard retry must overwrite.
        assert_eq!(mem.get("b", "k").unwrap(), b"1234");
        chaos.put("b", "k", b"12345678".to_vec()).unwrap();
        assert_eq!(chaos.get("b", "k").unwrap(), b"12345678");
    }

    #[test]
    fn get_faults_and_passthrough_ops() {
        let mem = Arc::new(MemStore::new());
        mem.put("b", "k", b"x".to_vec()).unwrap();
        let flaky = AtomicU32::new(1);
        let hook: StoreFaultHook = Arc::new(move |op| {
            if op == StoreOp::Get && flaky.swap(0, Ordering::Relaxed) == 1 {
                StoreFault::Error
            } else {
                StoreFault::None
            }
        });
        let chaos = ChaosStore::new(Arc::clone(&mem) as Arc<dyn ObjectStore>, hook);
        assert!(chaos.get("b", "k").is_err());
        assert_eq!(chaos.get("b", "k").unwrap(), b"x");
        assert_eq!(chaos.list("b", "").unwrap(), vec!["k".to_string()]);
        chaos.delete("b", "k").unwrap();
        assert_eq!(mem.object_count("b"), 0);
    }
}
