//! The cloud bulk-upload utility — the stand-in for `aws s3 cp` / AzCopy.
//!
//! The virtualizer hands finalized staging files to a [`BulkLoader`], which
//! optionally compresses them and writes them to the object store through a
//! [`Throttle`]d link. Directory upload (many parts under one prefix) is
//! the normal mode, mirroring the paper's note that uploading a directory
//! of files can beat uploading files one at a time.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::compress;
use crate::store::{ObjectStore, StoreError};
use crate::throttle::Throttle;

/// Bulk-loader configuration.
#[derive(Debug, Clone)]
pub struct LoaderConfig {
    /// Destination bucket.
    pub bucket: String,
    /// Compress parts before upload.
    pub compress: bool,
    /// Link model applied to each upload.
    pub throttle: Throttle,
}

impl LoaderConfig {
    /// Plain uncompressed uploads to `bucket` over an unshaped link.
    pub fn new(bucket: impl Into<String>) -> LoaderConfig {
        LoaderConfig {
            bucket: bucket.into(),
            compress: false,
            throttle: Throttle::unlimited(),
        }
    }
}

/// Cumulative statistics for a loader.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct UploadReport {
    /// Parts uploaded.
    pub parts: u64,
    /// Raw bytes before compression.
    pub bytes_in: u64,
    /// Bytes actually transferred.
    pub bytes_out: u64,
}

/// The bulk-upload utility.
pub struct BulkLoader {
    store: Arc<dyn ObjectStore>,
    config: LoaderConfig,
    parts: AtomicU64,
    bytes_in: AtomicU64,
    bytes_out: AtomicU64,
}

impl BulkLoader {
    /// Create a loader over `store` with `config`.
    pub fn new(store: Arc<dyn ObjectStore>, config: LoaderConfig) -> BulkLoader {
        BulkLoader {
            store,
            config,
            parts: AtomicU64::new(0),
            bytes_in: AtomicU64::new(0),
            bytes_out: AtomicU64::new(0),
        }
    }

    /// The loader's configuration.
    pub fn config(&self) -> &LoaderConfig {
        &self.config
    }

    /// Upload one part to `key` (e.g. `job42/part-00007`). Returns the
    /// transferred (possibly compressed) size.
    pub fn upload_part(&self, key: &str, data: Vec<u8>) -> Result<u64, StoreError> {
        let raw_len = data.len() as u64;
        let payload = if self.config.compress {
            compress::compress(&data)
        } else {
            data
        };
        self.transfer(key, raw_len, payload)
    }

    /// Like [`upload_part`](BulkLoader::upload_part) but borrows the data,
    /// so the caller can retry the same part after a failed transfer.
    pub fn upload_part_from(&self, key: &str, data: &[u8]) -> Result<u64, StoreError> {
        let raw_len = data.len() as u64;
        let payload = if self.config.compress {
            compress::compress(data)
        } else {
            data.to_vec()
        };
        self.transfer(key, raw_len, payload)
    }

    fn transfer(&self, key: &str, raw_len: u64, payload: Vec<u8>) -> Result<u64, StoreError> {
        let out_len = payload.len() as u64;
        self.config.throttle.consume(out_len);
        self.store.put(&self.config.bucket, key, payload)?;
        self.parts.fetch_add(1, Ordering::Relaxed);
        self.bytes_in.fetch_add(raw_len, Ordering::Relaxed);
        self.bytes_out.fetch_add(out_len, Ordering::Relaxed);
        Ok(out_len)
    }

    /// Upload a whole directory of local files under `prefix`, preserving
    /// file names. Returns the keys uploaded.
    pub fn upload_dir(
        &self,
        dir: &std::path::Path,
        prefix: &str,
    ) -> Result<Vec<String>, StoreError> {
        let mut keys = Vec::new();
        let entries = std::fs::read_dir(dir).map_err(|e| StoreError::Io(e.to_string()))?;
        let mut files: Vec<_> = entries
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| p.is_file())
            .collect();
        files.sort();
        for path in files {
            let name = path
                .file_name()
                .expect("file path has name")
                .to_string_lossy()
                .to_string();
            let data = std::fs::read(&path).map_err(|e| StoreError::Io(e.to_string()))?;
            let key = format!("{prefix}{name}");
            self.upload_part(&key, data)?;
            keys.push(key);
        }
        Ok(keys)
    }

    /// Fetch and (if needed) decompress an uploaded part.
    pub fn fetch_part(&self, key: &str) -> Result<Vec<u8>, StoreError> {
        let data = self.store.get(&self.config.bucket, key)?;
        if compress::is_compressed(&data) {
            compress::decompress(&data).map_err(|e| StoreError::Io(e.to_string()))
        } else {
            Ok(data)
        }
    }

    /// Snapshot of cumulative statistics.
    pub fn report(&self) -> UploadReport {
        UploadReport {
            parts: self.parts.load(Ordering::Relaxed),
            bytes_in: self.bytes_in.load(Ordering::Relaxed),
            bytes_out: self.bytes_out.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::MemStore;

    fn loader(compress: bool) -> BulkLoader {
        let mut cfg = LoaderConfig::new("staging");
        cfg.compress = compress;
        BulkLoader::new(Arc::new(MemStore::new()), cfg)
    }

    #[test]
    fn upload_part_from_matches_owned_upload() {
        let l = loader(true);
        let data: Vec<u8> = b"row|row|row\n".repeat(50);
        let n1 = l.upload_part("j/a", data.clone()).unwrap();
        let n2 = l.upload_part_from("j/b", &data).unwrap();
        assert_eq!(n1, n2);
        assert_eq!(l.fetch_part("j/b").unwrap(), data);
        assert_eq!(l.report().parts, 2);
    }

    #[test]
    fn plain_upload_roundtrip() {
        let l = loader(false);
        l.upload_part("j/part-0", b"hello world".to_vec()).unwrap();
        assert_eq!(l.fetch_part("j/part-0").unwrap(), b"hello world");
        let r = l.report();
        assert_eq!(r.parts, 1);
        assert_eq!(r.bytes_in, 11);
        assert_eq!(r.bytes_out, 11);
    }

    #[test]
    fn compressed_upload_roundtrip() {
        let l = loader(true);
        let data: Vec<u8> = b"repetitive|row|data\n".repeat(100);
        l.upload_part("j/part-0", data.clone()).unwrap();
        assert_eq!(l.fetch_part("j/part-0").unwrap(), data);
        let r = l.report();
        assert!(r.bytes_out < r.bytes_in, "{r:?}");
    }

    #[test]
    fn upload_dir_preserves_names() {
        let dir = std::env::temp_dir().join(format!("etlv-loader-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("part-000"), b"a").unwrap();
        std::fs::write(dir.join("part-001"), b"b").unwrap();
        let l = loader(false);
        let keys = l.upload_dir(&dir, "job7/").unwrap();
        assert_eq!(
            keys,
            vec!["job7/part-000".to_string(), "job7/part-001".to_string()]
        );
        assert_eq!(l.fetch_part("job7/part-001").unwrap(), b"b");
        std::fs::remove_dir_all(&dir).ok();
    }
}
