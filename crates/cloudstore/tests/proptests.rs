//! Property tests: LZSS roundtrips on arbitrary inputs, including
//! adversarial repetition structures, and the object store behaves like a
//! map.

use proptest::prelude::*;

use etlv_cloudstore::{compress, decompress, MemStore, ObjectStore};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn lzss_roundtrip_arbitrary(data in proptest::collection::vec(any::<u8>(), 0..4096)) {
        let c = compress(&data);
        prop_assert_eq!(decompress(&c).unwrap(), data);
    }

    #[test]
    fn lzss_roundtrip_repetitive(
        unit in proptest::collection::vec(any::<u8>(), 1..16),
        reps in 1usize..400,
    ) {
        let data: Vec<u8> = unit.iter().cycle().take(unit.len() * reps).copied().collect();
        let c = compress(&data);
        prop_assert_eq!(decompress(&c).unwrap(), data);
    }

    #[test]
    fn lzss_decompress_never_panics(data in proptest::collection::vec(any::<u8>(), 0..512)) {
        // Arbitrary bytes must decode or error, never panic.
        let _ = decompress(&data);
    }

    #[test]
    fn store_put_get_consistency(
        entries in proptest::collection::vec(("[a-z]{1,8}", proptest::collection::vec(any::<u8>(), 0..64)), 1..20)
    ) {
        let store = MemStore::new();
        let mut last = std::collections::HashMap::new();
        for (key, data) in &entries {
            store.put("b", key, data.clone()).unwrap();
            last.insert(key.clone(), data.clone());
        }
        for (key, data) in &last {
            prop_assert_eq!(&store.get("b", key).unwrap(), data);
        }
        let mut keys: Vec<String> = last.keys().cloned().collect();
        keys.sort();
        prop_assert_eq!(store.list("b", "").unwrap(), keys);
    }
}
