//! Per-tuple DML application with legacy error semantics.

use etlv_cdw::error::{BulkAbortKind, CdwError};
use etlv_cdw::Cdw;
use etlv_protocol::data::Value;
use etlv_protocol::errcode::ErrCode;
use etlv_protocol::layout::Layout;
use etlv_sql::ast::{Expr, Insert, InsertSource, Literal, Stmt};
use etlv_sql::transform::bind_placeholders;

/// One recorded load error.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadError {
    /// 1-based input row number.
    pub seq: u64,
    /// Legacy error code.
    pub code: ErrCode,
    /// Offending field name, when attributable.
    pub field: Option<String>,
    /// The input tuple (recorded in the UV table for uniqueness errors).
    pub tuple: Vec<Value>,
}

/// Outcome of applying the DML to the buffered rows.
#[derive(Debug, Default)]
pub struct ApplyOutcome {
    /// Tuples applied successfully.
    pub applied: u64,
    /// Transformation errors (→ ET table).
    pub et_errors: Vec<LoadError>,
    /// Uniqueness violations (→ UV table).
    pub uv_errors: Vec<LoadError>,
    /// Whether the job aborted because `errlimit` was exceeded.
    pub aborted: bool,
}

/// Classify a conversion failure into the legacy error-code table, based on
/// the engine's message.
pub fn classify_conversion(message: &str) -> ErrCode {
    let lower = message.to_ascii_lowercase();
    if lower.contains("date") {
        ErrCode::BAD_DATE
    } else if lower.contains("exceeds") || lower.contains("length") {
        ErrCode::STRING_TOO_LONG
    } else if lower.contains("overflow") || lower.contains("out of range") {
        ErrCode::NUMERIC_OVERFLOW
    } else {
        ErrCode::BAD_VALUE
    }
}

/// Attribute a failed tuple's conversion error to a layout field by
/// evaluating the bound INSERT's value expressions one by one and finding
/// the first that fails; its first placeholder names the field.
pub fn attribute_error(dml: &Stmt, layout: &Layout, row: &[Value]) -> Option<String> {
    let Stmt::Insert(Insert {
        source: InsertSource::Values(rows),
        ..
    }) = dml
    else {
        return None;
    };
    let exprs = rows.first()?;
    for expr in exprs {
        let placeholders = expr.placeholders();
        let bound = bind_one_expr(expr, layout, row);
        if etlv_cdw::eval::eval(&bound, &etlv_cdw::eval::EmptyEnv).is_err() {
            return placeholders.into_iter().next();
        }
    }
    None
}

fn bind_one_expr(expr: &Expr, layout: &Layout, row: &[Value]) -> Expr {
    etlv_sql::transform::map_expr(expr, &mut |e| match &e {
        Expr::Placeholder(name) => match layout.field_index(name) {
            Some(i) => Expr::Literal(Literal::from_value(&row[i])),
            None => e,
        },
        _ => e,
    })
}

/// Apply `dml` to each buffered `(seq, row)` tuple individually — the
/// legacy semantics. Rows whose application fails are recorded and the job
/// continues, unless `errlimit` (>0) is exceeded.
pub fn apply_per_tuple(
    engine: &Cdw,
    dml: &Stmt,
    layout: &Layout,
    rows: &[(u64, Vec<Value>)],
    errlimit: u64,
) -> ApplyOutcome {
    let mut outcome = ApplyOutcome::default();
    for (seq, row) in rows {
        let bound = bind_placeholders(dml, |name| {
            layout
                .field_index(name)
                .map(|i| Literal::from_value(&row[i]))
        });
        match engine.execute_stmt(&bound) {
            Ok(_) => outcome.applied += 1,
            Err(e) => {
                let err = match &e {
                    CdwError::BulkAbort {
                        kind: BulkAbortKind::Uniqueness,
                        ..
                    } => {
                        let le = LoadError {
                            seq: *seq,
                            code: ErrCode::UNIQUENESS,
                            field: None,
                            tuple: row.clone(),
                        };
                        outcome.uv_errors.push(le);
                        continue_or_abort(&mut outcome, errlimit)
                    }
                    CdwError::BulkAbort { message, .. } => {
                        let le = LoadError {
                            seq: *seq,
                            code: classify_conversion(message),
                            field: attribute_error(&bound_original(dml), layout, row),
                            tuple: row.clone(),
                        };
                        outcome.et_errors.push(le);
                        continue_or_abort(&mut outcome, errlimit)
                    }
                    _ => {
                        // Structural errors (missing table/column) are not
                        // per-tuple; record and abort.
                        outcome.et_errors.push(LoadError {
                            seq: *seq,
                            code: ErrCode::SQL_ERROR,
                            field: None,
                            tuple: row.clone(),
                        });
                        outcome.aborted = true;
                        true
                    }
                };
                if err {
                    break;
                }
            }
        }
    }
    outcome
}

fn bound_original(dml: &Stmt) -> Stmt {
    dml.clone()
}

fn continue_or_abort(outcome: &mut ApplyOutcome, errlimit: u64) -> bool {
    if errlimit > 0 && (outcome.et_errors.len() + outcome.uv_errors.len()) as u64 > errlimit {
        outcome.aborted = true;
        true
    } else {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use etlv_cdw::CdwConfig;
    use etlv_protocol::data::LegacyType;
    use etlv_sql::{parse_legacy, Dialect};

    fn setup() -> (Cdw, Stmt, Layout) {
        let engine = Cdw::with_config(
            CdwConfig {
                native_unique: true,
                ..Default::default()
            },
            None,
        );
        // Target with a unique CUST_ID (legacy servers enforce natively).
        let create = etlv_sql::parse_statement(
            "CREATE TABLE PROD.CUSTOMER (CUST_ID VARCHAR(5), CUST_NAME VARCHAR(50), JOIN_DATE DATE, PRIMARY KEY (CUST_ID))",
            Dialect::Cdw,
        )
        .unwrap();
        engine.execute_stmt(&create).unwrap();
        let dml = parse_legacy(
            "insert into PROD.CUSTOMER values (trim(:CUST_ID), trim(:CUST_NAME), cast(:JOIN_DATE as DATE format 'YYYY-MM-DD'))",
        )
        .unwrap();
        let layout = Layout::new("CustLayout")
            .field("CUST_ID", LegacyType::VarChar(5))
            .field("CUST_NAME", LegacyType::VarChar(50))
            .field("JOIN_DATE", LegacyType::VarChar(10));
        (engine, dml, layout)
    }

    fn figure5_rows() -> Vec<(u64, Vec<Value>)> {
        let rows = [
            ("123", "Smith", "2012-01-01"),
            ("456", "Brown", "xxxx"),
            ("789", "Brown", "yyyyy"),
            ("123", "Jones", "2012-12-01"),
            ("157", "Jones", "2012-12-01"),
        ];
        rows.iter()
            .enumerate()
            .map(|(i, (a, b, c))| {
                (
                    i as u64 + 1,
                    vec![
                        Value::Str(a.to_string()),
                        Value::Str(b.to_string()),
                        Value::Str(c.to_string()),
                    ],
                )
            })
            .collect()
    }

    #[test]
    fn figure5_semantics() {
        let (engine, dml, layout) = setup();
        let outcome = apply_per_tuple(&engine, &dml, &layout, &figure5_rows(), 0);
        // Rows 2 and 3 have bad dates -> ET with code 2666, field JOIN_DATE.
        assert_eq!(outcome.et_errors.len(), 2);
        assert_eq!(outcome.et_errors[0].seq, 2);
        assert_eq!(outcome.et_errors[0].code, ErrCode::BAD_DATE);
        assert_eq!(outcome.et_errors[0].field.as_deref(), Some("JOIN_DATE"));
        assert_eq!(outcome.et_errors[1].seq, 3);
        // Row 4 duplicates CUST_ID 123 -> UV with code 2794.
        assert_eq!(outcome.uv_errors.len(), 1);
        assert_eq!(outcome.uv_errors[0].seq, 4);
        assert_eq!(outcome.uv_errors[0].code, ErrCode::UNIQUENESS);
        assert_eq!(outcome.uv_errors[0].tuple[1], Value::Str("Jones".into()));
        // Rows 1 and 5 load.
        assert_eq!(outcome.applied, 2);
        assert!(!outcome.aborted);
        assert_eq!(engine.table_len("PROD.CUSTOMER").unwrap(), 2);
    }

    #[test]
    fn errlimit_aborts() {
        let (engine, dml, layout) = setup();
        let outcome = apply_per_tuple(&engine, &dml, &layout, &figure5_rows(), 1);
        // Second error (row 3) exceeds errlimit 1 -> abort before rows 4/5.
        assert!(outcome.aborted);
        assert_eq!(outcome.applied, 1);
        assert_eq!(engine.table_len("PROD.CUSTOMER").unwrap(), 1);
    }

    #[test]
    fn classification_table() {
        assert_eq!(classify_conversion("invalid date: bad"), ErrCode::BAD_DATE);
        assert_eq!(
            classify_conversion("string length 9 exceeds VARCHAR(5)"),
            ErrCode::STRING_TOO_LONG
        );
        assert_eq!(
            classify_conversion("integer overflow"),
            ErrCode::NUMERIC_OVERFLOW
        );
        assert_eq!(classify_conversion("whatever"), ErrCode::BAD_VALUE);
    }

    #[test]
    fn attribute_error_finds_field() {
        let (_, dml, layout) = setup();
        let row = vec![
            Value::Str("1".into()),
            Value::Str("a".into()),
            Value::Str("nope".into()),
        ];
        assert_eq!(
            attribute_error(&dml, &layout, &row).as_deref(),
            Some("JOIN_DATE")
        );
        // A clean row attributes nothing.
        let row = vec![
            Value::Str("1".into()),
            Value::Str("a".into()),
            Value::Str("2012-01-01".into()),
        ];
        assert_eq!(attribute_error(&dml, &layout, &row), None);
    }

    #[test]
    fn structural_error_aborts() {
        let engine = Cdw::new();
        let dml = parse_legacy("insert into NO_SUCH_TABLE values (:A)").unwrap();
        let layout = Layout::new("L").field("A", LegacyType::VarChar(5));
        let rows = vec![(1, vec![Value::Str("x".into())])];
        let outcome = apply_per_tuple(&engine, &dml, &layout, &rows, 0);
        assert!(outcome.aborted);
        assert_eq!(outcome.et_errors[0].code, ErrCode::SQL_ERROR);
    }
}
