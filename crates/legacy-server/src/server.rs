//! The legacy server's session layer: protocol handling over any
//! [`Transport`].

use std::collections::HashMap;
use std::io;
use std::net::TcpListener;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use etlv_cdw::{Cdw, CdwConfig};
use etlv_protocol::data::Value;
use etlv_protocol::errcode::ErrCode;
use etlv_protocol::layout::{FieldDef, Layout};
use etlv_protocol::message::RecordFormat;
use etlv_protocol::message::{
    BeginExportOk, BeginLoad, ExportChunk, LoadReport, Message, SessionRole, SqlResult, WireError,
};
use etlv_protocol::record::RecordDecoder;
use etlv_protocol::transport::Transport;
use etlv_protocol::vartext::VartextFormat;
use etlv_sql::ast::{Expr, Insert, InsertSource, Literal, ObjectName, Stmt};
use etlv_sql::types::SqlType;
use etlv_sql::{parse_statement, Dialect};
use parking_lot::Mutex;

use crate::apply::{apply_per_tuple, ApplyOutcome};

/// Server configuration.
#[derive(Debug, Clone, Default)]
pub struct ServerConfig {
    /// Engine configuration for the internal storage engine. Legacy
    /// systems enforce uniqueness natively, so `native_unique` is forced
    /// on regardless of this value.
    pub engine: CdwConfig,
    /// Rows per export chunk (0 = default 1024).
    pub export_chunk_rows: u32,
}

struct ImportJob {
    spec: BeginLoad,
    rows: Mutex<Vec<(u64, Vec<Value>)>>,
    started: Instant,
}

struct ExportJob {
    layout: Layout,
    format: RecordFormat,
    chunks: Vec<Vec<Vec<Value>>>,
}

enum Job {
    Import(Arc<ImportJob>),
    Export(Arc<ExportJob>),
}

/// The reference legacy EDW server.
pub struct LegacyServer {
    engine: Cdw,
    jobs: Mutex<HashMap<u64, Job>>,
    next_token: AtomicU64,
    next_session: AtomicU32,
    export_chunk_rows: u32,
}

impl LegacyServer {
    /// Create a server with default configuration.
    pub fn new() -> Arc<LegacyServer> {
        LegacyServer::with_config(ServerConfig::default())
    }

    /// Create a server with explicit configuration.
    pub fn with_config(config: ServerConfig) -> Arc<LegacyServer> {
        let engine_config = CdwConfig {
            native_unique: true,
            ..config.engine
        };
        Arc::new(LegacyServer {
            engine: Cdw::with_config(engine_config, None),
            jobs: Mutex::new(HashMap::new()),
            next_token: AtomicU64::new(1),
            next_session: AtomicU32::new(1),
            export_chunk_rows: if config.export_chunk_rows == 0 {
                1024
            } else {
                config.export_chunk_rows
            },
        })
    }

    /// Direct access to the internal engine (test assertions).
    pub fn engine(&self) -> &Cdw {
        &self.engine
    }

    /// Serve one connection until the peer logs off or disconnects.
    /// Callers run this on its own thread per connection.
    pub fn serve(self: &Arc<Self>, mut transport: impl Transport) -> io::Result<()> {
        let mut session_id = 0u32;
        let mut seq = 0u32;
        let mut role = SessionRole::Control;
        let mut job_token = 0u64;

        while let Some(frame) = transport.recv()? {
            let msg = match Message::from_frame(&frame) {
                Ok(m) => m,
                Err(e) => {
                    let reply = Message::Error(WireError {
                        code: ErrCode::PROTOCOL.0,
                        message: e.to_string(),
                        fatal: true,
                    });
                    transport.send(&reply.into_frame(session_id, seq))?;
                    return Ok(());
                }
            };
            seq = seq.wrapping_add(1);
            let reply = match msg {
                Message::Logon(logon) => {
                    if logon.username.is_empty() || logon.password.is_empty() {
                        Message::Error(WireError {
                            code: ErrCode::LOGON_FAILED.0,
                            message: "missing credentials".into(),
                            fatal: true,
                        })
                    } else {
                        session_id = self.next_session.fetch_add(1, Ordering::Relaxed);
                        role = logon.role;
                        job_token = logon.job_token;
                        Message::LogonOk(etlv_protocol::message::LogonOk {
                            session: session_id,
                            banner: "LegacyEDW reference server 1.0".into(),
                        })
                    }
                }
                Message::Sql { text } => self.handle_sql(&text),
                Message::BeginLoad(spec) => self.handle_begin_load(spec),
                Message::EndLoad(end) => self.handle_end_load(job_token, &end.dml),
                Message::BeginExport(spec) => self.handle_begin_export(spec),
                Message::DataChunk(chunk) => {
                    if role != SessionRole::Data {
                        Message::Error(WireError {
                            code: ErrCode::PROTOCOL.0,
                            message: "data chunk on a control session".into(),
                            fatal: true,
                        })
                    } else {
                        self.handle_data_chunk(job_token, chunk)
                    }
                }
                Message::ExportChunkReq { index } => self.handle_export_req(job_token, index),
                Message::Logoff => {
                    transport.send(&Message::LogoffOk.into_frame(session_id, seq))?;
                    return Ok(());
                }
                Message::Keepalive => Message::Keepalive,
                other => Message::Error(WireError {
                    code: ErrCode::PROTOCOL.0,
                    message: format!("unexpected message {:?}", other.kind()),
                    fatal: true,
                }),
            };
            // A control session that begins a job implicitly attaches to
            // it: EndLoad/ExportChunkReq on this session use that token.
            match &reply {
                Message::BeginLoadOk { load_token } => job_token = *load_token,
                Message::BeginExportOk(ok) => job_token = ok.export_token,
                _ => {}
            }
            let fatal = matches!(&reply, Message::Error(e) if e.fatal);
            transport.send(&reply.into_frame(session_id, seq))?;
            if fatal {
                return Ok(());
            }
        }
        Ok(())
    }

    /// Accept loop over TCP; spawns one thread per connection. Returns the
    /// bound address. Runs until the process exits (tests use ephemeral
    /// ports and drop connections).
    pub fn listen_tcp(self: &Arc<Self>, addr: &str) -> io::Result<std::net::SocketAddr> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let server = Arc::clone(self);
        std::thread::spawn(move || {
            for stream in listener.incoming().flatten() {
                let server = Arc::clone(&server);
                std::thread::spawn(move || {
                    if let Ok(t) = etlv_protocol::transport::TcpTransport::new(stream) {
                        let _ = server.serve(t);
                    }
                });
            }
        });
        Ok(local)
    }

    fn handle_sql(&self, text: &str) -> Message {
        let stmt = match parse_statement(text, Dialect::Legacy) {
            Ok(s) => s,
            Err(e) => {
                return Message::Error(WireError {
                    code: ErrCode::SQL_ERROR.0,
                    message: e.to_string(),
                    fatal: false,
                })
            }
        };
        match self.engine.execute_stmt(&stmt) {
            Ok(result) => Message::SqlResult(SqlResult {
                activity_count: result.affected,
                columns: result
                    .columns
                    .iter()
                    .map(|(n, ty)| (n.clone(), ty.to_legacy()))
                    .collect(),
                rows: result.rows,
            }),
            Err(e) => Message::Error(WireError {
                code: ErrCode::SQL_ERROR.0,
                message: e.to_string(),
                fatal: false,
            }),
        }
    }

    fn handle_begin_load(&self, spec: BeginLoad) -> Message {
        // Step 1 of the legacy flow: the server creates the error tables.
        if let Err(e) = self.create_error_tables(&spec) {
            return Message::Error(WireError {
                code: ErrCode::SQL_ERROR.0,
                message: e,
                fatal: true,
            });
        }
        let token = self.next_token.fetch_add(1, Ordering::Relaxed);
        self.jobs.lock().insert(
            token,
            Job::Import(Arc::new(ImportJob {
                spec,
                rows: Mutex::new(Vec::new()),
                started: Instant::now(),
            })),
        );
        Message::BeginLoadOk { load_token: token }
    }

    fn create_error_tables(&self, spec: &BeginLoad) -> Result<(), String> {
        let run = |sql: String| -> Result<(), String> {
            let stmt = parse_statement(&sql, Dialect::Cdw).map_err(|e| e.to_string())?;
            self.engine
                .execute_stmt(&stmt)
                .map(|_| ())
                .map_err(|e| e.to_string())
        };
        run(format!("DROP TABLE IF EXISTS {}", spec.error_table_et))?;
        run(format!("DROP TABLE IF EXISTS {}", spec.error_table_uv))?;
        run(format!(
            "CREATE TABLE {} (SEQNO BIGINT, ERRCODE INTEGER, ERRFIELD VARCHAR(128))",
            spec.error_table_et
        ))?;
        // The UV table mirrors the input layout plus bookkeeping columns.
        let mut cols: Vec<String> = spec
            .layout
            .fields
            .iter()
            .map(|f| {
                format!(
                    "{} {}",
                    f.name,
                    SqlType::from_legacy(f.ty).render(Dialect::Cdw)
                )
            })
            .collect();
        cols.push("SEQNO BIGINT".into());
        cols.push("ERRCODE INTEGER".into());
        run(format!(
            "CREATE TABLE {} ({})",
            spec.error_table_uv,
            cols.join(", ")
        ))
    }

    fn handle_data_chunk(&self, token: u64, chunk: etlv_protocol::message::DataChunk) -> Message {
        let job = {
            let jobs = self.jobs.lock();
            match jobs.get(&token) {
                Some(Job::Import(j)) => Arc::clone(j),
                _ => {
                    return Message::Error(WireError {
                        code: ErrCode::PROTOCOL.0,
                        message: format!("no import job for token {token}"),
                        fatal: true,
                    })
                }
            }
        };
        // The reference server decodes synchronously — it has no cloud
        // conversion pipeline to hide; this is the behaviour the
        // virtualizer must match from the client's point of view.
        let decoded = match job.spec.format {
            RecordFormat::Binary => RecordDecoder::new(job.spec.layout.clone())
                .decode_batch(&chunk.data)
                .map_err(|e| e.to_string()),
            RecordFormat::Vartext { delimiter, .. } => VartextFormat::with_delimiter(delimiter)
                .decode_lines(&chunk.data, Some(job.spec.layout.arity()))
                .map_err(|e| e.to_string()),
        };
        match decoded {
            Ok(rows) => {
                let mut buffer = job.rows.lock();
                for (i, row) in rows.into_iter().enumerate() {
                    buffer.push((chunk.base_seq + i as u64, row));
                }
                Message::Ack {
                    chunk_seq: chunk.chunk_seq,
                }
            }
            Err(e) => Message::Error(WireError {
                code: ErrCode::BAD_VALUE.0,
                message: e,
                fatal: true,
            }),
        }
    }

    fn handle_end_load(&self, token: u64, dml: &str) -> Message {
        let job = {
            let mut jobs = self.jobs.lock();
            match jobs.remove(&token) {
                Some(Job::Import(j)) => j,
                _ => {
                    return Message::Error(WireError {
                        code: ErrCode::PROTOCOL.0,
                        message: format!("no import job for token {token}"),
                        fatal: true,
                    })
                }
            }
        };
        let acquisition = job.started.elapsed();
        let stmt = match parse_statement(dml, Dialect::Legacy) {
            Ok(s) => s,
            Err(e) => {
                return Message::Error(WireError {
                    code: ErrCode::SQL_ERROR.0,
                    message: format!("DML does not parse: {e}"),
                    fatal: true,
                })
            }
        };
        let mut rows = std::mem::take(&mut *job.rows.lock());
        rows.sort_by_key(|(seq, _)| *seq);
        let rows_received = rows.len() as u64;

        let apply_started = Instant::now();
        let outcome = apply_per_tuple(
            &self.engine,
            &stmt,
            &job.spec.layout,
            &rows,
            job.spec.error_limit,
        );
        if let Err(e) = self.record_errors(&job.spec, &outcome) {
            return Message::Error(WireError {
                code: ErrCode::INTERNAL.0,
                message: e,
                fatal: true,
            });
        }
        let application = apply_started.elapsed();

        Message::LoadReport(LoadReport {
            rows_received,
            rows_applied: outcome.applied,
            errors_et: outcome.et_errors.len() as u64,
            errors_uv: outcome.uv_errors.len() as u64,
            acquisition_micros: acquisition.as_micros() as u64,
            application_micros: application.as_micros() as u64,
            other_micros: 0,
            // The reference EDW neither retries nor injects faults.
            retries: 0,
            faults_injected: 0,
            upload_retries: 0,
            cdw_retries: 0,
        })
    }

    fn record_errors(&self, spec: &BeginLoad, outcome: &ApplyOutcome) -> Result<(), String> {
        if !outcome.et_errors.is_empty() {
            let rows: Vec<Vec<Expr>> = outcome
                .et_errors
                .iter()
                .map(|e| {
                    vec![
                        Expr::Literal(Literal::Integer(e.seq as i64)),
                        Expr::Literal(Literal::Integer(e.code.0 as i64)),
                        match &e.field {
                            Some(f) => Expr::Literal(Literal::Str(f.clone())),
                            None => Expr::Literal(Literal::Null),
                        },
                    ]
                })
                .collect();
            self.insert_rows(&spec.error_table_et, rows)?;
        }
        if !outcome.uv_errors.is_empty() {
            let rows: Vec<Vec<Expr>> = outcome
                .uv_errors
                .iter()
                .map(|e| {
                    let mut row: Vec<Expr> = e
                        .tuple
                        .iter()
                        .map(|v| Expr::Literal(Literal::from_value(v)))
                        .collect();
                    row.push(Expr::Literal(Literal::Integer(e.seq as i64)));
                    row.push(Expr::Literal(Literal::Integer(e.code.0 as i64)));
                    row
                })
                .collect();
            self.insert_rows(&spec.error_table_uv, rows)?;
        }
        Ok(())
    }

    fn insert_rows(&self, table: &str, rows: Vec<Vec<Expr>>) -> Result<(), String> {
        let stmt = Stmt::Insert(Insert {
            table: ObjectName(table.split('.').map(str::to_string).collect()),
            columns: None,
            source: InsertSource::Values(rows),
        });
        self.engine
            .execute_stmt(&stmt)
            .map(|_| ())
            .map_err(|e| e.to_string())
    }

    fn handle_begin_export(&self, spec: etlv_protocol::message::BeginExport) -> Message {
        let stmt = match parse_statement(&spec.select, Dialect::Legacy) {
            Ok(s) => s,
            Err(e) => {
                return Message::Error(WireError {
                    code: ErrCode::SQL_ERROR.0,
                    message: e.to_string(),
                    fatal: true,
                })
            }
        };
        let result = match self.engine.execute_stmt(&stmt) {
            Ok(r) => r,
            Err(e) => {
                return Message::Error(WireError {
                    code: ErrCode::SQL_ERROR.0,
                    message: e.to_string(),
                    fatal: true,
                })
            }
        };
        let layout = layout_of_columns(&result.columns);
        let chunk_rows = if spec.chunk_rows == 0 {
            self.export_chunk_rows as usize
        } else {
            spec.chunk_rows as usize
        };
        let chunks: Vec<Vec<Vec<Value>>> = result
            .rows
            .chunks(chunk_rows.max(1))
            .map(|c| c.to_vec())
            .collect();
        let token = self.next_token.fetch_add(1, Ordering::Relaxed);
        self.jobs.lock().insert(
            token,
            Job::Export(Arc::new(ExportJob {
                layout: layout.clone(),
                format: spec.format,
                chunks,
            })),
        );
        Message::BeginExportOk(BeginExportOk {
            export_token: token,
            layout,
        })
    }

    fn handle_export_req(&self, token: u64, index: u64) -> Message {
        let job = {
            let jobs = self.jobs.lock();
            match jobs.get(&token) {
                Some(Job::Export(j)) => Arc::clone(j),
                _ => {
                    return Message::Error(WireError {
                        code: ErrCode::PROTOCOL.0,
                        message: format!("no export job for token {token}"),
                        fatal: true,
                    })
                }
            }
        };
        let total = job.chunks.len() as u64;
        if index >= total {
            return Message::ExportChunk(ExportChunk {
                index,
                record_count: 0,
                last: true,
                data: Default::default(),
            });
        }
        let rows = &job.chunks[index as usize];
        let encoded = match encode_rows(&job.layout, job.format, rows) {
            Ok(d) => d,
            Err(e) => {
                return Message::Error(WireError {
                    code: ErrCode::INTERNAL.0,
                    message: e,
                    fatal: true,
                })
            }
        };
        Message::ExportChunk(ExportChunk {
            index,
            record_count: rows.len() as u32,
            last: index + 1 >= total,
            data: encoded.into(),
        })
    }
}

/// Derive a wire layout from a result set's columns.
pub fn layout_of_columns(columns: &[(String, SqlType)]) -> Layout {
    Layout {
        name: "EXPORT".into(),
        fields: columns
            .iter()
            .map(|(name, ty)| FieldDef::new(name.clone(), ty.to_legacy()))
            .collect(),
    }
}

/// Encode result rows in the requested wire format.
pub fn encode_rows(
    layout: &Layout,
    format: RecordFormat,
    rows: &[Vec<Value>],
) -> Result<Vec<u8>, String> {
    etlv_protocol::record::encode_rows(layout, format, rows).map_err(|e| e.to_string())
}
