//! # etlv-legacy-server
//!
//! The reference legacy Enterprise Data Warehouse (EDW) server.
//!
//! This is the system the customer is migrating *away from*: it speaks the
//! legacy wire protocol natively and implements the legacy **per-tuple**
//! load semantics — during the DML application phase each tuple is applied
//! individually; a tuple that fails conversion is recorded in the
//! transformation-error (ET) table, a tuple that violates the target's
//! uniqueness constraint is recorded in the uniqueness-violation (UV)
//! table, and the job continues (paper §2, §7, Figure 5).
//!
//! Its roles in this repository:
//!
//! - the golden reference for error-table semantics: integration tests run
//!   the same job against this server and the virtualizer and compare
//!   outcomes;
//! - the endpoint legacy clients were built against, demonstrating that
//!   the identical client/script runs unmodified against the virtualizer.
//!
//! Internally it reuses the `etlv-cdw` storage/eval machinery (with native
//! uniqueness enforcement on, as legacy systems had), but its session
//! layer applies DML tuple-at-a-time instead of set-oriented.

pub mod apply;
pub mod server;

pub use server::{LegacyServer, ServerConfig};
