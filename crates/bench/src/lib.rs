//! Shared harness for the figure benches: stand up a virtualizer, create
//! the workload's target table, and run the import end-to-end through the
//! real legacy client, returning both the client-side result and the
//! node's phase-timed job report.

use std::sync::Arc;
use std::time::Duration;

use etlv_cdw::{Cdw, CdwConfig};
use etlv_cloudstore::{MemStore, ObjectStore};
use etlv_core::report::JobReport;
use etlv_core::workload::Workload;
use etlv_core::{Virtualizer, VirtualizerConfig};
use etlv_legacy_client::{ClientOptions, Connect, FnConnector, ImportResult, LegacyEtlClient};
use etlv_protocol::transport::{duplex, Transport};
use etlv_script::{compile, parse_script, JobPlan};

/// Build an in-memory connector for a virtualizer node.
pub fn connector(v: &Virtualizer) -> Arc<dyn Connect> {
    let v = v.clone();
    Arc::new(FnConnector(move || {
        let (client_end, server_end) = duplex();
        let v = v.clone();
        std::thread::spawn(move || {
            let _ = v.serve(server_end);
        });
        Ok(Box::new(client_end) as Box<dyn Transport>)
    }))
}

/// Create a virtualizer whose CDW simulates `statement_latency` per round
/// trip (0 = in-process speed).
pub fn virtualizer_with_latency(
    config: VirtualizerConfig,
    statement_latency: Duration,
) -> Virtualizer {
    let store: Arc<dyn ObjectStore> = Arc::new(MemStore::new());
    let cdw = Cdw::with_config(
        CdwConfig {
            native_unique: false,
            statement_latency,
            ..Default::default()
        },
        Some(Arc::clone(&store)),
    );
    Virtualizer::with_backends(config, cdw, store)
}

/// One full import run: fresh virtualizer, DDL, load, report.
pub fn run_import(
    config: VirtualizerConfig,
    statement_latency: Duration,
    workload: &Workload,
    options: ClientOptions,
) -> (ImportResult, JobReport) {
    let v = virtualizer_with_latency(config, statement_latency);
    run_import_on(&v, workload, options)
}

/// Import against an existing node (target table is (re)created first).
pub fn run_import_on(
    v: &Virtualizer,
    workload: &Workload,
    options: ClientOptions,
) -> (ImportResult, JobReport) {
    v.cdw()
        .execute(&format!("DROP TABLE IF EXISTS {}", workload.target))
        .unwrap();
    v.cdw()
        .execute(&etlv_core::xcompile::translate_sql(&workload.target_ddl).unwrap())
        .unwrap();
    let JobPlan::Import(job) = compile(&parse_script(&workload.script).unwrap()).unwrap() else {
        panic!("workload script is not an import job")
    };
    let client = LegacyEtlClient::with_options(connector(v), options);
    let result = client
        .run_import_data(&job, &workload.data)
        .expect("import job failed");
    let report = v.last_job_report().expect("job report recorded");
    (result, report)
}

/// Render seconds with 3 decimals for figure tables.
pub fn secs(d: Duration) -> String {
    format!("{:.3}", d.as_secs_f64())
}

/// MB/s for figure tables.
pub fn rate_mb_s(bytes: u64, d: Duration) -> f64 {
    if d.is_zero() {
        return f64::INFINITY;
    }
    bytes as f64 / 1_000_000.0 / d.as_secs_f64()
}
