//! PR 7 indexed-apply-path evidence: the workload scenarios from PR 6
//! replayed against a node whose CDW now plans index seeks instead of
//! scanning, plus a scaled `error_heavy_big` scenario that a scan-bound
//! engine cannot finish in reasonable time.
//!
//! Three claims are on trial:
//!
//! 1. **Latency**: the `error_heavy` p95 collapses versus the PR 6
//!    baseline (9093 ms) — gated at ≤ 1800 ms, a ≥ 5x improvement — at
//!    identical outcome counts and exact ET/UV accounting. The planner
//!    changed the access paths, not the answers.
//! 2. **Throughput**: steady-state e2e imports (PR 5's measurement
//!    shape — chunked COPY through the real legacy client — run
//!    repeatedly into the *same* warm target). The prior 100–130k rows/s
//!    plateau was a cold-table number; against a populated target the
//!    scan engine's conflict probe decays with table size while the
//!    indexed path holds the plateau. Gated relatively (indexed vs a
//!    same-run scan-only engine, and warm vs its own cold rate) because
//!    absolute rows/s are hardware-dependent.
//! 3. **Plan shape in production**: the node-side plan counters show the
//!    replay actually exercised index seeks and index maintenance; the
//!    improvement is attributable, not incidental.
//!
//! Determinism and accounting gates are inherited verbatim from
//! `bench_pr6`: double-synthesize fingerprints, double-replay outcome
//! counts, completed == jobs, ET/UV equal to the generator's truth.
//!
//! Writes `BENCH_PR7.json` at the repo root (format documented in
//! EXPERIMENTS.md).
//!
//! Usage: `bench_pr7 [--smoke] [--out PATH]`
//!   --smoke  shrink workloads for a CI sanity run (determinism,
//!            accounting, and plan-counter gates still apply; the
//!            latency and throughput gates need full scale)
//!   --out    output path (default BENCH_PR7.json)

use std::sync::Arc;
use std::time::{Duration, Instant};

use etlv_bench::{connector, virtualizer_with_latency};
use etlv_cdw::{Cdw, CdwConfig};
use etlv_cloudstore::{MemStore, ObjectStore};
use etlv_core::workload::{customer_workload, CustomerSpec};
use etlv_core::{Virtualizer, VirtualizerConfig};
use etlv_legacy_client::{ClientOptions, Connect, LegacyEtlClient, TcpConnector};
use etlv_script::{compile, parse_script, JobPlan};
use etlv_workloadgen::{
    replay, synthesize, OutcomeCounts, ReplayOptions, Scenario, SloSummary, WorkloadTrace,
};

const SEED: u64 = 0x00E7_C007;
/// PR 6 full-run `error_heavy` p95 (BENCH_PR6.json) — the baseline the
/// ≥ 5x gate is measured against.
const BASELINE_ERROR_HEAVY_P95_MS: f64 = 9093.043;
/// Best single-job shared-mode rows/s from BENCH_PR5.json — the top of
/// the plateau as recorded on the PR 5 reference machine. Absolute
/// rows/s are hardware-dependent, so the gate below compares against a
/// same-run scan-only reference engine rather than this constant; the
/// constant rides along in the JSON for cross-report context.
const BASELINE_E2E_ROWS_PER_S: f64 = 122_686.0;
const ERROR_HEAVY_P95_GATE_MS: f64 = 1800.0;
/// The indexed path must beat the scan-bound plateau, measured on the
/// same machine in the same run, by at least this factor.
const E2E_SPEEDUP_GATE: f64 = 1.10;
const CHUNK_ROWS: usize = 500;

/// Node-side CDW plan counters sampled after a replay.
#[derive(Clone, Copy)]
struct PlanCounters {
    index_seek: u64,
    full_scan: u64,
    index_maintain: u64,
}

struct ScenarioResult {
    name: String,
    fingerprint: u64,
    planned_bad_dates: u64,
    planned_dup_keys: u64,
    counts: [OutcomeCounts; 2],
    plan: PlanCounters,
    slo: SloSummary,
}

fn shrink(s: &mut Scenario) {
    s.jobs = (s.jobs / 4).max(6);
    s.tenants = s.tenants.min(3);
    s.horizon_ms /= 4;
    s.rows_hot = (s.rows_hot / 4).max(s.rows_base.min(40));
    s.rows_base = s.rows_base.min(40);
}

fn replay_once(
    trace: &WorkloadTrace,
    options: &ReplayOptions,
) -> (etlv_workloadgen::ReplayReport, PlanCounters) {
    let v = virtualizer_with_latency(VirtualizerConfig::default(), Duration::ZERO);
    let handle = v.listen_tcp("127.0.0.1:0").expect("bind TCP listener");
    let connector: Arc<dyn Connect> = Arc::new(TcpConnector::new(handle.addr().to_string()));
    let report = replay(&connector, trace, options).expect("replay runs to completion");
    let cdw = &v.obs().cdw;
    let plan = PlanCounters {
        index_seek: cdw.plan_index_seek.value(),
        full_scan: cdw.plan_full_scan.value(),
        index_maintain: cdw.index_maintain.value(),
    };
    handle.shutdown();
    (report, plan)
}

fn run_scenario(scenario: &Scenario, options: &ReplayOptions) -> ScenarioResult {
    // Generate twice: the traces must be fingerprint-identical.
    let trace = synthesize(scenario);
    let again = synthesize(scenario);
    assert_eq!(
        trace.fingerprint(),
        again.fingerprint(),
        "synthesis of '{}' is not deterministic",
        scenario.name
    );
    let truth = trace.ground_truth();

    // Replay twice on fresh nodes: outcome counts must match.
    let (first, plan) = replay_once(&trace, options);
    let (second, _) = replay_once(&trace, options);
    let slo = first.slo(&scenario.name);
    eprintln!(
        "  {:<16} jobs {:>3}  p50 {:>8.1} ms  p95 {:>8.1} ms  p99 {:>8.1} ms  \
         et {}  uv {}  seeks {}  scans {}  maintains {}",
        scenario.name,
        slo.jobs,
        slo.p50_ms,
        slo.p95_ms,
        slo.p99_ms,
        slo.errors_et,
        slo.errors_uv,
        plan.index_seek,
        plan.full_scan,
        plan.index_maintain,
    );
    ScenarioResult {
        name: scenario.name.clone(),
        fingerprint: trace.fingerprint(),
        planned_bad_dates: truth.bad_dates,
        planned_dup_keys: truth.dup_keys,
        counts: [first.counts(), second.counts()],
        plan,
        slo,
    }
}

/// A node whose CDW runs with the planner disabled: full scans and
/// nested-loop joins, the pre-PR-7 access paths. This is the same-run,
/// same-machine reproduction of the PR 5 throughput plateau.
fn scan_reference_virtualizer() -> Virtualizer {
    let store: Arc<dyn ObjectStore> = Arc::new(MemStore::new());
    let cdw = Cdw::with_config(
        CdwConfig {
            native_unique: false,
            planner: false,
            ..Default::default()
        },
        Some(Arc::clone(&store)),
    );
    Virtualizer::with_backends(VirtualizerConfig::default(), cdw, store)
}

/// Steady-state e2e measurement: `imports` successive imports of
/// `rows_per_import` clean rows into the *same* warm target table
/// (disjoint CUST_ID ranges, carved from one generated workload).
///
/// The first import lands in an empty table — that is PR 5's cold
/// measurement, bounded by transport and conversion. Every later import
/// runs the uniqueness-emulation conflict probe against an
/// ever-larger target, which is exactly the stage a scanning engine
/// pays O(batch × target) for and an indexed engine pays
/// O(batch × log target). Returns per-import rows/s, in order.
fn e2e_steady(
    make_node: impl Fn() -> Virtualizer,
    rows_per_import: u64,
    imports: usize,
) -> Vec<f64> {
    let whole = customer_workload(&CustomerSpec {
        rows: rows_per_import * imports as u64,
        row_bytes: 250,
        sessions: 1,
        seed: 0x9A5E,
        ..Default::default()
    });
    let lines: Vec<&[u8]> = whole.data.split_inclusive(|b| *b == b'\n').collect();
    assert_eq!(lines.len() as u64, whole.rows, "one line per row");

    let v = make_node();
    v.cdw()
        .execute(&etlv_core::xcompile::translate_sql(&whole.target_ddl).unwrap())
        .unwrap();
    let JobPlan::Import(job) = compile(&parse_script(&whole.script).unwrap()).unwrap() else {
        panic!("workload script is not an import job")
    };
    let client = LegacyEtlClient::with_options(
        connector(&v),
        ClientOptions {
            chunk_rows: CHUNK_ROWS,
            sessions: Some(1),
            ..Default::default()
        },
    );

    let mut per_import = Vec::with_capacity(imports);
    for (i, chunk) in lines.chunks(rows_per_import as usize).enumerate() {
        let data: Vec<u8> = chunk.concat();
        let started = Instant::now();
        let result = client
            .run_import_data(&job, &data)
            .expect("import job failed");
        let wall = started.elapsed().as_secs_f64().max(1e-9);
        assert_eq!(
            result.report.rows_applied, rows_per_import,
            "import {i} clean"
        );
        let rps = rows_per_import as f64 / wall;
        eprintln!(
            "    import {i} (target had {} rows): {rps:>10.0} rows/s ({wall:.3} s)",
            i as u64 * rows_per_import
        );
        per_import.push(rps);
    }
    per_import
}

fn counts_json(c: &OutcomeCounts) -> String {
    format!(
        "{{\"jobs\":{},\"completed\":{},\"rejected\":{},\"failed\":{},\"rows_applied\":{},\
         \"rows_exported\":{},\"errors_et\":{},\"errors_uv\":{}}}",
        c.jobs,
        c.completed,
        c.rejected,
        c.failed,
        c.rows_applied,
        c.rows_exported,
        c.errors_et,
        c.errors_uv
    )
}

fn plan_json(p: &PlanCounters) -> String {
    format!(
        "{{\"index_seek\":{},\"full_scan\":{},\"index_maintain\":{}}}",
        p.index_seek, p.full_scan, p.index_maintain
    )
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_PR7.json".into());

    let mut scenarios = Scenario::presets(SEED);
    scenarios.push(Scenario::error_heavy_big(SEED));
    if smoke {
        for s in &mut scenarios {
            shrink(s);
        }
    }
    let options = ReplayOptions {
        time_scale: if smoke { 0.5 } else { 1.0 },
        // Headroom for loaded CI machines; the gates below are what
        // actually police the tail.
        read_timeout: Some(Duration::from_secs(120)),
        ..ReplayOptions::default()
    };

    // The throughput measurement runs first, on a cold process — the
    // replay section leaves allocator and scheduler residue that costs
    // a double-digit percentage on the timed import.
    // 4k-row imports keep the scan reference's O(batch × target) warm
    // probes inside a CI-friendly wall clock (its last import alone
    // walks 48M row pairs); the indexed engine is indifferent to scale.
    let (e2e_rows, e2e_imports) = if smoke { (2_000, 2) } else { (4_000, 4) };
    eprintln!("  e2e steady, indexed engine:");
    let indexed_rps = e2e_steady(
        || virtualizer_with_latency(VirtualizerConfig::default(), Duration::ZERO),
        e2e_rows,
        e2e_imports,
    );
    eprintln!("  e2e steady, scan-only reference:");
    let ref_rps = e2e_steady(scan_reference_virtualizer, e2e_rows, e2e_imports);
    let e2e_rps = *indexed_rps.last().unwrap();
    let e2e_cold_rps = indexed_rps[0];
    let e2e_ref_rps = *ref_rps.last().unwrap();
    let e2e_speedup = e2e_rps / e2e_ref_rps.max(1e-9);
    eprintln!(
        "  e2e steady-state (warm target, {} rows resident): indexed {e2e_rps:.0} rows/s vs \
         scan reference {e2e_ref_rps:.0} rows/s ({e2e_speedup:.2}x); indexed cold \
         {e2e_cold_rps:.0} rows/s",
        e2e_rows * (e2e_imports as u64 - 1),
    );

    let results: Vec<ScenarioResult> = scenarios
        .iter()
        .map(|s| run_scenario(s, &options))
        .collect();

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(&format!("  \"smoke\": {smoke},\n"));
    json.push_str(&format!("  \"seed\": {SEED},\n"));
    json.push_str(&format!(
        "  \"baseline\": {{\"pr6_error_heavy_p95_ms\": {BASELINE_ERROR_HEAVY_P95_MS}, \
         \"pr5_e2e_rows_per_s\": {BASELINE_E2E_ROWS_PER_S}}},\n"
    ));
    json.push_str("  \"scenarios\": [\n");
    for (i, r) in results.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"trace_fingerprint\": \"{:#018x}\", \
             \"planned_bad_dates\": {}, \"planned_dup_keys\": {}, \
             \"counts_run1\": {}, \"counts_run2\": {}, \"plan\": {}, \"slo\": {}}}",
            r.name,
            r.fingerprint,
            r.planned_bad_dates,
            r.planned_dup_keys,
            counts_json(&r.counts[0]),
            counts_json(&r.counts[1]),
            plan_json(&r.plan),
            r.slo.to_json(),
        ));
        json.push_str(if i + 1 < results.len() { ",\n" } else { "\n" });
    }
    let series = |v: &[f64]| {
        v.iter()
            .map(|r| format!("{r:.0}"))
            .collect::<Vec<_>>()
            .join(", ")
    };
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"e2e_steady\": {{\"rows_per_import\": {e2e_rows}, \"imports\": {e2e_imports}, \
         \"chunk_rows\": {CHUNK_ROWS}, \"indexed_rows_per_s\": [{}], \
         \"scan_reference_rows_per_s\": [{}], \"warm_indexed_rows_per_s\": {e2e_rps:.0}, \
         \"warm_scan_reference_rows_per_s\": {e2e_ref_rps:.0}, \
         \"warm_speedup\": {e2e_speedup:.3}}}\n",
        series(&indexed_rps),
        series(&ref_rps),
    ));
    json.push_str("}\n");
    std::fs::write(&out_path, &json).expect("write bench report");
    eprintln!("wrote {out_path}");

    // Gates. Determinism and accounting hold at any scale; the latency
    // and throughput comparisons against the PR 5/6 baselines are only
    // meaningful at full scale.
    let mut failed = false;
    for r in &results {
        if r.counts[0] != r.counts[1] {
            eprintln!(
                "FAIL: '{}' replays disagree: {:?} vs {:?}",
                r.name, r.counts[0], r.counts[1]
            );
            failed = true;
        }
        if r.counts[0].completed != r.counts[0].jobs {
            eprintln!(
                "FAIL: '{}' did not complete every job ({} of {}; {} rejected, {} failed)",
                r.name,
                r.counts[0].completed,
                r.counts[0].jobs,
                r.counts[0].rejected,
                r.counts[0].failed
            );
            failed = true;
        }
        // With every job completed, error attribution must equal the
        // planned mix exactly — the generator's ground truth is the oracle.
        if r.counts[0].errors_et != r.planned_bad_dates
            || r.counts[0].errors_uv != r.planned_dup_keys
        {
            eprintln!(
                "FAIL: '{}' error accounting: ET {} (planned {}), UV {} (planned {})",
                r.name,
                r.counts[0].errors_et,
                r.planned_bad_dates,
                r.counts[0].errors_uv,
                r.planned_dup_keys
            );
            failed = true;
        }
        if etlv_core::obs::enabled() {
            // Every import stages through an indexed table, so index
            // maintenance must show up; the error-heavy scenarios drive
            // uniqueness probes and bisection, so seeks must too.
            if r.plan.index_maintain == 0 {
                eprintln!("FAIL: '{}' replay recorded no index maintenance", r.name);
                failed = true;
            }
            if r.name.starts_with("error_heavy") && r.plan.index_seek == 0 {
                eprintln!("FAIL: '{}' replay recorded no index seeks", r.name);
                failed = true;
            }
        }
    }
    if !smoke {
        if let Some(r) = results.iter().find(|r| r.name == "error_heavy") {
            if r.slo.p95_ms > ERROR_HEAVY_P95_GATE_MS {
                eprintln!(
                    "FAIL: error_heavy p95 {:.1} ms exceeds the {:.0} ms gate \
                     (PR 6 baseline {:.1} ms, ≥5x required)",
                    r.slo.p95_ms, ERROR_HEAVY_P95_GATE_MS, BASELINE_ERROR_HEAVY_P95_MS
                );
                failed = true;
            }
        }
        if e2e_speedup < E2E_SPEEDUP_GATE {
            eprintln!(
                "FAIL: warm-target e2e {:.0} rows/s is only {:.2}x the same-machine \
                 scan-engine rate ({:.0} rows/s); gate requires ≥ {:.2}x \
                 (PR 5 reference machine recorded the cold plateau at {:.0})",
                e2e_rps, e2e_speedup, e2e_ref_rps, E2E_SPEEDUP_GATE, BASELINE_E2E_ROWS_PER_S
            );
            failed = true;
        }
        // The indexed engine must hold the cold-table plateau even with
        // 45k rows resident — steady state no longer decays with table
        // size (0.7 absorbs run-to-run noise, not a trend).
        if e2e_rps < 0.7 * e2e_cold_rps {
            eprintln!(
                "FAIL: indexed warm-target rate {:.0} rows/s fell below 70% of its own \
                 cold rate {:.0} rows/s — steady-state throughput still decays",
                e2e_rps, e2e_cold_rps
            );
            failed = true;
        }
    }
    if failed {
        std::process::exit(1);
    }
}
