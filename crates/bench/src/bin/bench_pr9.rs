//! PR 9 continuous-profiling evidence, two claims on trial:
//!
//! 1. **Overhead**: the per-chunk work the always-on profiler adds to the
//!    conversion hot path — the thread-CPU clock read bracketing each
//!    convert, the stage CPU/wall record, the tracked-lock queue handoff,
//!    and the busy-worker gauge — costs no more than 3% of conversion
//!    throughput on the wide workload (the same gate shape bench_pr4 and
//!    bench_pr8 applied to their layers). Measured bench_pr4-style: both
//!    variants interleaved inside every timed iteration, min-of-N.
//! 2. **Reconciliation**: a seeded `error_heavy` workloadgen replay over
//!    real TCP must leave a non-empty folded flamegraph whose per-stage
//!    wall totals agree with the PR 4 critical-path attribution (the
//!    `Trace` surface, re-assembled job by job) within 5%.
//!
//! Writes `BENCH_PR9.json` at the repo root (format documented in
//! EXPERIMENTS.md).
//!
//! Usage: `bench_pr9 [--smoke] [--out PATH]`
//!   --smoke  shrink workloads and iteration counts for a CI sanity run
//!            (the reconciliation gates still apply; the overhead gate
//!            needs full scale)
//!   --out    output path (default BENCH_PR9.json)

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use etlv_core::convert::{ConvertScratch, DataConverter};
use etlv_core::obs::{CpuTimer, Obs, TrackedMutex};
use etlv_core::workload::{customer_workload, CustomerSpec, Workload};
use etlv_core::{Virtualizer, VirtualizerConfig};
use etlv_legacy_client::{Connect, TcpConnector};
use etlv_script::{compile, parse_script, JobPlan};
use etlv_workloadgen::{replay, synthesize, ReplayOptions, Scenario};

const SEED: u64 = 0x00E7_510C;
const CHUNK_ROWS: usize = 1_000;
const OVERHEAD_GATE_PCT: f64 = 3.0;
const RECONCILE_GATE_PCT: f64 = 5.0;

// ---------------------------------------------------------------------
// Part 1: hot-loop overhead kernel
// ---------------------------------------------------------------------

struct KernelResult {
    name: &'static str,
    rows: u64,
    bytes: u64,
    chunks: usize,
    base_rows_per_s: f64,
    profiled_rows_per_s: f64,
    overhead_pct: f64,
}

fn converter_for(workload: &Workload) -> DataConverter {
    let JobPlan::Import(job) = compile(&parse_script(&workload.script).unwrap()).unwrap() else {
        panic!("workload script is not an import job")
    };
    DataConverter::new(
        job.layout,
        job.format,
        VirtualizerConfig::default().staging_delimiter,
    )
}

fn chunked(data: &[u8]) -> Vec<&[u8]> {
    let mut chunks = Vec::new();
    let mut start = 0usize;
    let mut rows = 0usize;
    for (i, &b) in data.iter().enumerate() {
        if b == b'\n' {
            rows += 1;
            if rows == CHUNK_ROWS {
                chunks.push(&data[start..=i]);
                start = i + 1;
                rows = 0;
            }
        }
    }
    if start < data.len() {
        chunks.push(&data[start..]);
    }
    chunks
}

/// PR 8 baseline vs PR 9 profiling, interleaved per timed iteration. The
/// baseline performs what the PR 8 pipeline did per chunk (node counters
/// and the convert histogram); the profiled variant adds what PR 9 put
/// in the worker loop: a tracked-mutex queue handoff, the busy-worker
/// gauge swing, the thread-CPU clock read bracketing the convert, and
/// the stage CPU/wall record.
fn bench_kernel(
    name: &'static str,
    workload: &Workload,
    iters: u32,
    obs: &Arc<Obs>,
) -> KernelResult {
    let conv = converter_for(workload);
    let chunks = chunked(&workload.data);
    let mut out = Vec::new();
    let mut scratch = ConvertScratch::new();
    // The queue lock the worker loop takes once per dequeued chunk.
    let queue = TrackedMutex::new(obs.registry.lock_site("bench.queue"), 0u64);

    let run_base = |out: &mut Vec<u8>, scratch: &mut ConvertScratch| {
        let mut total = 0u64;
        for (i, chunk) in chunks.iter().enumerate() {
            let started = Instant::now();
            out.clear();
            let rows = conv
                .convert_into((i * CHUNK_ROWS + 1) as u64, chunk, out, scratch)
                .unwrap();
            let elapsed = started.elapsed();
            obs.pipeline.convert_chunks.inc();
            obs.pipeline.convert_rows.add(rows as u64);
            obs.pipeline.convert_bytes.add(chunk.len() as u64);
            obs.pipeline.convert_us.record_duration(elapsed);
            total += rows as u64;
            std::hint::black_box(&*out);
        }
        assert_eq!(total, workload.rows);
    };
    let run_profiled = |out: &mut Vec<u8>, scratch: &mut ConvertScratch| {
        let mut total = 0u64;
        for (i, chunk) in chunks.iter().enumerate() {
            // Worker dequeue: tracked queue lock, busy gauge up.
            *queue.lock() += 1;
            obs.pool.busy_workers.add(1);
            let started = Instant::now();
            let cpu = CpuTimer::start();
            out.clear();
            let rows = conv
                .convert_into((i * CHUNK_ROWS + 1) as u64, chunk, out, scratch)
                .unwrap();
            let elapsed = started.elapsed();
            obs.profile.convert.record(elapsed, cpu.elapsed());
            obs.pipeline.convert_chunks.inc();
            obs.pipeline.convert_rows.add(rows as u64);
            obs.pipeline.convert_bytes.add(chunk.len() as u64);
            obs.pipeline.convert_us.record_duration(elapsed);
            obs.pool.busy_workers.sub(1);
            total += rows as u64;
            std::hint::black_box(&*out);
        }
        assert_eq!(total, workload.rows);
    };

    run_base(&mut out, &mut scratch);
    run_profiled(&mut out, &mut scratch);
    let mut base = Duration::MAX;
    let mut profiled = Duration::MAX;
    for _ in 0..iters {
        let start = Instant::now();
        run_base(&mut out, &mut scratch);
        base = base.min(start.elapsed());
        let start = Instant::now();
        run_profiled(&mut out, &mut scratch);
        profiled = profiled.min(start.elapsed());
    }

    let base_s = base.as_secs_f64().max(1e-9);
    let profiled_s = profiled.as_secs_f64().max(1e-9);
    KernelResult {
        name,
        rows: workload.rows,
        bytes: workload.data.len() as u64,
        chunks: chunks.len(),
        base_rows_per_s: workload.rows as f64 / base_s,
        profiled_rows_per_s: workload.rows as f64 / profiled_s,
        overhead_pct: (profiled_s / base_s - 1.0) * 100.0,
    }
}

fn customer(rows: u64, row_bytes: usize) -> Workload {
    customer_workload(&CustomerSpec {
        rows,
        row_bytes,
        sessions: 4,
        unique_key: false,
        ..Default::default()
    })
}

// ---------------------------------------------------------------------
// Part 2: folded flamegraph vs trace attribution under error_heavy
// ---------------------------------------------------------------------

/// The folded-path remap PR 9 applies to attribution stages, restated
/// here so the bench derives its expectation from the `Trace` surface
/// independently of the profiler's own aggregation.
fn folded_path(stage: &str) -> &'static str {
    match stage {
        "ack_wait" => "job;acquisition;ack_wait",
        "queue_wait" => "job;acquisition;queue_wait",
        "convert" => "job;acquisition;convert",
        "upload" => "job;acquisition;upload",
        "copy" => "job;acquisition;copy",
        "apply" => "job;application;apply",
        _ => "job;other",
    }
}

struct ReconcileResult {
    jobs_replayed: u64,
    folded_jobs: u64,
    folded_lines: usize,
    folded_total_us: u64,
    trace_total_us: u64,
    worst_path: String,
    worst_delta_pct: f64,
    contended_sites: usize,
}

fn run_reconcile(scenario: &Scenario, options: &ReplayOptions) -> ReconcileResult {
    // A journal big enough to retain every job of the replay: the
    // reconciliation compares two views of the same retained events, so
    // eviction mid-ring would turn a measurement into an apples/oranges
    // diff.
    let v = Virtualizer::new(VirtualizerConfig {
        journal_capacity: 65_536,
        ..Default::default()
    });
    let handle = v.listen_tcp("127.0.0.1:0").expect("bind TCP listener");
    let connector: Arc<dyn Connect> = Arc::new(TcpConnector::new(handle.addr().to_string()));
    let trace = synthesize(scenario);
    let report = replay(&connector, &trace, options).expect("replay runs to completion");
    let counts = report.counts();

    let profile = v.profile();
    // Per-path folded totals as the profiler reports them.
    let mut folded: BTreeMap<String, u64> = BTreeMap::new();
    for line in profile.folded.lines() {
        if let Some((path, value)) = line.rsplit_once(' ') {
            *folded.entry(path.to_string()).or_default() += value.parse::<u64>().unwrap_or(0);
        }
    }
    // The same totals re-derived job by job from the Trace surface.
    let mut expected: BTreeMap<String, u64> = BTreeMap::new();
    let mut traced_jobs = 0u64;
    for token in 1..=(counts.jobs * 4).max(64) {
        let Some(job_trace) = v.trace(token) else {
            continue;
        };
        traced_jobs += 1;
        for (stage, micros) in &job_trace.attribution {
            if *micros > 0 {
                *expected.entry(folded_path(stage).to_string()).or_default() += micros;
            }
        }
    }
    let contended_sites = profile.locks.len();
    handle.shutdown();

    let mut worst_path = String::new();
    let mut worst_delta_pct = 0.0f64;
    let paths: std::collections::BTreeSet<&String> = folded.keys().chain(expected.keys()).collect();
    for path in paths {
        let got = *folded.get(path).unwrap_or(&0) as f64;
        let want = *expected.get(path).unwrap_or(&0) as f64;
        let delta = if want > 0.0 {
            ((got - want).abs() / want) * 100.0
        } else if got > 0.0 {
            100.0
        } else {
            0.0
        };
        if delta > worst_delta_pct {
            worst_delta_pct = delta;
            worst_path = path.to_string();
        }
    }
    let _ = traced_jobs;
    ReconcileResult {
        jobs_replayed: counts.jobs,
        folded_jobs: profile.folded_jobs,
        folded_lines: folded.len(),
        folded_total_us: folded.values().sum(),
        trace_total_us: expected.values().sum(),
        worst_path,
        worst_delta_pct,
        contended_sites,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_PR9.json".into());
    let obs_compiled = etlv_core::obs::enabled();

    let (total_bytes, kernel_iters) = if smoke {
        (1_000_000u64, 3u32)
    } else {
        (12_500_000u64, 15u32)
    };

    let obs = Arc::new(Obs::default());
    eprintln!("kernel: narrow (250 B rows), profiling hot path...");
    let narrow = customer(total_bytes / 250, 250);
    let k_narrow = bench_kernel("narrow_250B", &narrow, kernel_iters, &obs);
    eprintln!("kernel: wide (2000 B rows), profiling hot path...");
    let wide = customer(total_bytes / 2000, 2000);
    let k_wide = bench_kernel("wide_2000B", &wide, kernel_iters, &obs);
    let kernels = [k_narrow, k_wide];

    eprintln!("scenario: error_heavy replay over TCP, folded vs trace...");
    let mut scenario = Scenario::error_heavy(SEED);
    if smoke {
        scenario.jobs = (scenario.jobs / 4).max(6);
        scenario.tenants = scenario.tenants.min(3);
        scenario.horizon_ms /= 4;
        scenario.rows_hot = (scenario.rows_hot / 4).max(scenario.rows_base.min(40));
        scenario.rows_base = scenario.rows_base.min(40);
    }
    let options = ReplayOptions {
        time_scale: 0.25,
        chunk_rows: 200,
        read_timeout: Some(Duration::from_secs(120)),
        ..Default::default()
    };
    let reconcile = run_reconcile(&scenario, &options);
    eprintln!(
        "  jobs {}  folded_jobs {}  stacks {}  folded {} us  traced {} us  \
         worst {} {:+.3}%  contended sites {}",
        reconcile.jobs_replayed,
        reconcile.folded_jobs,
        reconcile.folded_lines,
        reconcile.folded_total_us,
        reconcile.trace_total_us,
        reconcile.worst_path,
        reconcile.worst_delta_pct,
        reconcile.contended_sites
    );

    // --- report --------------------------------------------------------
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(&format!("  \"smoke\": {smoke},\n"));
    json.push_str(&format!("  \"obs_compiled\": {obs_compiled},\n"));
    json.push_str(&format!("  \"seed\": {SEED},\n"));
    json.push_str(&format!("  \"chunk_rows\": {CHUNK_ROWS},\n"));
    json.push_str("  \"kernel\": [\n");
    for (i, k) in kernels.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"workload\": \"{}\", \"rows\": {}, \"bytes\": {}, \"chunks\": {}, \
             \"base_rows_per_s\": {:.0}, \"profiled_rows_per_s\": {:.0}, \
             \"overhead_pct\": {:.3}}}",
            k.name,
            k.rows,
            k.bytes,
            k.chunks,
            k.base_rows_per_s,
            k.profiled_rows_per_s,
            k.overhead_pct
        ));
        json.push_str(if i + 1 < kernels.len() { ",\n" } else { "\n" });
        eprintln!(
            "  {:>12}: {:>12.0} -> {:>12.0} rows/s  ({:+.3}% overhead)",
            k.name, k.base_rows_per_s, k.profiled_rows_per_s, k.overhead_pct
        );
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"reconcile\": {{\"scenario\": \"{}\", \"jobs_replayed\": {}, \
         \"folded_jobs\": {}, \"folded_stacks\": {}, \"folded_total_us\": {}, \
         \"trace_total_us\": {}, \"worst_path\": \"{}\", \"worst_delta_pct\": {:.3}, \
         \"contended_sites\": {}}}\n",
        scenario.name,
        reconcile.jobs_replayed,
        reconcile.folded_jobs,
        reconcile.folded_lines,
        reconcile.folded_total_us,
        reconcile.trace_total_us,
        reconcile.worst_path,
        reconcile.worst_delta_pct,
        reconcile.contended_sites
    ));
    json.push_str("}\n");
    std::fs::write(&out_path, &json).expect("write bench report");
    eprintln!("wrote {out_path}");

    // Gates. Reconciliation holds at any scale when obs is compiled in;
    // the overhead comparison is only meaningful at full scale.
    let mut failed = false;
    if obs_compiled {
        if reconcile.folded_jobs == 0 || reconcile.folded_lines == 0 {
            eprintln!("FAIL: error_heavy replay left an empty folded flamegraph");
            failed = true;
        }
        if reconcile.folded_jobs != reconcile.jobs_replayed {
            eprintln!(
                "FAIL: folded flamegraph covered {} of {} replayed jobs",
                reconcile.folded_jobs, reconcile.jobs_replayed
            );
            failed = true;
        }
        if reconcile.worst_delta_pct > RECONCILE_GATE_PCT {
            eprintln!(
                "FAIL: folded/trace per-stage disagreement {:.3}% on {} > {RECONCILE_GATE_PCT}%",
                reconcile.worst_delta_pct, reconcile.worst_path
            );
            failed = true;
        }
    }
    let gated = &kernels[1];
    if !smoke && obs_compiled && gated.overhead_pct > OVERHEAD_GATE_PCT {
        eprintln!(
            "FAIL: {} profiling overhead {:.3}% > {OVERHEAD_GATE_PCT}%",
            gated.name, gated.overhead_pct
        );
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
}
