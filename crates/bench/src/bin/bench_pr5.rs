//! PR 5 shared-runtime evidence: concurrent import jobs through the
//! node-wide worker pool (`RuntimeMode::Shared`) against the per-job
//! thread-spawning baseline (`RuntimeMode::PerJob`), at 1, 4, and 16
//! concurrent jobs.
//!
//! Two claims are on trial:
//!
//! 1. **Bounded threads**: the shared pool starts its converter/writer
//!    threads once at node startup — running 16 concurrent jobs starts
//!    zero additional workers, where the per-job baseline starts
//!    `jobs × (converters + writers)`.
//! 2. **No throughput regression**: multiplexing jobs over the fixed pool
//!    costs nothing at the 16-job point against per-job spawning (gated
//!    at ≥ 85% to absorb CI scheduler noise; the measured numbers land in
//!    the JSON for the honest comparison).
//!
//! Writes `BENCH_PR5.json` at the repo root (format documented in
//! EXPERIMENTS.md).
//!
//! Usage: `bench_pr5 [--smoke] [--out PATH]`
//!   --smoke  shrink workloads for a CI sanity run (records, no gate)
//!   --out    output path (default BENCH_PR5.json)

use std::time::Instant;

use etlv_bench::{connector, virtualizer_with_latency};
use etlv_core::config::RuntimeMode;
use etlv_core::workload::{customer_workload, CustomerSpec, Workload};
use etlv_core::{Virtualizer, VirtualizerConfig};
use etlv_legacy_client::{ClientOptions, LegacyEtlClient};
use etlv_script::{compile, parse_script, JobPlan};

const CHUNK_ROWS: usize = 500;

struct RunResult {
    mode: &'static str,
    jobs: usize,
    rows_total: u64,
    wall_s: f64,
    rows_per_s: f64,
    per_job_rows_per_s: f64,
    pool_workers: u64,
    threads_started_during_run: u64,
    peak_os_threads: usize,
}

/// Retarget a workload at its own table so concurrent jobs don't collide.
fn retarget(base: &Workload, index: usize) -> Workload {
    let from = &base.target;
    let to = format!("{}_{index}", base.target);
    Workload {
        script: base.script.replace(from, &to),
        target_ddl: base.target_ddl.replace(from, &to),
        target: to,
        ..base.clone()
    }
}

/// OS thread count of this process (Linux); 0 where unreadable.
fn os_threads() -> usize {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("Threads:"))
                .and_then(|l| l.split_whitespace().nth(1))
                .and_then(|n| n.parse().ok())
        })
        .unwrap_or(0)
}

fn import_into(v: &Virtualizer, workload: &Workload) {
    let JobPlan::Import(job) = compile(&parse_script(&workload.script).unwrap()).unwrap() else {
        panic!("workload script is not an import job")
    };
    let client = LegacyEtlClient::with_options(
        connector(v),
        ClientOptions {
            chunk_rows: CHUNK_ROWS,
            sessions: Some(1),
            ..Default::default()
        },
    );
    let result = client
        .run_import_data(&job, &workload.data)
        .expect("import job failed");
    assert_eq!(result.report.rows_applied, workload.rows);
}

fn run_burst(mode: RuntimeMode, jobs: usize, rows_per_job: u64) -> RunResult {
    let v = virtualizer_with_latency(
        VirtualizerConfig {
            runtime_mode: mode,
            ..Default::default()
        },
        std::time::Duration::ZERO,
    );
    let base = customer_workload(&CustomerSpec {
        rows: rows_per_job,
        row_bytes: 250,
        sessions: 1,
        seed: 0x9A5E + jobs as u64,
        ..Default::default()
    });
    let workloads: Vec<Workload> = (0..jobs).map(|i| retarget(&base, i)).collect();
    for w in &workloads {
        v.cdw()
            .execute(&etlv_core::xcompile::translate_sql(&w.target_ddl).unwrap())
            .unwrap();
    }

    // In shared mode the pool threads are spawned during node assembly
    // but may not have been scheduled yet; wait for them so the
    // during-run delta measures job-triggered spawning only.
    if mode == RuntimeMode::Shared {
        let workers = v.obs().runtime.workers.value();
        while v.obs().runtime.threads_started.value() < workers {
            std::thread::yield_now();
        }
    }
    let threads_before = v.obs().runtime.threads_started.value();
    let os_before = os_threads();
    let started = Instant::now();
    let handles: Vec<_> = workloads
        .into_iter()
        .map(|w| {
            let v = v.clone();
            std::thread::spawn(move || import_into(&v, &w))
        })
        .collect();
    // Sample the OS thread peak while the burst runs; the client-side
    // threads are identical across modes, so the delta between modes is
    // the server-side worker spawning.
    let mut peak = os_before;
    let sampler = {
        let done = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
        let flag = std::sync::Arc::clone(&done);
        let h = std::thread::spawn(move || {
            let mut peak = 0usize;
            while !flag.load(std::sync::atomic::Ordering::Relaxed) {
                peak = peak.max(os_threads());
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
            peak
        });
        (done, h)
    };
    for h in handles {
        h.join().expect("import thread panicked");
    }
    let wall_s = started.elapsed().as_secs_f64().max(1e-9);
    sampler.0.store(true, std::sync::atomic::Ordering::Relaxed);
    peak = peak.max(sampler.1.join().unwrap_or(0));

    let rows_total = rows_per_job * jobs as u64;
    let rows_per_s = rows_total as f64 / wall_s;
    let m = v.metrics();
    let convert = v.obs().pipeline.convert_us.snapshot("convert");
    let upload = v.obs().pipeline.upload_us.snapshot("upload");
    let queue = v.obs().runtime.queue_depth.snapshot("queue");
    eprintln!(
        "    [debug] credit stalls {} ({} ms), convert {} ms, upload {} ms, queue p50/p99 {}/{}",
        m.credit_stalls,
        m.credit_stall_time.as_millis(),
        convert.sum / 1000,
        upload.sum / 1000,
        queue.p50,
        queue.p99,
    );
    RunResult {
        mode: match mode {
            RuntimeMode::Shared => "shared",
            RuntimeMode::PerJob => "per_job",
        },
        jobs,
        rows_total,
        wall_s,
        rows_per_s,
        per_job_rows_per_s: rows_per_s / jobs as f64,
        pool_workers: v.obs().runtime.workers.value(),
        threads_started_during_run: v.obs().runtime.threads_started.value() - threads_before,
        peak_os_threads: peak,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_PR5.json".into());

    let rows_per_job: u64 = if smoke { 2_000 } else { 15_000 };
    let reps = if smoke { 1 } else { 3 };
    let concurrency = [1usize, 4, 16];

    // Alternate the two modes inside every repetition so scheduler and
    // frequency drift hit both equally, and keep each mode's best run:
    // the comparison is between the fastest each runtime can go.
    let mut results: Vec<RunResult> = Vec::new();
    for &jobs in &concurrency {
        let mut best: [Option<RunResult>; 2] = [None, None];
        for _ in 0..reps {
            for (slot, mode) in [RuntimeMode::Shared, RuntimeMode::PerJob]
                .into_iter()
                .enumerate()
            {
                let r = run_burst(mode, jobs, rows_per_job);
                let threads = r.threads_started_during_run.max(
                    best[slot]
                        .as_ref()
                        .map_or(0, |b| b.threads_started_during_run),
                );
                if best[slot]
                    .as_ref()
                    .is_none_or(|b| r.rows_per_s > b.rows_per_s)
                {
                    best[slot] = Some(r);
                }
                // The thread gate must see the worst rep, not the best.
                if let Some(b) = best[slot].as_mut() {
                    b.threads_started_during_run = threads;
                }
            }
        }
        for r in best.into_iter().flatten() {
            eprintln!(
                "  {:>7} x{:<2}: {:>10.0} rows/s total ({:>9.0}/job), \
                 pool {} workers, +{} threads started, OS peak {}",
                r.mode,
                r.jobs,
                r.rows_per_s,
                r.per_job_rows_per_s,
                r.pool_workers,
                r.threads_started_during_run,
                r.peak_os_threads
            );
            results.push(r);
        }
    }

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(&format!("  \"smoke\": {smoke},\n"));
    json.push_str(&format!("  \"rows_per_job\": {rows_per_job},\n"));
    json.push_str(&format!("  \"reps_best_of\": {reps},\n"));
    json.push_str(&format!("  \"chunk_rows\": {CHUNK_ROWS},\n"));
    json.push_str("  \"runs\": [\n");
    for (i, r) in results.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"mode\": \"{}\", \"jobs\": {}, \"rows_total\": {}, \"wall_s\": {:.4}, \
             \"rows_per_s\": {:.0}, \"per_job_rows_per_s\": {:.0}, \"pool_workers\": {}, \
             \"threads_started_during_run\": {}, \"peak_os_threads\": {}}}",
            r.mode,
            r.jobs,
            r.rows_total,
            r.wall_s,
            r.rows_per_s,
            r.per_job_rows_per_s,
            r.pool_workers,
            r.threads_started_during_run,
            r.peak_os_threads
        ));
        json.push_str(if i + 1 < results.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out_path, &json).expect("write bench report");
    eprintln!("wrote {out_path}");

    // Gates (full runs only). The shared runtime must not spawn workers
    // per job, and at the 16-job point its throughput must hold against
    // the per-job baseline.
    let shared16 = results.iter().find(|r| r.mode == "shared" && r.jobs == 16);
    let perjob16 = results.iter().find(|r| r.mode == "per_job" && r.jobs == 16);
    if let (Some(s), Some(p)) = (shared16, perjob16) {
        if s.threads_started_during_run != 0 {
            eprintln!(
                "FAIL: shared runtime started {} worker threads during the burst",
                s.threads_started_during_run
            );
            std::process::exit(1);
        }
        if !smoke && s.rows_per_s < 0.85 * p.rows_per_s {
            eprintln!(
                "FAIL: shared throughput {:.0} rows/s < 85% of per-job baseline {:.0} rows/s",
                s.rows_per_s, p.rows_per_s
            );
            std::process::exit(1);
        }
    }
}
