//! PR 2 performance evidence: conversion-kernel before/after plus
//! end-to-end import throughput for the Figure 7/8/9 workloads.
//!
//! Writes `BENCH_PR2.json` at the repo root (format documented in
//! EXPERIMENTS.md). The kernel comparison runs the retained naive
//! implementation (`convert_reference`, the pre-change hot path) and the
//! zero-allocation streaming kernel (`convert_into`) over identical
//! chunks in the same process, so the speedup is measured like-for-like.
//!
//! Usage: `bench_pr2 [--smoke] [--out PATH]`
//!   --smoke  shrink workloads and iteration counts for a CI sanity run
//!   --out    output path (default BENCH_PR2.json)

use std::time::{Duration, Instant};

use etlv_bench::run_import;
use etlv_core::convert::{ConvertScratch, DataConverter};
use etlv_core::workload::{customer_workload, wide_workload, CustomerSpec, Workload};
use etlv_core::{ConverterMode, VirtualizerConfig};
use etlv_legacy_client::ClientOptions;
use etlv_script::{compile, parse_script, JobPlan};

#[derive(Clone, Copy)]
struct Rates {
    rows_per_s: f64,
    bytes_per_s: f64,
}

struct KernelResult {
    name: &'static str,
    rows: u64,
    bytes: u64,
    baseline: Rates,
    after: Rates,
}

struct EndToEndResult {
    name: String,
    rows: u64,
    bytes: u64,
    total: Rates,
    acquisition_s: f64,
    application_s: f64,
}

fn rates(rows: u64, bytes: u64, elapsed: Duration) -> Rates {
    let s = elapsed.as_secs_f64().max(1e-9);
    Rates {
        rows_per_s: rows as f64 / s,
        bytes_per_s: bytes as f64 / s,
    }
}

/// Build the job's DataConverter exactly as the gateway does.
fn converter_for(workload: &Workload) -> DataConverter {
    let JobPlan::Import(job) = compile(&parse_script(&workload.script).unwrap()).unwrap() else {
        panic!("workload script is not an import job")
    };
    DataConverter::new(
        job.layout,
        job.format,
        VirtualizerConfig::default().staging_delimiter,
    )
}

/// Best-of-`iters` wall time for `f` over the full chunk.
fn best_of(iters: u32, mut f: impl FnMut()) -> Duration {
    let mut best = Duration::MAX;
    for _ in 0..iters {
        let start = Instant::now();
        f();
        best = best.min(start.elapsed());
    }
    best
}

/// Kernel before/after on one workload's data, chunked like the wire.
fn bench_kernel(name: &'static str, workload: &Workload, iters: u32) -> KernelResult {
    let conv = converter_for(workload);
    let data = &workload.data;

    let baseline = best_of(iters, || {
        let chunk = conv.convert_reference(1, data).unwrap();
        assert_eq!(chunk.rows as u64, workload.rows);
        std::hint::black_box(&chunk.bytes);
    });

    // The pipeline's steady state: one reused output buffer, one scratch.
    let mut out = Vec::new();
    let mut scratch = ConvertScratch::new();
    let after = best_of(iters, || {
        out.clear();
        let rows = conv.convert_into(1, data, &mut out, &mut scratch).unwrap();
        assert_eq!(rows as u64, workload.rows);
        std::hint::black_box(&out);
    });

    KernelResult {
        name,
        rows: workload.rows,
        bytes: data.len() as u64,
        baseline: rates(workload.rows, data.len() as u64, baseline),
        after: rates(workload.rows, data.len() as u64, after),
    }
}

fn bench_end_to_end(
    name: String,
    workload: &Workload,
    config: VirtualizerConfig,
    options: ClientOptions,
    runs: u32,
) -> EndToEndResult {
    let mut best_total = Duration::MAX;
    let mut best = None;
    for _ in 0..runs {
        let (_, report) = run_import(config.clone(), Duration::ZERO, workload, options.clone());
        if report.total() < best_total {
            best_total = report.total();
            best = Some(report);
        }
    }
    let report = best.unwrap();
    EndToEndResult {
        name,
        rows: workload.rows,
        bytes: workload.data.len() as u64,
        total: rates(workload.rows, workload.data.len() as u64, report.total()),
        acquisition_s: report.acquisition.as_secs_f64(),
        application_s: report.application.as_secs_f64(),
    }
}

fn customer(rows: u64, row_bytes: usize) -> Workload {
    customer_workload(&CustomerSpec {
        rows,
        row_bytes,
        sessions: 4,
        unique_key: false,
        ..Default::default()
    })
}

fn json_rates(out: &mut String, r: Rates) {
    out.push_str(&format!(
        "{{\"rows_per_s\": {:.0}, \"bytes_per_s\": {:.0}}}",
        r.rows_per_s, r.bytes_per_s
    ));
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_PR2.json".to_string());

    let (total_bytes, kernel_iters, e2e_runs) = if smoke {
        (1_000_000u64, 3u32, 1u32)
    } else {
        (12_500_000u64, 7u32, 3u32)
    };

    // --- conversion kernel, before vs after ---------------------------
    eprintln!("kernel: fig8 narrow (250 B rows)...");
    let narrow = customer(total_bytes / 250, 250);
    let k_narrow = bench_kernel("fig8_narrow_250B", &narrow, kernel_iters);

    eprintln!("kernel: fig8 wide (2000 B rows)...");
    let wide = customer(total_bytes / 2000, 2000);
    let k_wide = bench_kernel("fig8_wide_2000B", &wide, kernel_iters);

    eprintln!("kernel: fig10 50-column table...");
    let cols = wide_workload(total_bytes / 500, 50, 9, 42);
    let k_cols = bench_kernel("fig10_50_columns", &cols, kernel_iters);

    let kernels = [k_narrow, k_wide, k_cols];

    // --- end-to-end imports -------------------------------------------
    let options = ClientOptions {
        chunk_rows: 1_000,
        sessions: Some(4),
        ..Default::default()
    };
    let mut e2e = Vec::new();

    eprintln!("end-to-end: fig7 dataset ({} B)...", total_bytes);
    e2e.push(bench_end_to_end(
        "fig7_dataset".into(),
        &customer(total_bytes / 100, 100),
        VirtualizerConfig::default(),
        options.clone(),
        e2e_runs,
    ));

    for width in [250usize, 2000] {
        eprintln!("end-to-end: fig8 width {width}...");
        e2e.push(bench_end_to_end(
            format!("fig8_width_{width}B"),
            &customer(total_bytes / width as u64, width),
            VirtualizerConfig::default(),
            options.clone(),
            e2e_runs,
        ));
    }

    for workers in [1usize, 2, 4] {
        eprintln!("end-to-end: fig9 pool {workers}...");
        let config = VirtualizerConfig {
            converter_mode: ConverterMode::Pool(workers),
            file_writers: (workers / 4).max(1),
            credits: workers * 4,
            ..Default::default()
        };
        e2e.push(bench_end_to_end(
            format!("fig9_pool_{workers}"),
            &customer(total_bytes / 250, 250),
            config,
            options.clone(),
            e2e_runs,
        ));
    }

    // --- report --------------------------------------------------------
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(&format!("  \"smoke\": {smoke},\n"));
    json.push_str("  \"kernel\": [\n");
    for (i, k) in kernels.iter().enumerate() {
        let speedup = k.after.rows_per_s / k.baseline.rows_per_s;
        json.push_str(&format!(
            "    {{\"workload\": \"{}\", \"rows\": {}, \"bytes\": {}, \"baseline\": ",
            k.name, k.rows, k.bytes
        ));
        json_rates(&mut json, k.baseline);
        json.push_str(", \"after\": ");
        json_rates(&mut json, k.after);
        json.push_str(&format!(", \"speedup\": {speedup:.2}}}"));
        json.push_str(if i + 1 < kernels.len() { ",\n" } else { "\n" });
        eprintln!(
            "  {:>18}: {:>12.0} -> {:>12.0} rows/s  ({speedup:.2}x)",
            k.name, k.baseline.rows_per_s, k.after.rows_per_s
        );
    }
    json.push_str("  ],\n");
    json.push_str("  \"end_to_end\": [\n");
    for (i, r) in e2e.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"workload\": \"{}\", \"rows\": {}, \"bytes\": {}, \"total\": ",
            r.name, r.rows, r.bytes
        ));
        json_rates(&mut json, r.total);
        json.push_str(&format!(
            ", \"acquisition_s\": {:.3}, \"application_s\": {:.3}}}",
            r.acquisition_s, r.application_s
        ));
        json.push_str(if i + 1 < e2e.len() { ",\n" } else { "\n" });
        eprintln!(
            "  {:>18}: {:>12.0} rows/s, {:>12.0} bytes/s",
            r.name, r.total.rows_per_s, r.total.bytes_per_s
        );
    }
    json.push_str("  ]\n}\n");

    std::fs::write(&out_path, &json).expect("write bench report");
    eprintln!("wrote {out_path}");

    // The PR's headline claim: the kernel at least doubles wide-row
    // conversion throughput. Fail loudly if a regression sneaks in.
    let wide = &kernels[1];
    let speedup = wide.after.rows_per_s / wide.baseline.rows_per_s;
    if !smoke && speedup < 2.0 {
        eprintln!("FAIL: fig8 wide-row kernel speedup {speedup:.2}x < 2.0x");
        std::process::exit(1);
    }
}
